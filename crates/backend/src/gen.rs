//! IR → M16 code generation.
//!
//! The generator walks the structured IR and emits stack-machine code.
//! Salient conventions:
//!
//! * statements leave the evaluation stack empty (so interrupts, which
//!   share the stack, always nest safely),
//! * `atomic` sections save the IRQ flag into a hidden frame slot (not
//!   the eval stack) so that `return`/`break` can restore it on early
//!   exit — [`AtomicStyle::DisableEnable`] skips the save entirely, which
//!   is the cXprop optimization the paper describes in §2.1,
//! * fat pointers travel as single eval-stack cells and as 2–3 words in
//!   memory; dereferencing one extracts its value with `FatVal`,
//! * `Check` statements lower to compare-and-`Trap` sequences tagged with
//!   their FLID; in the verbose error modes the failure path additionally
//!   references the on-node message global (one extra push of its
//!   address, mirroring the real handler's argument).

use mcu::image::{CodeFunction, Image, ParamSlot, SlotKind};
use mcu::isa::{AluOp, Instr, UnAluOp, Width};
use mcu::Profile;
use tcil::ir::*;
use tcil::types::{field_offset, size_of, PtrKind, StructDef, Type};
use tcil::visit;
use tcil::CompileError;

use crate::layout::Layout;

/// Generates the full image for `program`.
///
/// # Errors
///
/// Returns an error for IR the generator cannot lower (aggregate
/// assignments from non-place expressions, missing `main`).
pub fn generate(
    program: &Program,
    layout: &Layout,
    profile: Profile,
) -> Result<Image, CompileError> {
    let mut image = Image::new(profile);
    image.data_init = layout.data_init.clone();
    image.rodata = layout.rodata.clone();
    image.static_top = layout.static_top;
    image.static_bytes = layout.static_bytes;
    for (flid, msg) in &program.flid_messages {
        image.flid_table.insert(*flid, msg.clone());
    }
    for (i, g) in program.globals.iter().enumerate() {
        image.symbols.insert(g.name.clone(), layout.global_addr[i]);
    }
    for (fi, f) in program.functions.iter().enumerate() {
        let cf = FuncGen::new(program, layout, f, fi as u32)?.run()?;
        image.add_function(cf);
    }
    image.entry = match program.entry {
        Some(e) => Some(e.0),
        None => return Err(CompileError::generic("program has no `main`")),
    };
    Ok(image)
}

/// How a value of some type travels on the eval stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValKind {
    /// Scalar integer (or thin/safe pointer as u16).
    Int(Width, bool),
    /// Fat pointer; `true` = SEQ.
    Fat(bool),
    /// Aggregate (struct/array): only movable via `MemCpy`.
    Agg(u32),
}

fn val_kind(ty: &Type, structs: &[StructDef]) -> ValKind {
    match ty {
        Type::Int(k) => ValKind::Int(width_of(k.size()), k.signed()),
        Type::Ptr(_, PtrKind::Thin | PtrKind::Safe) => ValKind::Int(Width::W16, false),
        Type::Ptr(_, PtrKind::Fseq) => ValKind::Fat(false),
        Type::Ptr(_, PtrKind::Seq) => ValKind::Fat(true),
        Type::Void => ValKind::Int(Width::W8, false),
        t => ValKind::Agg(size_of(t, structs)),
    }
}

fn width_of(bytes: u32) -> Width {
    match bytes {
        1 => Width::W8,
        2 => Width::W16,
        _ => Width::W32,
    }
}

/// Where a place's storage was resolved.
enum Loc {
    /// A frame slot at this byte offset.
    Local(u16),
    /// An absolute address.
    Global(u16),
    /// The address is on the eval stack.
    Stack,
}

/// A lexical scope that needs cleanup on early exit.
enum Scope {
    Loop {
        cont_target: u32,
        break_fixups: Vec<usize>,
    },
    Atomic {
        style: AtomicStyle,
        save_slot: u16,
    },
}

struct FuncGen<'a> {
    prog: &'a Program,
    layout: &'a Layout,
    f: &'a Function,
    code: Vec<Instr>,
    slots: Vec<Option<u16>>,
    frame_size: u16,
    scopes: Vec<Scope>,
    is_entry: bool,
}

impl<'a> FuncGen<'a> {
    fn new(
        prog: &'a Program,
        layout: &'a Layout,
        f: &'a Function,
        fid: u32,
    ) -> Result<Self, CompileError> {
        // Allocate frame slots for parameters and referenced locals only
        // (the "gcc" tier at least avoids materializing dead locals).
        let mut referenced = vec![false; f.locals.len()];
        referenced[..f.params as usize].fill(true);
        visit::walk_stmts(&f.body, &mut |s| {
            let mut mark_place = |p: &Place| {
                if let PlaceBase::Local(id) = &p.base {
                    referenced[id.0 as usize] = true;
                }
            };
            match s {
                Stmt::Assign(p, _) => mark_place(p),
                Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => {
                    mark_place(p)
                }
                _ => {}
            }
            visit::stmt_exprs(s, &mut |e| {
                visit::walk_expr(e, &mut |x| match &x.kind {
                    ExprKind::Load(p) | ExprKind::AddrOf(p) => {
                        if let PlaceBase::Local(id) = &p.base {
                            referenced[id.0 as usize] = true;
                        }
                    }
                    _ => {}
                });
            });
        });
        let mut slots = vec![None; f.locals.len()];
        let mut off = 0u16;
        for (i, l) in f.locals.iter().enumerate() {
            if referenced[i] {
                slots[i] = Some(off);
                off = off
                    .checked_add(size_of(&l.ty, &prog.structs) as u16)
                    .ok_or_else(|| CompileError::generic("frame too large"))?;
            }
        }
        let is_entry = prog.entry == Some(FuncId(fid));
        Ok(FuncGen {
            prog,
            layout,
            f,
            code: Vec::new(),
            slots,
            frame_size: off,
            scopes: Vec::new(),
            is_entry,
        })
    }

    fn run(mut self) -> Result<CodeFunction, CompileError> {
        let body = self.f.body.clone();
        self.gen_block(&body)?;
        // Function epilogue.
        if self.f.interrupt.is_some() {
            self.emit(Instr::Reti);
        } else if self.is_entry {
            self.emit(Instr::Halt);
        } else {
            self.emit(Instr::Ret);
        }
        let mut cf = CodeFunction::new(self.f.name.clone());
        cf.interrupt = self.f.interrupt;
        cf.frame_size = self.frame_size;
        for i in 0..self.f.params as usize {
            let off = self.slots[i].expect("param slot");
            let kind = match val_kind(&self.f.locals[i].ty, &self.prog.structs) {
                ValKind::Int(w, _) => SlotKind::Scalar(w),
                ValKind::Fat(seq) => SlotKind::Fat { seq },
                ValKind::Agg(_) => {
                    return Err(CompileError::generic(
                        "aggregate parameter survived lowering",
                    ))
                }
            };
            cf.params.push(ParamSlot { off, kind });
        }
        cf.code = self.code;
        Ok(cf)
    }

    // ----- emission helpers -----

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jmp { target: t } | Instr::Jz { target: t } | Instr::Jnz { target: t } => {
                *t = target
            }
            other => panic!("patching non-branch {other:?}"),
        }
    }

    fn slot_of(&mut self, id: LocalId) -> u16 {
        match self.slots[id.0 as usize] {
            Some(o) => o,
            None => {
                // A temp introduced late (atomic save slots) or a local
                // only written: allocate on demand.
                let ty = &self.f.locals[id.0 as usize].ty;
                let o = self.frame_size;
                self.frame_size += size_of(ty, &self.prog.structs) as u16;
                self.slots[id.0 as usize] = Some(o);
                o
            }
        }
    }

    /// Allocates a hidden one-byte frame slot (atomic save area).
    fn hidden_slot(&mut self) -> u16 {
        let o = self.frame_size;
        self.frame_size += 1;
        o
    }

    // ----- blocks and statements -----

    fn gen_block(&mut self, b: &Block) -> Result<(), CompileError> {
        for s in b {
            self.gen_stmt(s)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Assign(place, e) => self.gen_assign(place, e),
            Stmt::Call { dst, func, args } => {
                for a in args {
                    self.gen_expr(a)?;
                }
                self.emit(Instr::Call { func: func.0 });
                let ret = &self.prog.functions[func.0 as usize].ret;
                if *ret != Type::Void {
                    match dst {
                        Some(d) => self.gen_store(d)?,
                        None => {
                            self.emit(Instr::Pop);
                        }
                    }
                }
                Ok(())
            }
            Stmt::BuiltinCall { dst, which, args } => self.gen_builtin(*which, args, dst.as_ref()),
            Stmt::If { cond, then_, else_ } => {
                self.gen_expr(cond)?;
                let jz = self.emit(Instr::Jz { target: 0 });
                self.gen_block(then_)?;
                if else_.is_empty() {
                    let t = self.here();
                    self.patch(jz, t);
                } else {
                    let jend = self.emit(Instr::Jmp { target: 0 });
                    let t = self.here();
                    self.patch(jz, t);
                    self.gen_block(else_)?;
                    let t = self.here();
                    self.patch(jend, t);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let cond_pos = self.here();
                self.gen_expr(cond)?;
                let jz = self.emit(Instr::Jz { target: 0 });
                self.scopes.push(Scope::Loop {
                    cont_target: cond_pos,
                    break_fixups: Vec::new(),
                });
                self.gen_block(body)?;
                self.emit(Instr::Jmp { target: cond_pos });
                let end = self.here();
                self.patch(jz, end);
                let Some(Scope::Loop { break_fixups, .. }) = self.scopes.pop() else {
                    unreachable!("loop scope imbalance")
                };
                for fx in break_fixups {
                    self.patch(fx, end);
                }
                Ok(())
            }
            Stmt::Return(e) => {
                // Unwind atomic scopes (restore the IRQ flag).
                let restores: Vec<(AtomicStyle, u16)> = self
                    .scopes
                    .iter()
                    .filter_map(|sc| match sc {
                        Scope::Atomic { style, save_slot } => Some((*style, *save_slot)),
                        _ => None,
                    })
                    .collect();
                for (style, slot) in restores.into_iter().rev() {
                    self.gen_atomic_exit(style, slot);
                }
                if let Some(e) = e {
                    self.gen_expr(e)?;
                }
                if self.f.interrupt.is_some() {
                    self.emit(Instr::Reti);
                } else if self.is_entry {
                    self.emit(Instr::Halt);
                } else {
                    self.emit(Instr::Ret);
                }
                Ok(())
            }
            Stmt::Break | Stmt::Continue => {
                // Restore atomics entered since the innermost loop.
                let mut restores = Vec::new();
                let mut loop_idx = None;
                for (i, sc) in self.scopes.iter().enumerate().rev() {
                    match sc {
                        Scope::Atomic { style, save_slot } => restores.push((*style, *save_slot)),
                        Scope::Loop { .. } => {
                            loop_idx = Some(i);
                            break;
                        }
                    }
                }
                let loop_idx =
                    loop_idx.ok_or_else(|| CompileError::generic("break outside loop"))?;
                for (style, slot) in restores {
                    self.gen_atomic_exit(style, slot);
                }
                if matches!(s, Stmt::Continue) {
                    let Scope::Loop { cont_target, .. } = &self.scopes[loop_idx] else {
                        unreachable!()
                    };
                    let t = *cont_target;
                    self.emit(Instr::Jmp { target: t });
                } else {
                    let j = self.emit(Instr::Jmp { target: 0 });
                    let Scope::Loop { break_fixups, .. } = &mut self.scopes[loop_idx] else {
                        unreachable!()
                    };
                    break_fixups.push(j);
                }
                Ok(())
            }
            Stmt::Atomic { body, style } => {
                let slot = self.hidden_slot();
                match style {
                    AtomicStyle::SaveRestore => {
                        self.emit(Instr::IrqSave);
                        self.emit(Instr::StLocal {
                            off: slot,
                            width: Width::W8,
                        });
                    }
                    AtomicStyle::DisableEnable => {
                        self.emit(Instr::IrqDisable);
                    }
                }
                self.scopes.push(Scope::Atomic {
                    style: *style,
                    save_slot: slot,
                });
                self.gen_block(body)?;
                self.scopes.pop();
                self.gen_atomic_exit(*style, slot);
                Ok(())
            }
            Stmt::Block(b) => self.gen_block(b),
            Stmt::Check(c) => self.gen_check(c),
            Stmt::Nop => Ok(()),
        }
    }

    fn gen_atomic_exit(&mut self, style: AtomicStyle, slot: u16) {
        match style {
            AtomicStyle::SaveRestore => {
                self.emit(Instr::LdLocal {
                    off: slot,
                    width: Width::W8,
                    signed: false,
                });
                self.emit(Instr::IrqRestore);
            }
            AtomicStyle::DisableEnable => {
                self.emit(Instr::IrqEnable);
            }
        }
    }

    fn gen_assign(&mut self, place: &Place, e: &Expr) -> Result<(), CompileError> {
        match val_kind(&place.ty, &self.prog.structs) {
            ValKind::Agg(size) => {
                // Struct/array copy: both sides must be places.
                let ExprKind::Load(src) = &e.kind else {
                    return Err(CompileError::generic(
                        "aggregate assignment from non-place expression",
                    ));
                };
                let src = src.clone();
                self.gen_place_addr_on_stack(&src)?;
                self.gen_place_addr_on_stack(place)?;
                self.emit(Instr::MemCpy { bytes: size as u16 });
                Ok(())
            }
            _ => {
                self.gen_expr(e)?;
                self.gen_store(place)
            }
        }
    }

    fn gen_builtin(
        &mut self,
        which: Builtin,
        args: &[Expr],
        dst: Option<&Place>,
    ) -> Result<(), CompileError> {
        match which {
            Builtin::HwRead8 | Builtin::HwRead16 => {
                let w = if which == Builtin::HwRead8 {
                    Width::W8
                } else {
                    Width::W16
                };
                self.gen_expr(&args[0])?;
                self.emit(Instr::Ld {
                    width: w,
                    signed: false,
                });
                match dst {
                    Some(d) => self.gen_store(d)?,
                    None => {
                        self.emit(Instr::Pop);
                    }
                }
            }
            Builtin::HwWrite8 | Builtin::HwWrite16 => {
                let w = if which == Builtin::HwWrite8 {
                    Width::W8
                } else {
                    Width::W16
                };
                self.gen_expr(&args[1])?;
                self.gen_expr(&args[0])?;
                self.emit(Instr::St { width: w });
            }
            Builtin::Sleep => {
                self.emit(Instr::Sleep);
            }
            Builtin::IrqSave => {
                self.emit(Instr::IrqSave);
                match dst {
                    Some(d) => self.gen_store(d)?,
                    None => {
                        self.emit(Instr::Pop);
                    }
                }
            }
            Builtin::IrqRestore => {
                self.gen_expr(&args[0])?;
                self.emit(Instr::IrqRestore);
            }
            Builtin::IrqEnable => {
                self.emit(Instr::IrqEnable);
            }
            Builtin::IrqDisable => {
                self.emit(Instr::IrqDisable);
            }
        }
        Ok(())
    }

    // ----- checks -----

    fn gen_check(&mut self, c: &Check) -> Result<(), CompileError> {
        let mut fail_jumps: Vec<usize> = Vec::new();
        let ok_jump = match &c.kind {
            CheckKind::NonNull(e) => {
                self.gen_expr(e)?;
                if matches!(val_kind(&e.ty, &self.prog.structs), ValKind::Fat(_)) {
                    self.emit(Instr::FatVal);
                }
                self.emit(Instr::Jnz { target: 0 })
            }
            CheckKind::Upper { ptr, len } => {
                // null?
                self.gen_expr(ptr)?;
                self.emit(Instr::FatVal);
                fail_jumps.push(self.emit(Instr::Jz { target: 0 }));
                // val + len <= end ?
                self.gen_expr(ptr)?;
                self.emit(Instr::FatVal);
                self.emit(Instr::PushI(*len as i64));
                self.emit(Instr::Bin {
                    op: AluOp::Add,
                    width: Width::W16,
                    signed: false,
                });
                self.gen_expr(ptr)?;
                self.emit(Instr::FatEnd);
                self.emit(Instr::Bin {
                    op: AluOp::Le,
                    width: Width::W16,
                    signed: false,
                });
                self.emit(Instr::Jnz { target: 0 })
            }
            CheckKind::Bounds { ptr, len } => {
                self.gen_expr(ptr)?;
                self.emit(Instr::FatVal);
                fail_jumps.push(self.emit(Instr::Jz { target: 0 }));
                // base <= val ?
                self.gen_expr(ptr)?;
                self.emit(Instr::FatBase);
                self.gen_expr(ptr)?;
                self.emit(Instr::FatVal);
                self.emit(Instr::Bin {
                    op: AluOp::Le,
                    width: Width::W16,
                    signed: false,
                });
                fail_jumps.push(self.emit(Instr::Jz { target: 0 }));
                // val + len <= end ?
                self.gen_expr(ptr)?;
                self.emit(Instr::FatVal);
                self.emit(Instr::PushI(*len as i64));
                self.emit(Instr::Bin {
                    op: AluOp::Add,
                    width: Width::W16,
                    signed: false,
                });
                self.gen_expr(ptr)?;
                self.emit(Instr::FatEnd);
                self.emit(Instr::Bin {
                    op: AluOp::Le,
                    width: Width::W16,
                    signed: false,
                });
                self.emit(Instr::Jnz { target: 0 })
            }
            CheckKind::IndexBound { idx, n } => {
                self.gen_expr(idx)?;
                self.emit(Instr::PushI(*n as i64));
                self.emit(Instr::Bin {
                    op: AluOp::Lt,
                    width: Width::W16,
                    signed: false,
                });
                self.emit(Instr::Jnz { target: 0 })
            }
        };
        // Fail path.
        let fail_pos = self.here();
        for j in fail_jumps {
            self.patch(j, fail_pos);
        }
        // In the verbose error modes the failure handler receives the
        // message address; model the extra push (the message global also
        // occupies memory, which the layout already accounted).
        if let Some(gid) = self.prog.find_global(&format!("__ccured_msg_{}", c.flid.0)) {
            let addr = self.layout.global_addr[gid.0 as usize];
            self.emit(Instr::PushI(addr as i64));
            if self.prog.globals[gid.0 as usize].is_const {
                // ROM-resident message: the failure handler must read it
                // through program-memory loads; pass the address-space
                // flag (the extra per-check code that makes the paper's
                // verbose-in-ROM bar taller than verbose-in-RAM).
                self.emit(Instr::PushI(1));
            }
        }
        self.emit(Instr::Trap { flid: c.flid.0 });
        let ok_pos = self.here();
        self.patch(ok_jump, ok_pos);
        Ok(())
    }

    // ----- expressions -----

    fn gen_expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Const(v) => {
                self.emit(Instr::PushI(*v));
            }
            ExprKind::Str(id) => {
                let addr = self.layout.str_addr[id.0 as usize];
                self.emit(Instr::PushI(addr as i64));
            }
            ExprKind::SizeOf(t) => {
                let v = size_of(t, &self.prog.structs);
                self.emit(Instr::PushI(v as i64));
            }
            ExprKind::Load(p) => self.gen_load(p)?,
            ExprKind::AddrOf(p) => self.gen_place_addr_on_stack(p)?,
            ExprKind::Unary(op, a) => {
                self.gen_expr(a)?;
                let (w, _) = int_wk(&a.ty);
                let uop = match op {
                    UnOp::Neg => UnAluOp::Neg,
                    UnOp::BitNot => UnAluOp::BitNot,
                    UnOp::Not => UnAluOp::Not,
                };
                self.emit(Instr::Un { op: uop, width: w });
            }
            ExprKind::Binary(op, a, b) => self.gen_binary(*op, a, b)?,
            ExprKind::Cast(a) => {
                self.gen_expr(a)?;
                if let (Type::Int(dst), Type::Int(src)) = (&e.ty, &a.ty) {
                    if dst.size() < src.size() {
                        self.emit(Instr::Wrap {
                            width: width_of(dst.size()),
                            signed: dst.signed(),
                        });
                    }
                }
            }
            ExprKind::MakeFat { val, base, end } => {
                let seq = base.is_some();
                self.gen_expr(val)?;
                if let Some(b) = base {
                    self.gen_expr(b)?;
                }
                self.gen_expr(end)?;
                self.emit(Instr::MkFat { seq });
            }
        }
        Ok(())
    }

    fn gen_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<(), CompileError> {
        match op {
            BinOp::PtrAdd | BinOp::PtrSub => {
                self.gen_expr(a)?;
                let elem = match &a.ty {
                    Type::Ptr(t, _) => size_of(t, &self.prog.structs),
                    other => {
                        return Err(CompileError::generic(format!(
                            "pointer arithmetic on {other}"
                        )))
                    }
                };
                self.gen_expr(b)?;
                if elem != 1 {
                    self.emit(Instr::PushI(elem as i64));
                    self.emit(Instr::Bin {
                        op: AluOp::Mul,
                        width: Width::W16,
                        signed: false,
                    });
                }
                if op == BinOp::PtrSub {
                    self.emit(Instr::Un {
                        op: UnAluOp::Neg,
                        width: Width::W16,
                    });
                }
                if matches!(val_kind(&a.ty, &self.prog.structs), ValKind::Fat(_)) {
                    self.emit(Instr::FatAdd);
                } else {
                    self.emit(Instr::Bin {
                        op: AluOp::Add,
                        width: Width::W16,
                        signed: false,
                    });
                }
            }
            _ => {
                // Fat pointers compare by value part.
                self.gen_expr(a)?;
                if matches!(val_kind(&a.ty, &self.prog.structs), ValKind::Fat(_)) {
                    self.emit(Instr::FatVal);
                }
                self.gen_expr(b)?;
                if matches!(val_kind(&b.ty, &self.prog.structs), ValKind::Fat(_)) {
                    self.emit(Instr::FatVal);
                }
                let (w, signed) = int_wk(&a.ty);
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Mul,
                    BinOp::Div => AluOp::Div,
                    BinOp::Mod => AluOp::Mod,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    BinOp::Xor => AluOp::Xor,
                    BinOp::Shl => AluOp::Shl,
                    BinOp::Shr => AluOp::Shr,
                    BinOp::Eq => AluOp::Eq,
                    BinOp::Ne => AluOp::Ne,
                    BinOp::Lt => AluOp::Lt,
                    BinOp::Le => AluOp::Le,
                    BinOp::PtrAdd | BinOp::PtrSub => unreachable!(),
                };
                self.emit(Instr::Bin {
                    op: alu,
                    width: w,
                    signed,
                });
            }
        }
        Ok(())
    }

    // ----- places -----

    /// Resolves a place to a location, pushing the address on the stack
    /// only when it cannot be encoded directly.
    fn resolve_place(&mut self, p: &Place) -> Result<Loc, CompileError> {
        let structs = &self.prog.structs.clone();
        // Static part: base + constant offset.
        let (mut loc, mut ty): (Loc, Type) = match &p.base {
            PlaceBase::Local(id) => {
                let off = self.slot_of(*id);
                (Loc::Local(off), self.f.locals[id.0 as usize].ty.clone())
            }
            PlaceBase::Global(g) => {
                let addr = self.layout.global_addr[g.0 as usize];
                (
                    Loc::Global(addr),
                    self.prog.globals[g.0 as usize].ty.clone(),
                )
            }
            PlaceBase::Deref(e) => {
                self.gen_expr(e)?;
                if matches!(val_kind(&e.ty, structs), ValKind::Fat(_)) {
                    self.emit(Instr::FatVal);
                }
                let ty = match &e.ty {
                    Type::Ptr(t, _) => (**t).clone(),
                    other => return Err(CompileError::generic(format!("deref of {other}"))),
                };
                (Loc::Stack, ty)
            }
        };
        let mut const_off: u32 = 0;
        for el in &p.elems {
            match el {
                PlaceElem::Field { sid, idx } => {
                    const_off += field_offset(*sid, *idx, structs);
                    ty = structs[sid.0 as usize].fields[*idx as usize].ty.clone();
                }
                PlaceElem::Index(i) => {
                    let elem_ty = match &ty {
                        Type::Array(t, _) => (**t).clone(),
                        other => return Err(CompileError::generic(format!("index into {other}"))),
                    };
                    let elem_size = size_of(&elem_ty, structs);
                    if let Some(v) = i.as_const() {
                        const_off += v as u32 * elem_size;
                    } else {
                        // Materialize the address so far, then add i*size.
                        loc = self.materialize(loc, &mut const_off);
                        self.gen_expr(i)?;
                        if elem_size != 1 {
                            self.emit(Instr::PushI(elem_size as i64));
                            self.emit(Instr::Bin {
                                op: AluOp::Mul,
                                width: Width::W16,
                                signed: false,
                            });
                        }
                        self.emit(Instr::Bin {
                            op: AluOp::Add,
                            width: Width::W16,
                            signed: false,
                        });
                    }
                    ty = elem_ty;
                }
            }
        }
        Ok(match loc {
            Loc::Local(off) => Loc::Local(off + const_off as u16),
            Loc::Global(addr) => Loc::Global(addr.wrapping_add(const_off as u16)),
            Loc::Stack => {
                if const_off != 0 {
                    self.emit(Instr::PushI(const_off as i64));
                    self.emit(Instr::Bin {
                        op: AluOp::Add,
                        width: Width::W16,
                        signed: false,
                    });
                }
                Loc::Stack
            }
        })
    }

    fn materialize(&mut self, loc: Loc, const_off: &mut u32) -> Loc {
        match loc {
            Loc::Local(off) => {
                self.emit(Instr::AddrLocal {
                    off: off + *const_off as u16,
                });
                *const_off = 0;
                Loc::Stack
            }
            Loc::Global(addr) => {
                self.emit(Instr::PushI(addr.wrapping_add(*const_off as u16) as i64));
                *const_off = 0;
                Loc::Stack
            }
            Loc::Stack => {
                if *const_off != 0 {
                    self.emit(Instr::PushI(*const_off as i64));
                    self.emit(Instr::Bin {
                        op: AluOp::Add,
                        width: Width::W16,
                        signed: false,
                    });
                    *const_off = 0;
                }
                Loc::Stack
            }
        }
    }

    fn gen_place_addr_on_stack(&mut self, p: &Place) -> Result<(), CompileError> {
        let loc = self.resolve_place(p)?;
        let mut zero = 0;
        self.materialize(loc, &mut zero);
        Ok(())
    }

    fn gen_load(&mut self, p: &Place) -> Result<(), CompileError> {
        let kind = val_kind(&p.ty, &self.prog.structs);
        let loc = self.resolve_place(p)?;
        match (kind, loc) {
            (ValKind::Int(w, s), Loc::Local(off)) => {
                self.emit(Instr::LdLocal {
                    off,
                    width: w,
                    signed: s,
                });
            }
            (ValKind::Int(w, s), Loc::Global(addr)) => {
                self.emit(Instr::LdGlobal {
                    addr,
                    width: w,
                    signed: s,
                });
            }
            (ValKind::Int(w, s), Loc::Stack) => {
                self.emit(Instr::Ld {
                    width: w,
                    signed: s,
                });
            }
            (ValKind::Fat(seq), Loc::Local(off)) => {
                self.emit(Instr::LdLocalFat { off, seq });
            }
            (ValKind::Fat(seq), Loc::Global(addr)) => {
                self.emit(Instr::LdGlobalFat { addr, seq });
            }
            (ValKind::Fat(seq), Loc::Stack) => {
                self.emit(Instr::LdFat { seq });
            }
            (ValKind::Agg(_), _) => {
                return Err(CompileError::generic("aggregate load outside assignment"));
            }
        }
        Ok(())
    }

    fn gen_store(&mut self, p: &Place) -> Result<(), CompileError> {
        let kind = val_kind(&p.ty, &self.prog.structs);
        let loc = self.resolve_place(p)?;
        match (kind, loc) {
            (ValKind::Int(w, _), Loc::Local(off)) => {
                self.emit(Instr::StLocal { off, width: w });
            }
            (ValKind::Int(w, _), Loc::Global(addr)) => {
                self.emit(Instr::StGlobal { addr, width: w });
            }
            (ValKind::Int(w, _), Loc::Stack) => {
                self.emit(Instr::St { width: w });
            }
            (ValKind::Fat(seq), Loc::Local(off)) => {
                self.emit(Instr::StLocalFat { off, seq });
            }
            (ValKind::Fat(seq), Loc::Global(addr)) => {
                self.emit(Instr::StGlobalFat { addr, seq });
            }
            (ValKind::Fat(seq), Loc::Stack) => {
                self.emit(Instr::StFat { seq });
            }
            (ValKind::Agg(_), _) => {
                return Err(CompileError::generic("aggregate store outside assignment"));
            }
        }
        Ok(())
    }
}

/// Width/signedness of an integer-or-pointer operand.
fn int_wk(ty: &Type) -> (Width, bool) {
    match ty {
        Type::Int(k) => (width_of(k.size()), k.signed()),
        Type::Ptr(..) => (Width::W16, false),
        _ => (Width::W16, false),
    }
}
