//! Data placement: SRAM globals, flash-window constants and strings,
//! `.data` initializer images.
//!
//! Placement rules mirror an AVR-class linker script:
//!
//! * non-`const` globals go to SRAM starting at the profile's base; their
//!   non-zero initializers also produce flash-resident images (`.data`
//!   costs both memories, `.bss` costs SRAM only),
//! * `const` globals and code-referenced string literals go to the flash
//!   window at `0x8000` (readable, not writable),
//! * the call stack grows down from the top of SRAM toward the globals.

use std::collections::BTreeSet;

use mcu::Profile;
use tcil::intern::StrId;
use tcil::ir::*;
use tcil::types::{size_of, Type};
use tcil::visit;
use tcil::CompileError;

/// The result of placement.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Address of each global, indexed by [`GlobalId`].
    pub global_addr: Vec<u16>,
    /// Address of each code-referenced string literal (by [`StrId`] index;
    /// `0` when the string is not placed).
    pub str_addr: Vec<u16>,
    /// One past the highest SRAM address used by globals.
    pub static_top: u16,
    /// Total SRAM bytes used by globals.
    pub static_bytes: u32,
    /// `.data` images: SRAM address → initializer bytes.
    pub data_init: Vec<(u16, Vec<u8>)>,
    /// Flash-window images (const globals, strings).
    pub rodata: Vec<(u16, Vec<u8>)>,
    /// Whether static data overflowed the profile's SRAM (the image is
    /// still produced for size measurement; running it would fault).
    pub sram_overflow: bool,
}

/// Computes placement for `program` on `profile`.
///
/// # Errors
///
/// Returns an error when the flash window overflows (even size
/// measurement is meaningless then).
pub fn layout(program: &Program, profile: &Profile) -> Result<Layout, CompileError> {
    let mut l = Layout::default();
    let structs = &program.structs;

    // Which strings does code actually reference? (Init::Str renders
    // inline into the global's image; only expression-referenced strings
    // need their own placement.)
    let mut used_strings: BTreeSet<u32> = BTreeSet::new();
    for f in &program.functions {
        visit::walk_stmts(&f.body, &mut |s| {
            visit::stmt_exprs(s, &mut |e| {
                visit::walk_expr(e, &mut |x| {
                    if let ExprKind::Str(id) = &x.kind {
                        used_strings.insert(id.0);
                    }
                });
            });
        });
    }

    let mut sram = profile.sram_base() as u32;
    let mut flash = 0x8000u32;
    l.global_addr = vec![0; program.globals.len()];

    for (i, g) in program.globals.iter().enumerate() {
        let size = size_of(&g.ty, structs);
        if g.is_const {
            l.global_addr[i] = flash as u16;
            let mut image = Vec::with_capacity(size as usize);
            render_init(&g.ty, &g.init, structs, program, &mut image);
            image.resize(size as usize, 0);
            l.rodata.push((flash as u16, image));
            flash += size;
        } else {
            l.global_addr[i] = sram as u16;
            if g.init != Init::Zero {
                let mut image = Vec::with_capacity(size as usize);
                render_init(&g.ty, &g.init, structs, program, &mut image);
                image.resize(size as usize, 0);
                l.data_init.push((sram as u16, image));
            }
            sram += size;
        }
    }

    l.str_addr = vec![0; program.strings.len()];
    for (id, bytes) in program.strings.iter() {
        if !used_strings.contains(&id.0) {
            continue;
        }
        l.str_addr[id.0 as usize] = flash as u16;
        let mut image = bytes.to_vec();
        image.push(0);
        flash += image.len() as u32;
        l.rodata.push((flash as u16 - image.len() as u16, image));
    }

    l.static_top = sram.min(0x7FFF) as u16;
    l.static_bytes = sram - profile.sram_base() as u32;
    l.sram_overflow = sram > profile.sram_end() as u32;
    if flash >= 0xF000 {
        return Err(CompileError::generic(format!(
            "flash window overflow: {} bytes of const data",
            flash - 0x8000
        )));
    }
    Ok(l)
}

/// Renders an initializer into little-endian bytes for `ty`.
fn render_init(
    ty: &Type,
    init: &Init,
    structs: &[tcil::types::StructDef],
    program: &Program,
    out: &mut Vec<u8>,
) {
    let size = size_of(ty, structs) as usize;
    match (ty, init) {
        (_, Init::Zero) => out.extend(std::iter::repeat_n(0, size)),
        (Type::Int(k), Init::Int(v)) => {
            let w = k.wrap(*v) as u64;
            out.extend(&w.to_le_bytes()[..k.size() as usize]);
        }
        (Type::Ptr(..), Init::Int(v)) => {
            // Only null is accepted by lowering; zero-fill all words.
            debug_assert_eq!(*v, 0);
            out.extend(std::iter::repeat_n(0, size));
        }
        (Type::Array(elem, n), Init::List(items)) => {
            for item in items {
                render_init(elem, item, structs, program, out);
            }
            let elem_size = size_of(elem, structs) as usize;
            for _ in items.len()..*n as usize {
                out.extend(std::iter::repeat_n(0, elem_size));
            }
        }
        (Type::Array(_, n), Init::Str(id)) => {
            let bytes = program.strings.get(StrId(id.0));
            out.extend_from_slice(bytes);
            for _ in bytes.len()..*n as usize {
                out.push(0);
            }
        }
        (Type::Struct(sid), Init::List(items)) => {
            let fields = &structs[sid.0 as usize].fields;
            for (field, item) in fields.iter().zip(items.iter()) {
                render_init(&field.ty, item, structs, program, out);
            }
            for field in fields.iter().skip(items.len()) {
                out.extend(std::iter::repeat_n(0, size_of(&field.ty, structs) as usize));
            }
        }
        (t, i) => {
            debug_assert!(false, "initializer shape mismatch: {t} with {i:?}");
            out.extend(std::iter::repeat_n(0, size));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_and_flash_are_separate() {
        let p = tcil::parse_and_lower(
            "uint16_t a = 7;
             const uint8_t t[4] = {1,2,3,4};
             uint8_t b;
             void main() { }",
        )
        .unwrap();
        let l = layout(&p, &Profile::mica2()).unwrap();
        assert_eq!(l.global_addr[0], 0x0100); // a
        assert!(l.global_addr[1] >= 0x8000); // t (const)
        assert_eq!(l.global_addr[2], 0x0102); // b
        assert_eq!(l.static_bytes, 3);
        assert_eq!(l.data_init.len(), 1);
        assert_eq!(l.data_init[0].1, vec![7, 0]);
        assert_eq!(l.rodata[0].1, vec![1, 2, 3, 4]);
    }

    #[test]
    fn unreferenced_strings_not_placed() {
        let p = tcil::parse_and_lower(
            "char msg[6] = \"hi\";
             void main() { }",
        )
        .unwrap();
        let l = layout(&p, &Profile::mica2()).unwrap();
        // The string renders into the global image, not as rodata.
        assert!(l.rodata.is_empty());
        assert_eq!(l.data_init[0].1, vec![b'h', b'i', 0, 0, 0, 0]);
    }

    #[test]
    fn overflow_detected_not_fatal() {
        let p = tcil::parse_and_lower(
            "uint8_t big[5000];
             void main() { }",
        )
        .unwrap();
        let l = layout(&p, &Profile::mica2()).unwrap();
        assert!(l.sram_overflow);
        assert_eq!(l.static_bytes, 5000);
    }
}
