//! The backend: the GCC stage of the paper's toolchain.
//!
//! Translates a (possibly cured and optimized) [`tcil::Program`] into an
//! M16 [`mcu::Image`]:
//!
//! * [`opt`] — deliberately **weak, intraprocedural** optimizations of the
//!   class a stock compiler applies: constant folding, algebraic
//!   identities, constant branch folding, unreachable-code removal, and
//!   the shared local check eliminator. Figure 2's "gcc" bar is this
//!   module alone; the gap to the cXprop bars is the paper's point.
//! * [`layout`] — data placement: SRAM globals, flash-resident `const`
//!   data and string literals, `.data` initializer images (which cost
//!   flash *and* SRAM, like on a real AVR).
//! * [`gen`] — stack-machine code generation, including fat-pointer
//!   loads/stores, `Check` lowering to compare-and-[`Trap`] sequences
//!   tagged with FLIDs, and `atomic` lowering per
//!   [`tcil::ir::AtomicStyle`].
//!
//! The emitted image carries the host-side FLID table and, in the verbose
//! error modes, references the on-node message globals so their cost is
//! visible in the size metrics.
//!
//! [`Trap`]: mcu::isa::Instr::Trap
//!
//! # Example
//!
//! ```
//! use backend::{compile, BackendOptions};
//! use mcu::{Machine, Profile, RunState};
//!
//! let program = tcil::parse_and_lower(
//!     "uint16_t out;
//!      void main() { out = 6 * 7; }",
//! ).unwrap();
//! let image = compile(&program, Profile::mica2(), &BackendOptions::default()).unwrap();
//! let mut m = Machine::new(&image);
//! m.run(10_000);
//! assert_eq!(m.state, RunState::Halted);
//! ```

pub mod gen;
pub mod layout;
pub mod opt;

use mcu::{Image, Profile};
use tcil::{CompileError, Program};

/// Backend configuration.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    /// Apply the weak GCC-class optimizer before code generation.
    pub optimize: bool,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions { optimize: true }
    }
}

/// The backend stage proper: runs the weak, GCC-class optimizer over a
/// copy of `program` and returns the prepared program. Code generation
/// and data placement happen in [`link`]; splitting the two lets the
/// driver time them as separate pipeline stages.
pub fn prepare(program: &Program, options: &BackendOptions) -> Program {
    let mut program = program.clone();
    if options.optimize {
        opt::optimize(&mut program);
    }
    program
}

/// The link stage: lays out data, generates code, and emits the image
/// for `profile` from an already-[`prepare`]d program.
///
/// # Errors
///
/// Returns an error if the program has no `main` or on malformed IR.
/// Static data overflowing the profile's SRAM is *not* an error — the
/// paper's Figure 3(b) measures exactly such configurations — but the
/// image's `static_bytes` will exceed the profile's SRAM and running it
/// will fault.
pub fn link(program: &Program, profile: Profile) -> Result<Image, CompileError> {
    let layout = layout::layout(program, &profile)?;
    gen::generate(program, &layout, profile)
}

/// Compiles `program` to an M16 image for `profile` ([`prepare`]
/// followed by [`link`]).
///
/// # Errors
///
/// See [`link`].
pub fn compile(
    program: &Program,
    profile: Profile,
    options: &BackendOptions,
) -> Result<Image, CompileError> {
    link(&prepare(program, options), profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu::{Machine, RunState};

    fn run_src(src: &str, cycles: u64) -> (Machine, Image) {
        let program = tcil::parse_and_lower(src).unwrap();
        let image = compile(&program, Profile::mica2(), &BackendOptions::default()).unwrap();
        let mut m = Machine::new(&image);
        m.run(cycles);
        (m, image)
    }

    #[test]
    fn globals_and_arithmetic() {
        let (m, img) = run_src(
            "uint16_t a = 100;
             uint16_t b;
             void main() { b = (uint16_t)(a * 3 + 7); }",
            10_000,
        );
        assert_eq!(m.state, RunState::Halted);
        let b_addr = img.find_global_addr("b").unwrap();
        assert_eq!(m.ram_peek16(b_addr), 307);
    }

    #[test]
    fn loops_and_arrays() {
        let (m, img) = run_src(
            "uint8_t buf[10];
             uint16_t sum;
             void main() {
                 uint8_t i;
                 for (i = 0; i < 10; i++) { buf[i] = i; }
                 for (i = 0; i < 10; i++) { sum += buf[i]; }
             }",
            100_000,
        );
        assert_eq!(m.state, RunState::Halted, "fault: {:?}", m.fault);
        let sum_addr = img.find_global_addr("sum").unwrap();
        assert_eq!(m.ram_peek16(sum_addr), 45);
    }

    #[test]
    fn struct_copies_and_pointers() {
        let (m, img) = run_src(
            "struct msg { uint8_t len; uint16_t body; };
             struct msg a;
             struct msg b;
             uint16_t out;
             void fill(struct msg * m) { m->len = 3; m->body = 999; }
             void main() { fill(&a); b = a; out = b.body; }",
            100_000,
        );
        assert_eq!(m.state, RunState::Halted, "fault: {:?}", m.fault);
        let out = img.find_global_addr("out").unwrap();
        assert_eq!(m.ram_peek16(out), 999);
    }

    #[test]
    fn signed_arithmetic() {
        let (m, img) = run_src(
            "int16_t out;
             void main() { int16_t a; a = -5; out = (int16_t)(a / 2); }",
            10_000,
        );
        assert_eq!(m.state, RunState::Halted);
        let out = img.find_global_addr("out").unwrap();
        assert_eq!(m.ram_peek16(out) as i16, -2);
    }

    #[test]
    fn const_data_lives_in_flash() {
        let (m, img) = run_src(
            "const uint16_t tab[3] = {10, 20, 30};
             uint16_t out;
             void main() { out = tab[2]; }",
            10_000,
        );
        assert_eq!(m.state, RunState::Halted, "fault: {:?}", m.fault);
        let out = img.find_global_addr("out").unwrap();
        assert_eq!(m.ram_peek16(out), 30);
        let tab = img.find_global_addr("tab").unwrap();
        assert!(tab >= 0x8000, "const table placed in the flash window");
    }
}
