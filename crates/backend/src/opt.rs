//! The weak, GCC-class optimizer.
//!
//! Everything here is intraprocedural and syntactic — deliberately so.
//! The paper's Figure 2 "gcc" bar shows that a stock compiler removes a
//! surprising number of "easy" checks but plateaus far below the
//! whole-program cXprop stack; this module is calibrated to that tier:
//!
//! * constant folding (with `sizeof` resolution — layout is final here),
//! * algebraic identities (`x+0`, `x*1`, ...),
//! * constant-condition branch folding and `while(0)` removal,
//! * unreachable-code removal after `return`/`break`/`continue`,
//! * the shared local check eliminator ([`tcil::checkopt`]).
//!
//! No inlining, no interprocedural constants, no pointer analysis — those
//! are cXprop's whole-program powers.

use tcil::fold::{const_truth, fold_expr, simplify_identities};
use tcil::ir::*;
use tcil::visit;
use tcil::Program;

/// Runs the weak optimizer to a fixpoint (bounded).
pub fn optimize(program: &mut Program) {
    for _ in 0..4 {
        let mut changed = false;
        let structs = program.structs.clone();
        for f in &mut program.functions {
            visit::walk_stmts_mut(&mut f.body, &mut |s| {
                visit::stmt_exprs_mut(s, &mut |e| {
                    changed |= fold_expr(e, &structs, true);
                    changed |= simplify_identities(e);
                });
            });
            changed |= fold_branches(&mut f.body);
            changed |= drop_unreachable(&mut f.body);
            visit::sweep_nops(&mut f.body);
        }
        let removed = tcil::checkopt::remove_local_checks(program);
        changed |= removed > 0;
        if !changed {
            break;
        }
    }
}

/// Replaces `if (const)` with the taken branch and removes `while (0)`.
fn fold_branches(block: &mut Block) -> bool {
    let mut changed = false;
    for s in block.iter_mut() {
        match s {
            Stmt::If { cond, then_, else_ } => {
                changed |= fold_branches(then_);
                changed |= fold_branches(else_);
                if let Some(t) = const_truth(cond) {
                    let taken = if t {
                        std::mem::take(then_)
                    } else {
                        std::mem::take(else_)
                    };
                    *s = Stmt::Block(taken);
                    changed = true;
                }
            }
            Stmt::While { cond, body } => {
                changed |= fold_branches(body);
                if const_truth(cond) == Some(false) {
                    *s = Stmt::Nop;
                    changed = true;
                }
            }
            Stmt::Atomic { body, .. } | Stmt::Block(body) => {
                changed |= fold_branches(body);
            }
            _ => {}
        }
    }
    changed
}

/// Removes statements after an unconditional control transfer.
fn drop_unreachable(block: &mut Block) -> bool {
    let mut changed = false;
    let mut cut = None;
    for (i, s) in block.iter_mut().enumerate() {
        match s {
            Stmt::If { then_, else_, .. } => {
                changed |= drop_unreachable(then_);
                changed |= drop_unreachable(else_);
            }
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } | Stmt::Block(body) => {
                changed |= drop_unreachable(body);
            }
            Stmt::Return(_) | Stmt::Break | Stmt::Continue => {
                if i + 1 < usize::MAX {
                    cut = Some(i + 1);
                }
                break;
            }
            _ => {}
        }
    }
    if let Some(c) = cut {
        if c < block.len() {
            block.truncate(c);
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_constant_branches() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g; void main() { if (1) { g = 1; } else { g = 2; } while (0) { g = 3; } }",
        )
        .unwrap();
        optimize(&mut p);
        let body = &p.functions[0].body;
        // No If or While remains.
        let mut ifs = 0;
        visit::walk_stmts(body, &mut |s| {
            if matches!(s, Stmt::If { .. } | Stmt::While { .. }) {
                ifs += 1;
            }
        });
        assert_eq!(ifs, 0);
    }

    #[test]
    fn removes_unreachable_tail() {
        let mut p =
            tcil::parse_and_lower("uint8_t g; void f() { return; g = 1; } void main() {}").unwrap();
        optimize(&mut p);
        let body = &p.functions[0].body;
        assert_eq!(body.len(), 1);
        assert!(matches!(body[0], Stmt::Return(None)));
    }

    #[test]
    fn folds_sizeof_now_that_layout_is_final() {
        let mut p =
            tcil::parse_and_lower("uint16_t g; void main() { g = sizeof(uint32_t); }").unwrap();
        optimize(&mut p);
        let Stmt::Assign(_, e) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(e.as_const(), Some(4));
    }
}
