//! End-to-end execution tests for cured (safety-checked) programs:
//! nesC-lite/TCL source → CCured instrumentation → backend → M16.
//!
//! These pin the core soundness property of the reproduction: curing
//! must not change the observable behaviour of correct programs, and
//! must convert memory-safety violations into FLID-tagged traps instead
//! of silent corruption.

use backend::{compile, BackendOptions};
use ccured::{cure, CureOptions};
use mcu::{Fault, Machine, Profile, RunState};

fn build(src: &str, cured: bool) -> (Machine, mcu::Image) {
    let mut program = tcil::parse_and_lower(src).unwrap();
    if cured {
        cure(&mut program, &CureOptions::default()).unwrap();
    }
    let image = compile(&program, Profile::mica2(), &BackendOptions::default()).unwrap();
    let m = Machine::new(&image);
    (m, image)
}

fn run(src: &str, cured: bool, cycles: u64) -> (Machine, mcu::Image) {
    let (mut m, img) = build(src, cured);
    m.run(cycles);
    (m, img)
}

const SUM_PROGRAM: &str = "
    uint8_t buf[8];
    uint16_t sum;
    uint16_t total(uint8_t * p, uint8_t n) {
        uint16_t s;
        uint8_t i;
        s = 0;
        for (i = 0; i < n; i++) { s += p[i]; }
        return s;
    }
    void main() {
        uint8_t i;
        for (i = 0; i < 8; i++) { buf[i] = (uint8_t)(i * 2); }
        sum = total(buf, 8);
    }
";

#[test]
fn cured_program_computes_same_result() {
    let (mu, iu) = run(SUM_PROGRAM, false, 1_000_000);
    let (mc, ic) = run(SUM_PROGRAM, true, 1_000_000);
    assert_eq!(mu.state, RunState::Halted, "unsafe fault: {:?}", mu.fault);
    assert_eq!(
        mc.state,
        RunState::Halted,
        "cured fault: {:?}",
        mc.fault_message()
    );
    let a = iu.find_global_addr("sum").unwrap();
    let b = ic.find_global_addr("sum").unwrap();
    assert_eq!(mu.ram_peek16(a), 56);
    assert_eq!(mc.ram_peek16(b), 56);
}

#[test]
fn cured_program_costs_more_code_and_data() {
    let (_, iu) = build(SUM_PROGRAM, false);
    let (_, ic) = build(SUM_PROGRAM, true);
    assert!(ic.code_bytes() > iu.code_bytes(), "checks add code");
    assert!(ic.sram_bytes() >= iu.sram_bytes(), "fat pointers add data");
    assert!(ic.surviving_checks() > 0);
    assert_eq!(iu.surviving_checks(), 0);
}

#[test]
fn out_of_bounds_write_traps_in_cured_build() {
    let src = "
        uint8_t buf[4];
        uint8_t victim;
        void smash(uint8_t * p, uint8_t n) {
            uint8_t i;
            for (i = 0; i < n; i++) { p[i] = 0xAA; }
        }
        void main() { smash(buf, 200); }
    ";
    // Unsafe build: silently runs off the end of buf (no trap).
    let (mu, iu) = run(src, false, 1_000_000);
    assert_eq!(
        mu.state,
        RunState::Halted,
        "unsafe corrupts silently: {:?}",
        mu.fault
    );
    let victim = iu.find_global_addr("victim").unwrap();
    assert_eq!(
        mu.ram_peek(victim),
        0xAA,
        "silent corruption of the neighbour"
    );

    // Cured build: traps with a FLID the host can decode.
    let (mc, _) = run(src, true, 1_000_000);
    assert_eq!(mc.state, RunState::Faulted);
    assert!(matches!(mc.fault, Some(Fault::SafetyTrap(_))));
    let msg = mc.fault_message().unwrap();
    assert!(
        msg.contains("smash"),
        "FLID decodes to the faulting function: {msg}"
    );
}

#[test]
fn null_dereference_traps() {
    let src = "
        uint8_t g;
        uint8_t read(uint8_t * p) { return *p; }
        void main() { uint8_t * q; g = read(q); }
    ";
    let (mc, _) = run(src, true, 100_000);
    assert_eq!(mc.state, RunState::Faulted);
    assert!(matches!(mc.fault, Some(Fault::SafetyTrap(_))));
}

#[test]
fn backward_pointer_arithmetic_checked() {
    let src = "
        uint8_t buf[8];
        uint8_t g;
        void walk(uint8_t * p) {
            p = p - 1;
            g = *p;
        }
        void main() { walk(buf); }
    ";
    let (mc, _) = run(src, true, 100_000);
    assert_eq!(
        mc.state,
        RunState::Faulted,
        "walking before buf[0] must trap"
    );
}

#[test]
fn in_bounds_backward_arithmetic_allowed() {
    let src = "
        uint8_t buf[8];
        uint8_t g;
        void walk(uint8_t * p) {
            p = p + 4;
            p = p - 2;
            g = *p;
        }
        void main() { buf[2] = 77; walk(buf); }
    ";
    let (mc, img) = run(src, true, 100_000);
    assert_eq!(
        mc.state,
        RunState::Halted,
        "fault: {:?}",
        mc.fault_message()
    );
    let g = img.find_global_addr("g").unwrap();
    assert_eq!(mc.ram_peek(g), 77);
}

#[test]
fn struct_pointers_work_cured() {
    let src = "
        struct msg { uint8_t len; uint16_t body; };
        struct msg m;
        uint16_t out;
        void fill(struct msg * p) { p->len = 9; p->body = 1234; }
        void main() { fill(&m); out = m.body; }
    ";
    let (mc, img) = run(src, true, 100_000);
    assert_eq!(
        mc.state,
        RunState::Halted,
        "fault: {:?}",
        mc.fault_message()
    );
    let out = img.find_global_addr("out").unwrap();
    assert_eq!(mc.ram_peek16(out), 1234);
}

#[test]
fn verbose_mode_bloats_ram_flid_does_not() {
    let mut base = tcil::parse_and_lower(SUM_PROGRAM).unwrap();
    let mut verbose = base.clone();
    cure(
        &mut base,
        &CureOptions {
            error_mode: ccured::ErrorMode::Flid,
            ..Default::default()
        },
    )
    .unwrap();
    cure(
        &mut verbose,
        &CureOptions {
            error_mode: ccured::ErrorMode::VerboseRam,
            ..Default::default()
        },
    )
    .unwrap();
    let flid = compile(&base, Profile::mica2(), &BackendOptions::default()).unwrap();
    let verb = compile(&verbose, Profile::mica2(), &BackendOptions::default()).unwrap();
    assert!(
        verb.sram_bytes() > flid.sram_bytes(),
        "verbose strings cost SRAM"
    );
    assert!(verb.flash_bytes() > flid.flash_bytes(), "and flash");
}
