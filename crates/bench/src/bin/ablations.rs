//! §2.1 ablations: the paper's specific claims about individual passes.
//!
//! * source-level inlining before the backend beats backend-only builds,
//! * strong DCE is worth a few percent of code size,
//! * copy propagation feeds precision,
//! * atomic-section optimization removes/demotes sections.

use std::time::Instant;

use bench::{emit_json, json, pct_change, ExperimentRunner, GridJob};
use cxprop::{CxpropOptions, CxpropStats};
use safe_tinyos::{BuildConfig, Stage, StageTimes};

/// One ablation arm of the grid.
#[derive(Clone, Copy)]
enum Variant {
    /// The full safe stack (inliner + cXprop).
    Full,
    /// The safe stack without the inliner.
    NoInline,
    /// cXprop with DCE disabled (custom pipeline).
    NoDce,
    /// cXprop under one abstract domain (custom pipeline).
    Domain(cxprop::DomainKind),
}

/// What one ablation cell measured.
struct Cell {
    code_bytes: u64,
    cxprop: Option<CxpropStats>,
    checks_inserted: usize,
    checks_surviving: usize,
}

/// Runs the cached frontend artifact through cure + a custom cXprop
/// configuration + the stock backend, timing each stage.
fn custom_pipeline(job: &GridJob<'_, Variant>, cxprop_opts: &CxpropOptions) -> Cell {
    let mut program = job.frontend();
    let mut times = StageTimes::default();
    let start = Instant::now();
    let cure = ccured::cure(&mut program, &ccured::CureOptions::default())
        .unwrap_or_else(|e| panic!("{}: cure: {e}", job.spec.name));
    times.record(Stage::Cure, start.elapsed());
    let start = Instant::now();
    let cx = cxprop::optimize(&mut program, cxprop_opts);
    ccured::errmsg::prune_unused_messages(&mut program);
    times.record(Stage::Opt, start.elapsed());
    let start = Instant::now();
    let prepared = backend::prepare(&program, &backend::BackendOptions::default());
    times.record(Stage::Backend, start.elapsed());
    let start = Instant::now();
    let image = backend::link(&prepared, job.spec.platform.clone())
        .unwrap_or_else(|e| panic!("{}: link: {e}", job.spec.name));
    times.record(Stage::Link, start.elapsed());
    job.record(&times);
    Cell {
        code_bytes: image.code_bytes() as u64,
        cxprop: Some(cx),
        checks_inserted: cure.checks_inserted,
        checks_surviving: image.surviving_checks(),
    }
}

fn build_cell(job: &GridJob<'_, Variant>, config: &BuildConfig) -> Cell {
    let b = job.build(config);
    Cell {
        code_bytes: b.metrics.code_bytes as u64,
        cxprop: b.metrics.cxprop,
        checks_inserted: b.metrics.checks_inserted,
        checks_surviving: b.metrics.checks_surviving,
    }
}

fn main() {
    let runner = ExperimentRunner::from_env();
    let variants = [
        Variant::Full,
        Variant::NoInline,
        Variant::NoDce,
        Variant::Domain(cxprop::DomainKind::Constants),
        Variant::Domain(cxprop::DomainKind::Intervals),
    ];
    let grid = runner.run_grid(tosapps::APP_NAMES, &variants, |job| match *job.item {
        Variant::Full => build_cell(job, &BuildConfig::safe_flid_inline_cxprop()),
        Variant::NoInline => build_cell(job, &BuildConfig::safe_flid_cxprop()),
        Variant::NoDce => custom_pipeline(
            job,
            &CxpropOptions {
                dce: false,
                ..CxpropOptions::default()
            },
        ),
        Variant::Domain(domain) => custom_pipeline(
            job,
            &CxpropOptions {
                domain,
                ..CxpropOptions::default()
            },
        ),
    });

    println!("§2.1 ablations (totals over all twelve applications)\n");

    // --- inlining before the backend (≈5% smaller, per the paper) ---
    let mut with_inline = 0u64;
    let mut without_inline = 0u64;
    // --- strong DCE worth 3–5% ---
    let mut with_dce = 0u64;
    let mut without_dce = 0u64;
    let mut atomics_removed = 0usize;
    let mut atomics_demoted = 0usize;
    let mut copies = 0usize;
    for row in &grid {
        let full = &row[0];
        with_inline += full.code_bytes;
        with_dce += full.code_bytes;
        if let Some(cx) = &full.cxprop {
            atomics_removed += cx.atomics.removed;
            atomics_demoted += cx.atomics.demoted;
            copies += cx.copies_propagated;
        }
        without_inline += row[1].code_bytes;
        without_dce += row[2].code_bytes;
    }

    println!(
        "inlining before the backend:   {:+.1}% code vs. cXprop-without-inliner (paper: ≈-5%)",
        pct_change(without_inline, with_inline)
    );
    println!(
        "strong whole-program DCE:      {:+.1}% code vs. cXprop-without-DCE (paper: -3..-5%)",
        pct_change(without_dce, with_dce)
    );
    println!("atomic sections removed:       {atomics_removed}");
    println!("atomic sections demoted:       {atomics_demoted} (no IRQ-bit save needed)");
    println!("copies propagated:             {copies}");

    // Domain ablation: pluggable abstract domains.
    println!("\npluggable-domain ablation (surviving checks, all apps):");
    let mut domain_obj = json::Obj::new();
    let mut domain_inserted = 0usize;
    for (label, column) in [("constants", 3usize), ("intervals", 4usize)] {
        let mut surviving = 0usize;
        let mut inserted = 0usize;
        for row in &grid {
            inserted += row[column].checks_inserted;
            surviving += row[column].checks_surviving;
        }
        println!("  {label:<12} {surviving:>5} of {inserted} survive");
        domain_obj = domain_obj.int(label, surviving as i64);
        domain_inserted = inserted;
    }

    let body = json::Obj::new()
        .str("figure", "ablations")
        .num(
            "inline_code_delta_pct",
            pct_change(without_inline, with_inline),
        )
        .num("dce_code_delta_pct", pct_change(without_dce, with_dce))
        .int("atomics_removed", atomics_removed as i64)
        .int("atomics_demoted", atomics_demoted as i64)
        .int("copies_propagated", copies as i64)
        .int("checks_inserted", domain_inserted as i64)
        .raw("domain_surviving_checks", &domain_obj.build())
        .build();
    emit_json("ablations", &body).expect("write BENCH_ablations.json");
    runner.emit_speed("ablations");
}
