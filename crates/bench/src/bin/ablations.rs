//! §2.1 ablations: the paper's specific claims about individual passes.
//!
//! * source-level inlining before the backend beats backend-only builds,
//! * strong DCE is worth a few percent of code size,
//! * copy propagation feeds precision,
//! * atomic-section optimization removes/demotes sections.
//!
//! Each ablation arm is just a [`Pipeline`] — the composite
//! `cxprop(inline,...)` pass with one knob turned — so the whole grid
//! goes through [`ExperimentRunner`] like every other figure.

use bench::{emit_json, json, pct_change, ExperimentRunner};
use cxprop::CxpropOptions;
use safe_tinyos::{Metrics, Pipeline};

/// An ablation arm: the full safe stack with `options` swapped into the
/// composite cXprop pass (which runs the inliner inside the fixpoint,
/// like the paper's tool).
fn ablated(name: &str, options: CxpropOptions) -> Pipeline {
    Pipeline::builder(name)
        .cure()
        .cxprop_with(options)
        .prune()
        .build()
}

fn main() {
    let runner = ExperimentRunner::from_env();
    let variants = [
        Pipeline::safe_flid_inline_cxprop(),
        Pipeline::safe_flid_cxprop(),
        ablated(
            "no-dce",
            CxpropOptions {
                dce: false,
                ..CxpropOptions::default()
            },
        ),
        ablated(
            "domain-constants",
            CxpropOptions {
                domain: cxprop::DomainKind::Constants,
                ..CxpropOptions::default()
            },
        ),
        ablated(
            "domain-intervals",
            CxpropOptions {
                domain: cxprop::DomainKind::Intervals,
                ..CxpropOptions::default()
            },
        ),
    ];
    let grid: Vec<Vec<Metrics>> = runner.metrics_grid(tosapps::APP_NAMES, &variants);

    println!("§2.1 ablations (totals over all twelve applications)\n");

    // --- inlining before the backend (≈5% smaller, per the paper) ---
    let mut with_inline = 0u64;
    let mut without_inline = 0u64;
    // --- strong DCE worth 3–5% ---
    let mut with_dce = 0u64;
    let mut without_dce = 0u64;
    let mut atomics_removed = 0usize;
    let mut atomics_demoted = 0usize;
    let mut copies = 0usize;
    for row in &grid {
        let full = &row[0];
        with_inline += full.code_bytes as u64;
        with_dce += full.code_bytes as u64;
        if let Some(cx) = &full.cxprop {
            atomics_removed += cx.atomics.removed;
            atomics_demoted += cx.atomics.demoted;
            copies += cx.copies_propagated;
        }
        without_inline += row[1].code_bytes as u64;
        without_dce += row[2].code_bytes as u64;
    }

    println!(
        "inlining before the backend:   {:+.1}% code vs. cXprop-without-inliner (paper: ≈-5%)",
        pct_change(without_inline, with_inline)
    );
    println!(
        "strong whole-program DCE:      {:+.1}% code vs. cXprop-without-DCE (paper: -3..-5%)",
        pct_change(without_dce, with_dce)
    );
    println!("atomic sections removed:       {atomics_removed}");
    println!("atomic sections demoted:       {atomics_demoted} (no IRQ-bit save needed)");
    println!("copies propagated:             {copies}");

    // Domain ablation: pluggable abstract domains.
    println!("\npluggable-domain ablation (surviving checks, all apps):");
    let mut domain_obj = json::Obj::new();
    let mut domain_inserted = 0usize;
    for (label, column) in [("constants", 3usize), ("intervals", 4usize)] {
        let mut surviving = 0usize;
        let mut inserted = 0usize;
        for row in &grid {
            inserted += row[column].checks_inserted;
            surviving += row[column].checks_surviving;
        }
        println!("  {label:<12} {surviving:>5} of {inserted} survive");
        domain_obj = domain_obj.int(label, surviving as i64);
        domain_inserted = inserted;
    }

    let body = json::Obj::new()
        .str("figure", "ablations")
        .num(
            "inline_code_delta_pct",
            pct_change(without_inline, with_inline),
        )
        .num("dce_code_delta_pct", pct_change(without_dce, with_dce))
        .int("atomics_removed", atomics_removed as i64)
        .int("atomics_demoted", atomics_demoted as i64)
        .int("copies_propagated", copies as i64)
        .int("checks_inserted", domain_inserted as i64)
        .raw("domain_surviving_checks", &domain_obj.build())
        .build();
    emit_json("ablations", &body).expect("write BENCH_ablations.json");
    runner.emit_speed("ablations");
}
