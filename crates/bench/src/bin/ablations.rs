//! §2.1 ablations: the paper's specific claims about individual passes.
//!
//! * source-level inlining before the backend beats backend-only builds,
//! * strong DCE is worth a few percent of code size,
//! * copy propagation feeds precision,
//! * atomic-section optimization removes/demotes sections.

use bench::{emit_json, json, must_build, pct_change};
use cxprop::CxpropOptions;
use safe_tinyos::BuildConfig;

fn main() {
    println!("§2.1 ablations (totals over all twelve applications)\n");

    // --- inlining before the backend (≈5% smaller, per the paper) ---
    let mut with_inline = 0u64;
    let mut without_inline = 0u64;
    // --- strong DCE worth 3–5% ---
    let mut with_dce = 0u64;
    let mut without_dce = 0u64;
    let mut atomics_removed = 0usize;
    let mut atomics_demoted = 0usize;
    let mut copies = 0usize;

    for name in tosapps::APP_NAMES {
        let spec = tosapps::spec(name).unwrap();
        let full = must_build(&spec, &BuildConfig::safe_flid_inline_cxprop());
        with_inline += full.metrics.code_bytes as u64;
        with_dce += full.metrics.code_bytes as u64;
        if let Some(cx) = &full.metrics.cxprop {
            atomics_removed += cx.atomics.removed;
            atomics_demoted += cx.atomics.demoted;
            copies += cx.copies_propagated;
        }

        // No inliner.
        let no_inline = must_build(&spec, &BuildConfig::safe_flid_cxprop());
        without_inline += no_inline.metrics.code_bytes as u64;

        // cXprop with DCE disabled.
        let out = nesc::compile(&tosapps::source_set(), spec.config).unwrap();
        let mut program = out.program;
        ccured::cure(&mut program, &ccured::CureOptions::default()).unwrap();
        cxprop::optimize(
            &mut program,
            &CxpropOptions {
                dce: false,
                ..CxpropOptions::default()
            },
        );
        ccured::errmsg::prune_unused_messages(&mut program);
        let image = backend::compile(
            &program,
            spec.platform.clone(),
            &backend::BackendOptions::default(),
        )
        .unwrap();
        without_dce += image.code_bytes() as u64;
    }

    println!(
        "inlining before the backend:   {:+.1}% code vs. cXprop-without-inliner (paper: ≈-5%)",
        pct_change(without_inline, with_inline)
    );
    println!(
        "strong whole-program DCE:      {:+.1}% code vs. cXprop-without-DCE (paper: -3..-5%)",
        pct_change(without_dce, with_dce)
    );
    println!("atomic sections removed:       {atomics_removed}");
    println!("atomic sections demoted:       {atomics_demoted} (no IRQ-bit save needed)");
    println!("copies propagated:             {copies}");

    // Domain ablation: pluggable abstract domains.
    println!("\npluggable-domain ablation (surviving checks, all apps):");
    let mut domain_obj = json::Obj::new();
    let mut domain_inserted = 0usize;
    for (label, domain) in [
        ("constants", cxprop::DomainKind::Constants),
        ("intervals", cxprop::DomainKind::Intervals),
    ] {
        let mut surviving = 0usize;
        let mut inserted = 0usize;
        for name in tosapps::APP_NAMES {
            let spec = tosapps::spec(name).unwrap();
            let out = nesc::compile(&tosapps::source_set(), spec.config).unwrap();
            let mut program = out.program;
            let stats = ccured::cure(&mut program, &ccured::CureOptions::default()).unwrap();
            inserted += stats.checks_inserted;
            cxprop::optimize(
                &mut program,
                &CxpropOptions {
                    domain,
                    ..CxpropOptions::default()
                },
            );
            ccured::errmsg::prune_unused_messages(&mut program);
            let image = backend::compile(
                &program,
                spec.platform.clone(),
                &backend::BackendOptions::default(),
            )
            .unwrap();
            surviving += image.surviving_checks();
        }
        println!("  {label:<12} {surviving:>5} of {inserted} survive");
        domain_obj = domain_obj.int(label, surviving as i64);
        domain_inserted = inserted;
    }

    let body = json::Obj::new()
        .str("figure", "ablations")
        .num(
            "inline_code_delta_pct",
            pct_change(without_inline, with_inline),
        )
        .num("dce_code_delta_pct", pct_change(without_dce, with_dce))
        .int("atomics_removed", atomics_removed as i64)
        .int("atomics_demoted", atomics_demoted as i64)
        .int("copies_propagated", copies as i64)
        .int("checks_inserted", domain_inserted as i64)
        .raw("domain_surviving_checks", &domain_obj.build())
        .build();
    emit_json("ablations", &body).expect("write BENCH_ablations.json");
}
