//! CI's pass-cache effectiveness gate: `cache_gate <speed.json>...`
//! checks each published `BENCH_toolchain_speed.json` in turn and exits
//! non-zero when any of them shows the cure pass executing more often
//! than its distinct (app, cure spec) inputs demand, or a warm re-run
//! of the fig3 grid that is not at least 3× faster than the cold one.
//! Run over both the committed baseline and the fresh artifact so the
//! invariant holds in the bytes people read, not just the latest run.

use bench::gate;

/// The warm grid must beat the cold grid by at least this factor; the
/// acceptance bar for content-addressed pass caching on the fig3 grid.
const WARM_FACTOR: f64 = 3.0;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: cache_gate <BENCH_toolchain_speed.json>...");
        std::process::exit(2);
    }
    for path in &paths {
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cache_gate: {path}: {e}");
            std::process::exit(2);
        });
        match gate::cache_check(&body, WARM_FACTOR) {
            Ok(out) => println!(
                "cache gate ok: {path}: cure ran {}x for {} distinct inputs, \
                 warm wall {:.1}ms vs cold {:.1}ms",
                out.cure_runs, out.cure_unique, out.warm_wall_ms, out.wall_ms
            ),
            Err(msg) => {
                eprintln!("cache_gate: {path}: {msg}");
                std::process::exit(1);
            }
        }
    }
}
