//! The differential-execution miscompilation hunter.
//!
//! Subjects: `STOS_DIFF_SEEDS` generated TCL programs (seeds
//! `STOS_DIFF_BASE..+N`, SplitMix64-deterministic) plus every Mica2
//! benchmark app. Each subject runs through the full preset registry
//! (or `STOS_PIPELINE`) and through the reference `cure`-only pipeline;
//! observable behavior — UART/radio/LED traces, fault category, by-name
//! RAM snapshots, and fault-injected FLID outcomes — is compared and
//! every divergence classified as Miscompile / CheckStrengthReduction /
//! Benign. Emits `BENCH_difftest.json`.
//!
//! Self-gating invariants: **zero Miscompile verdicts**,
//! unconditionally — an optimizer stack that changes a clean run's
//! observable behavior is broken no matter what was being swept — and,
//! on the default preset grid, **zero CheckStrengthReduction for cured
//! presets**: with fault-hardened check elimination, an optimized cured
//! build detects every injected fault the reference detects. (Uncured
//! presets lose detection by design; `cxprop(noharden)` sweeps lose it
//! measurably — that collapse is the experiment.)

use bench::diff::{
    app_reports, cured_strength_reductions, default_presets, print_table, render_json,
    seed_reports, tally, total_miscompiles,
};
use bench::{emit_json, ExperimentRunner, Knobs};
use safe_tinyos::{pipelines_from_env_or, DiffConfig};

fn main() {
    let runner = ExperimentRunner::from_env();
    let default_grid = std::env::var("STOS_PIPELINE").is_err();
    let presets = pipelines_from_env_or(default_presets);
    let cfg = DiffConfig::default();
    let knobs = Knobs::from_env();
    let seconds = knobs.sim_seconds;
    let seeds: Vec<u64> = (0..knobs.diff_seeds).map(|i| knobs.diff_base + i).collect();
    let apps = tosapps::mica2_apps();

    println!(
        "Differential oracle — {} seeds (base {}), {} apps, {} presets vs cure-only reference",
        seeds.len(),
        knobs.diff_base,
        apps.len(),
        presets.len()
    );

    let mut reports = seed_reports(&runner, &seeds, &presets, &cfg);
    reports.extend(app_reports(&runner, &apps, &presets, seconds, &cfg));
    let tallies = tally(&presets, &reports);

    print_table(&tallies);
    let body = render_json(&seeds, &apps, &presets, &cfg, seconds, &tallies);
    emit_json("difftest", &body).expect("write BENCH_difftest.json");
    runner.emit_speed("difftest");

    let miscompiles = total_miscompiles(&tallies);
    for t in &tallies {
        for d in &t.divergences {
            let phase = match d.phase {
                safe_tinyos::difftest::DiffPhase::Golden => "golden".to_string(),
                safe_tinyos::difftest::DiffPhase::Injected => format!("site {}", d.site),
            };
            println!(
                "  [{}] {} / {} {}: {}",
                d.verdict.key(),
                d.subject,
                t.preset,
                phase,
                d.detail
            );
        }
    }
    assert_eq!(
        miscompiles, 0,
        "differential oracle found {miscompiles} miscompile verdict(s) — see above"
    );
    if default_grid {
        let csr = cured_strength_reductions(&presets, &tallies);
        assert_eq!(
            csr, 0,
            "cured presets lost {csr} detection(s) the reference makes — \
             check elimination is dropping fault coverage"
        );
    }
    println!();
    println!("Zero miscompiles: every preset is observably equivalent to the");
    println!("cure-only reference on clean runs, and cured presets keep full");
    println!("detection parity under injected faults (hardened elimination).");
}
