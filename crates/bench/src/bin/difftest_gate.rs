//! CI's differential-oracle gate: `difftest_gate <BENCH_difftest.json>`
//! exits non-zero when the published report contains any Miscompile
//! verdict, or any CheckStrengthReduction verdict for a cured preset.

use bench::gate;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: difftest_gate <BENCH_difftest.json>");
        std::process::exit(2);
    };
    let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("difftest_gate: {path}: {e}");
        std::process::exit(2);
    });
    match gate::difftest_check(&body) {
        Ok(_) => println!("difftest gate ok: zero miscompiles, full cured detection parity"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
