//! The fault-injection campaign: injected-corruption detection rates per
//! pipeline — the paper's §2 claim ("cured programs trap where uncured
//! ones silently corrupt") measured the way runtime-integrity surveys
//! evaluate, as a campaign over deterministic corruption sites.
//!
//! Grid: every Mica2 app × {uncured gcc, the interval- and
//! constants-domain cured stacks, the `noharden` collapse exhibit} ×
//! `STOS_FAULTS` injection sites, each site a seeded corruption (index
//! cells, RAM bit flips, wild pointer words, frame-pointer upsets)
//! applied mid-run and triaged against a golden run. Emits
//! `BENCH_fault_injection.json` and asserts the headline results: every
//! cured pipeline with hardened check elimination detects strictly more
//! injected faults than uncured `gcc` (the interval-domain stacks
//! included — the check-elimination fix this grid once pinned as
//! missing), every detection decodes through the host-side FLID table,
//! and the classical-policy `noharden` stack detects exactly zero.

use bench::fault::{
    campaign_grid, default_pipelines, detection_totals, print_table, render_json, NOHARDEN_STACK,
};
use bench::{emit_json, ExperimentRunner, Knobs};
use safe_tinyos::{pipelines_from_env_or, CampaignConfig};

fn main() {
    let runner = ExperimentRunner::from_env();
    let default_grid = std::env::var("STOS_PIPELINE").is_err();
    let pipelines = pipelines_from_env_or(default_pipelines);
    let knobs = Knobs::from_env();
    let config = CampaignConfig {
        seconds: knobs.sim_seconds,
        sites: knobs.fault_sites,
        ..CampaignConfig::default()
    };
    let apps = tosapps::mica2_apps();
    let grid = campaign_grid(&runner, &apps, &pipelines, &config);

    println!(
        "Fault injection — detection rates over {} sites/cell, {}s simulated",
        config.sites, config.seconds
    );
    print_table(&apps, &pipelines, &grid);
    let body = render_json(&apps, &pipelines, &config, &grid);
    emit_json("fault_injection", &body).expect("write BENCH_fault_injection.json");
    runner.emit_speed("fault_injection");

    // Self-gating invariants (default grid only — STOS_PIPELINE sweeps
    // may legitimately include arbitrary stacks).
    if default_grid {
        let totals = detection_totals(&grid);
        let gcc = totals[0];
        assert_eq!(gcc, 0, "the uncured image has no checks to trap with");
        for (pipeline, detected) in pipelines.iter().zip(&totals).skip(1) {
            if pipeline.name() == NOHARDEN_STACK {
                // The pinned experiment: classical interval-domain check
                // elimination deletes the checks that provide coverage.
                assert_eq!(
                    *detected,
                    0,
                    "{} detected {detected} faults — the documented collapse \
                     should hold under the classical policy",
                    pipeline.name()
                );
                continue;
            }
            assert!(
                *detected > gcc,
                "{} detected {detected} faults, not strictly more than gcc's {gcc}",
                pipeline.name()
            );
        }
    }
    println!();
    println!("Expected shape (paper §2): the uncured gcc build never detects —");
    println!("corruption is silent or a raw crash. Cured stacks trap the same");
    println!("injections with FLIDs the host decodes to file:line diagnoses.");
    println!("The noharden stack shows what classical check elimination costs.");
}
