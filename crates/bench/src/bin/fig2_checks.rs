//! Figure 2: percentage of CCured-inserted checks eliminated by four
//! optimizer stacks, per application, plus the original check counts.

use bench::{emit_json, json, row, ExperimentRunner};
use safe_tinyos::{pipelines_from_env_or, Pipeline};

fn main() {
    let runner = ExperimentRunner::from_env();
    // The four paper stacks by default; STOS_PIPELINE sweeps any other
    // composition through the same harness.
    let stacks = pipelines_from_env_or(Pipeline::fig2_stacks);
    let grid = runner.metrics_grid(tosapps::APP_NAMES, &stacks);
    let labels: Vec<String> = stacks.iter().map(|c| c.name().to_string()).collect();
    println!("Figure 2 — checks removed by optimizer stack (higher is better)");
    println!(
        "{}",
        row("app", &[labels, vec!["inserted".into()]].concat())
    );
    let mut totals = vec![0usize; stacks.len()];
    let mut total_inserted = 0usize;
    let mut app_rows = Vec::new();
    for (name, builds) in tosapps::APP_NAMES.iter().zip(&grid) {
        let mut cells = Vec::new();
        let mut inserted = 0;
        let mut stack_obj = json::Obj::new();
        for (i, (config, metrics)) in stacks.iter().zip(builds).enumerate() {
            inserted = metrics.checks_inserted;
            let removed = inserted.saturating_sub(metrics.checks_surviving);
            totals[i] += removed;
            let pct = removed as f64 * 100.0 / inserted.max(1) as f64;
            cells.push(format!("{pct:.0}%"));
            stack_obj = stack_obj.num(config.name(), pct);
        }
        total_inserted += inserted;
        cells.push(format!("{inserted}"));
        println!("{}", row(name, &cells));
        app_rows.push(
            json::Obj::new()
                .str("app", name)
                .int("checks_inserted", inserted as i64)
                .raw("removed_pct", &stack_obj.build())
                .build(),
        );
    }
    let mut cells: Vec<String> = totals
        .iter()
        .map(|t| format!("{:.0}%", *t as f64 * 100.0 / total_inserted.max(1) as f64))
        .collect();
    cells.push(format!("{total_inserted}"));
    println!("{}", row("TOTAL", &cells));
    let mut total_obj = json::Obj::new().int("checks_inserted", total_inserted as i64);
    for (i, config) in stacks.iter().enumerate() {
        total_obj = total_obj.num(
            config.name(),
            totals[i] as f64 * 100.0 / total_inserted.max(1) as f64,
        );
    }
    let body = json::Obj::new()
        .str("figure", "fig2_checks")
        .raw("apps", &json::arr(app_rows))
        .raw("total", &total_obj.build())
        .build();
    emit_json("fig2_checks", &body).expect("write BENCH_fig2_checks.json");
    runner.emit_speed("fig2_checks");
    println!();
    println!("Expected shape (paper): gcc alone removes a surprising share of easy");
    println!("checks; the CCured optimizer adds little beyond it; cXprop without");
    println!("inlining is similar; cXprop WITH inlining is best by a significant");
    println!("margin and the only stack that removes most checks everywhere.");
}
