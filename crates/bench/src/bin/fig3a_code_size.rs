//! Figure 3(a): change in code size relative to the unsafe, unoptimized
//! baseline, across the seven configurations.
//!
//! The fig3 grid is also the canonical toolchain-speed benchmark: after
//! the cold grid is measured and emitted, the same grid runs a second
//! time against the warm frontend and pass caches, and the speed report
//! gains the `cache` section (warm wall/compile times plus the
//! cure-run census) that CI's `cache_gate` enforces from the published
//! bytes.

use std::collections::BTreeSet;

use bench::{emit_json, json, pct_change, row, ExperimentRunner, WarmCache};
use safe_tinyos::{pipelines_from_env_or, Metrics, Pipeline};

/// Renders the figure from a measured grid: the printable table rows
/// and the machine-readable body. Pure, so the warm re-run can be
/// byte-compared against the cold one.
fn render(bars: &[Pipeline], grid: &[Vec<Metrics>]) -> (Vec<String>, String) {
    let mut lines = Vec::new();
    let mut app_rows = Vec::new();
    for (name, builds) in tosapps::APP_NAMES.iter().zip(grid) {
        let base_bytes = builds[0].flash_bytes as u64;
        let mut cells = Vec::new();
        let mut bar_obj = json::Obj::new();
        for (config, metrics) in bars.iter().zip(&builds[1..]) {
            let pct = pct_change(base_bytes, metrics.flash_bytes as u64);
            cells.push(format!("{pct:+.0}%"));
            bar_obj = bar_obj.num(config.name(), pct);
        }
        cells.push(format!("{base_bytes}"));
        lines.push(row(name, &cells));
        app_rows.push(
            json::Obj::new()
                .str("app", name)
                .int("baseline_flash_bytes", base_bytes as i64)
                .raw("delta_pct", &bar_obj.build())
                .build(),
        );
    }
    let body = json::Obj::new()
        .str("figure", "fig3a_code_size")
        .raw("apps", &json::arr(app_rows))
        .build();
    (lines, body)
}

fn main() {
    let runner = ExperimentRunner::from_env();
    let bars = pipelines_from_env_or(Pipeline::fig3_bars);
    // Column 0 of the grid is the baseline every bar is compared to.
    let mut configs = vec![Pipeline::unsafe_baseline()];
    configs.extend(bars.iter().cloned());
    let grid = runner.metrics_grid(tosapps::APP_NAMES, &configs);
    let labels: Vec<String> = bars.iter().map(|c| c.name().to_string()).collect();
    println!("Figure 3(a) — Δ code size vs. unsafe baseline (flash bytes)");
    println!(
        "{}",
        row("app", &[labels, vec!["baseline".into()]].concat())
    );
    let (lines, body) = render(&bars, &grid);
    for line in &lines {
        println!("{line}");
    }
    emit_json("fig3a_code_size", &body).expect("write BENCH_fig3a_code_size.json");
    let mut report = runner.take_speed("fig3a_code_size");

    // Cache-effectiveness census on the cold window: the cure pass must
    // have executed once per distinct (app, cure spec) pair, not once
    // per grid cell.
    let cure_specs: BTreeSet<String> = configs
        .iter()
        .filter_map(|p| {
            p.spec()
                .split('|')
                .find(|seg| seg.starts_with("cure"))
                .map(str::to_string)
        })
        .collect();
    let cure_runs = report.cache.get("cure").misses;
    let cure_unique = (tosapps::APP_NAMES.len() * cure_specs.len()) as u64;
    assert_eq!(
        cure_runs, cure_unique,
        "cure executed {cure_runs} times for {cure_unique} distinct (app, spec) inputs"
    );

    // Warm window: the same grid against the now-warm caches must
    // reproduce the figure byte-for-byte without re-running any pass.
    let warm_grid = runner.metrics_grid(tosapps::APP_NAMES, &configs);
    let (_, warm_body) = render(&bars, &warm_grid);
    assert_eq!(warm_body, body, "warm-cache grid drifted from the cold one");
    let warm = runner.take_speed("fig3a_code_size");
    assert_eq!(
        warm.cache.get("cure").misses,
        cure_runs,
        "the warm grid re-executed the cure pass"
    );
    report.warm = Some(WarmCache {
        wall: warm.wall,
        compile: warm.compile_time(),
        cure_runs,
        cure_unique,
    });

    // The fig3 grid is the canonical toolchain-speed benchmark.
    emit_json("toolchain_speed_fig3a_code_size", &report.to_json())
        .expect("write BENCH_toolchain_speed_fig3a_code_size.json");
    emit_json("toolchain_speed", &report.to_json()).expect("write BENCH_toolchain_speed.json");
    println!();
    println!("Expected shape (paper): naive safety costs 20–90% code; verbose-in-ROM");
    println!("is higher still; terse/FLID recover much of it; cXprop (esp. with");
    println!("inlining) brings safe code near the unsafe baseline; cXprop applied to");
    println!("the *unsafe* app shrinks it 10–25% (the 'new baseline').");
}
