//! Figure 3(a): change in code size relative to the unsafe, unoptimized
//! baseline, across the seven configurations.

use bench::{emit_json, json, pct_change, row, ExperimentRunner};
use safe_tinyos::{pipelines_from_env_or, Pipeline};

fn main() {
    let runner = ExperimentRunner::from_env();
    let bars = pipelines_from_env_or(Pipeline::fig3_bars);
    // Column 0 of the grid is the baseline every bar is compared to.
    let mut configs = vec![Pipeline::unsafe_baseline()];
    configs.extend(bars.iter().cloned());
    let grid = runner.metrics_grid(tosapps::APP_NAMES, &configs);
    let labels: Vec<String> = bars.iter().map(|c| c.name().to_string()).collect();
    println!("Figure 3(a) — Δ code size vs. unsafe baseline (flash bytes)");
    println!(
        "{}",
        row("app", &[labels, vec!["baseline".into()]].concat())
    );
    let mut app_rows = Vec::new();
    for (name, builds) in tosapps::APP_NAMES.iter().zip(&grid) {
        let base_bytes = builds[0].flash_bytes as u64;
        let mut cells = Vec::new();
        let mut bar_obj = json::Obj::new();
        for (config, metrics) in bars.iter().zip(&builds[1..]) {
            let pct = pct_change(base_bytes, metrics.flash_bytes as u64);
            cells.push(format!("{pct:+.0}%"));
            bar_obj = bar_obj.num(config.name(), pct);
        }
        cells.push(format!("{base_bytes}"));
        println!("{}", row(name, &cells));
        app_rows.push(
            json::Obj::new()
                .str("app", name)
                .int("baseline_flash_bytes", base_bytes as i64)
                .raw("delta_pct", &bar_obj.build())
                .build(),
        );
    }
    let body = json::Obj::new()
        .str("figure", "fig3a_code_size")
        .raw("apps", &json::arr(app_rows))
        .build();
    emit_json("fig3a_code_size", &body).expect("write BENCH_fig3a_code_size.json");
    // The fig3 grid is the canonical toolchain-speed benchmark.
    runner.emit_speed_canonical("fig3a_code_size");
    println!();
    println!("Expected shape (paper): naive safety costs 20–90% code; verbose-in-ROM");
    println!("is higher still; terse/FLID recover much of it; cXprop (esp. with");
    println!("inlining) brings safe code near the unsafe baseline; cXprop applied to");
    println!("the *unsafe* app shrinks it 10–25% (the 'new baseline').");
}
