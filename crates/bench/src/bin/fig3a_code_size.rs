//! Figure 3(a): change in code size relative to the unsafe, unoptimized
//! baseline, across the seven configurations.

use bench::{must_build, pct_change, row};
use safe_tinyos::BuildConfig;

fn main() {
    let bars = BuildConfig::fig3_bars();
    let labels: Vec<String> = bars.iter().map(|c| c.name.to_string()).collect();
    println!("Figure 3(a) — Δ code size vs. unsafe baseline (flash bytes)");
    println!("{}", row("app", &[labels, vec!["baseline".into()]].concat()));
    for name in tosapps::APP_NAMES {
        let spec = tosapps::spec(name).unwrap();
        let base = must_build(&spec, &BuildConfig::unsafe_baseline());
        let base_bytes = base.metrics.flash_bytes as u64;
        let mut cells = Vec::new();
        for config in &bars {
            let b = must_build(&spec, config);
            cells.push(format!("{:+.0}%", pct_change(base_bytes, b.metrics.flash_bytes as u64)));
        }
        cells.push(format!("{base_bytes}"));
        println!("{}", row(name, &cells));
    }
    println!();
    println!("Expected shape (paper): naive safety costs 20–90% code; verbose-in-ROM");
    println!("is higher still; terse/FLID recover much of it; cXprop (esp. with");
    println!("inlining) brings safe code near the unsafe baseline; cXprop applied to");
    println!("the *unsafe* app shrinks it 10–25% (the 'new baseline').");
}
