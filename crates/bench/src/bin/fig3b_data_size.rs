//! Figure 3(b): change in static data (SRAM) size relative to the unsafe
//! baseline. The paper clips this graph at +100% because the verbose
//! configurations are "outrageously high — thousands of percent".

use bench::{emit_json, json, pct_change, row, ExperimentRunner};
use safe_tinyos::{pipelines_from_env_or, Pipeline};

fn main() {
    let runner = ExperimentRunner::from_env();
    let bars = pipelines_from_env_or(Pipeline::fig3_bars);
    // Column 0 of the grid is the baseline every bar is compared to.
    let mut configs = vec![Pipeline::unsafe_baseline()];
    configs.extend(bars.iter().cloned());
    let grid = runner.metrics_grid(tosapps::APP_NAMES, &configs);
    let labels: Vec<String> = bars.iter().map(|c| c.name().to_string()).collect();
    println!("Figure 3(b) — Δ static data size vs. unsafe baseline (SRAM bytes)");
    println!(
        "{}",
        row("app", &[labels, vec!["baseline".into()]].concat())
    );
    let mut app_rows = Vec::new();
    for (name, builds) in tosapps::APP_NAMES.iter().zip(&grid) {
        let base_bytes = builds[0].sram_bytes as u64;
        let mut cells = Vec::new();
        let mut bar_obj = json::Obj::new();
        for (config, metrics) in bars.iter().zip(&builds[1..]) {
            let pct = pct_change(base_bytes, metrics.sram_bytes as u64);
            // The paper clips at +100%.
            if pct > 100.0 {
                cells.push(format!(">100% ({pct:.0}%)"));
            } else {
                cells.push(format!("{pct:+.0}%"));
            }
            bar_obj = bar_obj.num(config.name(), pct);
        }
        cells.push(format!("{base_bytes}"));
        println!("{}", row(name, &cells));
        app_rows.push(
            json::Obj::new()
                .str("app", name)
                .int("baseline_sram_bytes", base_bytes as i64)
                .raw("delta_pct", &bar_obj.build())
                .build(),
        );
    }
    let body = json::Obj::new()
        .str("figure", "fig3b_data_size")
        .raw("apps", &json::arr(app_rows))
        .build();
    emit_json("fig3b_data_size", &body).expect("write BENCH_fig3b_data_size.json");
    runner.emit_speed("fig3b_data_size");
    println!();
    println!("Expected shape (paper): verbose error strings make RAM overhead");
    println!("catastrophic (clipped at 100%); FLIDs reduce it substantially; cXprop");
    println!("reduces it further via dead-variable elimination; cXprop also trims");
    println!("the unsafe apps slightly.");
}
