//! Figure 3(c): change in duty cycle (CPU awake time) relative to the
//! unsafe baseline, for the eleven Mica2 applications, each run in its
//! workload context.

use bench::{emit_json, json, row, ExperimentRunner, Knobs};
use safe_tinyos::{pipelines_from_env_or, simulate, Pipeline};

fn main() {
    let runner = ExperimentRunner::from_env();
    let seconds = Knobs::from_env().sim_seconds;
    // The four duty-cycle-relevant configurations: safe unoptimized,
    // safe fully optimized, unsafe optimized — compared to the baseline
    // in grid column 0.
    let bars = pipelines_from_env_or(|| {
        vec![
            Pipeline::safe_flid(),
            Pipeline::safe_flid_cxprop(),
            Pipeline::safe_flid_inline_cxprop(),
            Pipeline::unsafe_optimized(),
        ]
    });
    let mut configs = vec![Pipeline::unsafe_baseline()];
    configs.extend(bars.iter().cloned());
    let apps = tosapps::mica2_apps();
    // Each job builds and simulates one cell, returning its duty cycle.
    let grid = runner.run_grid(&apps, &configs, |job| {
        let build = job.build(job.item);
        simulate(&build, &job.spec, seconds).duty_cycle_percent
    });
    let labels: Vec<String> = bars.iter().map(|c| c.name().to_string()).collect();
    println!("Figure 3(c) — Δ duty cycle vs. unsafe baseline ({seconds}s simulated)");
    println!(
        "{}",
        row("app", &[labels, vec!["baseline".into()]].concat())
    );
    let mut app_rows = Vec::new();
    for (name, duties) in apps.iter().zip(&grid) {
        let base_duty = duties[0];
        let mut cells = Vec::new();
        let mut cfg_obj = json::Obj::new();
        for (config, duty) in bars.iter().zip(&duties[1..]) {
            let delta = duty - base_duty;
            let rel = if base_duty > 0.0 {
                delta * 100.0 / base_duty
            } else {
                0.0
            };
            cells.push(format!("{rel:+.1}%"));
            cfg_obj = cfg_obj.num(config.name(), rel);
        }
        cells.push(format!("{base_duty:.2}%"));
        println!("{}", row(name, &cells));
        app_rows.push(
            json::Obj::new()
                .str("app", name)
                .num("baseline_duty_pct", base_duty)
                .raw("rel_delta_pct", &cfg_obj.build())
                .build(),
        );
    }
    let body = json::Obj::new()
        .str("figure", "fig3c_duty_cycle")
        .int("seconds", seconds as i64)
        .raw("apps", &json::arr(app_rows))
        .build();
    emit_json("fig3c_duty_cycle", &body).expect("write BENCH_fig3c_duty_cycle.json");
    runner.emit_speed("fig3c_duty_cycle");
    println!();
    println!("Expected shape (paper): CCured alone slows apps by a few percent;");
    println!("cXprop alone speeds the unsafe apps by 3–10%; safe + cXprop lands");
    println!("about at the unsafe original — safety's CPU cost is optimized away.");
}
