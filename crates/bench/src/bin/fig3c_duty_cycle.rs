//! Figure 3(c): change in duty cycle (CPU awake time) relative to the
//! unsafe baseline, for the eleven Mica2 applications, each run in its
//! workload context.

use bench::{emit_json, json, must_build, row, sim_seconds};
use safe_tinyos::{simulate, BuildConfig};

fn main() {
    let seconds = sim_seconds();
    // The four duty-cycle-relevant configurations: safe unoptimized,
    // safe fully optimized, unsafe optimized — compared to the baseline.
    let configs = vec![
        BuildConfig::safe_flid(),
        BuildConfig::safe_flid_cxprop(),
        BuildConfig::safe_flid_inline_cxprop(),
        BuildConfig::unsafe_optimized(),
    ];
    let labels: Vec<String> = configs.iter().map(|c| c.name.to_string()).collect();
    println!("Figure 3(c) — Δ duty cycle vs. unsafe baseline ({seconds}s simulated)");
    println!(
        "{}",
        row("app", &[labels, vec!["baseline".into()]].concat())
    );
    let mut app_rows = Vec::new();
    for name in tosapps::mica2_apps() {
        let spec = tosapps::spec(name).unwrap();
        let base_build = must_build(&spec, &BuildConfig::unsafe_baseline());
        let base = simulate(&base_build, &spec, seconds);
        let mut cells = Vec::new();
        let mut cfg_obj = json::Obj::new();
        for config in &configs {
            let b = must_build(&spec, config);
            let r = simulate(&b, &spec, seconds);
            let delta = r.duty_cycle_percent - base.duty_cycle_percent;
            let rel = if base.duty_cycle_percent > 0.0 {
                delta * 100.0 / base.duty_cycle_percent
            } else {
                0.0
            };
            cells.push(format!("{rel:+.1}%"));
            cfg_obj = cfg_obj.num(config.name, rel);
        }
        cells.push(format!("{:.2}%", base.duty_cycle_percent));
        println!("{}", row(name, &cells));
        app_rows.push(
            json::Obj::new()
                .str("app", name)
                .num("baseline_duty_pct", base.duty_cycle_percent)
                .raw("rel_delta_pct", &cfg_obj.build())
                .build(),
        );
    }
    let body = json::Obj::new()
        .str("figure", "fig3c_duty_cycle")
        .int("seconds", seconds as i64)
        .raw("apps", &json::arr(app_rows))
        .build();
    emit_json("fig3c_duty_cycle", &body).expect("write BENCH_fig3c_duty_cycle.json");
    println!();
    println!("Expected shape (paper): CCured alone slows apps by a few percent;");
    println!("cXprop alone speeds the unsafe apps by 3–10%; safe + cXprop lands");
    println!("about at the unsafe original — safety's CPU cost is optimized away.");
}
