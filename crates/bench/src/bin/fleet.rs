//! The fleet-scale network-simulation harness.
//!
//! Builds Surge under the full safe stack once, then:
//!
//! * sweeps the event-driven fleet simulator over `STOS_MOTES` ×
//!   `STOS_FLEET_SEEDS` cells — lossy unit-disk grids with one mote
//!   power-cycling mid-run — and reports duty cycle, sink delivery
//!   rate, and scheduler throughput per cell;
//! * checks the event-driven engine against the lockstep `Network`
//!   reference on a 3-mote lossless full mesh (byte-identical per-mote
//!   observations);
//! * runs the network-level fault campaign: a fixed 9-mote grid whose
//!   center mote gets its RAM corrupted at enumerated sites, with
//!   fleet-level verdicts (FLID detection at the victim vs. silent
//!   route poisoning observed at the sink).
//!
//! Emits `BENCH_fleet.json` — the `"pinned"` object is byte-pinned by
//! CI's `fleet_gate` (per-row subset comparison, so CI can sweep fewer
//! cells than the committed artifact), the `"dynamics"` object carries
//! wall times.

use bench::fleet::{dynamics_json, measure, pinned_json, run_campaign, sweep_cells, SWEEP_QUALITY};
use bench::{emit_json, json, row, ExperimentRunner, Knobs};
use safe_tinyos::fleet::{lockstep_matches_event_driven, FleetSpec};
use safe_tinyos::Pipeline;

fn main() {
    let runner = ExperimentRunner::from_env();
    let knobs = Knobs::from_env();
    let seconds = knobs.fleet_seconds;
    let motes = &knobs.fleet_motes;
    let cells = sweep_cells(motes, knobs.fleet_seeds);
    println!(
        "Fleet simulator — {} cells ({motes:?} motes × {} seeds), {seconds}s each, \
         loss {} ppm",
        cells.len(),
        knobs.fleet_seeds,
        SWEEP_QUALITY.loss_ppm
    );

    let spec = tosapps::spec("Surge_Mica2").expect("Surge app");
    let pipelines = vec![Pipeline::safe_flid_inline_cxprop()];
    let grid = runner.run_grid(&[spec.name], &pipelines, |job| job.build(job.item));
    let build = &grid[0][0];

    let rows = measure(&runner, build, &cells, seconds);
    println!(
        "{}",
        row(
            "motes/seed",
            &["duty%", "heard", "offered", "deliv%", "drop", "reboot", "wall ms"].map(String::from)
        )
    );
    for r in &rows {
        println!(
            "{}",
            row(
                &format!("{}/{}", r.motes, r.seed),
                &[
                    format!("{:.2}", r.duty_pct),
                    r.report.heard.to_string(),
                    r.report.offered.to_string(),
                    format!("{:.1}", r.report.delivery_rate_pct),
                    r.stats.dropped.to_string(),
                    r.stats.reboots.to_string(),
                    format!("{:.0}", r.wall_ms),
                ]
            )
        );
    }

    let equivalence_ok =
        lockstep_matches_event_driven(build, &FleetSpec::lossless_mesh(3, 2, 0x5EED));
    let campaign = run_campaign(&runner, build);
    let (counts, sites) = campaign;
    println!(
        "campaign: {sites} sites on the 9-mote grid — {} detected, {} crashed, \
         {} poisoned, {} contained, {} benign",
        counts.detected, counts.crashed, counts.poisoned, counts.contained, counts.benign
    );

    let body = json::Obj::new()
        .str("figure", "fleet")
        .raw(
            "pinned",
            &pinned_json(&rows, seconds, campaign, equivalence_ok),
        )
        .raw("dynamics", &dynamics_json(&rows, runner.threads()))
        .build();
    emit_json("fleet", &body).expect("write BENCH_fleet.json");
    runner.emit_speed("fleet");

    // Self-gates: the invariants CI relies on, checked at the source.
    assert!(
        equivalence_ok,
        "event-driven fleet diverged from the lockstep reference"
    );
    for r in &rows {
        assert!(
            r.report.offered > 0,
            "{} motes: nothing hit the air",
            r.motes
        );
        assert!(
            r.report.heard > 0,
            "{} motes: the sink heard no readings",
            r.motes
        );
        assert!(
            r.stats.dropped > 0,
            "{} motes: lossy links dropped nothing",
            r.motes
        );
        if r.motes >= 4 {
            assert!(
                r.stats.reboots >= 1,
                "{} motes: the churned mote never rebooted",
                r.motes
            );
        }
    }
    assert_eq!(counts.total(), sites, "campaign lost verdicts");
    assert!(sites > 0, "campaign enumerated no corruption sites");
    println!();
    println!(
        "event-driven engine matched lockstep byte-for-byte; \
         {} sweep cells delivered data to the sink.",
        rows.len()
    );
}
