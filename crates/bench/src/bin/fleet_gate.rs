//! CI's fleet gate: `fleet_gate <committed> <fresh>` compares the
//! byte-pinned `"pinned"` object of a freshly published
//! `BENCH_fleet.json` against the committed baseline. The fresh run may
//! sweep a smaller mote population (CI sets `STOS_MOTES`); each fresh
//! row is byte-compared against the committed row with the same
//! `(motes, seed)` key, the campaign verdict histogram must match
//! whole, and the fresh run must report lockstep equivalence.

use bench::gate;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(committed), Some(fresh)) = (args.next(), args.next()) else {
        eprintln!("usage: fleet_gate <committed BENCH_fleet.json> <fresh BENCH_fleet.json>");
        std::process::exit(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("fleet_gate: {path}: {e}");
            std::process::exit(2);
        })
    };
    match gate::fleet_check(&read(&committed), &read(&fresh)) {
        Ok(rows) => println!(
            "fleet gate ok: {rows} sweep row(s) match the committed baseline, \
             campaign verdicts identical, lockstep equivalence holds"
        ),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
