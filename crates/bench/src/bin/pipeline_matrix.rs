//! The pass-stack composition matrix: the figure the paper *couldn't*
//! afford to run.
//!
//! Figure 2 compares four hand-picked optimizer stacks and Figure 3
//! seven; this harness sweeps a 15-stack matrix of pass subsets, orders,
//! options, and error modes — every stack a one-line pipeline spec —
//! over three representative applications, through the shared
//! [`ExperimentRunner`]. Per cell it records the full size/check census,
//! the per-pass wall-time breakdown, and a short simulation health
//! check, and emits everything to `BENCH_pipeline_matrix.json`.
//!
//! `STOS_PIPELINE` (a `;`-separated list of specs or preset names)
//! replaces the default stack list, so any composition question is a
//! shell variable away.

use bench::{emit_json, json, ExperimentRunner, Knobs};
use safe_tinyos::{pipelines_from_env_or, simulate, Pipeline};

/// Three apps spanning the size range: the smallest, a mid-size sensing
/// app, and the largest (multihop routing).
const APPS: [&str; 3] = ["BlinkTask_Mica2", "Oscilloscope_Mica2", "Surge_Mica2"];

/// The default matrix: subsets (which passes run), orders (inline
/// before/after cXprop, composite vs. staged), options (domains, round
/// counts, thresholds), error modes, and backend strength.
fn default_stacks() -> Vec<Pipeline> {
    [
        // -- subsets: one pass at a time onto the bare backend --
        "backend",
        "cure(flid)",
        "cure(flid)|inline",
        "cure(flid)|cxprop|prune",
        "cure(flid)|inline|cxprop|prune",
        // -- orders: staged vs. composite vs. inliner-last --
        "cure(flid)|cxprop(inline)|prune",
        "cure(flid)|cxprop|inline|prune",
        // -- error modes under the full stack --
        "cure(terse)|inline|cxprop|prune",
        "cure(verbose-ram)|inline|cxprop|prune",
        // -- pass options --
        "cure(flid,noopt)|inline|cxprop|prune",
        "cure(flid)|inline|cxprop(domain=constants)|prune",
        "cure(flid)|inline|cxprop(rounds=1)|prune",
        "cure(flid)|inline(max-size=48)|cxprop|prune",
        // -- backend strength and the unsafe-optimized reference --
        "cure(flid)|inline|cxprop|prune|backend(noopt)",
        "inline|cxprop|prune",
    ]
    .iter()
    .map(|s| Pipeline::parse(s).expect("default matrix specs are valid"))
    .collect()
}

/// What one matrix cell measured.
struct Cell {
    metrics: safe_tinyos::Metrics,
    duty_pct: f64,
    state: mcu::RunState,
    fault: Option<String>,
}

fn main() {
    let runner = ExperimentRunner::from_env();
    let seconds = Knobs::from_env().sim_seconds;
    let stacks = pipelines_from_env_or(default_stacks);
    let grid = runner.run_grid(&APPS, &stacks, |job| {
        let build = job.build(job.item);
        let run = simulate(&build, &job.spec, seconds);
        Cell {
            metrics: build.metrics,
            duty_pct: run.duty_cycle_percent,
            state: run.state,
            fault: run.fault,
        }
    });

    println!(
        "Pipeline matrix — {} stacks x {} apps ({seconds}s simulated per cell)\n",
        stacks.len(),
        APPS.len()
    );
    println!(
        "{:<52}{:>16}{:>16}{:>16}",
        "stack (code B / surviving checks)", "BlinkTask", "Oscilloscope", "Surge"
    );
    let mut cells = Vec::new();
    for (si, stack) in stacks.iter().enumerate() {
        let mut line = format!("{:<52}", stack.name());
        for (ai, app) in APPS.iter().enumerate() {
            let cell = &grid[ai][si];
            let m = &cell.metrics;
            line.push_str(&format!(
                "{:>16}",
                format!("{}/{}", m.code_bytes, m.checks_surviving)
            ));
            if !matches!(cell.state, mcu::RunState::Sleeping | mcu::RunState::Running) {
                println!(
                    "  !! {app} under {}: {:?} ({:?})",
                    stack.name(),
                    cell.state,
                    cell.fault
                );
            }
            let mut pass_obj = json::Obj::new();
            for (pass, t) in m.pass_times.iter() {
                pass_obj = pass_obj.num(pass, t.as_secs_f64() * 1e3);
            }
            let mut obj = json::Obj::new()
                .str("app", app)
                .str("stack", stack.name())
                .int("code_bytes", m.code_bytes as i64)
                .int("flash_bytes", m.flash_bytes as i64)
                .int("sram_bytes", m.sram_bytes as i64)
                .int("checks_inserted", m.checks_inserted as i64)
                .int("checks_surviving", m.checks_surviving as i64)
                .int("locks_inserted", m.locks_inserted as i64)
                .num("duty_pct", cell.duty_pct)
                .str("state", &format!("{:?}", cell.state));
            if let Some(fault) = &cell.fault {
                obj = obj.str("fault", fault);
            }
            cells.push(obj.raw("pass_ms", &pass_obj.build()).build());
        }
        println!("{line}");
    }

    let stack_rows = stacks.iter().map(|s| {
        json::Obj::new()
            .str("name", s.name())
            .str("spec", &s.spec())
            .build()
    });
    let body = json::Obj::new()
        .str("figure", "pipeline_matrix")
        .int("seconds", seconds as i64)
        .raw(
            "apps",
            &json::arr(APPS.iter().map(|a| format!("\"{}\"", json::esc(a)))),
        )
        .raw("stacks", &json::arr(stack_rows))
        .raw("cells", &json::arr(cells))
        .build();
    emit_json("pipeline_matrix", &body).expect("write BENCH_pipeline_matrix.json");
    runner.emit_speed("pipeline_matrix");
    println!();
    println!("Expected shape: safety alone adds 20-90% code; each optimizer pass");
    println!("claws some back; inline-then-cxprop beats cxprop-then-inline (context");
    println!("sensitivity needs the inlined bodies *before* the fixpoint); the");
    println!("composite cxprop(inline) ties the staged form; a weak backend leaves");
    println!("easy checks on the table.");
}
