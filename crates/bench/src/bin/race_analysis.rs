//! The whole-program race & atomicity harness.
//!
//! Builds every Mica2 app under three stacks — the cost baseline
//! (`cure(flid)|cxprop|prune`), the analyzer (`…|races|…`), and the
//! auto-hardener (`…|races(fix)|…`) — and reports:
//!
//! * the per-app diagnostic census by stable code (R001
//!   unprotected-sync-write, R002 torn-16bit-access, R003 async-rmw);
//! * what `races(fix)` cost: atomic sections added, fixpoint
//!   iterations, code-size and duty-cycle deltas vs the baseline;
//! * the torn-update atomicity campaign: targets enumerated from each
//!   app's unhardened build, the same logical faults injected into both
//!   builds, divergences compared;
//! * a differential-oracle spot check of the `races(fix)` stack
//!   (generated seeds + every app vs the cure-only reference).
//!
//! Emits `BENCH_races.json` — the `"analysis"` object is byte-pinned by
//! CI's `race_gate`, the `"dynamics"` object is self-gated here:
//! every app yields diagnostics, every fix build reaches the
//! zero-diagnostic fixpoint, hardened builds are torn-update immune
//! while unhardened builds measurably diverge, and the oracle sees zero
//! miscompiles.

use bench::races::{analysis_json, dynamics_json, measure, oracle_check};
use bench::{emit_json, json, row, ExperimentRunner, Knobs};

fn main() {
    let runner = ExperimentRunner::from_env();
    let knobs = Knobs::from_env();
    let seconds = knobs.sim_seconds;
    let apps = tosapps::mica2_apps();
    // The oracle spot check is a sanity pass, not the difftest sweep:
    // cap the seed population so the harness stays quick even with
    // default knobs.
    let seeds: Vec<u64> = (0..knobs.diff_seeds.min(12))
        .map(|i| knobs.diff_base + i)
        .collect();

    println!(
        "Race & atomicity analysis — {} apps, {} torn injections/target, {seconds}s workloads",
        apps.len(),
        knobs.torn_sites
    );
    let rows = measure(&runner, &apps, seconds, knobs.torn_sites);
    let oracle = oracle_check(&runner, &seeds, &apps, seconds);

    println!(
        "{}",
        row(
            "app",
            &["R001", "R002", "R003", "sections", "Δcode", "torn", "fixed"].map(String::from)
        )
    );
    for r in &rows {
        println!(
            "{}",
            row(
                &r.app,
                &[
                    r.codes.r001.to_string(),
                    r.codes.r002.to_string(),
                    r.codes.r003.to_string(),
                    r.sections_added.to_string(),
                    format!("{:+.1}%", r.code_delta_pct),
                    format!("{}→{}", r.unhardened_divergences, r.hardened_divergences),
                    (r.fix_residual == 0).to_string(),
                ]
            )
        );
    }

    let body = json::Obj::new()
        .str("figure", "race_analysis")
        .raw("analysis", &analysis_json(&rows))
        .raw(
            "dynamics",
            &dynamics_json(&rows, seconds, knobs.torn_sites, oracle, seeds.len()),
        )
        .build();
    emit_json("races", &body).expect("write BENCH_races.json");
    runner.emit_speed("race_analysis");

    // Self-gates: the invariants CI relies on, checked at the source.
    for r in &rows {
        assert!(
            r.diagnostics > 0,
            "{}: the races pass reported no per-site diagnostics",
            r.app
        );
        assert_eq!(
            r.fix_residual, 0,
            "{}: races(fix) left {} diagnostic(s) standing",
            r.app, r.fix_residual
        );
        assert_eq!(
            r.hardened_divergences, 0,
            "{}: torn updates diverged on the hardened build",
            r.app
        );
    }
    let unhardened: usize = rows.iter().map(|r| r.unhardened_divergences).sum();
    assert!(
        unhardened > 0,
        "no unhardened build diverged under torn updates — the fault model lost its teeth"
    );
    assert_eq!(
        oracle.0, 0,
        "differential oracle found {} miscompile verdict(s) on races(fix) stacks",
        oracle.0
    );
    println!();
    println!(
        "races(fix) reached the zero-diagnostic fixpoint on all {} apps;",
        rows.len()
    );
    println!(
        "torn-update campaign: {unhardened} divergence(s) unhardened vs 0 hardened; \
         oracle: {} case(s), zero miscompiles.",
        oracle.1
    );
}
