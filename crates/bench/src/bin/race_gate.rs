//! CI's race-analysis gate: `race_gate <committed> <fresh>` compares the
//! time-independent `"analysis"` object of a freshly published
//! `BENCH_races.json` against the committed baseline byte-for-byte, and
//! fails if the diagnostic census drifted or the fresh torn campaign
//! found any divergence on a hardened build.

use bench::gate;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(committed), Some(fresh)) = (args.next(), args.next()) else {
        eprintln!("usage: race_gate <committed BENCH_races.json> <fresh BENCH_races.json>");
        std::process::exit(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("race_gate: {path}: {e}");
            std::process::exit(2);
        })
    };
    match gate::race_check(&read(&committed), &read(&fresh)) {
        Ok(bytes) => println!(
            "race gate ok: analysis object matches the committed baseline \
             ({bytes} bytes), hardened builds torn-update immune"
        ),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
