//! CI's bench-regression gate: `regression_gate <baseline.json>
//! <fresh.json>` compares the two `BENCH_toolchain_speed.json` files on
//! wall time and exits non-zero when the fresh run is more than
//! `STOS_REGRESSION_FACTOR`× (default 2×) slower than the baseline.

use bench::gate;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(fresh_path)) = (args.next(), args.next()) else {
        eprintln!("usage: regression_gate <baseline.json> <fresh.json>");
        std::process::exit(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("regression_gate: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&baseline_path);
    let fresh = read(&fresh_path);
    let factor = gate::factor_from_env();
    match gate::check(&baseline, &fresh, factor) {
        Ok(out) => println!(
            "bench gate ok: wall {:.1}ms vs baseline {:.1}ms ({:.2}x <= {factor:.2}x)",
            out.fresh_ms, out.baseline_ms, out.ratio
        ),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
