//! §2.3: the CCured runtime-library footprint reduction, from the naive
//! 1.6 KB RAM / 33 KB ROM port down to 2 B / 314 B, staged as the paper
//! describes, plus the measured effect on a minimal application.

use bench::{emit_json, json, ExperimentRunner};
use ccured::runtime::{footprint_at, RuntimeStage, NAIVE_COMPONENTS};
use ccured::CureOptions;
use safe_tinyos::Pipeline;

fn main() {
    println!("§2.3 — CCured runtime library footprint (modeled components)");
    println!("{:<26}{:>10}{:>10}  note", "component", "RAM", "ROM");
    for c in NAIVE_COMPONENTS {
        println!("{:<26}{:>10}{:>10}  {}", c.name, c.ram, c.rom, c.note);
    }
    println!();
    println!("{:<34}{:>10}{:>10}", "reduction stage", "RAM", "ROM");
    for (label, stage) in [
        ("naive port (everything)", RuntimeStage::NaivePort),
        ("- OS and x86 dependencies", RuntimeStage::OsX86Removed),
        ("- garbage collection", RuntimeStage::GcDropped),
        ("- improved DCE over remainder", RuntimeStage::AfterDce),
    ] {
        let (ram, rom) = footprint_at(stage);
        println!("{label:<34}{ram:>10}{rom:>10}");
    }
    println!();
    println!("Paper endpoints: 1638 B RAM / 33 KB ROM naive; 2 B RAM / 314 B ROM tuned.");
    println!();

    // Measured effect on the minimal app (BlinkTask-class). The tuned
    // and naive configurations share one cached frontend artifact; the
    // naive build is *expected* to fail to link, so the job returns a
    // Result instead of panicking.
    let runner = ExperimentRunner::from_env();
    let configs = [
        Pipeline::safe_flid_inline_cxprop(),
        Pipeline::builder("safe-flid-inline-cxprop-naive")
            .cure_with(CureOptions {
                naive_runtime: true,
                ..CureOptions::default()
            })
            .inline()
            .cxprop()
            .prune()
            .build(),
    ];
    let grid = runner.run_grid(&["BlinkTask_Mica2"], &configs, |job| {
        job.try_build(job.item)
            .map(|b| b.metrics)
            .map_err(|e| e.to_string())
    });
    let [tuned, naive] = &grid[0][..] else {
        unreachable!("two-config grid");
    };
    let tuned = tuned.as_ref().expect("tuned build succeeds");
    let mica2_ram = 4 * 1024;
    println!("Measured on BlinkTask (safe, optimized):");
    println!(
        "  tuned runtime: {:>6} B SRAM {:>7} B flash",
        tuned.sram_bytes, tuned.flash_bytes
    );
    let mut measured = json::Obj::new()
        .int("tuned_sram_bytes", tuned.sram_bytes as i64)
        .int("tuned_flash_bytes", tuned.flash_bytes as i64);
    match naive {
        Ok(naive) => {
            println!(
                "  naive runtime: {:>6} B SRAM {:>7} B flash",
                naive.sram_bytes, naive.flash_bytes
            );
            println!(
                "  naive runtime RAM share of a Mica2: {:.0}% (paper: 40%)",
                (naive.sram_bytes - tuned.sram_bytes) as f64 * 100.0 / mica2_ram as f64
            );
            measured = measured
                .int("naive_sram_bytes", naive.sram_bytes as i64)
                .int("naive_flash_bytes", naive.flash_bytes as i64);
        }
        Err(e) => {
            // The 33 KB naive ROM blob exceeds the M16's 28 KB const-data
            // window, so the naive build does not even link — a stronger
            // version of the paper's "ruinously large" observation. The
            // modeled totals above carry the §2.3 story.
            let (naive_ram, naive_rom) = footprint_at(RuntimeStage::NaivePort);
            println!("  naive runtime: does not link — {e}");
            println!(
                "  (modeled: {naive_ram} B RAM = {:.0}% of a Mica2's SRAM, {naive_rom} B ROM)",
                naive_ram as f64 * 100.0 / mica2_ram as f64
            );
            measured = measured.str("naive_build_error", e);
        }
    }
    let mut stage_obj = json::Obj::new();
    for (label, stage) in [
        ("naive_port", RuntimeStage::NaivePort),
        ("os_x86_removed", RuntimeStage::OsX86Removed),
        ("gc_dropped", RuntimeStage::GcDropped),
        ("after_dce", RuntimeStage::AfterDce),
    ] {
        let (ram, rom) = footprint_at(stage);
        stage_obj = stage_obj.raw(
            label,
            &json::Obj::new()
                .int("ram", ram as i64)
                .int("rom", rom as i64)
                .build(),
        );
    }
    let body = json::Obj::new()
        .str("figure", "runtime_footprint")
        .raw("stages", &stage_obj.build())
        .raw("measured_blinktask", &measured.build())
        .build();
    emit_json("runtime_footprint", &body).expect("write BENCH_runtime_footprint.json");
    runner.emit_speed("runtime_footprint");
}
