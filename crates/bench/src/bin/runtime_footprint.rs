//! §2.3: the CCured runtime-library footprint reduction, from the naive
//! 1.6 KB RAM / 33 KB ROM port down to 2 B / 314 B, staged as the paper
//! describes, plus the measured effect on a minimal application.

use bench::must_build;
use ccured::runtime::{footprint_at, RuntimeStage, NAIVE_COMPONENTS};
use safe_tinyos::BuildConfig;

fn main() {
    println!("§2.3 — CCured runtime library footprint (modeled components)");
    println!("{:<26}{:>10}{:>10}  note", "component", "RAM", "ROM");
    for c in NAIVE_COMPONENTS {
        println!("{:<26}{:>10}{:>10}  {}", c.name, c.ram, c.rom, c.note);
    }
    println!();
    println!("{:<34}{:>10}{:>10}", "reduction stage", "RAM", "ROM");
    for (label, stage) in [
        ("naive port (everything)", RuntimeStage::NaivePort),
        ("- OS and x86 dependencies", RuntimeStage::OsX86Removed),
        ("- garbage collection", RuntimeStage::GcDropped),
        ("- improved DCE over remainder", RuntimeStage::AfterDce),
    ] {
        let (ram, rom) = footprint_at(stage);
        println!("{label:<34}{ram:>10}{rom:>10}");
    }
    println!();
    println!("Paper endpoints: 1638 B RAM / 33 KB ROM naive; 2 B RAM / 314 B ROM tuned.");
    println!();

    // Measured effect on the minimal app (BlinkTask-class).
    let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
    let tuned = must_build(&spec, &BuildConfig::safe_flid_inline_cxprop());
    let naive = must_build(
        &spec,
        &BuildConfig { naive_runtime: true, ..BuildConfig::safe_flid_inline_cxprop() },
    );
    println!("Measured on BlinkTask (safe, optimized):");
    println!(
        "  naive runtime: {:>6} B SRAM {:>7} B flash",
        naive.metrics.sram_bytes, naive.metrics.flash_bytes
    );
    println!(
        "  tuned runtime: {:>6} B SRAM {:>7} B flash",
        tuned.metrics.sram_bytes, tuned.metrics.flash_bytes
    );
    let mica2_ram = 4 * 1024;
    println!(
        "  naive runtime RAM share of a Mica2: {:.0}% (paper: 40%)",
        (naive.metrics.sram_bytes - tuned.metrics.sram_bytes) as f64 * 100.0 / mica2_ram as f64
    );
}
