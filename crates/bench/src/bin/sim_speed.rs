//! Simulator throughput under both execution engines (`interp` vs
//! `bt`): compute kernels carry the speedup gate, full Mica2 apps
//! carry the byte-identity gate.
//!
//! The harness runs two sections:
//!
//! * **kernels** — always-awake instruction streams from
//!   [`bench::kernels`]. Each runs for `STOS_KERNEL_CYCLES` simulated
//!   cycles per engine; the aggregate awake-throughput speedup over
//!   the *gated* kernels (Σ interp wall / Σ bt wall) must reach
//!   `STOS_SPEEDUP_MIN` (default 10.0). Non-gated kernels are
//!   published for honesty but excluded from the gate.
//! * **apps** — every Mica2 app built under the paper's full stack and
//!   simulated for `STOS_SECONDS` per engine. Apps sleep most of the
//!   time, and the sleep pump is engine-independent, so app speedups
//!   are reported but not speedup-gated.
//!
//! Both sections enforce identity: the engines must agree on `cycles`,
//! `awake_cycles`, `instr_count`, final state, and fault message for
//! every subject (the translation is only legal if it is invisible).
//!
//! Emits `BENCH_sim_speed.json`; the `sim_speed_gate` binary re-asserts
//! both gates from the published bytes in CI.

use std::time::Instant;

use bench::{emit_json, json, kernels, row, Knobs};
use safe_tinyos::{prepare_machine, BuildSession, Pipeline};

/// One engine's measurement for one subject.
struct Sample {
    wall_s: f64,
    cycles: u64,
    awake: u64,
    instrs: u64,
    state: String,
    fault: Option<String>,
}

impl Sample {
    fn matches(&self, other: &Sample) -> bool {
        self.cycles == other.cycles
            && self.awake == other.awake
            && self.instrs == other.instrs
            && self.state == other.state
            && self.fault == other.fault
    }
}

fn sample(m: &mcu::Machine, wall_s: f64) -> Sample {
    Sample {
        wall_s,
        cycles: m.cycles,
        awake: m.awake_cycles,
        instrs: m.instr_count,
        state: format!("{:?}", m.state),
        fault: m.fault_message(),
    }
}

fn measure_kernel(image: &mcu::Image, cycles: u64, engine: mcu::Engine) -> Sample {
    let mut m = mcu::Machine::new(image);
    m.set_engine(engine);
    let start = Instant::now();
    m.run(cycles);
    sample(&m, start.elapsed().as_secs_f64())
}

fn measure_app(
    build: &safe_tinyos::Build,
    spec: &tosapps::AppSpec,
    seconds: u64,
    engine: mcu::Engine,
) -> Sample {
    let (mut m, until) = prepare_machine(build, spec, seconds);
    m.set_engine(engine);
    if engine == mcu::Engine::Bt {
        m.set_block_cache(build.block_cache());
    }
    let start = Instant::now();
    m.run(until);
    sample(&m, start.elapsed().as_secs_f64())
}

fn report_divergence(name: &str, a: &Sample, b: &Sample) {
    eprintln!(
        "ENGINE DIVERGENCE on {name}: interp (cycles {}, awake {}, instrs {}, {} {:?}) \
         vs bt (cycles {}, awake {}, instrs {}, {} {:?})",
        a.cycles,
        a.awake,
        a.instrs,
        a.state,
        a.fault,
        b.cycles,
        b.awake,
        b.instrs,
        b.state,
        b.fault
    );
}

fn main() {
    let knobs = Knobs::from_env();
    let seconds = knobs.sim_seconds;
    let kernel_cycles = knobs.kernel_cycles;
    let min = knobs.speedup_min;
    let mut identical = true;

    // ── Kernel section: the speedup gate ────────────────────────────
    println!("Compute kernels — {kernel_cycles} simulated cycles per engine");
    println!(
        "{}",
        row(
            "kernel",
            &[
                "Mcyc/s interp".into(),
                "Mcyc/s bt".into(),
                "Minstr/s bt".into(),
                "speedup".into(),
                "gated".into(),
            ],
        )
    );
    let mut kernel_rows = Vec::new();
    let mut gated_interp = 0.0f64;
    let mut gated_bt = 0.0f64;
    for k in kernels::suite() {
        // Warm both engines (page in code, build the block cache),
        // then measure.
        measure_kernel(&k.image, kernel_cycles / 50, mcu::Engine::Interp);
        measure_kernel(&k.image, kernel_cycles / 50, mcu::Engine::Bt);
        let a = measure_kernel(&k.image, kernel_cycles, mcu::Engine::Interp);
        let b = measure_kernel(&k.image, kernel_cycles, mcu::Engine::Bt);
        let same = a.matches(&b);
        if !same {
            identical = false;
            report_divergence(k.name, &a, &b);
        }
        if k.gated {
            gated_interp += a.wall_s;
            gated_bt += b.wall_s;
        }
        let speedup = a.wall_s / b.wall_s.max(1e-12);
        println!(
            "{}",
            row(
                k.name,
                &[
                    format!("{:.1}", a.cycles as f64 / a.wall_s / 1e6),
                    format!("{:.1}", b.cycles as f64 / b.wall_s / 1e6),
                    format!("{:.1}", b.instrs as f64 / b.wall_s / 1e6),
                    format!("{speedup:.1}x"),
                    if k.gated { "yes" } else { "no" }.into(),
                ],
            )
        );
        kernel_rows.push(
            json::Obj::new()
                .str("kernel", k.name)
                .int("cycles", a.cycles as i64)
                .int("instructions", a.instrs as i64)
                .num("interp_wall_s", a.wall_s)
                .num("bt_wall_s", b.wall_s)
                .num("interp_cycles_per_sec", a.cycles as f64 / a.wall_s)
                .num("bt_cycles_per_sec", b.cycles as f64 / b.wall_s)
                .num("interp_instr_per_sec", a.instrs as f64 / a.wall_s)
                .num("bt_instr_per_sec", b.instrs as f64 / b.wall_s)
                .num("speedup", speedup)
                .raw("gated", if k.gated { "true" } else { "false" })
                .raw("identical", if same { "true" } else { "false" })
                .build(),
        );
    }
    let kernel_speedup = gated_interp / gated_bt.max(1e-12);
    println!(
        "kernels: interp {gated_interp:.3}s, bt {gated_bt:.3}s over gated set — \
         aggregate speedup {kernel_speedup:.1}x (gate: >= {min:.1}x)"
    );
    println!();

    // ── App section: the identity gate ──────────────────────────────
    let session = BuildSession::new();
    let pipeline = Pipeline::safe_flid_inline_cxprop();
    let apps = tosapps::mica2_apps();
    println!(
        "Mica2 apps — {} apps, {seconds}s simulated, pipeline {}",
        apps.len(),
        pipeline.name()
    );
    println!(
        "{}",
        row(
            "app",
            &[
                "Mcyc/s interp".into(),
                "Mcyc/s bt".into(),
                "Minstr/s interp".into(),
                "Minstr/s bt".into(),
                "speedup".into(),
            ],
        )
    );

    let mut app_rows = Vec::new();
    let mut wall_interp = 0.0f64;
    let mut wall_bt = 0.0f64;
    for name in &apps {
        let spec = tosapps::spec(name).expect("known app");
        let build = session
            .build(&spec, &pipeline)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // Decode once, outside the timed region: the cache is a
        // per-image one-time cost every bt machine shares.
        let cache = build.block_cache();
        let stats = cache.stats();
        measure_app(&build, &spec, seconds.min(1), mcu::Engine::Interp);
        measure_app(&build, &spec, seconds.min(1), mcu::Engine::Bt);
        let a = measure_app(&build, &spec, seconds, mcu::Engine::Interp);
        let b = measure_app(&build, &spec, seconds, mcu::Engine::Bt);
        let same = a.matches(&b);
        if !same {
            identical = false;
            report_divergence(name, &a, &b);
        }
        wall_interp += a.wall_s;
        wall_bt += b.wall_s;
        let speedup = a.wall_s / b.wall_s.max(1e-12);
        println!(
            "{}",
            row(
                name,
                &[
                    format!("{:.1}", a.cycles as f64 / a.wall_s / 1e6),
                    format!("{:.1}", b.cycles as f64 / b.wall_s / 1e6),
                    format!("{:.1}", a.instrs as f64 / a.wall_s / 1e6),
                    format!("{:.1}", b.instrs as f64 / b.wall_s / 1e6),
                    format!("{speedup:.1}x"),
                ],
            )
        );
        app_rows.push(
            json::Obj::new()
                .str("app", name)
                .int("cycles", a.cycles as i64)
                .int("awake_cycles", a.awake as i64)
                .int("instructions", a.instrs as i64)
                .num("interp_wall_s", a.wall_s)
                .num("bt_wall_s", b.wall_s)
                .num("interp_cycles_per_sec", a.cycles as f64 / a.wall_s)
                .num("bt_cycles_per_sec", b.cycles as f64 / b.wall_s)
                .num("interp_instr_per_sec", a.instrs as f64 / a.wall_s)
                .num("bt_instr_per_sec", b.instrs as f64 / b.wall_s)
                .num("speedup", speedup)
                .int("blocks", stats.blocks as i64)
                .int("fused_superinstructions", stats.fused as i64)
                .raw("identical", if same { "true" } else { "false" })
                .build(),
        );
    }

    let app_speedup = wall_interp / wall_bt.max(1e-12);
    println!();
    println!(
        "apps: interp {wall_interp:.3}s, bt {wall_bt:.3}s — speedup {app_speedup:.1}x \
         (reported only; sleep-dominated)"
    );

    let body = json::Obj::new()
        .str("figure", "sim_speed")
        .int("kernel_cycles", kernel_cycles as i64)
        .int("seconds", seconds as i64)
        .str("pipeline", pipeline.name())
        .num("kernel_speedup", kernel_speedup)
        .num("app_speedup", app_speedup)
        .num("speedup_min", min)
        .raw(
            "engines_identical",
            if identical { "true" } else { "false" },
        )
        .raw("kernels", &json::arr(kernel_rows))
        .raw("apps", &json::arr(app_rows))
        .build();
    emit_json("sim_speed", &body).expect("write BENCH_sim_speed.json");

    assert!(
        identical,
        "sim_speed: engines disagreed on at least one subject (see above)"
    );
    assert!(
        kernel_speedup >= min,
        "sim_speed: gated kernel speedup {kernel_speedup:.2}x below the {min:.1}x gate"
    );
    println!(
        "sim_speed: engines byte-identical on all kernels and {} apps; \
         speedup gate passed",
        apps.len()
    );
}
