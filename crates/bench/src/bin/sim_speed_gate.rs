//! CI's engine gate: `sim_speed_gate <BENCH_sim_speed.json>` exits
//! non-zero when the published report shows an engine divergence or a
//! gated-kernel speedup below the published floor.

use bench::gate;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: sim_speed_gate <BENCH_sim_speed.json>");
        std::process::exit(2);
    };
    let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("sim_speed_gate: {path}: {e}");
        std::process::exit(2);
    });
    match gate::sim_speed_check(&body) {
        Ok((speedup, min)) => println!(
            "sim_speed gate ok: engines identical, gated kernel speedup {speedup:.1}x >= {min:.1}x"
        ),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
