//! The whole-program stack-bound harness.
//!
//! Builds every Mica2 app under all 12 presets with a `stackbound` pass
//! appended, runs each build in the simulator, and reports:
//!
//! * the certified worst-case stack bound per cell, decomposed into
//!   task depth + interrupt overhead, with the S00x diagnostic census
//!   (S001 unbounded-recursion, S002 unresolved-call-target, S003
//!   stack-budget-exceeded);
//! * the simulator-observed stack watermark per cell, and the
//!   bound-vs-watermark tightness under the full safe stack.
//!
//! Emits `BENCH_stack.json` — the `"analysis"` object is byte-pinned by
//! CI's `stack_gate` (identical for any worker count and either
//! engine), the `"dynamics"` object is self-gated here: every cell's
//! bound is finite, dominates the observed watermark, and stays inside
//! the SRAM budget, and every app wires at least one interrupt vector
//! somewhere in the grid.

use bench::stack::{analysis_json, dynamics_json, measure, FULL_STACK};
use bench::{emit_json, json, row, ExperimentRunner, Knobs};

fn main() {
    let runner = ExperimentRunner::from_env();
    let knobs = Knobs::from_env();
    let seconds = knobs.sim_seconds;
    let apps = tosapps::mica2_apps();

    println!(
        "Stack-bound analysis — {} apps × 12 presets, {seconds}s workloads",
        apps.len()
    );
    let rows = measure(&runner, &apps, seconds);

    println!(
        "{}",
        row(
            "app",
            &["bound", "task+isr", "watermark", "tight", "budget"].map(String::from)
        )
    );
    for r in &rows {
        let full = &r.cells[FULL_STACK];
        let bound = full
            .stats
            .bound_bytes
            .expect("finite bound (asserted below)");
        println!(
            "{}",
            row(
                &r.app,
                &[
                    format!("{bound}B"),
                    format!(
                        "{}+{}",
                        full.stats.task_bytes.unwrap_or(0),
                        full.stats.isr_bytes.unwrap_or(0)
                    ),
                    format!("{}B", full.watermark),
                    format!(
                        "{:.0}%",
                        f64::from(full.watermark) * 100.0 / f64::from(bound)
                    ),
                    format!("{}B", full.stats.budget_bytes),
                ]
            )
        );
    }

    let body = json::Obj::new()
        .str("figure", "stack_analysis")
        .raw("analysis", &analysis_json(&rows))
        .raw("dynamics", &dynamics_json(&rows, seconds))
        .build();
    emit_json("stack", &body).expect("write BENCH_stack.json");
    runner.emit_speed("stack_analysis");

    // Self-gates: the invariants CI relies on, checked at the source.
    for r in &rows {
        for c in &r.cells {
            let bound = c.stats.bound_bytes.unwrap_or_else(|| {
                panic!(
                    "{} / {}: no finite stack bound (S001×{})",
                    r.app, c.preset, c.s001
                )
            });
            assert!(
                u32::from(c.watermark) <= bound,
                "{} / {}: observed watermark {}B exceeds the certified bound {}B — \
                 the analysis is unsound",
                r.app,
                c.preset,
                c.watermark,
                bound
            );
            assert_eq!(
                (c.s001, c.s002, c.s003),
                (0, 0, 0),
                "{} / {}: unexpected S00x diagnostics on a stock app",
                r.app,
                c.preset
            );
            assert!(
                bound <= c.stats.budget_bytes,
                "{} / {}: bound {}B blows the {}B SRAM budget",
                r.app,
                c.preset,
                bound,
                c.stats.budget_bytes
            );
        }
        assert!(
            r.cells.iter().any(|c| c.stats.wired_vectors > 0),
            "{}: no preset wired an interrupt vector — the ISR composition went untested",
            r.app
        );
        assert!(
            r.max_watermark() > 0,
            "{}: the simulator never observed a stack frame",
            r.app
        );
    }
    let cells = rows.iter().map(|r| r.cells.len()).sum::<usize>();
    println!();
    println!(
        "all {cells} app × preset cells certified: static bound ≥ observed watermark, \
         within the SRAM budget, zero S00x findings."
    );
}
