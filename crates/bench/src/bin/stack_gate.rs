//! CI's stack-bound gate: `stack_gate <committed> <fresh>` compares the
//! time-independent `"analysis"` object of a freshly published
//! `BENCH_stack.json` against the committed baseline byte-for-byte,
//! fails if any certified bound or S00x census drifted or if the fresh
//! run observed a watermark its bound does not dominate, and — when the
//! two runs share a simulated horizon — byte-compares their watermark
//! tables (that is how the interp-vs-bt rerun proves both engines
//! observe identical stack depths).

use bench::gate;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(committed), Some(fresh)) = (args.next(), args.next()) else {
        eprintln!("usage: stack_gate <committed BENCH_stack.json> <fresh BENCH_stack.json>");
        std::process::exit(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("stack_gate: {path}: {e}");
            std::process::exit(2);
        })
    };
    match gate::stack_check(&read(&committed), &read(&fresh)) {
        Ok(bytes) => println!(
            "stack gate ok: analysis object matches the committed baseline \
             ({bytes} bytes), every observed watermark within its certified bound"
        ),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
