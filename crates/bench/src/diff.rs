//! The differential-oracle harness: generated seeds + benchmark apps ×
//! the full preset registry, compared against the cure-only reference
//! pipeline and rendered as `BENCH_difftest.json`.
//!
//! Thin driver over [`safe_tinyos::difftest`]: this module owns the
//! grid shape (seeds through [`ExperimentRunner::run_items`], apps
//! through [`ExperimentRunner::run_grid`]), the verdict roll-ups, and
//! the JSON/table rendering. Everything downstream of the seeds is a
//! pure function, so serial and parallel runs emit identical bytes.

use safe_tinyos::difftest::{self, DiffCase, DiffConfig, DiffPhase, DiffVerdict, SubjectReport};
use safe_tinyos::{Pipeline, PRESET_NAMES};

use crate::{json, row, ExperimentRunner};

/// The default comparison set: every registry preset. The reference
/// (`cure` alone) rides along under its own name as a self-check — it
/// must match itself exactly.
pub fn default_presets() -> Vec<Pipeline> {
    PRESET_NAMES
        .iter()
        .map(|n| Pipeline::preset(n).expect("registry name"))
        .collect()
}

/// Whether a preset owes the reference full detection parity under
/// injected faults: it cures, and it did not explicitly waive the
/// hardened check-elimination policy. A `cxprop(noharden)` stack exists
/// precisely to demonstrate lost coverage, so its CheckStrengthReduction
/// verdicts are the experiment, not a regression — excluding it here
/// keeps the harness's self-gate and the artifact-level `difftest_gate`
/// in agreement on the same report bytes, whatever grid produced them.
pub fn is_cured(p: &Pipeline) -> bool {
    let spec = p.spec();
    spec.contains("cure(") && !spec.contains("noharden")
}

/// Runs the generated-program population: one [`SubjectReport`] per
/// seed, in seed order.
pub fn seed_reports(
    runner: &ExperimentRunner,
    seeds: &[u64],
    presets: &[Pipeline],
    cfg: &DiffConfig,
) -> Vec<SubjectReport> {
    runner.run_items(seeds, |_, &seed| {
        difftest::diff_seed(seed, presets, cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", difftest::generate_source(seed)))
    })
}

/// Runs the benchmark-app population: one [`SubjectReport`] per app,
/// in app order, workloads `seconds` long.
pub fn app_reports(
    runner: &ExperimentRunner,
    apps: &[&'static str],
    presets: &[Pipeline],
    seconds: u64,
    cfg: &DiffConfig,
) -> Vec<SubjectReport> {
    let grid = runner.run_grid(apps, presets, |job| {
        difftest::diff_app(runner.session(), &job.spec, job.item, seconds, cfg)
            .unwrap_or_else(|e| panic!("{} / {}: {e}", job.spec.name, job.item.name()))
    });
    apps.iter()
        .zip(grid)
        .map(|(app, rows)| SubjectReport {
            subject: app.to_string(),
            cases: rows.into_iter().flatten().collect(),
        })
        .collect()
}

/// Per-preset verdict tallies split by comparison phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresetTally {
    /// Preset name.
    pub preset: String,
    /// Golden-run tally.
    pub golden: safe_tinyos::DiffCounts,
    /// Injected-replay tally.
    pub injected: safe_tinyos::DiffCounts,
    /// Every non-Match case, in subject order.
    pub divergences: Vec<DiffCase>,
}

/// Rolls the reports up by preset (presets in `presets` order).
pub fn tally(presets: &[Pipeline], reports: &[SubjectReport]) -> Vec<PresetTally> {
    let mut out: Vec<PresetTally> = presets
        .iter()
        .map(|p| PresetTally {
            preset: p.name().to_string(),
            ..PresetTally::default()
        })
        .collect();
    for report in reports {
        for case in &report.cases {
            let Some(t) = out.iter_mut().find(|t| t.preset == case.preset) else {
                continue;
            };
            match case.phase {
                DiffPhase::Golden => t.golden.record(case.verdict),
                DiffPhase::Injected => t.injected.record(case.verdict),
            }
            if case.verdict != DiffVerdict::Match {
                t.divergences.push(case.clone());
            }
        }
    }
    out
}

/// Total miscompile verdicts across a tally set.
pub fn total_miscompiles(tallies: &[PresetTally]) -> usize {
    tallies
        .iter()
        .map(|t| t.golden.miscompile + t.injected.miscompile)
        .sum()
}

/// Total check-strength-reduction verdicts across the *cured* presets
/// of a tally set (uncured ones lose detection by design).
pub fn cured_strength_reductions(presets: &[Pipeline], tallies: &[PresetTally]) -> usize {
    tallies
        .iter()
        .filter(|t| presets.iter().any(|p| p.name() == t.preset && is_cured(p)))
        .map(|t| t.golden.check_strength_reduction + t.injected.check_strength_reduction)
        .sum()
}

fn counts_obj(c: &safe_tinyos::DiffCounts) -> String {
    json::Obj::new()
        .int("match", c.matched as i64)
        .int("benign", c.benign as i64)
        .int(
            "check_strength_reduction",
            c.check_strength_reduction as i64,
        )
        .int("miscompile", c.miscompile as i64)
        .build()
}

/// Renders the `BENCH_difftest.json` body.
pub fn render_json(
    seeds: &[u64],
    apps: &[&'static str],
    presets: &[Pipeline],
    cfg: &DiffConfig,
    seconds: u64,
    tallies: &[PresetTally],
) -> String {
    let preset_rows = tallies.iter().map(|t| {
        let divergences = t.divergences.iter().map(|d| {
            json::Obj::new()
                .str("subject", &d.subject)
                .str(
                    "phase",
                    match d.phase {
                        DiffPhase::Golden => "golden",
                        DiffPhase::Injected => "injected",
                    },
                )
                .str("site", &d.site)
                .str("verdict", d.verdict.key())
                .str("detail", &d.detail)
                .build()
        });
        json::Obj::new()
            .str("preset", &t.preset)
            .raw("golden", &counts_obj(&t.golden))
            .raw("injected", &counts_obj(&t.injected))
            .raw("divergences", &json::arr(divergences))
            .build()
    });
    json::Obj::new()
        .str("figure", "difftest")
        .int("seeds", seeds.len() as i64)
        .int("seed_base", seeds.first().copied().unwrap_or(0) as i64)
        .int("apps", apps.len() as i64)
        .int("budget_cycles", cfg.budget_cycles as i64)
        .int("fault_sites", cfg.fault_sites as i64)
        .int("site_seed", cfg.seed as i64)
        .int("seconds", seconds as i64)
        .int("total_miscompiles", total_miscompiles(tallies) as i64)
        .int(
            "total_cured_strength_reductions",
            cured_strength_reductions(presets, tallies) as i64,
        )
        .raw("presets", &json::arr(preset_rows))
        .build()
}

/// Prints the per-preset summary table
/// (`match/benign/CSR/miscompile`, golden + injected folded).
pub fn print_table(tallies: &[PresetTally]) {
    println!(
        "{}",
        row(
            "preset",
            &[
                "match".to_string(),
                "benign".to_string(),
                "csr".to_string(),
                "miscompile".to_string(),
            ],
        )
    );
    for t in tallies {
        let mut all = t.golden;
        all.add(&t.injected);
        println!(
            "{}",
            row(
                &t.preset,
                &[
                    all.matched.to_string(),
                    all.benign.to_string(),
                    all.check_strength_reduction.to_string(),
                    all.miscompile.to_string(),
                ],
            )
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_routes_phases_and_collects_divergences() {
        let presets = vec![Pipeline::unsafe_baseline()];
        let reports = vec![SubjectReport {
            subject: "s".into(),
            cases: vec![
                DiffCase {
                    subject: "s".into(),
                    preset: "unsafe".into(),
                    phase: DiffPhase::Golden,
                    site: String::new(),
                    verdict: DiffVerdict::Match,
                    detail: String::new(),
                },
                DiffCase {
                    subject: "s".into(),
                    preset: "unsafe".into(),
                    phase: DiffPhase::Injected,
                    site: "bitflip@g0^80@100".into(),
                    verdict: DiffVerdict::CheckStrengthReduction,
                    detail: "ref detected".into(),
                },
            ],
        }];
        let tallies = tally(&presets, &reports);
        assert_eq!(tallies[0].golden.matched, 1);
        assert_eq!(tallies[0].injected.check_strength_reduction, 1);
        assert_eq!(tallies[0].divergences.len(), 1);
        assert_eq!(total_miscompiles(&tallies), 0);
        // `unsafe` is not cured: its CSR does not count against the gate.
        assert_eq!(cured_strength_reductions(&presets, &tallies), 0);
    }

    #[test]
    fn noharden_stacks_waive_detection_parity() {
        // The classical-policy collapse exhibit loses detections by
        // design: it must not count against the parity gate, so the
        // harness's self-gate and difftest_gate agree on any artifact.
        let noharden = Pipeline::parse("cure(flid)|cxprop(noharden)|prune").unwrap();
        assert!(!is_cured(&noharden));
        assert!(is_cured(&Pipeline::safe_flid_cxprop()));
        assert!(!is_cured(&Pipeline::unsafe_baseline()));
    }

    #[test]
    fn cured_detection_loss_counts() {
        let presets = vec![Pipeline::safe_flid_cxprop()];
        let tallies = vec![PresetTally {
            preset: "safe-flid-cxprop".into(),
            injected: {
                let mut c = safe_tinyos::DiffCounts::default();
                c.record(DiffVerdict::CheckStrengthReduction);
                c
            },
            ..PresetTally::default()
        }];
        assert_eq!(cured_strength_reductions(&presets, &tallies), 1);
    }
}
