//! The fault-injection campaign harness: app × pipeline × injection-site
//! grids through the [`ExperimentRunner`], rendered as the
//! `BENCH_fault_injection.json` detection-rate report.
//!
//! This is the evaluation axis the paper claims but never plots: cured
//! images convert silent memory corruption into trapped,
//! FLID-diagnosable failures. The default grid compares the uncured
//! `gcc` baseline against three cured stacks; every fault plan, run, and
//! verdict is deterministic, so the rendered JSON is byte-identical
//! across worker-thread counts and across machines.
//!
//! The grid carries its own history lesson: through PR 4, the
//! interval-domain cured stacks detected *nothing* — classical check
//! elimination proves most index checks redundant under uncorrupted
//! program semantics and deletes them, fault coverage and all. The
//! engine's fault-hardened elimination policy (see `cxprop::engine`)
//! fixed that: a check is now removed only when its proof covers every
//! value a corrupted cell can take, so the interval stacks detect at
//! full parity with the constants-domain ones. The
//! `ccured+cxprop[ival,noharden]+gcc` stack keeps the classical policy
//! on the grid as a pinned experiment — its detection rate is asserted
//! to be exactly zero, so the collapse stays measurable instead of
//! becoming folklore.

use safe_tinyos::{CampaignConfig, CampaignReport, Pipeline};

use crate::{json, row, ExperimentRunner};

/// The pinned-collapse stack: interval-domain cXprop with the classical
/// (pre-fix) check-elimination policy. Exempt from the
/// detects-more-than-gcc gate; asserted to detect exactly zero.
pub const NOHARDEN_STACK: &str = "ccured+cxprop[ival,noharden]+gcc";

/// The default campaign pipelines: the uncured baseline the paper calls
/// `gcc` (plain nesC + backend, zero checks), the interval-domain
/// Figure 2 stacks (hardened elimination — nonzero detection), the
/// constants-domain contrast stacks, and the [`NOHARDEN_STACK`]
/// collapse exhibit.
pub fn default_pipelines() -> Vec<Pipeline> {
    vec![
        // In this campaign "gcc" is the *uncured* compiler, per the
        // paper's terminology — not the Figure 2 preset of the same
        // name (cure with the local optimizer off).
        Pipeline::unsafe_baseline().with_name("gcc"),
        Pipeline::fig2_ccured_gcc(),
        Pipeline::fig2_ccured_cxprop_gcc(),
        Pipeline::fig2_full(),
        Pipeline::parse("cure(flid)|cxprop(domain=constants)|prune")
            .expect("static spec")
            .with_name("ccured+cxprop[const]+gcc"),
        Pipeline::parse("cure(flid)|inline|cxprop(domain=constants)|prune")
            .expect("static spec")
            .with_name("ccured+inline+cxprop[const]+gcc"),
        Pipeline::parse("cure(flid)|cxprop(noharden)|prune")
            .expect("static spec")
            .with_name(NOHARDEN_STACK),
    ]
}

/// Runs the campaign grid: one [`CampaignReport`] per app × pipeline
/// cell, in deterministic grid order.
pub fn campaign_grid(
    runner: &ExperimentRunner,
    apps: &[&'static str],
    pipelines: &[Pipeline],
    config: &CampaignConfig,
) -> Vec<Vec<CampaignReport>> {
    runner.run_grid(apps, pipelines, |job| job.campaign(job.item, config))
}

/// Renders the campaign grid as the `BENCH_fault_injection.json` body:
/// per-pipeline rollups (injection counts, verdict tally, detection
/// rate) with per-app breakdowns, every detection carrying its site,
/// cycle point, FLID, and decoded message.
pub fn render_json(
    apps: &[&'static str],
    pipelines: &[Pipeline],
    config: &CampaignConfig,
    grid: &[Vec<CampaignReport>],
) -> String {
    let mut pipeline_rows = Vec::new();
    for (ci, pipeline) in pipelines.iter().enumerate() {
        let mut totals = ccured::VerdictCounts::default();
        let mut app_rows = Vec::new();
        for (ai, app) in apps.iter().enumerate() {
            let report = &grid[ai][ci];
            totals.add(&report.counts);
            let detections = report.detections().map(|(site, flid, message)| {
                json::Obj::new()
                    .str("site", &site.site)
                    .int("at_cycle", site.at_cycle as i64)
                    .int("flid", flid as i64)
                    .str("message", message)
                    .build()
            });
            app_rows.push(
                json::Obj::new()
                    .str("app", app)
                    .int("detected", report.counts.detected as i64)
                    .int("crash", report.counts.crashed as i64)
                    .int("silent", report.counts.silent as i64)
                    .int("benign", report.counts.benign as i64)
                    .raw("detections", &json::arr(detections))
                    .build(),
            );
        }
        pipeline_rows.push(
            json::Obj::new()
                .str("pipeline", pipeline.name())
                .int("injected", totals.total() as i64)
                .int("detected", totals.detected as i64)
                .int("crash", totals.crashed as i64)
                .int("silent", totals.silent as i64)
                .int("benign", totals.benign as i64)
                .num("detection_rate_pct", totals.detection_rate_pct())
                .raw("apps", &json::arr(app_rows))
                .build(),
        );
    }
    json::Obj::new()
        .str("figure", "fault_injection")
        .int("seconds", config.seconds as i64)
        .int("sites", config.sites as i64)
        .int("seed", config.seed as i64)
        .raw("pipelines", &json::arr(pipeline_rows))
        .build()
}

/// Prints the campaign's summary table (apps down, pipelines across,
/// `detected/silent` per cell, rollup row at the bottom).
pub fn print_table(apps: &[&'static str], pipelines: &[Pipeline], grid: &[Vec<CampaignReport>]) {
    let labels: Vec<String> = pipelines.iter().map(|p| p.name().to_string()).collect();
    println!("{}", row("app (det/silent)", &labels));
    let mut totals = vec![ccured::VerdictCounts::default(); pipelines.len()];
    for (ai, app) in apps.iter().enumerate() {
        let cells: Vec<String> = grid[ai]
            .iter()
            .enumerate()
            .map(|(ci, r)| {
                totals[ci].add(&r.counts);
                format!("{}/{}", r.counts.detected, r.counts.silent)
            })
            .collect();
        println!("{}", row(app, &cells));
    }
    let rollup: Vec<String> = totals
        .iter()
        .map(|t| format!("{:.1}%", t.detection_rate_pct()))
        .collect();
    println!("{}", row("detection rate", &rollup));
}

/// Per-pipeline detection totals over the grid, in pipeline order.
pub fn detection_totals(grid: &[Vec<CampaignReport>]) -> Vec<usize> {
    let pipelines = grid.first().map_or(0, Vec::len);
    (0..pipelines)
        .map(|ci| grid.iter().map(|row| row[ci].counts.detected).sum())
        .collect()
}
