//! The fleet harness's data model: the mote-count scaling sweep, the
//! network-level fault campaign, and the `BENCH_fleet.json` payload
//! (the `fleet` binary drives it, `fleet_gate` diffs the published
//! artifact).
//!
//! The emitted JSON has two top-level objects with different CI
//! contracts:
//!
//! * `"pinned"` — per-cell simulation outcomes (duty cycle, sink
//!   delivery, traffic and churn tallies), the fleet campaign's verdict
//!   histogram, and the lockstep-equivalence flag. Every value is a
//!   pure function of the build and the seeds — wall time never leaks
//!   in — so CI byte-compares each fresh row against the committed row
//!   with the same `(motes, seed)` key (see [`crate::gate::fleet_check`]).
//!   CI sweeps a smaller mote population than the committed artifact;
//!   the gate compares the subset.
//! * `"dynamics"` — wall times, scheduler pops per second, thread
//!   count. Machine-dependent, never pinned.

use std::time::Instant;

use mcu::fleet::FleetStats;
use mcu::LinkQuality;
use safe_tinyos::fleet::{
    build_fleet, fleet_campaign_plans, fleet_golden, horizon_cycles, run_fleet_site, sink_report,
    FleetCampaignConfig, FleetSpec, FleetVerdictCounts, SinkReport,
};
use safe_tinyos::Build;

use crate::{json, ExperimentRunner};

/// Per-link quality of the sweep's unit-disk grid: 1% loss, 0.4%
/// reordering, 0.2% duplication per byte — lossy enough that multihop
/// delivery visibly degrades with depth, reliable enough that the
/// single-shot beacon flood still forms a routing tree (an 11-byte
/// beacon frame survives a link with probability `0.99^11 ≈ 0.90`;
/// at 3% loss that falls to 0.71 and tree formation becomes a coin
/// flip).
pub const SWEEP_QUALITY: LinkQuality = LinkQuality {
    loss_ppm: 10_000,
    dup_ppm: 2_000,
    reorder_ppm: 4_000,
};

/// First seed of the sweep (cell seeds count up from here).
pub const SWEEP_BASE_SEED: u64 = 0xF1EE7;

/// The `(motes, seed)` cells of a sweep: `seeds` consecutive seeds per
/// mote count, in mote-major order.
pub fn sweep_cells(motes: &[usize], seeds: u64) -> Vec<(usize, u64)> {
    motes
        .iter()
        .flat_map(|&m| (0..seeds).map(move |s| (m, SWEEP_BASE_SEED + s)))
        .collect()
}

/// The sweep's scenario for one cell.
pub fn sweep_spec(motes: usize, seconds: u64, seed: u64) -> FleetSpec {
    FleetSpec::grid(motes, seconds, seed, SWEEP_QUALITY)
}

/// One cell of the scaling sweep.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Fleet size.
    pub motes: usize,
    /// Cell seed.
    pub seed: u64,
    /// Mean duty cycle across the fleet, percent.
    pub duty_pct: f64,
    /// Sink-side delivery scoring.
    pub report: SinkReport,
    /// Scheduler and channel tallies.
    pub stats: FleetStats,
    /// Wall time of the cell (dynamics only — never pinned).
    pub wall_ms: f64,
}

/// Builds, churns, and runs one sweep cell. Every cell power-cycles one
/// mid-fleet mote through the middle third of the run (fleets of at
/// least 4), so the pinned rows keep the churn path honest.
pub fn measure_cell(build: &Build, motes: usize, seed: u64, seconds: u64) -> FleetRow {
    let spec = sweep_spec(motes, seconds, seed);
    let horizon = horizon_cycles(build, &spec);
    let start = Instant::now();
    let mut fleet = build_fleet(build, &spec);
    if motes >= 4 {
        fleet.schedule_power_cycle(motes / 2, horizon / 3, Some(horizon / 2));
    }
    fleet.run(horizon);
    FleetRow {
        motes,
        seed,
        duty_pct: fleet.mean_duty_cycle_percent(),
        report: sink_report(&fleet),
        stats: fleet.stats(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs every sweep cell across the runner's worker threads. Results
/// come back in cell order, and every pinned field is independent of
/// the thread count.
pub fn measure(
    runner: &ExperimentRunner,
    build: &Build,
    cells: &[(usize, u64)],
    seconds: u64,
) -> Vec<FleetRow> {
    runner.run_items(cells, |_, &(motes, seed)| {
        measure_cell(build, motes, seed, seconds)
    })
}

/// The fleet campaign's fixed scenario: a 9-mote lossy grid with the
/// center mote as the corruption victim. Constants (not knobs) on
/// purpose — the campaign's verdict histogram is byte-pinned, so CI and
/// the committed artifact must run the identical experiment.
pub fn campaign_config() -> FleetCampaignConfig {
    FleetCampaignConfig {
        spec: FleetSpec::grid(9, 3, SWEEP_BASE_SEED ^ 0xCA3, SWEEP_QUALITY),
        victim: 4,
        sites: 6,
        site_seed: 0x0D15_EA5E,
    }
}

/// Runs the fleet campaign sharded site-by-site across the runner's
/// threads. Returns the verdict histogram and the number of sites run.
pub fn run_campaign(runner: &ExperimentRunner, build: &Build) -> (FleetVerdictCounts, usize) {
    let cfg = campaign_config();
    let golden = fleet_golden(build, &cfg);
    let plans = fleet_campaign_plans(build, &cfg);
    let results = runner.run_items(&plans, |_, plan| run_fleet_site(build, &cfg, plan, &golden));
    let mut counts = FleetVerdictCounts::default();
    for r in &results {
        counts.record(&r.verdict);
    }
    (counts, results.len())
}

/// Serializes one byte-pinned sweep row (no wall time).
pub fn pinned_row_json(r: &FleetRow) -> String {
    json::Obj::new()
        .int("motes", r.motes as i64)
        .int("seed", r.seed as i64)
        .num("duty_pct", r.duty_pct)
        .int("sink_frames", r.report.frames as i64)
        .int("crc_rejects", r.report.crc_rejects as i64)
        .int("heard", r.report.heard as i64)
        .int("offered", r.report.offered as i64)
        .num("delivery_rate_pct", r.report.delivery_rate_pct)
        .int("tx_bytes", r.stats.tx_bytes as i64)
        .int("delivered", r.stats.delivered as i64)
        .int("dropped", r.stats.dropped as i64)
        .int("duplicated", r.stats.duplicated as i64)
        .int("reordered", r.stats.reordered as i64)
        .int("dropped_offline", r.stats.dropped_offline as i64)
        .int("reboots", r.stats.reboots as i64)
        .build()
}

/// Serializes the byte-pinned `"pinned"` object.
pub fn pinned_json(
    rows: &[FleetRow],
    seconds: u64,
    campaign: (FleetVerdictCounts, usize),
    equivalence_ok: bool,
) -> String {
    let cfg = campaign_config();
    let (counts, sites) = campaign;
    json::Obj::new()
        .int("fleet_seconds", seconds as i64)
        .raw(
            "quality",
            &json::Obj::new()
                .int("loss_ppm", SWEEP_QUALITY.loss_ppm as i64)
                .int("dup_ppm", SWEEP_QUALITY.dup_ppm as i64)
                .int("reorder_ppm", SWEEP_QUALITY.reorder_ppm as i64)
                .build(),
        )
        .raw("rows", &json::arr(rows.iter().map(pinned_row_json)))
        .raw(
            "campaign",
            &json::Obj::new()
                .int("motes", cfg.spec.motes as i64)
                .int("victim", cfg.victim as i64)
                .int("sites", sites as i64)
                .int("detected", counts.detected as i64)
                .int("crashed", counts.crashed as i64)
                .int("poisoned", counts.poisoned as i64)
                .int("contained", counts.contained as i64)
                .int("benign", counts.benign as i64)
                .build(),
        )
        .raw(
            "equivalence_ok",
            if equivalence_ok { "true" } else { "false" },
        )
        .build()
}

/// Serializes the machine-dependent `"dynamics"` object.
pub fn dynamics_json(rows: &[FleetRow], threads: usize) -> String {
    let cells = rows
        .iter()
        .map(|r| {
            let pops_per_sec = if r.wall_ms > 0.0 {
                r.stats.pops as f64 * 1e3 / r.wall_ms
            } else {
                0.0
            };
            json::Obj::new()
                .int("motes", r.motes as i64)
                .int("seed", r.seed as i64)
                .num("wall_ms", r.wall_ms)
                .int("pops", r.stats.pops as i64)
                .num("pops_per_sec", pops_per_sec)
                .build()
        })
        .collect::<Vec<_>>();
    json::Obj::new()
        .int("threads", threads as i64)
        .raw("rows", &json::arr(cells))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_cells_cover_every_size_and_seed() {
        let cells = sweep_cells(&[10, 100], 2);
        assert_eq!(
            cells,
            vec![
                (10, SWEEP_BASE_SEED),
                (10, SWEEP_BASE_SEED + 1),
                (100, SWEEP_BASE_SEED),
                (100, SWEEP_BASE_SEED + 1),
            ]
        );
    }

    #[test]
    fn pinned_row_omits_wall_time() {
        let row = FleetRow {
            motes: 10,
            seed: 1,
            duty_pct: 2.5,
            report: SinkReport {
                frames: 8,
                crc_rejects: 0,
                heard: 6,
                offered: 9,
                delivery_rate_pct: 66.6667,
            },
            stats: FleetStats::default(),
            wall_ms: 123.4,
        };
        let j = pinned_row_json(&row);
        assert!(j.contains("\"motes\":10"));
        assert!(j.contains("\"heard\":6"));
        assert!(!j.contains("wall"), "{j}");
    }

    #[test]
    fn campaign_scenario_is_fixed() {
        let cfg = campaign_config();
        assert_eq!(cfg.spec.motes, 9);
        assert_eq!(cfg.victim, 4);
        assert!(cfg.victim < cfg.spec.motes);
    }
}
