//! CI gate logic over published `BENCH_*.json` artifacts.
//!
//! * The **bench-regression gate** compares a freshly produced
//!   `BENCH_toolchain_speed.json` against the committed baseline and
//!   fails when the toolchain got more than a configurable factor
//!   slower (`STOS_REGRESSION_FACTOR`, default 2× — wall times on
//!   shared runners are noisy; the gate catches order-of-magnitude
//!   rot, not percent-level drift).
//! * The **difftest gate** ([`difftest_check`], the `difftest_gate`
//!   binary) fails on any Miscompile verdict in a published
//!   `BENCH_difftest.json` — the differential oracle's hard invariant.
//! * The **race gate** ([`race_check`], the `race_gate` binary)
//!   byte-compares the time-independent `"analysis"` object of a
//!   published `BENCH_races.json` against the committed baseline — any
//!   drift in the diagnostic census, hardening counts, or code-size
//!   deltas is a behavior change someone must sign off on by
//!   regenerating the baseline — and checks the fresh `"dynamics"`
//!   object still shows hardened builds immune to torn updates.
//! * The **stack gate** ([`stack_check`], the `stack_gate` binary)
//!   byte-compares the `"analysis"` object of a published
//!   `BENCH_stack.json` (certified bounds and S00x censuses), requires
//!   zero `watermark_violations` in the fresh dynamics, and — for
//!   same-horizon runs — byte-compares the observed watermark tables,
//!   which is how the `STOS_ENGINE=bt` rerun proves engine invariance.
//!
//! CI's `gates` job downloads the harness job's artifacts and runs the
//! gate binaries over them, so a failure always points at bytes you can
//! fetch from the run.

/// Default regression factor: fail when fresh wall time exceeds
/// baseline × 2.
pub const DEFAULT_FACTOR: f64 = 2.0;

/// The regression factor in effect: `STOS_REGRESSION_FACTOR` if set and
/// parseable, else [`DEFAULT_FACTOR`].
pub fn factor_from_env() -> f64 {
    std::env::var("STOS_REGRESSION_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|f: &f64| f.is_finite() && *f > 0.0)
        .unwrap_or(DEFAULT_FACTOR)
}

/// Extracts the first number stored under `"key":` in a flat JSON body
/// (the `BENCH_*.json` files are shallow enough that a scan beats
/// hand-rolling a full parser in an offline build).
pub fn extract_num(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The gate's measurement: baseline and fresh wall times and their
/// ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateOutcome {
    /// The committed baseline's wall time (ms).
    pub baseline_ms: f64,
    /// The fresh run's wall time (ms).
    pub fresh_ms: f64,
    /// `fresh / baseline` (0 when the baseline is 0).
    pub ratio: f64,
}

/// Compares two `BENCH_toolchain_speed.json` bodies on `wall_ms`.
///
/// # Errors
///
/// Returns a description when either body lacks a parseable `wall_ms`,
/// or when the fresh wall time exceeds `baseline × factor`.
pub fn check(baseline: &str, fresh: &str, factor: f64) -> Result<GateOutcome, String> {
    let baseline_ms =
        extract_num(baseline, "wall_ms").ok_or("baseline JSON has no wall_ms field")?;
    let fresh_ms = extract_num(fresh, "wall_ms").ok_or("fresh JSON has no wall_ms field")?;
    let ratio = if baseline_ms > 0.0 {
        fresh_ms / baseline_ms
    } else {
        0.0
    };
    let outcome = GateOutcome {
        baseline_ms,
        fresh_ms,
        ratio,
    };
    if ratio > factor {
        return Err(format!(
            "bench regression: wall {fresh_ms:.1}ms vs baseline {baseline_ms:.1}ms \
             ({ratio:.2}x > allowed {factor:.2}x)"
        ));
    }
    Ok(outcome)
}

/// Gates a published `BENCH_difftest.json` body: zero Miscompile
/// verdicts, and (belt and braces with the harness's own self-gate)
/// zero CheckStrengthReduction verdicts for cured presets. Returns the
/// `(miscompiles, cured strength reductions)` it found when both are
/// zero.
///
/// # Errors
///
/// Returns a description when the body lacks the total fields or when
/// either total is non-zero.
pub fn difftest_check(body: &str) -> Result<(usize, usize), String> {
    let miscompiles = extract_num(body, "total_miscompiles")
        .ok_or("difftest JSON has no total_miscompiles field")? as usize;
    let csr = extract_num(body, "total_cured_strength_reductions")
        .ok_or("difftest JSON has no total_cured_strength_reductions field")?
        as usize;
    if miscompiles > 0 {
        return Err(format!(
            "difftest gate: {miscompiles} miscompile verdict(s) in the published report"
        ));
    }
    if csr > 0 {
        return Err(format!(
            "difftest gate: cured presets lost {csr} detection(s) the reference makes"
        ));
    }
    Ok((miscompiles, csr))
}

/// Gates a published `BENCH_sim_speed.json` body: the engines must have
/// agreed on every subject (`engines_identical`), and the gated kernel
/// aggregate speedup must reach the published `speedup_min`. Returns
/// `(kernel_speedup, speedup_min)` on success.
///
/// # Errors
///
/// Returns a description when the body lacks a field, the engines
/// diverged, or the speedup is below the floor.
pub fn sim_speed_check(body: &str) -> Result<(f64, f64), String> {
    let speedup =
        extract_num(body, "kernel_speedup").ok_or("sim_speed JSON has no kernel_speedup field")?;
    let min = extract_num(body, "speedup_min").ok_or("sim_speed JSON has no speedup_min field")?;
    let needle = "\"engines_identical\":";
    let ident = body
        .find(needle)
        .map(|i| body[i + needle.len()..].trim_start().starts_with("true"))
        .ok_or("sim_speed JSON has no engines_identical field")?;
    if !ident {
        return Err("sim_speed gate: engines diverged on at least one subject".into());
    }
    if speedup < min {
        return Err(format!(
            "sim_speed gate: gated kernel speedup {speedup:.2}x below the {min:.1}x floor"
        ));
    }
    Ok((speedup, min))
}

/// Extracts the balanced `{...}` object stored under `"key":` in a JSON
/// body. The `BENCH_*.json` writers never emit `{` or `}` inside string
/// literals (names are app/pass identifiers), so a brace counter is
/// exact for them; this is not a general JSON parser.
pub fn extract_obj<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":{{");
    let start = body.find(&needle)? + needle.len() - 1;
    let mut depth = 0usize;
    for (i, b) in body[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// The cache gate's measurement, all read from one published
/// `BENCH_toolchain_speed.json` body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheOutcome {
    /// The cold grid's wall time (ms).
    pub wall_ms: f64,
    /// The warm re-run's wall time (ms).
    pub warm_wall_ms: f64,
    /// Actual cure-pass executions (cache misses) on the cold grid.
    pub cure_runs: f64,
    /// Required cure-pass executions: one per distinct (app, cure spec)
    /// pair.
    pub cure_unique: f64,
}

/// Gates the pass cache's effectiveness from a published
/// `BENCH_toolchain_speed.json` body (the canonical fig3 grid):
/// the `cure` pass must have executed exactly once per distinct
/// (app, cure spec) input — not once per grid cell — and the warm
/// re-run of the grid must be at least `factor`× faster than the cold
/// one.
///
/// # Errors
///
/// Returns a description when the body lacks the `cache` section or any
/// of its fields, when cure ran a different number of times than its
/// distinct inputs demand, or when the warm window isn't `factor`×
/// faster than the cold wall.
pub fn cache_check(body: &str, factor: f64) -> Result<CacheOutcome, String> {
    let wall_ms = extract_num(body, "wall_ms").ok_or("toolchain_speed JSON has no wall_ms")?;
    let cache = extract_obj(body, "cache")
        .ok_or("toolchain_speed JSON has no cache section — regenerate it from the fig3 grid")?;
    let warm_wall_ms =
        extract_num(cache, "warm_wall_ms").ok_or("cache section has no warm_wall_ms")?;
    let cure_runs = extract_num(cache, "cure_runs").ok_or("cache section has no cure_runs")?;
    let cure_unique =
        extract_num(cache, "cure_unique").ok_or("cache section has no cure_unique")?;
    let outcome = CacheOutcome {
        wall_ms,
        warm_wall_ms,
        cure_runs,
        cure_unique,
    };
    if cure_runs != cure_unique {
        return Err(format!(
            "cache gate: cure ran {cure_runs} times for {cure_unique} distinct inputs — \
             the pass cache is not deduplicating shared prefixes"
        ));
    }
    if warm_wall_ms * factor > wall_ms {
        return Err(format!(
            "cache gate: warm grid wall {warm_wall_ms:.1}ms is not {factor:.1}x below the \
             cold wall {wall_ms:.1}ms"
        ));
    }
    Ok(outcome)
}

/// Gates a published `BENCH_races.json` body against the committed
/// baseline: the `"analysis"` objects must be byte-identical (it holds
/// only time-independent facts — diagnostic censuses, hardening counts,
/// code-size deltas), and the published `"dynamics"` object must show
/// zero divergences for the hardened builds. Returns the matched
/// `"analysis"` byte length.
///
/// # Errors
///
/// Returns a description when either body lacks the `"analysis"` object,
/// the objects differ, the fresh body lacks `hardened_divergences`, or
/// that count is non-zero.
pub fn race_check(committed: &str, fresh: &str) -> Result<usize, String> {
    let want = extract_obj(committed, "analysis")
        .ok_or("committed BENCH_races.json has no analysis object")?;
    let got =
        extract_obj(fresh, "analysis").ok_or("fresh BENCH_races.json has no analysis object")?;
    if want != got {
        let at = want
            .bytes()
            .zip(got.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| want.len().min(got.len()));
        let ctx = |s: &str| {
            let lo = at.saturating_sub(40);
            s.get(lo..(at + 40).min(s.len())).unwrap_or("").to_string()
        };
        return Err(format!(
            "race gate: analysis object drifted from the committed baseline \
             (first difference at byte {at}):\n  committed: …{}…\n  fresh:     …{}…\n\
             regenerate BENCH_races.json if the change is intended",
            ctx(want),
            ctx(got)
        ));
    }
    let hardened = extract_num(fresh, "hardened_divergences")
        .ok_or("fresh BENCH_races.json has no hardened_divergences field")?
        as usize;
    if hardened > 0 {
        return Err(format!(
            "race gate: {hardened} torn-update divergence(s) on races(fix) builds — \
             the hardening is no longer airtight"
        ));
    }
    Ok(got.len())
}

/// Gates a published `BENCH_stack.json` body against the committed
/// baseline: the `"analysis"` objects must be byte-identical (certified
/// bounds, task/ISR splits, budgets, and S00x censuses are pure
/// functions of toolchain + sources — and of nothing else, so the bytes
/// also pin worker-count and engine invariance), and the fresh
/// `"dynamics"` object must report zero `watermark_violations` (every
/// observed watermark dominated by a finite certified bound). When both
/// bodies simulated the same horizon (`seconds` match), their
/// `"watermarks"` tables must also be byte-identical — the
/// engine-invariance check CI's interp-vs-bt rerun leans on. Returns
/// the matched `"analysis"` byte length.
///
/// # Errors
///
/// Returns a description when either body lacks a required object or
/// field, the analysis bytes drifted, soundness was violated, or
/// same-horizon watermarks diverged.
pub fn stack_check(committed: &str, fresh: &str) -> Result<usize, String> {
    let want = extract_obj(committed, "analysis")
        .ok_or("committed BENCH_stack.json has no analysis object")?;
    let got =
        extract_obj(fresh, "analysis").ok_or("fresh BENCH_stack.json has no analysis object")?;
    if want != got {
        return Err(format!(
            "stack gate: analysis object drifted from the committed baseline ({})\n\
             regenerate BENCH_stack.json if the change is intended",
            first_diff(want, got)
        ));
    }
    let violations = extract_num(fresh, "watermark_violations")
        .ok_or("fresh BENCH_stack.json has no watermark_violations field")?
        as usize;
    if violations > 0 {
        return Err(format!(
            "stack gate: {violations} cell(s) observed a stack watermark their certified \
             bound does not dominate — the analysis is unsound"
        ));
    }
    let same_horizon = match (
        extract_num(committed, "seconds"),
        extract_num(fresh, "seconds"),
    ) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };
    if same_horizon {
        let want_w = extract_obj(committed, "watermarks")
            .ok_or("committed BENCH_stack.json has no watermarks object")?;
        let got_w = extract_obj(fresh, "watermarks")
            .ok_or("fresh BENCH_stack.json has no watermarks object")?;
        if want_w != got_w {
            return Err(format!(
                "stack gate: same-horizon runs observed different watermarks ({})\n\
                 the execution engines (or worker counts) no longer agree on stack depth",
                first_diff(want_w, got_w)
            ));
        }
    }
    Ok(got.len())
}

/// Extracts the balanced `[...]` array stored under `"key":` in a JSON
/// body. Same caveats as [`extract_obj`]: the `BENCH_*.json` writers
/// never emit brackets inside string literals.
pub fn extract_arr<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":[");
    let start = body.find(&needle)? + needle.len() - 1;
    let mut depth = 0usize;
    for (i, b) in body[start..].bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a JSON array of objects into its top-level object slices.
pub fn split_objs(arr: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in arr.bytes().enumerate() {
        match b {
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&arr[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Renders the first byte difference between two strings with context,
/// for gate failure messages.
fn first_diff(want: &str, got: &str) -> String {
    let at = want
        .bytes()
        .zip(got.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| want.len().min(got.len()));
    let ctx = |s: &str| {
        let lo = at.saturating_sub(40);
        s.get(lo..(at + 40).min(s.len())).unwrap_or("").to_string()
    };
    format!(
        "first difference at byte {at}:\n  committed: …{}…\n  fresh:     …{}…",
        ctx(want),
        ctx(got)
    )
}

/// Gates a published `BENCH_fleet.json` body against the committed
/// baseline. The fresh run may sweep a smaller mote population (CI sets
/// `STOS_MOTES`/`STOS_FLEET_SEEDS`), so each fresh `"pinned"` row is
/// byte-compared against the committed row with the same
/// `(motes, seed)` key; the campaign histogram and the horizon are
/// compared whole, and the fresh run must report lockstep equivalence.
/// Returns the number of rows matched.
///
/// # Errors
///
/// Returns a description when either body lacks the `"pinned"` object,
/// the horizons differ, equivalence failed, the campaign drifted, a
/// fresh row has no committed counterpart, or a matched row's bytes
/// drifted.
pub fn fleet_check(committed: &str, fresh: &str) -> Result<usize, String> {
    let want = extract_obj(committed, "pinned")
        .ok_or("committed BENCH_fleet.json has no pinned object")?;
    let got = extract_obj(fresh, "pinned").ok_or("fresh BENCH_fleet.json has no pinned object")?;
    let key = |row: &str| {
        (
            extract_num(row, "motes").map(|v| v as u64),
            extract_num(row, "seed").map(|v| v as u64),
        )
    };

    let want_secs =
        extract_num(want, "fleet_seconds").ok_or("committed pinned object has no fleet_seconds")?;
    let got_secs =
        extract_num(got, "fleet_seconds").ok_or("fresh pinned object has no fleet_seconds")?;
    if want_secs != got_secs {
        return Err(format!(
            "fleet gate: horizon mismatch — committed ran {want_secs}s, fresh ran {got_secs}s \
             (STOS_FLEET_SECONDS must match the committed baseline)"
        ));
    }
    if !got.contains("\"equivalence_ok\":true") {
        return Err(
            "fleet gate: the event-driven engine diverged from the lockstep reference \
             (equivalence_ok is not true)"
                .into(),
        );
    }
    let want_campaign =
        extract_obj(want, "campaign").ok_or("committed pinned object has no campaign")?;
    let got_campaign = extract_obj(got, "campaign").ok_or("fresh pinned object has no campaign")?;
    if want_campaign != got_campaign {
        return Err(format!(
            "fleet gate: campaign verdicts drifted from the committed baseline ({})\n\
             regenerate BENCH_fleet.json if the change is intended",
            first_diff(want_campaign, got_campaign)
        ));
    }

    let want_rows = split_objs(extract_arr(want, "rows").ok_or("committed pinned has no rows")?);
    let got_rows = split_objs(extract_arr(got, "rows").ok_or("fresh pinned has no rows")?);
    if got_rows.is_empty() {
        return Err("fleet gate: fresh run produced no sweep rows".into());
    }
    for row in &got_rows {
        let k = key(row);
        let Some(base) = want_rows.iter().find(|w| key(w) == k) else {
            return Err(format!(
                "fleet gate: fresh row {k:?} has no committed counterpart — \
                 regenerate BENCH_fleet.json with the new sweep"
            ));
        };
        if base != row {
            return Err(format!(
                "fleet gate: row {k:?} drifted from the committed baseline ({})\n\
                 regenerate BENCH_fleet.json if the change is intended",
                first_diff(base, row)
            ));
        }
    }
    Ok(got_rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str =
        r#"{"figure":"toolchain_speed","wall_ms":100.0,"stage_ms":{"frontend":5.0}}"#;

    #[test]
    fn extracts_top_level_numbers() {
        assert_eq!(extract_num(BASE, "wall_ms"), Some(100.0));
        assert_eq!(extract_num(BASE, "frontend"), Some(5.0));
        assert_eq!(extract_num(BASE, "missing"), None);
    }

    #[test]
    fn within_factor_passes() {
        let fresh = r#"{"wall_ms":180.0}"#;
        let out = check(BASE, fresh, 2.0).unwrap();
        assert_eq!(out.baseline_ms, 100.0);
        assert_eq!(out.fresh_ms, 180.0);
        assert!((out.ratio - 1.8).abs() < 1e-9);
    }

    #[test]
    fn beyond_factor_fails() {
        let fresh = r#"{"wall_ms":250.0}"#;
        let err = check(BASE, fresh, 2.0).unwrap_err();
        assert!(err.contains("2.50x"), "{err}");
    }

    #[test]
    fn missing_fields_fail() {
        assert!(check("{}", r#"{"wall_ms":1.0}"#, 2.0).is_err());
        assert!(check(BASE, "{}", 2.0).is_err());
    }

    #[test]
    fn zero_baseline_never_regresses() {
        let base = r#"{"wall_ms":0.0}"#;
        let fresh = r#"{"wall_ms":50.0}"#;
        assert!(check(base, fresh, 2.0).is_ok());
    }

    #[test]
    fn env_factor_defaults_sanely() {
        // The env var is unset in the test environment.
        assert_eq!(factor_from_env(), DEFAULT_FACTOR);
    }

    #[test]
    fn difftest_gate_passes_clean_reports() {
        let body =
            r#"{"figure":"difftest","total_miscompiles":0,"total_cured_strength_reductions":0}"#;
        assert_eq!(difftest_check(body), Ok((0, 0)));
    }

    #[test]
    fn difftest_gate_fails_on_miscompiles_and_cured_csr() {
        let bad = r#"{"total_miscompiles":2,"total_cured_strength_reductions":0}"#;
        assert!(difftest_check(bad).unwrap_err().contains("2 miscompile"));
        let lost = r#"{"total_miscompiles":0,"total_cured_strength_reductions":3}"#;
        assert!(difftest_check(lost).unwrap_err().contains("3 detection"));
        assert!(difftest_check("{}").is_err());
    }

    const SPEED: &str = r#"{"figure":"toolchain_speed","wall_ms":150.0,"stage_ms":{"frontend":5.0},"cache":{"warm_wall_ms":20.0,"warm_compile_ms":4.0,"cure_runs":48,"cure_unique":48,"passes":{"cure":{"hits":24,"misses":48,"bytes":100}}}}"#;

    #[test]
    fn cache_gate_passes_effective_cache() {
        let out = cache_check(SPEED, 3.0).unwrap();
        assert_eq!(out.wall_ms, 150.0);
        assert_eq!(out.warm_wall_ms, 20.0);
        assert_eq!(out.cure_runs, 48.0);
    }

    #[test]
    fn cache_gate_fails_on_duplicate_cure_runs() {
        let dup = SPEED.replace(r#""cure_runs":48"#, r#""cure_runs":72"#);
        let err = cache_check(&dup, 3.0).unwrap_err();
        assert!(err.contains("not deduplicating"), "{err}");
    }

    #[test]
    fn cache_gate_fails_on_slow_warm_window() {
        let slow = SPEED.replace(r#""warm_wall_ms":20.0"#, r#""warm_wall_ms":80.0"#);
        let err = cache_check(&slow, 3.0).unwrap_err();
        assert!(err.contains("warm grid wall"), "{err}");
    }

    #[test]
    fn cache_gate_requires_the_cache_section() {
        assert!(cache_check(BASE, 3.0).is_err());
        let gutted = SPEED.replace(r#""warm_wall_ms":20.0,"#, "");
        assert!(cache_check(&gutted, 3.0).is_err());
    }

    const RACES: &str = r#"{"figure":"race_analysis","analysis":{"apps":[{"app":"A","r001":2}],"totals":{"r001":2}},"dynamics":{"hardened_divergences":0,"unhardened_divergences":5}}"#;

    #[test]
    fn extract_obj_returns_balanced_objects() {
        assert_eq!(
            extract_obj(RACES, "analysis"),
            Some(r#"{"apps":[{"app":"A","r001":2}],"totals":{"r001":2}}"#)
        );
        assert_eq!(extract_obj(RACES, "totals"), Some(r#"{"r001":2}"#));
        assert_eq!(extract_obj(RACES, "missing"), None);
        assert_eq!(extract_obj(r#"{"analysis":{"#, "analysis"), None);
    }

    #[test]
    fn race_gate_passes_identical_analysis() {
        let n = race_check(RACES, RACES).unwrap();
        assert_eq!(n, extract_obj(RACES, "analysis").unwrap().len());
    }

    #[test]
    fn race_gate_fails_on_analysis_drift() {
        let fresh = RACES.replace(r#""r001":2"#, r#""r001":3"#);
        let err = race_check(RACES, &fresh).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
    }

    #[test]
    fn race_gate_fails_on_hardened_divergences() {
        let fresh = RACES.replace(r#""hardened_divergences":0"#, r#""hardened_divergences":1"#);
        let err = race_check(RACES, &fresh).unwrap_err();
        assert!(err.contains("airtight"), "{err}");
    }

    #[test]
    fn race_gate_requires_both_objects() {
        assert!(race_check("{}", RACES).is_err());
        assert!(race_check(RACES, "{}").is_err());
    }

    const STACK: &str = r#"{"figure":"stack_analysis","analysis":{"apps":[{"app":"A","presets":[{"preset":"unsafe","bound":56,"s001":0}]}],"totals":{"s001":0,"bounded_cells":1}},"dynamics":{"seconds":10,"watermark_violations":0,"watermarks":{"A":[44]},"apps":[{"app":"A","bound":56,"watermark":44}]}}"#;

    #[test]
    fn stack_gate_passes_identical_bodies() {
        let n = stack_check(STACK, STACK).unwrap();
        assert_eq!(n, extract_obj(STACK, "analysis").unwrap().len());
    }

    #[test]
    fn stack_gate_fails_on_analysis_drift() {
        let fresh = STACK.replace(r#""bound":56,"s001":0"#, r#""bound":64,"s001":0"#);
        let err = stack_check(STACK, &fresh).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
    }

    #[test]
    fn stack_gate_fails_on_watermark_violations() {
        let fresh = STACK.replace(r#""watermark_violations":0"#, r#""watermark_violations":2"#);
        let err = stack_check(STACK, &fresh).unwrap_err();
        assert!(err.contains("unsound"), "{err}");
    }

    #[test]
    fn stack_gate_compares_watermarks_only_on_matching_horizons() {
        // Same horizon, different watermarks: the engines disagreed.
        let diverged = STACK.replace(r#""watermarks":{"A":[44]}"#, r#""watermarks":{"A":[45]}"#);
        let err = stack_check(STACK, &diverged).unwrap_err();
        assert!(err.contains("no longer agree"), "{err}");
        // Different horizon: watermarks legitimately differ — only the
        // pinned analysis and the soundness field are checked.
        let short = diverged.replace(r#""seconds":10"#, r#""seconds":2"#);
        assert!(stack_check(STACK, &short).is_ok());
    }

    #[test]
    fn stack_gate_requires_both_objects() {
        assert!(stack_check("{}", STACK).is_err());
        assert!(stack_check(STACK, "{}").is_err());
        let gutted = STACK.replace(r#""watermark_violations":0,"#, "");
        assert!(stack_check(STACK, &gutted).is_err());
    }

    const FLEET: &str = r#"{"figure":"fleet","pinned":{"fleet_seconds":4,"quality":{"loss_ppm":30000},"rows":[{"motes":10,"seed":1,"heard":5},{"motes":10,"seed":2,"heard":6},{"motes":100,"seed":1,"heard":50}],"campaign":{"motes":9,"victim":4,"sites":6,"detected":3,"benign":1},"equivalence_ok":true},"dynamics":{"threads":4}}"#;

    fn fleet_subset() -> String {
        FLEET
            .replace(r#"{"motes":10,"seed":2,"heard":6},"#, "")
            .replace(r#",{"motes":100,"seed":1,"heard":50}"#, "")
    }

    #[test]
    fn extract_arr_and_split_objs_round_trip() {
        let rows = extract_arr(FLEET, "rows").unwrap();
        let objs = split_objs(rows);
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[0], r#"{"motes":10,"seed":1,"heard":5}"#);
        assert_eq!(extract_arr(FLEET, "missing"), None);
        assert!(split_objs("[]").is_empty());
    }

    #[test]
    fn fleet_gate_passes_identical_and_subset_runs() {
        assert_eq!(fleet_check(FLEET, FLEET), Ok(3));
        // CI runs a smaller sweep: only the surviving row is compared.
        assert_eq!(fleet_check(FLEET, &fleet_subset()), Ok(1));
    }

    #[test]
    fn fleet_gate_fails_on_row_drift_and_unknown_rows() {
        let drift = FLEET.replace(r#""seed":1,"heard":5"#, r#""seed":1,"heard":4"#);
        assert!(fleet_check(FLEET, &drift).unwrap_err().contains("drifted"));
        let unknown = FLEET.replace(r#""motes":100,"seed":1"#, r#""motes":200,"seed":1"#);
        assert!(fleet_check(FLEET, &unknown)
            .unwrap_err()
            .contains("no committed counterpart"));
    }

    #[test]
    fn fleet_gate_fails_on_campaign_drift() {
        let drift = FLEET.replace(r#""detected":3"#, r#""detected":2"#);
        let err = fleet_check(FLEET, &drift).unwrap_err();
        assert!(err.contains("campaign"), "{err}");
    }

    #[test]
    fn fleet_gate_fails_on_broken_equivalence_or_horizon() {
        let diverged = FLEET.replace(r#""equivalence_ok":true"#, r#""equivalence_ok":false"#);
        assert!(fleet_check(FLEET, &diverged)
            .unwrap_err()
            .contains("lockstep"));
        let horizon = FLEET.replace(r#""fleet_seconds":4"#, r#""fleet_seconds":2"#);
        assert!(fleet_check(FLEET, &horizon)
            .unwrap_err()
            .contains("horizon"));
        assert!(fleet_check("{}", FLEET).is_err());
        assert!(fleet_check(FLEET, "{}").is_err());
    }
}
