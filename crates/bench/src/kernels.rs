//! Compute-kernel corpus for the `sim_speed` harness.
//!
//! Real Mica2 apps sleep most of the simulated day, so app-level wall
//! time is dominated by the (engine-independent) sleep pump and caps
//! the observable speedup well below what the translation engine
//! delivers on actual code. These kernels isolate the execution
//! engines on always-awake instruction streams shaped like the hot
//! code the paper's apps run between sleeps.
//!
//! `gated` kernels carry the `sim_speed` ≥10× aggregate gate: they are
//! the global-memory idioms (counters, flags, buffer windows — TinyOS
//! state lives in statics) where block translation plus
//! superinstruction fusion pays fully. The non-gated kernels
//! (local-variable and pure stack arithmetic loops) are published for
//! honesty: those shapes currently see ~5× because their tails have no
//! fused read-modify-branch form yet.

use mcu::image::CodeFunction;
use mcu::isa::{AluOp, Instr, Width};
use mcu::{Image, Profile};

/// One benchmark kernel: a self-contained flash image whose entry
/// function loops forever without sleeping or faulting.
pub struct Kernel {
    /// Row label in the table and JSON.
    pub name: &'static str,
    /// Whether this kernel's wall time counts toward the gated
    /// aggregate speedup.
    pub gated: bool,
    /// The image to simulate.
    pub image: Image,
}

fn kernel(name: &'static str, gated: bool, frame: u16, code: Vec<Instr>) -> Kernel {
    let mut img = Image::new(Profile::mica2());
    let mut f = CodeFunction::new("main");
    f.frame_size = frame;
    f.code = code;
    let e = img.add_function(f);
    img.entry = Some(e);
    Kernel {
        name,
        gated,
        image: img,
    }
}

fn ldg(addr: u16) -> Instr {
    Instr::LdGlobal {
        addr,
        width: Width::W16,
        signed: false,
    }
}

fn stg(addr: u16) -> Instr {
    Instr::StGlobal {
        addr,
        width: Width::W16,
    }
}

fn bin(op: AluOp) -> Instr {
    Instr::Bin {
        op,
        width: Width::W16,
        signed: false,
    }
}

/// The full corpus, gated kernels first.
pub fn suite() -> Vec<Kernel> {
    let mut out = Vec::new();

    // Serial counting loop on a 16-bit global — the canonical timer /
    // packet-counter tail. Fuses to a single read-modify-branch op.
    out.push(kernel(
        "count_loop",
        true,
        0,
        vec![
            ldg(0x0200),
            Instr::PushI(1),
            bin(AluOp::Add),
            stg(0x0200),
            ldg(0x0200),
            Instr::PushI(60000),
            bin(AluOp::Lt),
            Instr::Jnz { target: 0 },
            Instr::PushI(0),
            stg(0x0200),
            Instr::Jmp { target: 0 },
        ],
    ));

    // Straight-line burst of read-modify-writes over eight globals —
    // the "update all my counters" shape, one long basic block.
    let mut code = Vec::new();
    for i in 0..64u16 {
        let a = 0x0200 + (i % 8) * 2;
        code.push(ldg(a));
        code.push(Instr::PushI(1));
        code.push(bin(AluOp::Add));
        code.push(stg(a));
    }
    code.push(Instr::Jmp { target: 0 });
    out.push(kernel("store_burst", true, 0, code));

    // Flag store plus counter — a busy-signal loop mixing a constant
    // store superinstruction with the fused counting tail.
    out.push(kernel(
        "flag_count",
        true,
        0,
        vec![
            Instr::PushI(1),
            Instr::StGlobal {
                addr: 0x0210,
                width: Width::W8,
            },
            ldg(0x0200),
            Instr::PushI(1),
            bin(AluOp::Add),
            stg(0x0200),
            ldg(0x0200),
            Instr::PushI(60000),
            bin(AluOp::Lt),
            Instr::Jnz { target: 0 },
            Instr::PushI(0),
            stg(0x0200),
            Instr::Jmp { target: 0 },
        ],
    ));

    // Buffer fill: copy one global into a 16-slot window, then bump a
    // counter — the message-buffer staging shape (global→global copy).
    let mut code = Vec::new();
    for i in 0..16u16 {
        code.push(ldg(0x0300));
        code.push(stg(0x0320 + i * 2));
    }
    code.push(ldg(0x0200));
    code.push(Instr::PushI(1));
    code.push(bin(AluOp::Add));
    code.push(stg(0x0200));
    code.push(Instr::Jmp { target: 0 });
    out.push(kernel("copy_window", true, 0, code));

    // Local-variable counting loop (frame slots, not globals). Not
    // gated: no fused local read-modify-branch form yet, ~5×.
    out.push(kernel(
        "local_loop",
        false,
        8,
        vec![
            Instr::LdLocal {
                off: 0,
                width: Width::W16,
                signed: false,
            },
            Instr::PushI(1),
            bin(AluOp::Add),
            Instr::StLocal {
                off: 0,
                width: Width::W16,
            },
            Instr::LdLocal {
                off: 0,
                width: Width::W16,
                signed: false,
            },
            Instr::PushI(60000),
            bin(AluOp::Lt),
            Instr::Jnz { target: 0 },
            Instr::PushI(0),
            Instr::StLocal {
                off: 0,
                width: Width::W16,
            },
            Instr::Jmp { target: 0 },
        ],
    ));

    // Pure stack arithmetic, no RAM traffic. Not gated: dominated by
    // evaluation-stack push/pop, ~5×.
    out.push(kernel(
        "stack_arith",
        false,
        0,
        vec![
            Instr::PushI(7),
            Instr::PushI(13),
            Instr::Bin {
                op: AluOp::Xor,
                width: Width::W32,
                signed: false,
            },
            Instr::PushI(29),
            Instr::Bin {
                op: AluOp::Mul,
                width: Width::W32,
                signed: false,
            },
            Instr::PushI(3),
            Instr::Bin {
                op: AluOp::Shr,
                width: Width::W32,
                signed: false,
            },
            Instr::Pop,
            Instr::Jmp { target: 0 },
        ],
    ));

    out
}
