//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (§3). Each binary prints one figure:
//!
//! | Binary | Reproduces |
//! |--------|-----------|
//! | `fig2_checks` | Figure 2: % of inserted checks removed by 4 optimizer stacks |
//! | `fig3a_code_size` | Figure 3(a): Δ code size under 7 configurations |
//! | `fig3b_data_size` | Figure 3(b): Δ static data size |
//! | `fig3c_duty_cycle` | Figure 3(c): Δ duty cycle over simulated minutes |
//! | `runtime_footprint` | §2.3: the runtime-library reduction story |
//! | `ablations` | §2.1 claims: early inlining, strong DCE, copy-prop, atomic optimization |

use safe_tinyos::{build_app, Build, BuildConfig};
use tosapps::AppSpec;

/// Builds one app under one config, panicking with context on failure
/// (experiment harnesses want loud failures).
pub fn must_build(spec: &AppSpec, config: &BuildConfig) -> Build {
    build_app(spec, config).unwrap_or_else(|e| panic!("{} / {}: {e}", spec.name, config.name))
}

/// Percent change of `new` relative to `base`.
pub fn pct_change(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (new as f64 - base as f64) * 100.0 / base as f64
}

/// Formats a row of right-aligned cells after a left-aligned label.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<28}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Simulated seconds for duty-cycle runs: the paper uses 3 minutes; a
/// smaller default keeps the harness quick. Override with the
/// `STOS_SECONDS` environment variable.
pub fn sim_seconds() -> u64 {
    std::env::var("STOS_SECONDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}
