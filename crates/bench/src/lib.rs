//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (§3). Each binary prints one figure:
//!
//! | Binary | Reproduces |
//! |--------|-----------|
//! | `fig2_checks` | Figure 2: % of inserted checks removed by 4 optimizer stacks |
//! | `fig3a_code_size` | Figure 3(a): Δ code size under 7 configurations |
//! | `fig3b_data_size` | Figure 3(b): Δ static data size |
//! | `fig3c_duty_cycle` | Figure 3(c): Δ duty cycle over simulated minutes |
//! | `runtime_footprint` | §2.3: the runtime-library reduction story |
//! | `ablations` | §2.1 claims: early inlining, strong DCE, copy-prop, atomic optimization |
//! | `pipeline_matrix` | pass subsets/orders/options × 3 apps — the composition sweep the paper couldn't afford |
//! | `fault_injection` | §2's detection claim: injected-corruption campaigns per pipeline, detection rates and FLID triage |
//!
//! All of them drive their app × configuration grids through
//! [`runner::ExperimentRunner`], which shares one frontend artifact
//! cache per session and fans jobs out across `STOS_THREADS` workers,
//! and each emits `BENCH_toolchain_speed.json` describing what the
//! toolchain itself cost.

pub mod diff;
pub mod fault;
pub mod fleet;
pub mod gate;
pub mod kernels;
pub mod races;
pub mod runner;
pub mod stack;

use safe_tinyos::{Build, BuildSession, Pipeline};
use tosapps::AppSpec;

pub use knobs::Knobs;
pub use runner::{ExperimentRunner, GridJob, SpeedReport, WarmCache};

/// Builds one app under one pipeline with a throwaway session,
/// panicking with context on failure. Grid-shaped experiments should use
/// [`ExperimentRunner`] instead, which shares the frontend and pass
/// caches across cells and parallelizes.
pub fn must_build(spec: &AppSpec, pipeline: &Pipeline) -> Build {
    BuildSession::new()
        .build(spec, pipeline)
        .unwrap_or_else(|e| panic!("{} / {}: {e}", spec.name, pipeline.name()))
}

/// Percent change of `new` relative to `base`.
pub fn pct_change(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (new as f64 - base as f64) * 100.0 / base as f64
}

/// Formats a row of right-aligned cells after a left-aligned label.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<28}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Run-shortening environment knobs, shared by every harness and parsed
/// exactly once per process (CI shortens runs by exporting these; the
/// harnesses must all agree on what they saw, even if the environment
/// mutates mid-run). Harness mains call [`Knobs::from_env`] once and
/// pass the values they need down explicitly — library code takes plain
/// parameters and never reads the environment itself.
pub mod knobs {
    use std::sync::OnceLock;

    fn parse_u64(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// The typed view of every `STOS_*` run-shaping variable.
    #[derive(Debug, Clone)]
    pub struct Knobs {
        /// Simulated seconds for duty-cycle and fault-campaign runs:
        /// the paper uses 3 minutes; a smaller default keeps the
        /// harnesses quick. `STOS_SECONDS`, default 10.
        pub sim_seconds: u64,
        /// Injection sites per app × pipeline cell of a fault campaign.
        /// `STOS_FAULTS`, default 16.
        pub fault_sites: usize,
        /// Generated-program subjects for the differential oracle.
        /// `STOS_DIFF_SEEDS`, default 50.
        pub diff_seeds: u64,
        /// First seed of the differential oracle's range (the subjects
        /// are `diff_base .. diff_base + diff_seeds`) — set
        /// `STOS_DIFF_SEEDS=1 STOS_DIFF_BASE=N` to replay one
        /// divergence-triggering seed. `STOS_DIFF_BASE`, default 1.
        pub diff_base: u64,
        /// Torn-update injections per flagged target in the
        /// race-analysis campaign. `STOS_TORN`, default 4.
        pub torn_sites: usize,
        /// Simulated cycles each `sim_speed` compute kernel runs per
        /// engine. `STOS_KERNEL_CYCLES`, default 200M.
        pub kernel_cycles: u64,
        /// Aggregate kernel speedup the `sim_speed` harness gates on.
        /// `STOS_SPEEDUP_MIN`, default 10×.
        pub speedup_min: f64,
        /// Fleet sizes the `fleet` harness sweeps. The committed
        /// `BENCH_fleet.json` carries the full `10,100,1000` sweep; CI
        /// overrides with a smaller population via `STOS_MOTES`
        /// (comma-separated) and the gate compares only the rows the
        /// fresh run produced.
        pub fleet_motes: Vec<usize>,
        /// Seeds per fleet size in the `fleet` harness's sweep.
        /// `STOS_FLEET_SEEDS`, default 2 (CI uses 1).
        pub fleet_seeds: u64,
        /// Simulated seconds per fleet run. Deliberately independent of
        /// [`Knobs::sim_seconds`]: CI shortens `STOS_SECONDS` for the
        /// single-mote harnesses, but the fleet rows are byte-pinned
        /// against the committed baseline, so their horizon must not
        /// move with it. `STOS_FLEET_SECONDS`, default 4.
        pub fleet_seconds: u64,
    }

    impl Knobs {
        /// The process-wide knob set, parsed from the environment on
        /// first use and frozen thereafter.
        pub fn from_env() -> &'static Knobs {
            static CELL: OnceLock<Knobs> = OnceLock::new();
            CELL.get_or_init(Knobs::parse)
        }

        fn parse() -> Knobs {
            let fleet_motes = {
                let parsed: Option<Vec<usize>> = std::env::var("STOS_MOTES").ok().map(|s| {
                    s.split(',')
                        .filter(|t| !t.trim().is_empty())
                        .filter_map(|t| t.trim().parse().ok())
                        .collect()
                });
                match parsed {
                    Some(v) if !v.is_empty() => v,
                    _ => vec![10, 100, 1000],
                }
            };
            Knobs {
                sim_seconds: parse_u64("STOS_SECONDS", 10),
                fault_sites: parse_u64("STOS_FAULTS", 16) as usize,
                diff_seeds: parse_u64("STOS_DIFF_SEEDS", 50),
                diff_base: parse_u64("STOS_DIFF_BASE", 1),
                torn_sites: parse_u64("STOS_TORN", 4) as usize,
                kernel_cycles: parse_u64("STOS_KERNEL_CYCLES", 200_000_000),
                speedup_min: std::env::var("STOS_SPEEDUP_MIN")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .filter(|f: &f64| f.is_finite() && *f > 0.0)
                    .unwrap_or(10.0),
                fleet_motes,
                fleet_seeds: parse_u64("STOS_FLEET_SEEDS", 2),
                fleet_seconds: parse_u64("STOS_FLEET_SECONDS", 4),
            }
        }
    }
}

/// Writes `body` to `BENCH_<name>.json` in `STOS_BENCH_DIR` (default:
/// the current directory) so each figure leaves a machine-readable
/// trace alongside its printed table. Returns the path written.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn emit_json(name: &str, body: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("STOS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    std::fs::write(&path, body)?;
    println!("[wrote {}]", path.display());
    Ok(path)
}

/// Minimal JSON construction helpers (the build environment is offline,
/// so no serde; the figures' payloads are shallow and small).
pub mod json {
    /// Escapes a string for use inside a JSON string literal.
    pub fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// A JSON object builder preserving insertion order.
    #[derive(Debug, Default)]
    pub struct Obj {
        parts: Vec<String>,
    }

    impl Obj {
        /// An empty object.
        pub fn new() -> Obj {
            Obj::default()
        }

        /// Adds a string field.
        pub fn str(mut self, key: &str, value: &str) -> Obj {
            self.parts
                .push(format!("\"{}\":\"{}\"", esc(key), esc(value)));
            self
        }

        /// Adds an integer field.
        pub fn int(mut self, key: &str, value: i64) -> Obj {
            self.parts.push(format!("\"{}\":{value}", esc(key)));
            self
        }

        /// Adds a number field (non-finite values become `null`).
        pub fn num(mut self, key: &str, value: f64) -> Obj {
            let rendered = if value.is_finite() {
                format!("{value:.4}")
            } else {
                "null".to_string()
            };
            self.parts.push(format!("\"{}\":{rendered}", esc(key)));
            self
        }

        /// Adds an already-serialized JSON value.
        pub fn raw(mut self, key: &str, value: &str) -> Obj {
            self.parts.push(format!("\"{}\":{value}", esc(key)));
            self
        }

        /// Serializes the object.
        pub fn build(self) -> String {
            format!("{{{}}}", self.parts.join(","))
        }
    }

    /// Serializes an array from already-serialized elements.
    pub fn arr<I: IntoIterator<Item = String>>(items: I) -> String {
        format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
    }
}
