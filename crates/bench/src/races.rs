//! The race-analysis harness's data model: per-app static analysis
//! results, hardening costs, and the torn-update atomicity campaign
//! (the `race_analysis` binary drives it, `race_gate` diffs the
//! published artifact).
//!
//! The emitted `BENCH_races.json` has two top-level objects with
//! different CI contracts:
//!
//! * `"analysis"` — diagnostic censuses, hardening counts, and code-size
//!   deltas. Pure functions of the toolchain and the app sources, so CI
//!   byte-compares the published object against the committed baseline
//!   (see [`crate::gate::race_check`]).
//! * `"dynamics"` — duty-cycle deltas, torn-campaign divergence tallies,
//!   and the differential-oracle spot check. These depend on run-length
//!   knobs (`STOS_SECONDS`, `STOS_TORN`), so the harness self-gates them
//!   (hardened builds immune, unhardened builds strictly worse, zero
//!   miscompiles) instead of pinning bytes.

use safe_tinyos::{run_torn_campaign, simulate, torn_target_names, Diagnostic, Pipeline};

use crate::diff::{tally, total_miscompiles};
use crate::{json, pct_change, ExperimentRunner};

/// The three stacks every app is built under, in grid-column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// `cure(flid)|cxprop|prune` — no per-site analysis, the cost
    /// baseline and the torn campaign's unhardened subject.
    Baseline,
    /// `cure(flid)|races|cxprop|prune` — analysis only, diagnostics
    /// reported but nothing rewritten.
    Analysis,
    /// `cure(flid)|races(fix)|cxprop|prune` — auto-hardened to the
    /// zero-diagnostic fixpoint, the torn campaign's immune subject.
    Fix,
}

impl Stack {
    /// Grid-column order (matches [`stacks`]).
    pub const ALL: [Stack; 3] = [Stack::Baseline, Stack::Analysis, Stack::Fix];

    /// The stack's pipeline spec.
    pub fn spec(self) -> &'static str {
        match self {
            Stack::Baseline => "cure(flid)|cxprop|prune",
            Stack::Analysis => "cure(flid)|races|cxprop|prune",
            Stack::Fix => "cure(flid)|races(fix)|cxprop|prune",
        }
    }
}

/// The three parsed stack pipelines, in [`Stack::ALL`] order.
pub fn stacks() -> Vec<Pipeline> {
    Stack::ALL
        .iter()
        .map(|s| Pipeline::parse(s.spec()).expect("stack spec"))
        .collect()
}

/// Counts of one app's diagnostics by stable code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodeCounts {
    /// `R001 unprotected-sync-write` sites.
    pub r001: usize,
    /// `R002 torn-16bit-access` sites.
    pub r002: usize,
    /// `R003 async-rmw` sites.
    pub r003: usize,
}

impl CodeCounts {
    /// Tallies a diagnostic list by code (unknown codes count toward the
    /// total only).
    pub fn of(diagnostics: &[Diagnostic]) -> CodeCounts {
        let mut c = CodeCounts::default();
        for d in diagnostics {
            match d.code.as_str() {
                "R001" => c.r001 += 1,
                "R002" => c.r002 += 1,
                "R003" => c.r003 += 1,
                _ => {}
            }
        }
        c
    }

    /// Folds another tally in.
    pub fn add(&mut self, o: CodeCounts) {
        self.r001 += o.r001;
        self.r002 += o.r002;
        self.r003 += o.r003;
    }
}

/// One app's row of the race-analysis grid: the static census plus the
/// dynamic costs and campaign outcomes.
#[derive(Debug, Clone)]
pub struct AppRaceRow {
    /// App name.
    pub app: String,
    /// Diagnostic count by code from the analysis (no-fix) build.
    pub codes: CodeCounts,
    /// Total diagnostics from the analysis build.
    pub diagnostics: usize,
    /// Globals the refinement confirmed racy (analysis build).
    pub racy_globals: usize,
    /// Globals the refinement cleared (analysis build).
    pub cleared_globals: usize,
    /// Atomic sections `races(fix)` added across its fixpoint loop.
    pub sections_added: usize,
    /// Iterations `races(fix)` needed.
    pub fix_iterations: usize,
    /// Diagnostics remaining after `races(fix)` — zero at fixpoint.
    pub fix_residual: usize,
    /// Code-size change of the fix stack relative to the baseline stack.
    pub code_delta_pct: f64,
    /// Duty cycle of the baseline build (percent awake).
    pub baseline_duty_pct: f64,
    /// Duty cycle of the fix build.
    pub fix_duty_pct: f64,
    /// Torn targets flagged in the baseline build.
    pub torn_targets: usize,
    /// Torn plans actually armed (targets surviving in the image).
    pub torn_plans: usize,
    /// Divergences (detected + crashed + silent) of the baseline build
    /// under the torn campaign.
    pub unhardened_divergences: usize,
    /// Divergences of the fix build under the same plans — zero when the
    /// hardening is airtight.
    pub hardened_divergences: usize,
}

/// Builds all three stacks for every app and measures the full row set:
/// analysis censuses, hardening cost, and the torn campaign (targets
/// enumerated by name from each app's *baseline* build, so hardened and
/// unhardened builds face the same logical faults).
pub fn measure(
    runner: &ExperimentRunner,
    apps: &[&'static str],
    seconds: u64,
    per_target: usize,
) -> Vec<AppRaceRow> {
    let pipelines = stacks();
    let grid = runner.run_grid(apps, &pipelines, |job| job.build(job.item));
    runner.run_items(apps, |i, app| {
        let [baseline, analysis, fix] = &grid[i][..] else {
            unreachable!("three stacks per app");
        };
        let spec = tosapps::spec(app).expect("known app");
        let names = torn_target_names(baseline);
        let plans = safe_tinyos::torn_plans(baseline, &names, per_target).len();
        let unhardened = run_torn_campaign(baseline, &spec, &names, per_target, seconds);
        let hardened = run_torn_campaign(fix, &spec, &names, per_target, seconds);
        let a_races = analysis.metrics.races.unwrap_or_default();
        let f_races = fix.metrics.races.unwrap_or_default();
        AppRaceRow {
            app: app.to_string(),
            codes: CodeCounts::of(&analysis.metrics.diagnostics),
            diagnostics: analysis.metrics.diagnostics.len(),
            racy_globals: a_races.racy_globals,
            cleared_globals: a_races.cleared_globals,
            sections_added: f_races.sections_added,
            fix_iterations: f_races.fix_iterations,
            fix_residual: fix.metrics.diagnostics.len(),
            code_delta_pct: pct_change(
                baseline.metrics.code_bytes as u64,
                fix.metrics.code_bytes as u64,
            ),
            baseline_duty_pct: simulate(baseline, &spec, seconds).duty_cycle_percent,
            fix_duty_pct: simulate(fix, &spec, seconds).duty_cycle_percent,
            torn_targets: names.len(),
            torn_plans: plans,
            unhardened_divergences: unhardened.counts.divergences(),
            hardened_divergences: hardened.counts.divergences(),
        }
    })
}

/// The differential-oracle spot check over `races(fix)` stacks: generated
/// seeds plus every app, all compared against the cure-only reference.
/// Returns `(miscompiles, cases)`.
pub fn oracle_check(
    runner: &ExperimentRunner,
    seeds: &[u64],
    apps: &[&'static str],
    seconds: u64,
) -> (usize, usize) {
    let presets = vec![Pipeline::parse(Stack::Fix.spec()).expect("fix spec")];
    let cfg = safe_tinyos::DiffConfig::default();
    let mut reports = crate::diff::seed_reports(runner, seeds, &presets, &cfg);
    reports.extend(crate::diff::app_reports(
        runner, apps, &presets, seconds, &cfg,
    ));
    let tallies = tally(&presets, &reports);
    let cases = reports.iter().map(|r| r.cases.len()).sum();
    (total_miscompiles(&tallies), cases)
}

/// Serializes the byte-pinned `"analysis"` object (everything in it is a
/// pure function of toolchain + sources — no run-length knobs).
pub fn analysis_json(rows: &[AppRaceRow]) -> String {
    let mut totals = CodeCounts::default();
    let mut diagnostics = 0;
    let mut sections = 0;
    let apps = rows
        .iter()
        .map(|r| {
            totals.add(r.codes);
            diagnostics += r.diagnostics;
            sections += r.sections_added;
            json::Obj::new()
                .str("app", &r.app)
                .int("r001", r.codes.r001 as i64)
                .int("r002", r.codes.r002 as i64)
                .int("r003", r.codes.r003 as i64)
                .int("diagnostics", r.diagnostics as i64)
                .int("racy_globals", r.racy_globals as i64)
                .int("cleared_globals", r.cleared_globals as i64)
                .int("sections_added", r.sections_added as i64)
                .int("fix_iterations", r.fix_iterations as i64)
                .int("fix_residual", r.fix_residual as i64)
                .num("code_delta_pct", r.code_delta_pct)
                .build()
        })
        .collect::<Vec<_>>();
    json::Obj::new()
        .raw("apps", &json::arr(apps))
        .raw(
            "totals",
            &json::Obj::new()
                .int("r001", totals.r001 as i64)
                .int("r002", totals.r002 as i64)
                .int("r003", totals.r003 as i64)
                .int("diagnostics", diagnostics as i64)
                .int("sections_added", sections as i64)
                .build(),
        )
        .build()
}

/// Serializes the self-gated `"dynamics"` object.
pub fn dynamics_json(
    rows: &[AppRaceRow],
    seconds: u64,
    per_target: usize,
    oracle: (usize, usize),
    oracle_seeds: usize,
) -> String {
    let unhardened: usize = rows.iter().map(|r| r.unhardened_divergences).sum();
    let hardened: usize = rows.iter().map(|r| r.hardened_divergences).sum();
    let apps = rows
        .iter()
        .map(|r| {
            json::Obj::new()
                .str("app", &r.app)
                .int("torn_targets", r.torn_targets as i64)
                .int("torn_plans", r.torn_plans as i64)
                .int("unhardened_divergences", r.unhardened_divergences as i64)
                .int("hardened_divergences", r.hardened_divergences as i64)
                .num("baseline_duty_pct", r.baseline_duty_pct)
                .num("fix_duty_pct", r.fix_duty_pct)
                .num("duty_delta_pct", r.fix_duty_pct - r.baseline_duty_pct)
                .build()
        })
        .collect::<Vec<_>>();
    json::Obj::new()
        .int("seconds", seconds as i64)
        .int("torn_per_target", per_target as i64)
        .int("unhardened_divergences", unhardened as i64)
        .int("hardened_divergences", hardened as i64)
        .int("oracle_miscompiles", oracle.0 as i64)
        .int("oracle_cases", oracle.1 as i64)
        .int("oracle_seeds", oracle_seeds as i64)
        .raw("apps", &json::arr(apps))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_tinyos::Severity;

    #[test]
    fn code_counts_tally_by_code() {
        let diags = vec![
            Diagnostic::new(Severity::Warning, "R001", "f:0", "w"),
            Diagnostic::new(Severity::Warning, "R002", "f:1", "t"),
            Diagnostic::new(Severity::Warning, "R001", "g:0", "w"),
            Diagnostic::new(Severity::Note, "X999", "g:1", "?"),
        ];
        let c = CodeCounts::of(&diags);
        assert_eq!((c.r001, c.r002, c.r003), (2, 1, 0));
    }

    #[test]
    fn stacks_parse_and_keep_order() {
        let p = stacks();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].spec(), Stack::Baseline.spec());
        assert_eq!(p[2].spec(), Stack::Fix.spec());
    }
}
