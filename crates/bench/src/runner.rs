//! The parallel experiment runner.
//!
//! Every figure harness evaluates an app × configuration grid. The
//! runner expands the grid into jobs, fans them out across scoped worker
//! threads sharing one [`BuildSession`] (so the frontend compiles each
//! app exactly once), and returns results in deterministic grid order —
//! `result[app_index][item_index]` — regardless of which worker finished
//! which job first.
//!
//! Thread count comes from `STOS_THREADS` (`1` = run serially on the
//! calling thread) and defaults to the machine's available parallelism.
//!
//! The runner also aggregates per-stage wall times across every build it
//! performs; [`ExperimentRunner::emit_speed`] writes them to
//! `BENCH_toolchain_speed.json` so the toolchain's own performance is
//! tracked alongside the paper's figures.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use safe_tinyos::{Build, BuildSession, Pipeline, Stage, StageTimes};
use tcil::{CompileError, Program};
use tosapps::AppSpec;

use crate::{emit_json, json};

/// Worker-thread count: `STOS_THREADS` if set (minimum 1), otherwise the
/// machine's available parallelism.
pub fn threads_from_env() -> usize {
    match std::env::var("STOS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[derive(Debug, Default)]
struct SpeedAgg {
    stages: StageTimes,
    wall: Duration,
    jobs: usize,
}

/// Expands app × config grids into jobs and runs them in parallel over a
/// shared [`BuildSession`].
pub struct ExperimentRunner {
    session: BuildSession,
    threads: usize,
    agg: Mutex<SpeedAgg>,
}

/// One cell of an experiment grid, handed to the job closure.
pub struct GridJob<'a, C> {
    /// The app under test.
    pub spec: AppSpec,
    /// The grid item (usually a [`Pipeline`]).
    pub item: &'a C,
    /// Row index into the `apps` slice.
    pub app_index: usize,
    /// Column index into the `items` slice.
    pub item_index: usize,
    runner: &'a ExperimentRunner,
}

impl<C> GridJob<'_, C> {
    /// Builds this job's app under `pipeline` through the shared session,
    /// panicking with context on failure (experiment harnesses want loud
    /// failures). Stage times are folded into the runner's speed report.
    pub fn build(&self, pipeline: &Pipeline) -> Build {
        self.try_build(pipeline)
            .unwrap_or_else(|e| panic!("{} / {}: {e}", self.spec.name, pipeline.name()))
    }

    /// [`GridJob::build`] returning the error instead of panicking (for
    /// pipelines that are *expected* to fail, e.g. the naive runtime
    /// overflowing flash).
    ///
    /// # Errors
    ///
    /// Propagates compile errors from any pass.
    pub fn try_build(&self, pipeline: &Pipeline) -> Result<Build, CompileError> {
        let build = self.runner.session.build(&self.spec, pipeline)?;
        self.record(&build.metrics.stage_times);
        Ok(build)
    }

    /// A fresh copy of this app's cached frontend output, for jobs that
    /// drive the stage crates directly instead of a [`Pipeline`].
    /// If this call is the one that compiled the artifact, its frontend
    /// time is folded into the speed report (exactly once, like
    /// [`GridJob::try_build`]).
    pub fn frontend(&self) -> Program {
        let (artifact, fresh) = self
            .runner
            .session
            .frontend_entry(&self.spec)
            .unwrap_or_else(|e| panic!("{}: frontend: {e}", self.spec.name));
        if fresh {
            let mut times = StageTimes::default();
            times.record(Stage::Frontend, artifact.elapsed);
            self.record(&times);
        }
        artifact.program()
    }

    /// Folds externally measured stage times into the speed report
    /// (custom pipelines record their own).
    pub fn record(&self, times: &StageTimes) {
        self.runner.agg.lock().unwrap().stages.add(times);
    }

    /// Builds this job's app under `pipeline` (stage times folded into
    /// the speed report, like [`GridJob::build`]) and runs a
    /// fault-injection campaign against the result. Campaigns are pure
    /// functions of the build, workload, and config, so grid output is
    /// byte-identical across worker-thread counts.
    pub fn campaign(
        &self,
        pipeline: &Pipeline,
        config: &safe_tinyos::CampaignConfig,
    ) -> safe_tinyos::CampaignReport {
        let build = self.build(pipeline);
        safe_tinyos::run_campaign(&build, &self.spec, config)
    }
}

impl ExperimentRunner {
    /// A runner with `STOS_THREADS`-controlled parallelism over the
    /// stock source set.
    pub fn from_env() -> ExperimentRunner {
        Self::with_threads(threads_from_env())
    }

    /// A runner with an explicit worker count (`1` = serial).
    pub fn with_threads(threads: usize) -> ExperimentRunner {
        ExperimentRunner {
            session: BuildSession::new(),
            threads: threads.max(1),
            agg: Mutex::new(SpeedAgg::default()),
        }
    }

    /// The shared build session (frontend cache and compile counter).
    pub fn session(&self) -> &BuildSession {
        &self.session
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every cell of the `apps` × `items` grid and returns
    /// the results as `result[app_index][item_index]`.
    ///
    /// Jobs are claimed from a shared counter in app-major order (all of
    /// one app's configurations first, so its frontend artifact is hot),
    /// but each result lands in its grid slot: the output is
    /// byte-for-byte independent of scheduling. A panicking job panics
    /// the whole run when the scope joins.
    pub fn run_grid<C, R, F>(&self, apps: &[&'static str], items: &[C], f: F) -> Vec<Vec<R>>
    where
        C: Sync,
        R: Send,
        F: Fn(&GridJob<'_, C>) -> R + Sync,
    {
        let flat = self.run_indexed(apps.len() * items.len(), |j| {
            let (app_index, item_index) = (j / items.len(), j % items.len());
            let job = GridJob {
                spec: tosapps::spec(apps[app_index])
                    .unwrap_or_else(|| panic!("unknown app {}", apps[app_index])),
                item: &items[item_index],
                app_index,
                item_index,
                runner: self,
            };
            f(&job)
        });
        let mut flat = flat.into_iter();
        (0..apps.len())
            .map(|_| {
                (0..items.len())
                    .map(|_| flat.next().expect("result per job"))
                    .collect()
            })
            .collect()
    }

    /// Runs `f` over every item of a flat (app-less) work list and
    /// returns the results in item order — the one-dimensional sibling
    /// of [`ExperimentRunner::run_grid`], for harnesses whose subjects
    /// are not benchmark apps (the differential oracle's generated
    /// seeds).
    pub fn run_items<C, R, F>(&self, items: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(usize, &C) -> R + Sync,
    {
        self.run_indexed(items.len(), |j| f(j, &items[j]))
    }

    /// The shared work-stealing core behind [`ExperimentRunner::run_grid`]
    /// and [`ExperimentRunner::run_items`]: runs `f(0..n)` across the
    /// configured workers. Jobs are claimed from a shared counter in
    /// index order, but each result lands in its own slot, so the output
    /// is byte-for-byte independent of scheduling. A panicking job
    /// panics the whole run when the scope joins. Wall time and job
    /// count are folded into the speed report.
    fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let start = Instant::now();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let worker = || loop {
            let j = next.fetch_add(1, Ordering::Relaxed);
            if j >= n {
                break;
            }
            *slots[j].lock().unwrap() = Some(f(j));
        };
        let workers = self.threads.min(n);
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                // The worker captures only shared references, so it is
                // `Copy`: each spawn gets its own handle to the same
                // job counter and result slots.
                for _ in 0..workers {
                    s.spawn(worker);
                }
            });
        }
        {
            let mut agg = self.agg.lock().unwrap();
            agg.wall += start.elapsed();
            agg.jobs += n;
        }
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("every job ran"))
            .collect()
    }

    /// [`ExperimentRunner::run_grid`] specialized to building each cell's
    /// [`Pipeline`] and returning its metrics.
    pub fn metrics_grid(
        &self,
        apps: &[&'static str],
        pipelines: &[Pipeline],
    ) -> Vec<Vec<safe_tinyos::Metrics>> {
        self.run_grid(apps, pipelines, |job| job.build(job.item).metrics)
    }

    /// The toolchain-speed summary accumulated so far.
    pub fn speed_report(&self, harness: &str) -> SpeedReport {
        let agg = self.agg.lock().unwrap();
        SpeedReport {
            harness: harness.to_string(),
            threads: self.threads,
            jobs: agg.jobs,
            frontend_compiles: self.session.frontend_compiles(),
            wall: agg.wall,
            stages: agg.stages,
        }
    }

    /// Writes `BENCH_toolchain_speed_<harness>.json` for this runner's
    /// work, so each harness's perf trajectory is tracked across PRs
    /// without the six harnesses clobbering one shared file.
    pub fn emit_speed(&self, harness: &str) {
        let report = self.speed_report(harness);
        emit_json(&format!("toolchain_speed_{harness}"), &report.to_json())
            .expect("write BENCH_toolchain_speed_*.json");
    }

    /// [`ExperimentRunner::emit_speed`], additionally writing the
    /// unsuffixed `BENCH_toolchain_speed.json`. Called by the canonical
    /// toolchain-speed benchmark (the fig3 grid in `fig3a_code_size`).
    pub fn emit_speed_canonical(&self, harness: &str) {
        self.emit_speed(harness);
        emit_json("toolchain_speed", &self.speed_report(harness).to_json())
            .expect("write BENCH_toolchain_speed.json");
    }
}

/// Aggregate toolchain timing for one harness run.
#[derive(Debug, Clone)]
pub struct SpeedReport {
    /// Which harness produced this report.
    pub harness: String,
    /// Worker threads used.
    pub threads: usize,
    /// Grid cells executed.
    pub jobs: usize,
    /// Frontend compiles actually performed (≤ apps in the grid).
    pub frontend_compiles: usize,
    /// Wall time across all `run_grid` calls.
    pub wall: Duration,
    /// Per-stage compile time summed over all builds.
    pub stages: StageTimes,
}

impl SpeedReport {
    /// Total compile time actually spent across all stages, with the
    /// frontend artifact cache in effect (frontend paid once per app).
    pub fn compile_time(&self) -> Duration {
        self.stages.total()
    }

    /// Estimated compile time of the pre-pipeline harness: the same
    /// stage work with the frontend re-run for every job instead of
    /// once per app. Comparing this against [`SpeedReport::compile_time`]
    /// is apples-to-apples — both exclude non-compile work (simulation,
    /// printing), which `wall` includes.
    pub fn serial_compile_estimate(&self) -> Duration {
        let frontend = self.stages.get(Stage::Frontend);
        let rest = self.stages.total() - frontend;
        if self.frontend_compiles == 0 {
            return rest;
        }
        rest + frontend * (self.jobs as u32) / (self.frontend_compiles as u32)
    }

    /// Serializes the report (times in milliseconds). `wall_ms` covers
    /// everything the grid ran, including simulation; the
    /// `compile_ms` / `serial_compile_est_ms` pair isolates the
    /// toolchain cost with and without the frontend cache.
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut stage_obj = json::Obj::new();
        for (stage, t) in self.stages.iter() {
            stage_obj = stage_obj.num(stage.name(), ms(t));
        }
        json::Obj::new()
            .str("figure", "toolchain_speed")
            .str("harness", &self.harness)
            .int("threads", self.threads as i64)
            .int("jobs", self.jobs as i64)
            .int("frontend_compiles", self.frontend_compiles as i64)
            .num("wall_ms", ms(self.wall))
            .num("compile_ms", ms(self.compile_time()))
            .num("serial_compile_est_ms", ms(self.serial_compile_estimate()))
            .raw("stage_ms", &stage_obj.build())
            .build()
    }
}
