//! The parallel experiment runner.
//!
//! Every figure harness evaluates an app × configuration grid. The
//! runner expands the grid into jobs, fans them out across scoped worker
//! threads sharing one [`BuildSession`] (so the frontend compiles each
//! app exactly once), and returns results in deterministic grid order —
//! `result[app_index][item_index]` — regardless of which worker finished
//! which job first.
//!
//! Thread count comes from `STOS_THREADS` (`1` = run serially on the
//! calling thread) and defaults to the machine's available parallelism.
//!
//! The runner also aggregates per-stage wall times across every build it
//! performs; [`ExperimentRunner::emit_speed`] writes them to
//! `BENCH_toolchain_speed.json` so the toolchain's own performance is
//! tracked alongside the paper's figures.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use safe_tinyos::{Build, BuildService, BuildSession, CacheStats, Pipeline, Stage, StageTimes};
use tcil::{CompileError, Program};
use tosapps::AppSpec;

use crate::{emit_json, json};

/// Worker-thread count: `STOS_THREADS` if set (minimum 1), otherwise the
/// machine's available parallelism.
pub fn threads_from_env() -> usize {
    match std::env::var("STOS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[derive(Debug, Default)]
struct SpeedAgg {
    stages: StageTimes,
    wall: Duration,
    jobs: usize,
}

/// Expands app × config grids into jobs and runs them in parallel over a
/// shared [`BuildService`] (frontend *and* pass caches shared across
/// every cell).
pub struct ExperimentRunner {
    service: BuildService,
    agg: Mutex<SpeedAgg>,
}

/// One cell of an experiment grid, handed to the job closure.
pub struct GridJob<'a, C> {
    /// The app under test.
    pub spec: AppSpec,
    /// The grid item (usually a [`Pipeline`]).
    pub item: &'a C,
    /// Row index into the `apps` slice.
    pub app_index: usize,
    /// Column index into the `items` slice.
    pub item_index: usize,
    runner: &'a ExperimentRunner,
}

impl<C> GridJob<'_, C> {
    /// Builds this job's app under `pipeline` through the shared session,
    /// panicking with context on failure (experiment harnesses want loud
    /// failures). Stage times are folded into the runner's speed report.
    pub fn build(&self, pipeline: &Pipeline) -> Build {
        self.try_build(pipeline)
            .unwrap_or_else(|e| panic!("{} / {}: {e}", self.spec.name, pipeline.name()))
    }

    /// [`GridJob::build`] returning the error instead of panicking (for
    /// pipelines that are *expected* to fail, e.g. the naive runtime
    /// overflowing flash).
    ///
    /// # Errors
    ///
    /// Propagates compile errors from any pass.
    pub fn try_build(&self, pipeline: &Pipeline) -> Result<Build, CompileError> {
        let build = self.runner.service.build(&self.spec, pipeline)?;
        self.record(&build.metrics.stage_times);
        Ok(build)
    }

    /// A fresh copy of this app's cached frontend output, for jobs that
    /// drive the stage crates directly instead of a [`Pipeline`].
    /// If this call is the one that compiled the artifact, its frontend
    /// time is folded into the speed report (exactly once, like
    /// [`GridJob::try_build`]).
    pub fn frontend(&self) -> Program {
        let (artifact, fresh) = self
            .runner
            .service
            .session()
            .frontend_entry(&self.spec)
            .unwrap_or_else(|e| panic!("{}: frontend: {e}", self.spec.name));
        if fresh {
            let mut times = StageTimes::default();
            times.record(Stage::Frontend, artifact.elapsed);
            self.record(&times);
        }
        artifact.program()
    }

    /// Folds externally measured stage times into the speed report
    /// (custom pipelines record their own).
    pub fn record(&self, times: &StageTimes) {
        self.runner.agg.lock().unwrap().stages.add(times);
    }

    /// Builds this job's app under `pipeline` (stage times folded into
    /// the speed report, like [`GridJob::build`]) and runs a
    /// fault-injection campaign against the result. Campaigns are pure
    /// functions of the build, workload, and config, so grid output is
    /// byte-identical across worker-thread counts.
    pub fn campaign(
        &self,
        pipeline: &Pipeline,
        config: &safe_tinyos::CampaignConfig,
    ) -> safe_tinyos::CampaignReport {
        let build = self.build(pipeline);
        safe_tinyos::run_campaign(&build, &self.spec, config)
    }
}

impl ExperimentRunner {
    /// A runner with `STOS_THREADS`-controlled parallelism over the
    /// stock source set.
    pub fn from_env() -> ExperimentRunner {
        Self::with_threads(threads_from_env())
    }

    /// A runner with an explicit worker count (`1` = serial).
    pub fn with_threads(threads: usize) -> ExperimentRunner {
        ExperimentRunner {
            service: BuildService::with_threads(threads),
            agg: Mutex::new(SpeedAgg::default()),
        }
    }

    /// The underlying batch build service (worker pool + both caches).
    pub fn service(&self) -> &BuildService {
        &self.service
    }

    /// The shared build session (frontend cache and compile counter).
    pub fn session(&self) -> &BuildSession {
        self.service.session()
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.service.threads()
    }

    /// Runs `f` over every cell of the `apps` × `items` grid and returns
    /// the results as `result[app_index][item_index]`.
    ///
    /// Jobs are claimed from a shared counter in app-major order (all of
    /// one app's configurations first, so its frontend artifact is hot),
    /// but each result lands in its grid slot: the output is
    /// byte-for-byte independent of scheduling. A panicking job panics
    /// the whole run when the scope joins, with the failing cell's
    /// app × item label prepended to the panic message.
    pub fn run_grid<C, R, F>(&self, apps: &[&'static str], items: &[C], f: F) -> Vec<Vec<R>>
    where
        C: Sync,
        R: Send,
        F: Fn(&GridJob<'_, C>) -> R + Sync,
    {
        let flat = self.run_indexed(
            apps.len() * items.len(),
            |j| {
                let (app_index, item_index) = (j / items.len(), j % items.len());
                let job = GridJob {
                    spec: tosapps::spec(apps[app_index])
                        .unwrap_or_else(|| panic!("unknown app {}", apps[app_index])),
                    item: &items[item_index],
                    app_index,
                    item_index,
                    runner: self,
                };
                f(&job)
            },
            |j| format!("{} / item {}", apps[j / items.len()], j % items.len()),
        );
        let mut flat = flat.into_iter();
        (0..apps.len())
            .map(|_| {
                (0..items.len())
                    .map(|_| flat.next().expect("result per job"))
                    .collect()
            })
            .collect()
    }

    /// Runs `f` over every item of a flat (app-less) work list and
    /// returns the results in item order — the one-dimensional sibling
    /// of [`ExperimentRunner::run_grid`], for harnesses whose subjects
    /// are not benchmark apps (the differential oracle's generated
    /// seeds).
    pub fn run_items<C, R, F>(&self, items: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(usize, &C) -> R + Sync,
    {
        self.run_indexed(items.len(), |j| f(j, &items[j]), |j| format!("item {j}"))
    }

    /// The timing wrapper behind [`ExperimentRunner::run_grid`] and
    /// [`ExperimentRunner::run_items`]: runs `f(0..n)` across the
    /// service's worker pool ([`BuildService::run_jobs_labeled`]) and
    /// folds the batch's wall time and job count into the speed report.
    /// A panicking job panics the whole run when the scope joins, with
    /// `label(i)` prepended so the failing cell is nameable.
    fn run_indexed<R, F, L>(&self, n: usize, f: F, label: L) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        L: Fn(usize) -> String + Sync,
    {
        let start = Instant::now();
        let out = self.service.run_jobs_labeled(n, f, label);
        let mut agg = self.agg.lock().unwrap();
        agg.wall += start.elapsed();
        agg.jobs += n;
        out
    }

    /// [`ExperimentRunner::run_grid`] specialized to building each cell's
    /// [`Pipeline`] and returning its metrics.
    pub fn metrics_grid(
        &self,
        apps: &[&'static str],
        pipelines: &[Pipeline],
    ) -> Vec<Vec<safe_tinyos::Metrics>> {
        self.run_grid(apps, pipelines, |job| job.build(job.item).metrics)
    }

    /// The toolchain-speed summary accumulated so far.
    pub fn speed_report(&self, harness: &str) -> SpeedReport {
        let agg = self.agg.lock().unwrap();
        SpeedReport {
            harness: harness.to_string(),
            threads: self.threads(),
            jobs: agg.jobs,
            frontend_compiles: self.session().frontend_compiles(),
            wall: agg.wall,
            stages: agg.stages,
            cache: self.service.cache_stats(),
            warm: None,
        }
    }

    /// [`ExperimentRunner::speed_report`], additionally resetting the
    /// wall/stage/job accumulators so a follow-up window (e.g. a warm
    /// re-run of the same grid) can be measured on its own. The frontend
    /// and pass caches are *not* reset — that is the point of the second
    /// window.
    pub fn take_speed(&self, harness: &str) -> SpeedReport {
        let report = self.speed_report(harness);
        *self.agg.lock().unwrap() = SpeedAgg::default();
        report
    }

    /// Writes `BENCH_toolchain_speed_<harness>.json` for this runner's
    /// work, so each harness's perf trajectory is tracked across PRs
    /// without the six harnesses clobbering one shared file.
    pub fn emit_speed(&self, harness: &str) {
        let report = self.speed_report(harness);
        emit_json(&format!("toolchain_speed_{harness}"), &report.to_json())
            .expect("write BENCH_toolchain_speed_*.json");
    }
}

/// Aggregate toolchain timing for one harness run.
#[derive(Debug, Clone)]
pub struct SpeedReport {
    /// Which harness produced this report.
    pub harness: String,
    /// Worker threads used.
    pub threads: usize,
    /// Grid cells executed.
    pub jobs: usize,
    /// Frontend compiles actually performed (≤ apps in the grid).
    pub frontend_compiles: usize,
    /// Wall time across all `run_grid` calls.
    pub wall: Duration,
    /// Per-stage compile time summed over all builds.
    pub stages: StageTimes,
    /// Pass-cache counters at snapshot time (hits/misses/bytes per pass
    /// name).
    pub cache: CacheStats,
    /// The warm re-run window, when the harness measured one (the
    /// canonical fig3 grid does).
    pub warm: Option<WarmCache>,
}

/// Measurements from re-running a grid against already-warm caches,
/// plus the cache-effectiveness census the gate pins.
#[derive(Debug, Clone, Copy)]
pub struct WarmCache {
    /// Wall time of the warm re-run.
    pub wall: Duration,
    /// Stage (compile) time of the warm re-run.
    pub compile: Duration,
    /// How many times the `cure` pass actually executed (cache misses).
    pub cure_runs: u64,
    /// How many times it *had* to: one per distinct (app, cure spec)
    /// pair in the grid. `cure_runs == cure_unique` is the gate's
    /// cache-effectiveness invariant.
    pub cure_unique: u64,
}

impl SpeedReport {
    /// Total compile time actually spent across all stages, with the
    /// frontend artifact cache in effect (frontend paid once per app).
    pub fn compile_time(&self) -> Duration {
        self.stages.total()
    }

    /// Estimated compile time of the pre-pipeline harness: the same
    /// stage work with the frontend re-run for every job instead of
    /// once per app. Comparing this against [`SpeedReport::compile_time`]
    /// is apples-to-apples — both exclude non-compile work (simulation,
    /// printing), which `wall` includes.
    pub fn serial_compile_estimate(&self) -> Duration {
        let frontend = self.stages.get(Stage::Frontend);
        let rest = self.stages.total() - frontend;
        if self.frontend_compiles == 0 {
            return rest;
        }
        rest + frontend * (self.jobs as u32) / (self.frontend_compiles as u32)
    }

    /// Serializes the report (times in milliseconds). `wall_ms` covers
    /// everything the grid ran, including simulation; the
    /// `compile_ms` / `serial_compile_est_ms` pair isolates the
    /// toolchain cost with and without the frontend cache; the `cache`
    /// object carries the pass-cache counters (and, for the canonical
    /// fig3 grid, the warm-window numbers the cache gate enforces).
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut stage_obj = json::Obj::new();
        for (stage, t) in self.stages.iter() {
            stage_obj = stage_obj.num(stage.name(), ms(t));
        }
        let mut cache_obj = json::Obj::new();
        if let Some(w) = &self.warm {
            cache_obj = cache_obj
                .num("warm_wall_ms", ms(w.wall))
                .num("warm_compile_ms", ms(w.compile))
                .int("cure_runs", w.cure_runs as i64)
                .int("cure_unique", w.cure_unique as i64);
        }
        let mut passes_obj = json::Obj::new();
        for (name, c) in &self.cache.passes {
            let counters = json::Obj::new()
                .int("hits", c.hits as i64)
                .int("misses", c.misses as i64)
                .int("bytes", c.bytes as i64)
                .build();
            passes_obj = passes_obj.raw(name, &counters);
        }
        cache_obj = cache_obj.raw("passes", &passes_obj.build());
        json::Obj::new()
            .str("figure", "toolchain_speed")
            .str("harness", &self.harness)
            .int("threads", self.threads as i64)
            .int("jobs", self.jobs as i64)
            .int("frontend_compiles", self.frontend_compiles as i64)
            .num("wall_ms", ms(self.wall))
            .num("compile_ms", ms(self.compile_time()))
            .num("serial_compile_est_ms", ms(self.serial_compile_estimate()))
            .raw("stage_ms", &stage_obj.build())
            .raw("cache", &cache_obj.build())
            .build()
    }
}
