//! The stack-bound harness's data model: per-app × per-preset certified
//! bounds, diagnostic censuses, and simulator-observed watermarks (the
//! `stack_analysis` binary drives it, `stack_gate` diffs the published
//! artifact).
//!
//! The emitted `BENCH_stack.json` has two top-level objects with
//! different CI contracts:
//!
//! * `"analysis"` — the certified bound, its task/ISR decomposition,
//!   the SRAM budget, and the S00x census for every app × preset cell.
//!   Pure functions of the toolchain and the app sources, so CI
//!   byte-compares the published object against the committed baseline
//!   (see [`crate::gate::stack_check`]) — and because the analyzer runs
//!   over the linked image, the bytes are identical for any worker
//!   count and either execution engine.
//! * `"dynamics"` — the simulator's stack watermarks and
//!   bound-vs-watermark tightness. These depend on the run length
//!   (`STOS_SECONDS`), so they are not pinned against the committed
//!   baseline; instead the harness self-gates soundness (`watermark ≤
//!   bound` in every cell, surfaced as the `watermark_violations`
//!   field the gate checks), and when two runs share a horizon the gate
//!   byte-compares their `"watermarks"` object — that is how CI proves
//!   the interpreter and the translating engine observe identical
//!   watermarks.

use safe_tinyos::{simulate, Pipeline, StackStats, PRESET_NAMES};

use crate::{json, ExperimentRunner};

/// Index of the paper's full safe stack in [`PRESET_NAMES`] — the
/// headline preset for per-app tightness reporting.
pub const FULL_STACK: usize = 7;

/// The 12 preset pipelines, each with a default-budget `stackbound`
/// pass appended (the preset's display name is preserved).
pub fn stack_presets() -> Vec<Pipeline> {
    PRESET_NAMES
        .iter()
        .map(|name| {
            let preset = Pipeline::preset(name).expect("known preset");
            Pipeline::parse(&format!("{}|stackbound", preset.spec()))
                .expect("preset spec + stackbound parses")
                .with_name(*name)
        })
        .collect()
}

/// One app × preset cell: the certified bound and the observed truth.
#[derive(Debug, Clone)]
pub struct StackCell {
    /// Preset name (grid-column label).
    pub preset: String,
    /// The analyzer's rollup for this build.
    pub stats: StackStats,
    /// `S001 unbounded-recursion` diagnostics.
    pub s001: usize,
    /// `S002 unresolved-call-target` diagnostics.
    pub s002: usize,
    /// `S003 stack-budget-exceeded` diagnostics.
    pub s003: usize,
    /// Deepest stack extent the simulator observed, in bytes.
    pub watermark: u16,
}

impl StackCell {
    /// Whether the certified bound is finite and dominates the observed
    /// watermark — the soundness contract, per cell.
    pub fn sound(&self) -> bool {
        self.stats
            .bound_bytes
            .is_some_and(|b| u32::from(self.watermark) <= b)
    }
}

/// One app's row of the stack grid: a cell per preset, in
/// [`PRESET_NAMES`] order.
#[derive(Debug, Clone)]
pub struct AppStackRow {
    /// App name.
    pub app: String,
    /// Per-preset cells.
    pub cells: Vec<StackCell>,
}

impl AppStackRow {
    /// The deepest watermark across every preset.
    pub fn max_watermark(&self) -> u16 {
        self.cells.iter().map(|c| c.watermark).max().unwrap_or(0)
    }
}

/// Builds every app under every preset (each with `stackbound`
/// appended), simulates each build for `seconds`, and returns the grid
/// rows in app order.
pub fn measure(runner: &ExperimentRunner, apps: &[&'static str], seconds: u64) -> Vec<AppStackRow> {
    let presets = stack_presets();
    let grid = runner.run_grid(apps, &presets, |job| {
        let build = job.build(job.item);
        let stats = build
            .metrics
            .stack
            .expect("the stackbound pass deposits stats");
        let (mut s001, mut s002, mut s003) = (0, 0, 0);
        for d in &build.metrics.diagnostics {
            match d.code.as_str() {
                "S001" => s001 += 1,
                "S002" => s002 += 1,
                "S003" => s003 += 1,
                _ => {}
            }
        }
        let sim = simulate(&build, &job.spec, seconds);
        StackCell {
            preset: job.item.name().to_string(),
            stats,
            s001,
            s002,
            s003,
            watermark: sim.stack_watermark,
        }
    });
    apps.iter()
        .zip(grid)
        .map(|(app, cells)| AppStackRow {
            app: app.to_string(),
            cells,
        })
        .collect()
}

fn opt_u32(v: Option<u32>) -> i64 {
    v.map_or(-1, i64::from)
}

/// Serializes the byte-pinned `"analysis"` object (everything in it is
/// a pure function of toolchain + sources: certified bounds, their
/// task/ISR split, budgets, and the S00x census — no run-length knobs,
/// no simulator state). Unbounded cells encode their bound as `-1`.
pub fn analysis_json(rows: &[AppStackRow]) -> String {
    let (mut t001, mut t002, mut t003, mut bounded) = (0, 0, 0, 0);
    let apps = rows
        .iter()
        .map(|r| {
            let presets = r
                .cells
                .iter()
                .map(|c| {
                    t001 += c.s001;
                    t002 += c.s002;
                    t003 += c.s003;
                    bounded += usize::from(c.stats.bound_bytes.is_some());
                    json::Obj::new()
                        .str("preset", &c.preset)
                        .int("bound", opt_u32(c.stats.bound_bytes))
                        .int("task", opt_u32(c.stats.task_bytes))
                        .int("isr", opt_u32(c.stats.isr_bytes))
                        .int("budget", i64::from(c.stats.budget_bytes))
                        .int("vectors", c.stats.wired_vectors as i64)
                        .int("nested_irqs", i64::from(c.stats.nested_irqs))
                        .int("s001", c.s001 as i64)
                        .int("s002", c.s002 as i64)
                        .int("s003", c.s003 as i64)
                        .build()
                })
                .collect::<Vec<_>>();
            json::Obj::new()
                .str("app", &r.app)
                .raw("presets", &json::arr(presets))
                .build()
        })
        .collect::<Vec<_>>();
    json::Obj::new()
        .raw("apps", &json::arr(apps))
        .raw(
            "totals",
            &json::Obj::new()
                .int("s001", t001 as i64)
                .int("s002", t002 as i64)
                .int("s003", t003 as i64)
                .int("bounded_cells", bounded as i64)
                .build(),
        )
        .build()
}

/// Serializes the `"dynamics"` object: watermarks and tightness, which
/// depend on the simulated horizon. `watermark_violations` counts cells
/// whose observed watermark is not dominated by a finite certified
/// bound — the soundness field [`crate::gate::stack_check`] requires to
/// be zero — and the `"watermarks"` object (app → per-preset watermark
/// array) is what the gate byte-compares across same-horizon runs to
/// prove engine invariance.
pub fn dynamics_json(rows: &[AppStackRow], seconds: u64) -> String {
    let violations: usize = rows
        .iter()
        .flat_map(|r| &r.cells)
        .filter(|c| !c.sound())
        .count();
    let mut watermarks = json::Obj::new();
    for r in rows {
        let per_preset = r
            .cells
            .iter()
            .map(|c| c.watermark.to_string())
            .collect::<Vec<_>>();
        watermarks = watermarks.raw(&r.app, &json::arr(per_preset));
    }
    let apps = rows
        .iter()
        .map(|r| {
            let full = &r.cells[FULL_STACK];
            let tightness = match full.stats.bound_bytes {
                Some(b) if b > 0 => f64::from(full.watermark) * 100.0 / f64::from(b),
                _ => 0.0,
            };
            json::Obj::new()
                .str("app", &r.app)
                .int("bound", opt_u32(full.stats.bound_bytes))
                .int("watermark", i64::from(full.watermark))
                .num("tightness_pct", tightness)
                .int("max_watermark", i64::from(r.max_watermark()))
                .build()
        })
        .collect::<Vec<_>>();
    json::Obj::new()
        .int("seconds", seconds as i64)
        .int("watermark_violations", violations as i64)
        .raw("watermarks", &watermarks.build())
        .raw("apps", &json::arr(apps))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_keep_names_and_gain_stackbound() {
        let presets = stack_presets();
        assert_eq!(presets.len(), PRESET_NAMES.len());
        assert_eq!(presets[FULL_STACK].name(), "safe-flid-inline-cxprop");
        for p in &presets {
            assert!(p.spec().ends_with("|stackbound"), "{}", p.spec());
        }
    }

    #[test]
    fn soundness_predicate_and_violation_count() {
        let cell = |bound: Option<u32>, watermark: u16| StackCell {
            preset: "p".into(),
            stats: StackStats {
                bound_bytes: bound,
                ..StackStats::default()
            },
            s001: 0,
            s002: 0,
            s003: 0,
            watermark,
        };
        assert!(cell(Some(100), 100).sound());
        assert!(!cell(Some(100), 101).sound());
        assert!(!cell(None, 0).sound(), "unbounded certifies nothing");
        let rows = vec![AppStackRow {
            app: "A".into(),
            cells: vec![cell(Some(64), 40); PRESET_NAMES.len()],
        }];
        let body = dynamics_json(&rows, 3);
        assert!(body.contains("\"watermark_violations\":0"), "{body}");
        assert!(body.contains("\"tightness_pct\":62.5"), "{body}");
    }

    #[test]
    fn analysis_json_is_knob_free() {
        let rows = vec![AppStackRow {
            app: "A".into(),
            cells: vec![
                StackCell {
                    preset: "unsafe".into(),
                    stats: StackStats {
                        bound_bytes: Some(56),
                        task_bytes: Some(40),
                        isr_bytes: Some(16),
                        budget_bytes: 4096,
                        wired_vectors: 2,
                        nested_irqs: false,
                    },
                    s001: 0,
                    s002: 0,
                    s003: 0,
                    watermark: 44,
                };
                1
            ],
        }];
        let body = analysis_json(&rows);
        assert!(body.contains("\"bound\":56"), "{body}");
        assert!(body.contains("\"bounded_cells\":1"), "{body}");
        // No watermark, no seconds: nothing run-length-dependent.
        assert!(!body.contains("watermark"), "{body}");
        assert!(!body.contains("seconds"), "{body}");
    }
}
