//! Error-message configurations (§3.2, Figure 3 bars 1–4).
//!
//! A failed check must tell the developer *where* and *why*. The paper
//! explores four encodings with wildly different node-side costs:
//!
//! | Mode | On the node | Cost |
//! |------|-------------|------|
//! | [`ErrorMode::VerboseRam`] | full message strings in SRAM (AVR string literals live in SRAM by default) | catastrophic RAM |
//! | [`ErrorMode::VerboseRom`] | strings in flash, read via program-memory loads | large flash, extra code per check |
//! | [`ErrorMode::Terse`] | only a check-kind code | cheap but nearly useless messages |
//! | [`ErrorMode::Flid`] | a 16-bit failure-location id; the *host* keeps the decompression table | cheap **and** precise |
//!
//! This module materializes the message strings as program globals (RAM
//! or ROM according to the mode) named `__ccured_msg_<flid>`, so that the
//! downstream optimizers treat them exactly like the paper's methodology:
//! when an optimizer removes a check, its message becomes unreferenced
//! and is swept, which is how Figure 2 counts surviving checks.

use tcil::ir::{Global, Init, Program};
use tcil::types::{IntKind, Type};

/// The four error-message configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorMode {
    /// Full message strings kept in SRAM.
    VerboseRam,
    /// Full message strings kept in flash.
    VerboseRom,
    /// Only a one-byte check-kind code; no location info.
    Terse,
    /// 16-bit compressed failure-location identifiers (the paper's FLIDs).
    #[default]
    Flid,
}

/// Prefix of the synthesized message globals.
pub const MSG_PREFIX: &str = "__ccured_msg_";

/// Materializes error messages for the checks recorded in
/// `program.flid_messages` according to `mode`. Returns the added
/// `(ram, rom)` byte counts.
pub fn attach_messages(program: &mut Program, mode: ErrorMode) -> (u32, u32) {
    match mode {
        ErrorMode::Terse | ErrorMode::Flid => (0, 0),
        ErrorMode::VerboseRam | ErrorMode::VerboseRom => {
            let rom = mode == ErrorMode::VerboseRom;
            let mut ram_bytes = 0;
            let mut rom_bytes = 0;
            let messages = program.flid_messages.clone();
            for (flid, msg) in &messages {
                let bytes = msg.as_bytes().to_vec();
                let id = program.strings.intern(&bytes);
                let len = bytes.len() as u32 + 1;
                program.globals.push(Global {
                    name: format!("{MSG_PREFIX}{flid}"),
                    ty: Type::Array(Box::new(Type::Int(IntKind::I8)), len),
                    init: Init::Str(id),
                    norace: false,
                    is_const: rom,
                    racy: false,
                });
                if rom {
                    rom_bytes += len;
                } else {
                    // AVR-style: the literal occupies flash (initializer
                    // image) *and* SRAM (runtime copy).
                    ram_bytes += len;
                    rom_bytes += len;
                }
            }
            (ram_bytes, rom_bytes)
        }
    }
}

/// Removes message globals whose FLID no longer appears in any surviving
/// check — the "unique string becomes unreferenced" sweep of the paper's
/// Figure 2 methodology. Called by the DCE passes. Returns how many
/// messages were swept.
pub fn prune_unused_messages(program: &mut Program) -> usize {
    use std::collections::HashSet;
    use tcil::ir::Stmt;
    use tcil::visit;

    let mut live: HashSet<u16> = HashSet::new();
    for f in &program.functions {
        visit::walk_stmts(&f.body, &mut |s| {
            if let Stmt::Check(c) = s {
                live.insert(c.flid.0);
            }
        });
    }
    let before = program.globals.len();
    // Message globals are never referenced by code, so removal does not
    // shift any GlobalId used by expressions *only if* they were appended
    // last. They are (attach_messages pushes at the end), but an optimizer
    // may run multiple times; be conservative and only drop the tail.
    while let Some(g) = program.globals.last() {
        let Some(flid) = g
            .name
            .strip_prefix(MSG_PREFIX)
            .and_then(|s| s.parse::<u16>().ok())
        else {
            break;
        };
        if live.contains(&flid) {
            break;
        }
        program.globals.pop();
    }
    // Non-tail unreachable messages are replaced with zero-size tombstones
    // (cannot be removed without renumbering GlobalIds).
    let mut swept = before - program.globals.len();
    for g in &mut program.globals {
        if let Some(flid) = g
            .name
            .strip_prefix(MSG_PREFIX)
            .and_then(|s| s.parse::<u16>().ok())
        {
            if !live.contains(&flid) && !matches!(g.ty, Type::Array(_, 0)) {
                g.ty = Type::Array(Box::new(Type::Int(IntKind::I8)), 0);
                g.init = Init::Zero;
                swept += 1;
            }
        }
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cure, CureOptions};

    fn prog() -> Program {
        tcil::parse_and_lower(
            "uint8_t g;
             uint8_t read(uint8_t * p) { return *p; }
             void main() { read(&g); }",
        )
        .unwrap()
    }

    #[test]
    fn flid_mode_adds_no_strings() {
        let mut p = prog();
        let stats = cure(
            &mut p,
            &CureOptions {
                error_mode: ErrorMode::Flid,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stats.message_bytes, (0, 0));
        assert!(!p.globals.iter().any(|g| g.name.starts_with(MSG_PREFIX)));
        assert!(!p.flid_messages.is_empty(), "host table still populated");
    }

    #[test]
    fn verbose_ram_costs_both_ram_and_rom() {
        let mut p = prog();
        let stats = cure(
            &mut p,
            &CureOptions {
                error_mode: ErrorMode::VerboseRam,
                ..Default::default()
            },
        )
        .unwrap();
        let (ram, rom) = stats.message_bytes;
        assert!(ram > 0);
        assert_eq!(ram, rom);
    }

    #[test]
    fn verbose_rom_costs_only_rom() {
        let mut p = prog();
        let stats = cure(
            &mut p,
            &CureOptions {
                error_mode: ErrorMode::VerboseRom,
                ..Default::default()
            },
        )
        .unwrap();
        let (ram, rom) = stats.message_bytes;
        assert_eq!(ram, 0);
        assert!(rom > 0);
        assert!(p
            .globals
            .iter()
            .any(|g| g.name.starts_with(MSG_PREFIX) && g.is_const));
    }

    #[test]
    fn pruning_drops_messages_of_removed_checks() {
        let mut p = prog();
        cure(
            &mut p,
            &CureOptions {
                error_mode: ErrorMode::VerboseRam,
                ..Default::default()
            },
        )
        .unwrap();
        let with_msgs = p
            .globals
            .iter()
            .filter(|g| g.name.starts_with(MSG_PREFIX))
            .count();
        assert!(with_msgs > 0);
        // Remove every check, then prune.
        for f in &mut p.functions {
            tcil::visit::walk_stmts_mut(&mut f.body, &mut |s| {
                if matches!(s, tcil::ir::Stmt::Check(_)) {
                    *s = tcil::ir::Stmt::Nop;
                }
            });
        }
        let swept = prune_unused_messages(&mut p);
        assert!(swept > 0);
    }
}
