//! Check insertion: the heart of the CCured transformation.
//!
//! After kind inference has retyped every declaration, this pass rewrites
//! each untrusted function so that
//!
//! * every dereference of a SAFE pointer is preceded by a
//!   [`CheckKind::NonNull`],
//! * every dereference of a FSEQ/SEQ fat pointer is preceded by an
//!   [`CheckKind::Upper`] / [`CheckKind::Bounds`] check,
//! * every direct array access whose index is not a provably in-range
//!   constant gets a [`CheckKind::IndexBound`],
//! * fresh pointers (`&x`, string literals) flowing into fat contexts are
//!   wrapped in [`ExprKind::MakeFat`] carrying the bounds of the referent
//!   object,
//! * and — per §2.2 — any statement whose inserted check involves a
//!   variable from the nesC non-atomic variable report is wrapped in an
//!   `atomic` lock, because an interrupt could otherwise retarget the
//!   pointer between the check and the use.
//!
//! Every check receives a unique FLID and a message recorded in
//! [`Program::flid_messages`].

use tcil::ir::*;
use tcil::types::{size_of, IntKind, PtrKind, StructDef, Type};
use tcil::visit;
use tcil::CompileError;

use crate::CureOptions;

/// What the instrumenter added.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inserted {
    /// Number of checks inserted.
    pub checks: usize,
    /// Number of lock (atomic) wrappers inserted around racy checks.
    pub locks: usize,
}

/// Runs the instrumentation pass over every untrusted function.
///
/// # Errors
///
/// Returns an error on pointer flows the kind system cannot represent
/// (these indicate an inference bug or a trusted-boundary violation).
pub fn instrument(program: &mut Program, options: &CureOptions) -> Result<Inserted, CompileError> {
    let structs = program.structs.clone();
    let globals: Vec<(Type, bool)> = program
        .globals
        .iter()
        .map(|g| (g.ty.clone(), g.racy))
        .collect();
    // Parameter types post-kind-application, for call-argument coercion.
    let param_tys: Vec<Vec<Type>> = program
        .functions
        .iter()
        .map(|f| f.param_ids().map(|id| f.local_ty(id).clone()).collect())
        .collect();
    let str_lens: Vec<u32> = program
        .strings
        .iter()
        .map(|(_, s)| s.len() as u32)
        .collect();
    let mut inserted = Inserted::default();
    let mut next_flid: u16 = 1;
    let mut messages = Vec::new();

    for fi in 0..program.functions.len() {
        if program.functions[fi].trusted {
            continue;
        }
        let mut func = std::mem::replace(
            &mut program.functions[fi],
            Function::new("<in-flight>", Type::Void),
        );
        let body = std::mem::take(&mut func.body);
        let mut cx = Instrumenter {
            structs: &structs,
            globals: &globals,
            param_tys: &param_tys,
            str_lens: &str_lens,
            func: &mut func,
            options,
            next_flid: &mut next_flid,
            messages: &mut messages,
            inserted: &mut inserted,
            atomic_depth: 0,
            racy_flag: false,
            site: 0,
            errors: Vec::new(),
        };
        let new_body = cx.rw_block(body);
        if let Some(e) = cx.errors.into_iter().next() {
            return Err(e);
        }
        func.body = new_body;
        program.functions[fi] = func;
    }
    program.flid_messages = messages;
    Ok(inserted)
}

/// How a place is being accessed (reserved for future read/write-specific
/// policies; checks are currently identical for both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Write,
}

struct Instrumenter<'a> {
    structs: &'a [StructDef],
    globals: &'a [(Type, bool)],
    param_tys: &'a [Vec<Type>],
    str_lens: &'a [u32],
    func: &'a mut Function,
    options: &'a CureOptions,
    next_flid: &'a mut u16,
    messages: &'a mut Vec<(u16, String)>,
    inserted: &'a mut Inserted,
    atomic_depth: u32,
    racy_flag: bool,
    site: u32,
    errors: Vec<CompileError>,
}

impl Instrumenter<'_> {
    fn fresh_flid(&mut self, what: &str) -> Flid {
        let flid = *self.next_flid;
        *self.next_flid += 1;
        self.site += 1;
        self.messages
            .push((flid, format!("{}:{}: {what}", self.func.name, self.site)));
        Flid(flid)
    }

    fn push_check(&mut self, out: &mut Block, kind: CheckKind, what: &str) {
        let flid = self.fresh_flid(what);
        self.inserted.checks += 1;
        out.push(Stmt::Check(Check { kind, flid }));
    }

    fn err(&mut self, msg: String) {
        self.errors.push(CompileError::generic(msg));
    }

    fn rw_block(&mut self, b: Block) -> Block {
        let mut out = Vec::with_capacity(b.len());
        for s in b {
            self.rw_stmt(s, &mut out);
        }
        out
    }

    fn rw_stmt(&mut self, s: Stmt, out: &mut Block) {
        let start = out.len();
        let saved_racy = self.racy_flag;
        self.racy_flag = false;
        match s {
            Stmt::Assign(place, e) => {
                let e = self.rw_expr(e, out);
                let place = self.rw_place(place, out, Access::Write);
                let e = self.coerce(e, &place.ty.clone(), out);
                out.push(Stmt::Assign(place, e));
            }
            Stmt::Call { dst, func, args } => {
                let params = self.param_tys[func.0 as usize].clone();
                let args: Vec<Expr> = args
                    .into_iter()
                    .enumerate()
                    .map(|(i, a)| {
                        let a = self.rw_expr(a, out);
                        match params.get(i) {
                            Some(pty) => self.coerce(a, &pty.clone(), out),
                            None => a,
                        }
                    })
                    .collect();
                let dst = dst.map(|d| self.rw_place(d, out, Access::Write));
                out.push(Stmt::Call { dst, func, args });
            }
            Stmt::BuiltinCall { dst, which, args } => {
                let args: Vec<Expr> = args.into_iter().map(|a| self.rw_expr(a, out)).collect();
                let dst = dst.map(|d| self.rw_place(d, out, Access::Write));
                out.push(Stmt::BuiltinCall { dst, which, args });
            }
            Stmt::If { cond, then_, else_ } => {
                let cond = self.rw_expr(cond, out);
                let then_ = self.rw_block(then_);
                let else_ = self.rw_block(else_);
                out.push(Stmt::If { cond, then_, else_ });
            }
            Stmt::While { cond, body } => {
                // Condition checks must re-run each iteration: restructure
                // to `while (1) { <checks>; if (!cond) break; body }` when
                // rewriting the condition produced statements.
                let mut pre = Vec::new();
                let cond = self.rw_expr(cond, &mut pre);
                let body = self.rw_block(body);
                if pre.is_empty() {
                    out.push(Stmt::While { cond, body });
                } else {
                    let mut wb = pre;
                    wb.push(Stmt::If {
                        cond,
                        then_: Vec::new(),
                        else_: vec![Stmt::Break],
                    });
                    wb.extend(body);
                    out.push(Stmt::While {
                        cond: Expr::bool_val(true),
                        body: wb,
                    });
                }
            }
            Stmt::Return(Some(e)) => {
                let e = self.rw_expr(e, out);
                let ret = self.func.ret.clone();
                let e = self.coerce(e, &ret, out);
                out.push(Stmt::Return(Some(e)));
            }
            Stmt::Atomic { body, style } => {
                self.atomic_depth += 1;
                let body = self.rw_block(body);
                self.atomic_depth -= 1;
                out.push(Stmt::Atomic { body, style });
            }
            Stmt::Block(b) => {
                let b = self.rw_block(b);
                out.push(Stmt::Block(b));
            }
            other => out.push(other),
        }
        // §2.2: lock the check + use when a racy variable is involved.
        let had_check = out[start..].iter().any(|s| matches!(s, Stmt::Check(_)));
        if self.racy_flag && had_check && self.options.lock_racy_checks && self.atomic_depth == 0 {
            let seq: Vec<Stmt> = out.drain(start..).collect();
            out.push(Stmt::Atomic {
                body: seq,
                style: AtomicStyle::SaveRestore,
            });
            self.inserted.locks += 1;
        }
        self.racy_flag |= saved_racy;
    }

    // ----- places -----

    fn rw_place(&mut self, place: Place, out: &mut Block, _access: Access) -> Place {
        let Place { base, elems, .. } = place;
        let (base, mut ty) = match base {
            PlaceBase::Local(id) => {
                let ty = self.func.local_ty(id).clone();
                (PlaceBase::Local(id), ty)
            }
            PlaceBase::Global(g) => {
                let ty = self.globals[g.0 as usize].0.clone();
                (PlaceBase::Global(g), ty)
            }
            PlaceBase::Deref(e) => {
                let e = self.rw_expr(*e, out);
                let e = self.check_deref(e, out);
                let ty = match &e.ty {
                    Type::Ptr(t, _) => (**t).clone(),
                    other => {
                        self.err(format!("deref of non-pointer {other}"));
                        Type::u8()
                    }
                };
                (PlaceBase::Deref(Box::new(e)), ty)
            }
        };
        let mut new_elems = Vec::with_capacity(elems.len());
        for el in elems {
            match el {
                PlaceElem::Field { sid, idx } => {
                    ty = self.structs[sid.0 as usize].fields[idx as usize].ty.clone();
                    new_elems.push(PlaceElem::Field { sid, idx });
                }
                PlaceElem::Index(i) => {
                    let i = self.rw_expr(*i, out);
                    let n = match &ty {
                        Type::Array(elem, n) => {
                            let n = *n;
                            ty = (**elem).clone();
                            n
                        }
                        other => {
                            self.err(format!("index into non-array {other}"));
                            1
                        }
                    };
                    // Skip the check for provably in-range constants.
                    let needs = match i.as_const() {
                        Some(v) => v < 0 || v as u64 >= n as u64,
                        None => true,
                    };
                    if needs {
                        self.push_check(
                            out,
                            CheckKind::IndexBound { idx: i.clone(), n },
                            "array index out of bounds",
                        );
                    }
                    new_elems.push(PlaceElem::Index(Box::new(i)));
                }
            }
        }
        Place {
            base,
            elems: new_elems,
            ty,
        }
    }

    /// Hoists a pointer about to be dereferenced into a temp (unless it is
    /// already a simple load) and emits the kind-appropriate check.
    fn check_deref(&mut self, e: Expr, out: &mut Block) -> Expr {
        let (pointee, kind) = match &e.ty {
            Type::Ptr(t, k) => ((**t).clone(), *k),
            _ => return e,
        };
        if kind == PtrKind::Thin {
            return e; // trusted code
        }
        if expr_touches_racy(&e, self.globals) {
            self.racy_flag = true;
        }
        let simple = matches!(
            &e.kind,
            ExprKind::Load(Place { base: PlaceBase::Local(_), elems, .. }) if elems.is_empty()
        );
        let ptr = if simple {
            e
        } else {
            let t = self.func.add_temp(e.ty.clone());
            let ty = e.ty.clone();
            out.push(Stmt::Assign(Place::local(t, ty.clone()), e));
            Expr::load(Place::local(t, ty))
        };
        let len = size_of(&pointee, self.structs);
        match kind {
            PtrKind::Safe => {
                self.push_check(out, CheckKind::NonNull(ptr.clone()), "null dereference")
            }
            PtrKind::Fseq => self.push_check(
                out,
                CheckKind::Upper {
                    ptr: ptr.clone(),
                    len,
                },
                "pointer past end of object",
            ),
            PtrKind::Seq => self.push_check(
                out,
                CheckKind::Bounds {
                    ptr: ptr.clone(),
                    len,
                },
                "pointer outside object bounds",
            ),
            PtrKind::Thin => unreachable!(),
        }
        ptr
    }

    // ----- expressions -----

    fn rw_expr(&mut self, e: Expr, out: &mut Block) -> Expr {
        let Expr { ty, kind } = e;
        match kind {
            ExprKind::Load(p) => {
                let p = self.rw_place(p, out, Access::Read);
                Expr {
                    ty: p.ty.clone(),
                    kind: ExprKind::Load(p),
                }
            }
            ExprKind::AddrOf(p) => {
                let p = self.rw_place(p, out, Access::Read);
                Expr::addr_of(p)
            }
            ExprKind::Unary(op, a) => {
                let a = self.rw_expr(*a, out);
                Expr {
                    ty,
                    kind: ExprKind::Unary(op, Box::new(a)),
                }
            }
            ExprKind::Binary(op, a, b) => {
                let a = self.rw_expr(*a, out);
                let b = self.rw_expr(*b, out);
                let ty = match op {
                    BinOp::PtrAdd | BinOp::PtrSub => a.ty.clone(),
                    _ => ty,
                };
                Expr {
                    ty,
                    kind: ExprKind::Binary(op, Box::new(a), Box::new(b)),
                }
            }
            ExprKind::Cast(a) => {
                let a = self.rw_expr(*a, out);
                if ty.is_ptr() && a.ty.is_ptr() {
                    // Pointer casts are representation no-ops; keep the
                    // (kind-annotated) operand type.
                    a
                } else {
                    Expr {
                        ty,
                        kind: ExprKind::Cast(Box::new(a)),
                    }
                }
            }
            k @ (ExprKind::Const(_) | ExprKind::Str(_) | ExprKind::SizeOf(_)) => {
                Expr { ty, kind: k }
            }
            ExprKind::MakeFat { .. } => {
                self.err("MakeFat encountered before curing".into());
                Expr {
                    ty,
                    kind: ExprKind::Const(0),
                }
            }
        }
    }

    // ----- kind coercion -----

    /// Coerces `e` to exactly `target` (used for assignments and returns
    /// where the destination type is known).
    fn coerce(&mut self, e: Expr, target: &Type, out: &mut Block) -> Expr {
        let Type::Ptr(_, tk) = target else { return e };
        let ek = match &e.ty {
            Type::Ptr(_, k) => *k,
            // Null constants lowered as typed pointer consts.
            _ => return e,
        };
        if e.as_const() == Some(0) {
            // Null: all-zero representation works for every kind.
            return Expr {
                ty: target.clone(),
                kind: ExprKind::Const(0),
            };
        }
        match (ek, tk) {
            (a, b) if a == *b => e,
            (PtrKind::Thin, PtrKind::Safe) => Expr {
                ty: target.clone(),
                kind: e.kind,
            },
            (PtrKind::Thin, PtrKind::Fseq | PtrKind::Seq) => self.make_fat(e, target.clone(), out),
            (a, b) => {
                self.err(format!(
                    "pointer kind mismatch: {a:?} value in {b:?} context"
                ));
                e
            }
        }
    }

    /// Builds a `MakeFat` wrapping a fresh thin pointer with the bounds of
    /// its referent object.
    fn make_fat(&mut self, e: Expr, target: Type, out: &mut Block) -> Expr {
        let seq = matches!(&target, Type::Ptr(_, PtrKind::Seq));
        let (val, base, end) = match &e.kind {
            ExprKind::AddrOf(place) => {
                // The referent object: if the place ends in an index, the
                // bounds are those of the whole array; otherwise the
                // single object.
                let mut obj = place.clone();
                let mut indexed = false;
                if matches!(obj.elems.last(), Some(PlaceElem::Index(_))) {
                    obj.elems.pop();
                    obj.ty = self.place_ty(&obj);
                    indexed = true;
                }
                let (elem_ty, n) = match &obj.ty {
                    Type::Array(t, n) => ((**t).clone(), *n),
                    t => (t.clone(), 1),
                };
                let base = if matches!(obj.ty, Type::Array(..)) {
                    let zero = Expr::const_int(0, IntKind::U16);
                    Expr::addr_of(obj.clone().index(zero, elem_ty.clone()))
                } else {
                    Expr::addr_of(obj.clone())
                };
                let end = Expr::binary(
                    BinOp::PtrAdd,
                    base.clone(),
                    Expr::const_int(n as i64, IntKind::U16),
                    base.ty.clone(),
                );
                let _ = indexed;
                (e.clone(), if seq { Some(base) } else { None }, end)
            }
            ExprKind::Str(id) => {
                let len = self.str_lens.get(id.0 as usize).copied().unwrap_or(0);
                let end = Expr::binary(
                    BinOp::PtrAdd,
                    e.clone(),
                    Expr::const_int(len as i64 + 1, IntKind::U16),
                    e.ty.clone(),
                );
                (e.clone(), if seq { Some(e.clone()) } else { None }, end)
            }
            _ => {
                self.err(format!("cannot fatten pointer expression of type {}", e.ty));
                return e;
            }
        };
        let _ = out;
        Expr {
            ty: target,
            kind: ExprKind::MakeFat {
                val: Box::new(val),
                base: base.map(Box::new),
                end: Box::new(end),
            },
        }
    }

    fn place_ty(&self, p: &Place) -> Type {
        let mut ty = match &p.base {
            PlaceBase::Local(id) => self.func.local_ty(*id).clone(),
            PlaceBase::Global(g) => self.globals[g.0 as usize].0.clone(),
            PlaceBase::Deref(e) => match &e.ty {
                Type::Ptr(t, _) => (**t).clone(),
                _ => Type::u8(),
            },
        };
        for el in &p.elems {
            match el {
                PlaceElem::Field { sid, idx } => {
                    ty = self.structs[sid.0 as usize].fields[*idx as usize]
                        .ty
                        .clone();
                }
                PlaceElem::Index(_) => {
                    if let Type::Array(t, _) = ty {
                        ty = *t;
                    }
                }
            }
        }
        ty
    }
}

/// Whether evaluating `e` reads any global from the non-atomic report.
fn expr_touches_racy(e: &Expr, globals: &[(Type, bool)]) -> bool {
    let mut racy = false;
    visit::walk_expr(e, &mut |x| {
        if let ExprKind::Load(p) = &x.kind {
            if let PlaceBase::Global(g) = &p.base {
                if globals[g.0 as usize].1 {
                    racy = true;
                }
            }
        }
    });
    racy
}
