//! Whole-program pointer-kind inference.
//!
//! Every *pointer slot* — a global, local, struct field, parameter,
//! return value, or indirect cell — is classified into a CCured kind:
//!
//! * **SAFE**: never used with arithmetic → 1 word, null check only,
//! * **FSEQ**: forward arithmetic only → 2 words (value + end),
//! * **SEQ**: arbitrary arithmetic → 3 words (value + base + end).
//!
//! Slots connected by assignments, argument passing, or returns must have
//! the same physical representation, so the solver unifies them
//! (union-find) and joins their kind requirements — the same structure as
//! CCured's constraint system, minus WILD (the source language has no
//! unchecked casts). Pointers reached through other pointers are
//! approximated by one *indirect* slot per pointer type shape, and taking
//! the address of a pointer unifies it with the matching indirect slot,
//! keeping the analysis sound for pointer-to-pointer code.

use std::collections::HashMap;

use tcil::ir::*;
use tcil::types::{PtrKind, Type};
use tcil::visit;

/// A pointer slot in the constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Slot {
    Global(u32),
    /// (function, local index) — parameters included.
    Local(u32, u32),
    /// (struct, field index) — shared by every instance of the struct.
    Field(u32, u32),
    /// Function return value.
    Ret(u32),
    /// All pointers of a given type shape reached through a dereference.
    Indirect(u32),
}

#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    arith: bool,
    backward: bool,
}

/// The solved kind assignment.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    index: HashMap<Slot, usize>,
    parent: Vec<usize>,
    flags: Vec<Flags>,
    fingerprints: HashMap<String, u32>,
}

/// Census of inferred kinds, reported in experiment output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindSummary {
    /// SAFE slots.
    pub safe: usize,
    /// FSEQ slots.
    pub fseq: usize,
    /// SEQ slots.
    pub seq: usize,
}

impl Solution {
    fn slot(&mut self, s: Slot) -> usize {
        if let Some(&i) = self.index.get(&s) {
            return i;
        }
        let i = self.parent.len();
        self.index.insert(s, i);
        self.parent.push(i);
        self.flags.push(Flags::default());
        i
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.parent[rb] = ra;
        let fb = self.flags[rb];
        let fa = &mut self.flags[ra];
        fa.arith |= fb.arith;
        fa.backward |= fb.backward;
    }

    fn mark(&mut self, i: usize, backward: bool) {
        let r = self.find(i);
        self.flags[r].arith = true;
        self.flags[r].backward |= backward;
    }

    fn kind_of_idx(&self, i: usize) -> PtrKind {
        let f = self.flags[self.find(i)];
        match (f.arith, f.backward) {
            (false, _) => PtrKind::Safe,
            (true, false) => PtrKind::Fseq,
            (true, true) => PtrKind::Seq,
        }
    }

    fn kind_of(&self, s: Slot) -> PtrKind {
        match self.index.get(&s) {
            Some(&i) => self.kind_of_idx(i),
            None => PtrKind::Safe,
        }
    }

    fn fingerprint(&mut self, ty: &Type) -> u32 {
        let key = shape_key(ty);
        let next = self.fingerprints.len() as u32;
        *self.fingerprints.entry(key).or_insert(next)
    }

    /// Per-root kind census.
    pub fn summary(&self) -> KindSummary {
        let mut s = KindSummary::default();
        for i in 0..self.parent.len() {
            if self.find(i) != i {
                continue;
            }
            match self.kind_of_idx(i) {
                PtrKind::Safe | PtrKind::Thin => s.safe += 1,
                PtrKind::Fseq => s.fseq += 1,
                PtrKind::Seq => s.seq += 1,
            }
        }
        s
    }
}

/// Canonical type shape ignoring kind annotations.
fn shape_key(ty: &Type) -> String {
    match ty {
        Type::Void => "v".into(),
        Type::Int(k) => format!("i{}", k.size() * if k.signed() { 10 } else { 1 }),
        Type::Ptr(t, _) => format!("p({})", shape_key(t)),
        Type::Array(t, n) => format!("a{n}({})", shape_key(t)),
        Type::Struct(sid) => format!("s{}", sid.0),
    }
}

/// Runs the inference over `program`.
pub fn infer(program: &Program) -> Solution {
    let mut sol = Solution::default();
    let mut cx = Cx {
        sol: &mut sol,
        prog: program,
        func: 0,
    };
    for (fi, f) in program.functions.iter().enumerate() {
        cx.func = fi as u32;
        cx.scan_block(&f.body);
    }
    sol
}

struct Cx<'a> {
    sol: &'a mut Solution,
    prog: &'a Program,
    func: u32,
}

impl Cx<'_> {
    /// The constraint slot a place's *pointer value* lives in, if the
    /// place is pointer-typed.
    fn place_slot(&mut self, p: &Place) -> Option<usize> {
        if !p.ty.is_ptr() {
            return None;
        }
        // Last field projection wins; otherwise the base.
        let mut slot = match &p.base {
            PlaceBase::Local(id) => Slot::Local(self.func, id.0),
            PlaceBase::Global(g) => Slot::Global(g.0),
            PlaceBase::Deref(_) => {
                let fp = self.sol.fingerprint(&p.ty);
                Slot::Indirect(fp)
            }
        };
        for el in &p.elems {
            if let PlaceElem::Field { sid, idx } = el {
                slot = Slot::Field(sid.0, *idx);
            }
        }
        Some(self.sol.slot(slot))
    }

    /// The slot an expression's pointer value flows out of.
    fn expr_slot(&mut self, e: &Expr) -> Option<usize> {
        if !e.ty.is_ptr() {
            return None;
        }
        match &e.kind {
            ExprKind::Load(p) => self.place_slot(p),
            ExprKind::Binary(BinOp::PtrAdd | BinOp::PtrSub, a, _) => self.expr_slot(a),
            ExprKind::Cast(a) => self.expr_slot(a),
            // Fresh pointers have no slot; they adapt to their context.
            ExprKind::AddrOf(_) | ExprKind::Str(_) | ExprKind::Const(_) => None,
            _ => None,
        }
    }

    fn unify_opt(&mut self, a: Option<usize>, b: Option<usize>) {
        if let (Some(a), Some(b)) = (a, b) {
            self.sol.union(a, b);
        }
    }

    fn scan_expr(&mut self, e: &Expr) {
        visit::walk_expr(e, &mut |x| {
            match &x.kind {
                ExprKind::Binary(op @ (BinOp::PtrAdd | BinOp::PtrSub), a, b) => {
                    // Mark arithmetic on the pointer's slot. Negative or
                    // non-constant? A constant non-negative PtrAdd keeps
                    // FSEQ; PtrSub or negative constants force SEQ.
                    let backward =
                        matches!(op, BinOp::PtrSub) || b.as_const().map(|v| v < 0).unwrap_or(false);
                    if let Some(s) = self.expr_slot_shallow(a) {
                        self.sol.mark(s, backward);
                    }
                }
                ExprKind::AddrOf(p) if p.ty.is_ptr() => {
                    // &ptr escapes: unify with the indirect slot so writes
                    // through the alias are representation-compatible.
                    let fp = self.sol.fingerprint(&p.ty);
                    let ind = self.sol.slot(Slot::Indirect(fp));
                    let ps = self.place_slot_of(p);
                    self.unify_opt(ps, Some(ind));
                }
                ExprKind::Load(p) => {
                    // Deref of a pointer loaded from somewhere: nothing to
                    // do beyond slot existence; handled lazily.
                    let _ = p;
                }
                _ => {}
            }
        });
    }

    // Helpers usable inside the walk closure (no double borrow of self).
    fn expr_slot_shallow(&mut self, e: &Expr) -> Option<usize> {
        self.expr_slot(e)
    }

    fn place_slot_of(&mut self, p: &Place) -> Option<usize> {
        self.place_slot(p)
    }

    fn scan_block(&mut self, block: &Block) {
        for s in block {
            match s {
                Stmt::Assign(place, e) => {
                    if place.ty.is_ptr() {
                        let ps = self.place_slot(place);
                        let es = self.expr_slot(e);
                        self.unify_opt(ps, es);
                    }
                    self.scan_expr(e);
                    self.scan_place(place);
                }
                Stmt::Call { dst, func, args } => {
                    let callee = func.0;
                    let callee_fn = &self.prog.functions[callee as usize];
                    for (i, a) in args.iter().enumerate() {
                        if a.ty.is_ptr() && (i as u32) < callee_fn.params {
                            let ps = self.sol.slot(Slot::Local(callee, i as u32));
                            let es = self.expr_slot(a);
                            self.unify_opt(Some(ps), es);
                        }
                        self.scan_expr(a);
                    }
                    if let Some(d) = dst {
                        if d.ty.is_ptr() {
                            let rs = self.sol.slot(Slot::Ret(callee));
                            let ds = self.place_slot(d);
                            self.unify_opt(Some(rs), ds);
                        }
                        self.scan_place(d);
                    }
                }
                Stmt::BuiltinCall { dst, args, .. } => {
                    for a in args {
                        self.scan_expr(a);
                    }
                    if let Some(d) = dst {
                        self.scan_place(d);
                    }
                }
                Stmt::If { cond, then_, else_ } => {
                    self.scan_expr(cond);
                    self.scan_block(then_);
                    self.scan_block(else_);
                }
                Stmt::While { cond, body } => {
                    self.scan_expr(cond);
                    self.scan_block(body);
                }
                Stmt::Return(Some(e)) => {
                    if e.ty.is_ptr() {
                        let rs = self.sol.slot(Slot::Ret(self.func));
                        let es = self.expr_slot(e);
                        self.unify_opt(Some(rs), es);
                    }
                    self.scan_expr(e);
                }
                Stmt::Atomic { body, .. } | Stmt::Block(body) => self.scan_block(body),
                _ => {}
            }
        }
    }

    fn scan_place(&mut self, p: &Place) {
        visit::walk_place(p, &mut |e| {
            // Expressions inside places (deref bases, indices).
            let _ = e;
        });
        // Re-walk for pointer arithmetic inside the place.
        if let PlaceBase::Deref(e) = &p.base {
            self.scan_expr(e);
        }
        for el in &p.elems {
            if let PlaceElem::Index(e) = el {
                self.scan_expr(e);
            }
        }
    }
}

/// Rewrites all declared types in `program` with the inferred kinds.
pub fn apply(program: &mut Program, sol: &Solution) {
    let kind_of = |slot: Slot| sol.kind_of(slot);

    fn rewrite(ty: &Type, outer: PtrKind, sol: &Solution) -> Type {
        match ty {
            Type::Ptr(inner, _) => {
                // Nested pointers take their indirect slot's kind.
                let inner_kind = match &**inner {
                    t @ Type::Ptr(..) => match sol.fingerprints.get(&shape_key(t)) {
                        Some(&fp) => sol.kind_of(Slot::Indirect(fp)),
                        None => PtrKind::Safe,
                    },
                    _ => PtrKind::Safe,
                };
                Type::Ptr(Box::new(rewrite(inner, inner_kind, sol)), outer)
            }
            Type::Array(t, n) => Type::Array(Box::new(rewrite(t, outer, sol)), *n),
            other => other.clone(),
        }
    }

    let sol_ref = sol;
    for (gi, g) in program.globals.iter_mut().enumerate() {
        if contains_ptr(&g.ty) {
            let k = kind_of(Slot::Global(gi as u32));
            g.ty = rewrite(&g.ty, k, sol_ref);
        }
    }
    for (si, sd) in program.structs.iter_mut().enumerate() {
        for (fi, field) in sd.fields.iter_mut().enumerate() {
            if contains_ptr(&field.ty) {
                let k = kind_of(Slot::Field(si as u32, fi as u32));
                field.ty = rewrite(&field.ty, k, sol_ref);
            }
        }
    }
    for (fi, f) in program.functions.iter_mut().enumerate() {
        if f.trusted {
            continue;
        }
        for (li, l) in f.locals.iter_mut().enumerate() {
            if contains_ptr(&l.ty) {
                let k = kind_of(Slot::Local(fi as u32, li as u32));
                l.ty = rewrite(&l.ty, k, sol_ref);
            }
        }
        if contains_ptr(&f.ret) {
            let k = kind_of(Slot::Ret(fi as u32));
            f.ret = rewrite(&f.ret, k, sol_ref);
        }
    }
}

fn contains_ptr(ty: &Type) -> bool {
    match ty {
        Type::Ptr(..) => true,
        Type::Array(t, _) => contains_ptr(t),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcil::parse_and_lower;

    fn kinds_of(src: &str) -> tcil::Program {
        let mut p = parse_and_lower(src).unwrap();
        let sol = infer(&p);
        apply(&mut p, &sol);
        p
    }

    fn local_kind(p: &tcil::Program, func: &str, local: &str) -> PtrKind {
        let f = &p.functions[p.find_function(func).unwrap().0 as usize];
        let l = f.locals.iter().find(|l| l.name == local).unwrap();
        match &l.ty {
            Type::Ptr(_, k) => *k,
            other => panic!("{local} is not a pointer: {other}"),
        }
    }

    #[test]
    fn no_arith_is_safe() {
        let p = kinds_of("uint8_t g; uint8_t f(uint8_t * p) { return *p; } void main() { f(&g); }");
        assert_eq!(local_kind(&p, "f", "p"), PtrKind::Safe);
    }

    #[test]
    fn forward_arith_is_fseq() {
        let p = kinds_of(
            "uint8_t buf[4];
             uint8_t f(uint8_t * p) { return p[1]; }
             void main() { f(buf); }",
        );
        assert_eq!(local_kind(&p, "f", "p"), PtrKind::Fseq);
    }

    #[test]
    fn backward_arith_is_seq() {
        let p = kinds_of(
            "uint8_t buf[4];
             uint8_t f(uint8_t * p) { p = p - 1; return *p; }
             void main() { f(buf); }",
        );
        assert_eq!(local_kind(&p, "f", "p"), PtrKind::Seq);
    }

    #[test]
    fn kinds_flow_through_assignment() {
        let p = kinds_of(
            "uint8_t buf[4];
             void f(uint8_t * p) { uint8_t * q; q = p; q = q + 1; *q = 0; }
             void main() { f(buf); }",
        );
        // q does arithmetic; p must share its representation.
        assert_eq!(local_kind(&p, "f", "p"), PtrKind::Fseq);
        assert_eq!(local_kind(&p, "f", "q"), PtrKind::Fseq);
    }

    #[test]
    fn kinds_flow_through_calls_and_returns() {
        let p = kinds_of(
            "uint8_t buf[4];
             uint8_t * pick(uint8_t * p) { return p; }
             void main() { uint8_t * q; q = pick(buf); q = q + 1; *q = 0; }",
        );
        assert_eq!(local_kind(&p, "pick", "p"), PtrKind::Fseq);
        assert_eq!(local_kind(&p, "main", "q"), PtrKind::Fseq);
    }

    #[test]
    fn struct_field_kinds_are_shared() {
        let p = kinds_of(
            "struct holder { uint8_t * ptr; };
             struct holder a;
             struct holder b;
             uint8_t buf[4];
             void main() { a.ptr = buf; a.ptr = a.ptr + 1; b.ptr = buf; *b.ptr = 0; }",
        );
        // One instance does arithmetic → the field kind is FSEQ for all.
        let Type::Ptr(_, k) = &p.structs[0].fields[0].ty else {
            panic!()
        };
        assert_eq!(*k, PtrKind::Fseq);
    }

    #[test]
    fn summary_counts_roots() {
        let mut p = parse_and_lower(
            "uint8_t buf[4];
             uint8_t f(uint8_t * p) { return p[1]; }
             uint8_t g(uint8_t * p) { return *p; }
             void main() { f(buf); g(buf); }",
        )
        .unwrap();
        let sol = infer(&p);
        let s = sol.summary();
        assert!(s.fseq >= 1);
        apply(&mut p, &sol);
    }
}
