//! CCured-style type and memory safety for TCL programs.
//!
//! This crate reproduces the CCured stage of the Safe TinyOS toolchain
//! (§2 of the paper): it retrofits safety onto a whole program by
//!
//! 1. [`kinds`] — whole-program **pointer-kind inference**: every pointer
//!    slot is classified SAFE (no arithmetic: null check only), FSEQ
//!    (forward arithmetic: value + upper bound) or SEQ (arbitrary
//!    arithmetic: value + both bounds). The source language has no
//!    unchecked casts, so no pointer is ever WILD — matching the paper's
//!    observation that TinyOS code is statically allocated and cast-light.
//! 2. [`instrument`] — rewriting the program: declarations take their
//!    inferred kinds (fat pointers grow to 2–3 words, which is exactly the
//!    static-data cost Figure 3(b) measures), every unproven dereference
//!    gets a [`tcil::ir::Check`] statement with a fresh FLID, and checks
//!    touching variables from the nesC **non-atomic variable report** are
//!    wrapped in locks (§2.2).
//! 3. [`optimize`] — CCured's own local optimizer: removes trivially
//!    redundant checks ("the easy ones", §3.1).
//! 4. [`errmsg`] — the four error-message configurations of Figure 3:
//!    verbose strings in RAM, verbose strings in ROM, terse, and FLIDs
//!    with a host-side decompression table.
//! 5. [`runtime`] — the runtime-library footprint model (§2.3: the naive
//!    port costs 1.6 KB RAM / 33 KB ROM; the tuned runtime 2 B / 314 B).
//! 6. [`triage`] — fault-campaign classification: given a golden run and
//!    an injected run, decide whether the corruption was trapped with a
//!    decodable FLID, crashed, silently corrupted behavior, or was
//!    benign.
//!
//! # Example
//!
//! ```
//! use ccured::{cure, CureOptions};
//!
//! let mut program = tcil::parse_and_lower(
//!     "uint8_t buf[8];
//!      uint8_t get(uint8_t * p, uint8_t i) { return p[i]; }
//!      void main() { get(buf, 3); }",
//! ).unwrap();
//! let stats = cure(&mut program, &CureOptions::default()).unwrap();
//! assert!(stats.checks_inserted > 0);
//! assert!(program.count_checks() > 0);
//! ```

pub mod errmsg;
pub mod instrument;
pub mod kinds;
pub mod optimize;
pub mod runtime;
pub mod triage;

use tcil::{CompileError, Program};

pub use errmsg::ErrorMode;
pub use kinds::KindSummary;
pub use runtime::RuntimeModel;
pub use triage::{RunObservation, Verdict, VerdictCounts};

/// Options controlling the curing pass.
#[derive(Debug, Clone)]
pub struct CureOptions {
    /// Error-message configuration (Figure 3 bars 1–4).
    pub error_mode: ErrorMode,
    /// Run CCured's local check optimizer after insertion.
    pub local_optimize: bool,
    /// Insert locks around checks that touch racy variables (§2.2).
    /// Requires the nesC concurrency report to have set
    /// [`tcil::ir::Global::racy`] flags.
    pub lock_racy_checks: bool,
    /// Use the naive (unported) CCured runtime footprint instead of the
    /// tuned one — the §2.3 comparison.
    pub naive_runtime: bool,
}

impl Default for CureOptions {
    fn default() -> Self {
        CureOptions {
            error_mode: ErrorMode::Flid,
            local_optimize: true,
            lock_racy_checks: true,
            naive_runtime: false,
        }
    }
}

/// Statistics from a curing pass.
#[derive(Debug, Clone, Default)]
pub struct CureStats {
    /// Dynamic checks inserted (before any optimization).
    pub checks_inserted: usize,
    /// Checks removed by the local optimizer.
    pub checks_removed_locally: usize,
    /// Locks (atomic sections) inserted around racy checks.
    pub locks_inserted: usize,
    /// Pointer-kind census.
    pub kinds: KindSummary,
    /// Error-message bytes added (RAM, ROM).
    pub message_bytes: (u32, u32),
    /// Runtime-library model in effect.
    pub runtime: RuntimeModel,
}

/// Retrofits type and memory safety onto `program` in place.
///
/// The program must be a lowered whole program (all functions present);
/// this is the output of the nesC frontend. After curing, the program
/// still type-checks and runs identically unless a safety violation
/// occurs, in which case the machine traps with the check's FLID instead
/// of corrupting memory.
///
/// # Errors
///
/// Returns an error if the program contains a pointer flow the inference
/// cannot represent (e.g. a fat pointer passed to a trusted function).
pub fn cure(program: &mut Program, options: &CureOptions) -> Result<CureStats, CompileError> {
    let solution = kinds::infer(program);
    kinds::apply(program, &solution);
    let mut stats = CureStats {
        kinds: solution.summary(),
        ..Default::default()
    };

    let inserted = instrument::instrument(program, options)?;
    stats.checks_inserted = inserted.checks;
    stats.locks_inserted = inserted.locks;

    if options.local_optimize {
        stats.checks_removed_locally = optimize::optimize_checks(program);
    }

    stats.message_bytes = errmsg::attach_messages(program, options.error_mode);
    stats.runtime = runtime::RuntimeModel::new(options.naive_runtime);
    runtime::attach_runtime(program, &stats.runtime);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcil::ir::Stmt;
    use tcil::visit;

    #[test]
    fn curing_is_noop_on_check_free_code() {
        let mut p = tcil::parse_and_lower("uint8_t x; void main() { x = 1; }").unwrap();
        let stats = cure(&mut p, &CureOptions::default()).unwrap();
        assert_eq!(stats.checks_inserted, 0);
        assert_eq!(p.count_checks(), 0);
    }

    #[test]
    fn derefs_get_checks() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             uint8_t read(uint8_t * p) { return *p; }
             void main() { read(&g); }",
        )
        .unwrap();
        let stats = cure(&mut p, &CureOptions::default()).unwrap();
        assert!(stats.checks_inserted >= 1);
        let mut found = false;
        visit::walk_stmts(
            &p.functions[p.find_function("read").unwrap().0 as usize].body,
            &mut |s| {
                if matches!(s, Stmt::Check(_)) {
                    found = true;
                }
            },
        );
        assert!(found, "check in read()");
    }
}
