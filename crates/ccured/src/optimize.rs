//! CCured's local check optimizer.
//!
//! The paper observes (§3.1) that GCC and the CCured optimizer remove
//! roughly the same population of "easy" checks — trivially satisfiable
//! ones and locally redundant repeats. This pass implements that tier:
//!
//! * null checks on addresses that cannot be null (`&x`, string literals,
//!   freshly built fat pointers over `&x`),
//! * index checks with in-range constant indices (defensive; the
//!   instrumenter already skips those),
//! * straight-line **redundant check elimination**: an identical check
//!   earlier in the same block with no intervening write to its operands
//!   or intervening call dominates a later one.
//!
//! Whole-program reasoning (interval analysis, pointer analysis, inlining
//! for context sensitivity) lives in the `cxprop` crate — that is the
//! paper's headline result, not this tier.

use tcil::checkopt;
use tcil::Program;

/// Runs the local optimizer; returns the number of checks removed.
///
/// Delegates to [`tcil::checkopt`], which implements the shared
/// trivially-satisfiable + straight-line-redundancy tier (the same tier
/// the backend's GCC stand-in applies independently, per Figure 2).
pub fn optimize_checks(program: &mut Program) -> usize {
    checkopt::remove_local_checks(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cure, CureOptions};

    fn cured(src: &str, local_optimize: bool) -> Program {
        let mut p = tcil::parse_and_lower(src).unwrap();
        let opts = CureOptions {
            local_optimize,
            ..CureOptions::default()
        };
        cure(&mut p, &opts).unwrap();
        p
    }

    #[test]
    fn addr_of_null_checks_removed() {
        let src = "uint8_t g;
             uint8_t read(uint8_t * p) { return *p; }
             void main() { uint8_t x; x = 0; if (x) { } }";
        let with = cured(src, false).count_checks();
        let without = cured(src, true).count_checks();
        assert!(without <= with);
    }

    #[test]
    fn redundant_sequential_checks_removed() {
        // Two derefs of the same pointer in a row: the second check is
        // dominated by the first.
        let src = "uint8_t a;
             uint8_t f(uint8_t * p) { uint8_t x; x = *p; x = (uint8_t)(x + *p); return x; }
             void main() { f(&a); }";
        let unopt = cured(src, false);
        let opt = cured(src, true);
        assert!(opt.count_checks() < unopt.count_checks());
    }

    #[test]
    fn call_invalidates_memory() {
        let src = "uint8_t a;
             void touch() { }
             uint8_t f(uint8_t * p) { uint8_t x; x = *p; touch(); x = (uint8_t)(x + *p); return x; }
             void main() { f(&a); }";
        let opt = cured(src, true);
        // Both checks must survive: the call could retarget p (through a
        // global alias in general).
        assert_eq!(opt.count_checks(), 2);
    }
}
