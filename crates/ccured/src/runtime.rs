//! The CCured runtime-library footprint model (§2.3).
//!
//! The original CCured runtime is several thousand lines of x86/POSIX C.
//! The paper reports that a minimally-ported version costs **1.6 KB of
//! RAM (40% of a Mica2's 4 KB) and 33 KB of ROM (26% of its flash)**, and
//! that after removing OS and x86 dependencies, dropping garbage
//! collection (TinyOS allocates statically), and running the improved DCE
//! over the remainder, the runtime shrinks to **2 bytes of RAM and 314
//! bytes of ROM**.
//!
//! We cannot port the literal x86 runtime to the M16, so this module is an
//! explicit *model*: a component inventory whose per-component sizes are
//! calibrated to sum to the paper's aggregates. The `runtime_footprint`
//! experiment walks the same reduction steps the paper describes and
//! reports the staged totals. The *tuned* runtime footprint is attached to
//! every cured program as real globals so that RAM/ROM metrics include it.

use tcil::ir::{Global, Init, Program};
use tcil::types::{IntKind, Type};

/// One component of the (modeled) CCured runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeComponent {
    /// Component name.
    pub name: &'static str,
    /// SRAM bytes.
    pub ram: u32,
    /// Flash bytes.
    pub rom: u32,
    /// Why the component exists / why it can be removed.
    pub note: &'static str,
}

/// The reduction stages of §2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeStage {
    /// Straight port: everything included.
    NaivePort,
    /// OS (files/signals) and x86 (alignment) dependencies removed by hand.
    OsX86Removed,
    /// Garbage collection compiled out (static allocation model).
    GcDropped,
    /// Improved whole-program DCE over the remainder.
    AfterDce,
}

/// Inventory of the naive runtime port. Sizes are calibrated so that the
/// full set totals ≈1638 B RAM / ≈33 KB ROM and the post-reduction set
/// totals 2 B RAM / 314 B ROM, the paper's reported endpoints.
pub const NAIVE_COMPONENTS: &[RuntimeComponent] = &[
    RuntimeComponent {
        name: "gc",
        ram: 1024,
        rom: 14000,
        note: "Boehm-style collector; TinyOS allocates statically → removable",
    },
    RuntimeComponent {
        name: "file_io_wrappers",
        ram: 256,
        rom: 9000,
        note: "checked stdio wrappers; no filesystem on a mote → removable",
    },
    RuntimeComponent {
        name: "signal_handlers",
        ram: 128,
        rom: 2400,
        note: "POSIX signal glue for fault reporting → removable",
    },
    RuntimeComponent {
        name: "x86_alignment_checks",
        ram: 0,
        rom: 1800,
        note: "4-byte alignment verification; M16 pointers are byte-aligned → removable",
    },
    RuntimeComponent {
        name: "wild_pointer_support",
        ram: 192,
        rom: 4200,
        note: "RTTI and tag tables for WILD pointers; no WILD kinds here → removable",
    },
    RuntimeComponent {
        name: "format_string_helpers",
        ram: 36,
        rom: 1286,
        note: "printf-class message formatting → dead once FLIDs are used",
    },
    RuntimeComponent {
        name: "check_failure_handler",
        ram: 2,
        rom: 182,
        note: "records the FLID and halts the node — always needed",
    },
    RuntimeComponent {
        name: "fat_pointer_helpers",
        ram: 0,
        rom: 132,
        note: "out-of-line bounds helpers for cold paths — always needed",
    },
];

/// The runtime model attached to a cured program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeModel {
    /// Whether this is the naive port (for the §2.3 experiment) or the
    /// tuned runtime (the default for every other experiment).
    pub naive: bool,
    /// SRAM bytes contributed.
    pub ram_bytes: u32,
    /// Flash bytes contributed.
    pub rom_bytes: u32,
}

impl RuntimeModel {
    /// Builds the model for the chosen flavour.
    pub fn new(naive: bool) -> RuntimeModel {
        let (ram, rom) = footprint_at(if naive {
            RuntimeStage::NaivePort
        } else {
            RuntimeStage::AfterDce
        });
        RuntimeModel {
            naive,
            ram_bytes: ram,
            rom_bytes: rom,
        }
    }
}

/// Total `(ram, rom)` footprint at a reduction stage.
pub fn footprint_at(stage: RuntimeStage) -> (u32, u32) {
    let keep = |c: &&RuntimeComponent| match stage {
        RuntimeStage::NaivePort => true,
        RuntimeStage::OsX86Removed => !matches!(
            c.name,
            "file_io_wrappers" | "signal_handlers" | "x86_alignment_checks"
        ),
        RuntimeStage::GcDropped => !matches!(
            c.name,
            "file_io_wrappers" | "signal_handlers" | "x86_alignment_checks" | "gc"
        ),
        RuntimeStage::AfterDce => {
            matches!(c.name, "check_failure_handler" | "fat_pointer_helpers")
        }
    };
    let ram = NAIVE_COMPONENTS.iter().filter(keep).map(|c| c.ram).sum();
    let rom = NAIVE_COMPONENTS.iter().filter(keep).map(|c| c.rom).sum();
    (ram, rom)
}

/// Name of the runtime state global (kept alive by the DCE passes).
pub const RT_STATE_NAME: &str = "__ccured_rt_state";
/// Name of the runtime code blob (modeled as const data).
pub const RT_CODE_NAME: &str = "__ccured_rt_code";

/// Attaches the runtime footprint to the program as real globals so that
/// the backend's size accounting sees it.
pub fn attach_runtime(program: &mut Program, model: &RuntimeModel) {
    if model.ram_bytes > 0 {
        program.globals.push(Global {
            name: RT_STATE_NAME.to_string(),
            ty: Type::Array(Box::new(Type::Int(IntKind::U8)), model.ram_bytes),
            init: Init::Zero,
            norace: false,
            is_const: false,
            racy: false,
        });
    }
    if model.rom_bytes > 0 {
        program.globals.push(Global {
            name: RT_CODE_NAME.to_string(),
            ty: Type::Array(Box::new(Type::Int(IntKind::U8)), model.rom_bytes),
            init: Init::Zero,
            norace: false,
            is_const: true,
            racy: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_footprint_matches_paper_aggregates() {
        let (ram, rom) = footprint_at(RuntimeStage::NaivePort);
        // ≈1.6 KB RAM, ≈33 KB ROM.
        assert_eq!(ram, 1638);
        assert_eq!(rom, 33000);
    }

    #[test]
    fn tuned_footprint_matches_paper_endpoint() {
        let (ram, rom) = footprint_at(RuntimeStage::AfterDce);
        assert_eq!(ram, 2);
        assert_eq!(rom, 314);
    }

    #[test]
    fn stages_shrink_monotonically() {
        let stages = [
            RuntimeStage::NaivePort,
            RuntimeStage::OsX86Removed,
            RuntimeStage::GcDropped,
            RuntimeStage::AfterDce,
        ];
        let mut prev = (u32::MAX, u32::MAX);
        for s in stages {
            let f = footprint_at(s);
            assert!(f.0 <= prev.0 && f.1 <= prev.1, "{s:?} grew");
            prev = f;
        }
    }

    #[test]
    fn attach_adds_globals() {
        let mut p = tcil::parse_and_lower("void main() { }").unwrap();
        attach_runtime(&mut p, &RuntimeModel::new(false));
        assert!(p.find_global(RT_STATE_NAME).is_some());
        assert!(p.find_global(RT_CODE_NAME).is_some());
    }
}
