//! Fault triage: classifying what an injected corruption did to a run.
//!
//! A fault-injection campaign runs each plan against a *golden*
//! (uninjected) run of the same build and asks the question the paper's
//! §2 poses: did the node **trap with a diagnosable FLID**, **crash** on
//! a hardware fault, **silently corrupt** its observable behavior, or
//! shrug the upset off entirely? The four-way [`Verdict`] is the
//! campaign's unit of measurement; the detection rate per pipeline is
//! the fraction of injections landing in [`Verdict::Detected`].
//!
//! Silent corruption is judged on *observable behavior only* — UART
//! bytes, timestamped radio transmissions, LED transitions, and the
//! final run state — not on raw RAM contents (the injected bits
//! themselves would otherwise make every run "corrupt").

use std::collections::BTreeMap;

use mcu::{Fault, Machine, RunState};

/// Everything observable about one finished run, captured for
/// golden-vs-injected comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RunObservation {
    /// Final run state.
    pub state: RunState,
    /// The fault that stopped the machine, if any.
    pub fault: Option<Fault>,
    /// Bytes the node wrote to the UART.
    pub uart: Vec<u8>,
    /// Timestamped bytes the node transmitted over the radio.
    pub radio: Vec<(u64, u8)>,
    /// LED register transitions.
    pub led_transitions: u64,
}

impl RunObservation {
    /// Captures the observable outcome of `m`'s run so far.
    pub fn capture(m: &Machine) -> RunObservation {
        RunObservation {
            state: m.state,
            fault: m.fault.clone(),
            uart: m.uart_out.clone(),
            radio: m.radio_out.clone(),
            led_transitions: m.devices.leds.transitions,
        }
    }

    /// Whether two runs are behaviorally indistinguishable.
    fn matches(&self, other: &RunObservation) -> bool {
        self.state == other.state
            && self.fault == other.fault
            && self.uart == other.uart
            && self.radio == other.radio
            && self.led_transitions == other.led_transitions
    }
}

/// What one injected fault did to the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A Safe TinyOS check caught the corruption: the node trapped with
    /// a FLID the host-side table decodes — the paper's success case.
    Detected {
        /// The failure-location id the trap carried.
        flid: u16,
        /// The decoded host-side message.
        message: String,
    },
    /// The node stopped on a hardware fault (unmapped access, illegal
    /// write, stack overflow, …) — fail-stop, but undiagnosable.
    Crash {
        /// Debug rendering of the fault.
        fault: String,
    },
    /// No trap, but observable behavior diverged from the golden run —
    /// the silent corruption cured builds exist to eliminate.
    SilentCorruption,
    /// Observable behavior identical to the golden run: the upset hit
    /// dead state.
    Benign,
}

impl Verdict {
    /// The verdict's stable report key
    /// (`detected` / `crash` / `silent` / `benign`).
    pub fn key(&self) -> &'static str {
        match self {
            Verdict::Detected { .. } => "detected",
            Verdict::Crash { .. } => "crash",
            Verdict::SilentCorruption => "silent",
            Verdict::Benign => "benign",
        }
    }
}

/// Classifies an injected run against its golden twin.
///
/// A safety trap whose FLID decodes through `flid_table` is
/// [`Verdict::Detected`]; a safety trap with no table entry cannot be
/// diagnosed on the host and is demoted to [`Verdict::Crash`] (cured
/// images always populate the table, so this is a backend-bug canary,
/// not an expected path). A golden run that itself trapped the same way
/// is *not* a detection — the injection changed nothing.
pub fn triage(
    golden: &RunObservation,
    injected: &RunObservation,
    flid_table: &BTreeMap<u16, String>,
) -> Verdict {
    if injected.matches(golden) {
        return Verdict::Benign;
    }
    match &injected.fault {
        Some(Fault::SafetyTrap(flid)) => match flid_table.get(flid) {
            Some(message) => Verdict::Detected {
                flid: *flid,
                message: message.clone(),
            },
            None => Verdict::Crash {
                fault: format!("SafetyTrap({flid}) with no FLID table entry"),
            },
        },
        Some(other) => Verdict::Crash {
            fault: format!("{other:?}"),
        },
        None => Verdict::SilentCorruption,
    }
}

/// Verdict counts for one campaign (one app × pipeline cell, or a
/// rollup across apps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Injections trapped with a decodable FLID.
    pub detected: usize,
    /// Injections that crashed on a hardware fault.
    pub crashed: usize,
    /// Injections that silently corrupted observable behavior.
    pub silent: usize,
    /// Injections with no observable effect.
    pub benign: usize,
}

impl VerdictCounts {
    /// Adds one verdict to the tally.
    pub fn record(&mut self, verdict: &Verdict) {
        match verdict {
            Verdict::Detected { .. } => self.detected += 1,
            Verdict::Crash { .. } => self.crashed += 1,
            Verdict::SilentCorruption => self.silent += 1,
            Verdict::Benign => self.benign += 1,
        }
    }

    /// Folds another tally into this one.
    pub fn add(&mut self, other: &VerdictCounts) {
        self.detected += other.detected;
        self.crashed += other.crashed;
        self.silent += other.silent;
        self.benign += other.benign;
    }

    /// Total injections tallied.
    pub fn total(&self) -> usize {
        self.detected + self.crashed + self.silent + self.benign
    }

    /// Detections as a percentage of all injections (0 when empty).
    pub fn detection_rate_pct(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.detected as f64 * 100.0 / self.total() as f64
    }

    /// Injections whose run diverged from golden at all — everything but
    /// [`Verdict::Benign`]. The atomicity-fault campaigns compare this
    /// across builds: a build mechanically immune to a fault class (e.g.
    /// torn 16-bit updates after `races(fix)`) tallies every injection
    /// benign, so its divergence count is the hardening's residue.
    pub fn divergences(&self) -> usize {
        self.detected + self.crashed + self.silent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> RunObservation {
        RunObservation {
            state: RunState::Sleeping,
            fault: None,
            uart: vec![1, 2],
            radio: vec![(100, 0x7E)],
            led_transitions: 6,
        }
    }

    fn table() -> BTreeMap<u16, String> {
        let mut t = BTreeMap::new();
        t.insert(7, "RadioM.nc:41 bounds".to_string());
        t
    }

    #[test]
    fn identical_runs_are_benign() {
        assert_eq!(triage(&quiet(), &quiet(), &table()), Verdict::Benign);
    }

    #[test]
    fn decodable_trap_is_detected() {
        let mut run = quiet();
        run.state = RunState::Faulted;
        run.fault = Some(Fault::SafetyTrap(7));
        match triage(&quiet(), &run, &table()) {
            Verdict::Detected { flid, message } => {
                assert_eq!(flid, 7);
                assert!(message.contains("RadioM.nc:41"));
            }
            v => panic!("expected detection, got {v:?}"),
        }
    }

    #[test]
    fn undecodable_trap_is_demoted_to_crash() {
        let mut run = quiet();
        run.state = RunState::Faulted;
        run.fault = Some(Fault::SafetyTrap(999));
        assert!(matches!(
            triage(&quiet(), &run, &table()),
            Verdict::Crash { .. }
        ));
    }

    #[test]
    fn hardware_fault_is_a_crash() {
        let mut run = quiet();
        run.state = RunState::Faulted;
        run.fault = Some(Fault::MemFault(0));
        match triage(&quiet(), &run, &table()) {
            Verdict::Crash { fault } => assert!(fault.contains("MemFault")),
            v => panic!("expected crash, got {v:?}"),
        }
    }

    #[test]
    fn diverging_output_without_fault_is_silent_corruption() {
        let mut run = quiet();
        run.uart.push(0xFF);
        assert_eq!(triage(&quiet(), &run, &table()), Verdict::SilentCorruption);
        let mut run = quiet();
        run.led_transitions += 1;
        assert_eq!(triage(&quiet(), &run, &table()), Verdict::SilentCorruption);
    }

    #[test]
    fn golden_trap_reproduced_is_benign() {
        // If the golden run itself trapped identically, the injection
        // changed nothing and must not count as a detection.
        let mut golden = quiet();
        golden.state = RunState::Faulted;
        golden.fault = Some(Fault::SafetyTrap(7));
        let run = golden.clone();
        assert_eq!(triage(&golden, &run, &table()), Verdict::Benign);
    }

    #[test]
    fn counts_tally_and_rate() {
        let mut c = VerdictCounts::default();
        c.record(&Verdict::Detected {
            flid: 7,
            message: String::new(),
        });
        c.record(&Verdict::Benign);
        c.record(&Verdict::SilentCorruption);
        c.record(&Verdict::Crash {
            fault: String::new(),
        });
        assert_eq!(c.total(), 4);
        assert_eq!(c.detection_rate_pct(), 25.0);
        let mut d = VerdictCounts::default();
        d.add(&c);
        d.add(&c);
        assert_eq!(d.detected, 2);
        assert_eq!(d.total(), 8);
    }
}
