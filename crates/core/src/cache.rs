//! The content-addressed pass-output cache.
//!
//! Every pass in this toolchain is a pure function of its input program
//! and its options: the same lowered IR under the same spec produces the
//! same output IR and the same statistics. A 12-preset × 12-app grid
//! therefore recomputes enormous shared prefixes — `cure(flid)` alone
//! runs once per *preset* instead of once per *app* — and
//! `BENCH_toolchain_speed.json` shows the middle end is ~78% of compile
//! wall. This module keys each pass output by
//! `(digest of the input IR, canonical pass spec)` so shared prefixes
//! are computed exactly once per session and forked only where specs
//! diverge.
//!
//! Three properties carry the design:
//!
//! * **The digest is stable and total.** [`ir_digest`] walks every
//!   semantic field of a [`Program`] in a fixed order (enum tags,
//!   length-prefixed sequences) through a SplitMix64-style word mixer.
//!   Two programs hash equal iff a pass could not tell them apart; the
//!   digest covers the fields optimizers consult but rarely touch
//!   (`norace`, `trusted`, atomic styles, FLID tables).
//! * **Specs are canonical.** A [`CacheKey`] stores [`crate::Pass::spec`]
//!   — the renderer emits options in one fixed order, so a hand-typed
//!   `cure(flid , noopt)` and the `Display` round-trip key identically,
//!   while semantically different orders (pipeline-level pass order)
//!   key apart.
//! * **Entries compute exactly once.** Each map slot holds an
//!   `Arc<OnceLock<…>>`: concurrent requesters of the same key block on
//!   one computation instead of racing, which makes the miss count a
//!   schedule-independent function of the job set (misses ≡ distinct
//!   keys) — the property the determinism suite pins.
//!
//! Entries also carry the *output* program's digest, so a warm chain of
//! lookups never rehashes between passes: only the root program of each
//! build is hashed, lazily.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use backend::BackendOptions;
use tcil::ir::{Block, CheckKind, Expr, ExprKind, Init, Place, PlaceBase, PlaceElem, Stmt};
use tcil::types::Type;
use tcil::Program;

use crate::Metrics;

// ---------------------------------------------------------------------
// The IR hasher.
// ---------------------------------------------------------------------

/// A SplitMix64-style streaming word mixer. Not cryptographic — it only
/// needs to make accidental collisions between real intermediate
/// programs vanishingly unlikely and be deterministic across runs,
/// threads, and platforms.
struct Hasher {
    state: u64,
    words: u64,
}

impl Hasher {
    fn new() -> Hasher {
        Hasher {
            state: 0x243F_6A88_85A3_08D3, // pi, for want of nothing up the sleeve
            words: 0,
        }
    }

    fn word(&mut self, w: u64) {
        self.words += 1;
        // Mix the position in so transposed sequences differ, then
        // avalanche (the splitmix64/murmur finalizer constants).
        let mut z = self.state ^ w.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.words));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.word(b.len() as u64);
        for chunk in b.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(w));
        }
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn opt(&mut self, o: Option<u64>) {
        match o {
            None => self.word(0),
            Some(v) => {
                self.word(1);
                self.word(v);
            }
        }
    }

    fn finish(&self) -> u64 {
        let mut z = self.state ^ self.words;
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^ (z >> 33)
    }
}

/// Digests `program` into a stable 64-bit content hash, also returning
/// an approximate serialized size in bytes (what the cache charges an
/// entry for). Deterministic across runs and threads; sensitive to every
/// semantic IR field, including the ones only some passes consult
/// (`norace`, `racy`, `trusted`, `inline_hint`, atomic styles, FLIDs).
pub fn ir_digest(program: &Program) -> (u64, usize) {
    let mut h = Hasher::new();
    hash_program(&mut h, program);
    let bytes = (h.words as usize) * 8;
    (h.finish(), bytes)
}

fn hash_program(h: &mut Hasher, p: &Program) {
    h.word(p.structs.len() as u64);
    for s in &p.structs {
        h.str(&s.name);
        h.word(s.fields.len() as u64);
        for f in &s.fields {
            h.str(&f.name);
            hash_type(h, &f.ty);
        }
    }
    h.word(p.globals.len() as u64);
    for g in &p.globals {
        h.str(&g.name);
        hash_type(h, &g.ty);
        hash_init(h, &g.init);
        h.word(g.norace as u64);
        h.word(g.is_const as u64);
        h.word(g.racy as u64);
    }
    h.word(p.functions.len() as u64);
    for f in &p.functions {
        h.str(&f.name);
        hash_type(h, &f.ret);
        h.word(f.params as u64);
        h.word(f.locals.len() as u64);
        for l in &f.locals {
            h.str(&l.name);
            hash_type(h, &l.ty);
            h.word(l.is_temp as u64);
        }
        hash_block(h, &f.body);
        h.word(f.is_task as u64);
        h.opt(f.interrupt.map(u64::from));
        h.word(f.inline_hint as u64);
        h.word(f.trusted as u64);
    }
    h.word(p.strings.len() as u64);
    for (_, s) in p.strings.iter() {
        h.bytes(s);
    }
    h.word(p.tasks.len() as u64);
    for t in &p.tasks {
        h.word(t.0 as u64);
    }
    h.opt(p.entry.map(|f| f.0 as u64));
    h.word(p.flid_messages.len() as u64);
    for (flid, msg) in &p.flid_messages {
        h.word(*flid as u64);
        h.str(msg);
    }
}

fn hash_type(h: &mut Hasher, ty: &Type) {
    match ty {
        Type::Void => h.word(0),
        Type::Int(k) => {
            h.word(1);
            h.word(*k as u64);
        }
        Type::Ptr(t, pk) => {
            h.word(2);
            h.word(*pk as u64);
            hash_type(h, t);
        }
        Type::Array(t, n) => {
            h.word(3);
            h.word(*n as u64);
            hash_type(h, t);
        }
        Type::Struct(sid) => {
            h.word(4);
            h.word(sid.0 as u64);
        }
    }
}

fn hash_init(h: &mut Hasher, init: &Init) {
    match init {
        Init::Zero => h.word(0),
        Init::Int(v) => {
            h.word(1);
            h.word(*v as u64);
        }
        Init::List(items) => {
            h.word(2);
            h.word(items.len() as u64);
            for i in items {
                hash_init(h, i);
            }
        }
        Init::Str(id) => {
            h.word(3);
            h.word(id.0 as u64);
        }
    }
}

fn hash_block(h: &mut Hasher, block: &Block) {
    h.word(block.len() as u64);
    for s in block {
        hash_stmt(h, s);
    }
}

fn hash_stmt(h: &mut Hasher, s: &Stmt) {
    match s {
        Stmt::Assign(place, e) => {
            h.word(0);
            hash_place(h, place);
            hash_expr(h, e);
        }
        Stmt::Call { dst, func, args } => {
            h.word(1);
            hash_opt_place(h, dst);
            h.word(func.0 as u64);
            h.word(args.len() as u64);
            for a in args {
                hash_expr(h, a);
            }
        }
        Stmt::BuiltinCall { dst, which, args } => {
            h.word(2);
            hash_opt_place(h, dst);
            h.word(*which as u64);
            h.word(args.len() as u64);
            for a in args {
                hash_expr(h, a);
            }
        }
        Stmt::If { cond, then_, else_ } => {
            h.word(3);
            hash_expr(h, cond);
            hash_block(h, then_);
            hash_block(h, else_);
        }
        Stmt::While { cond, body } => {
            h.word(4);
            hash_expr(h, cond);
            hash_block(h, body);
        }
        Stmt::Return(e) => {
            h.word(5);
            match e {
                None => h.word(0),
                Some(e) => {
                    h.word(1);
                    hash_expr(h, e);
                }
            }
        }
        Stmt::Break => h.word(6),
        Stmt::Continue => h.word(7),
        Stmt::Atomic { body, style } => {
            h.word(8);
            h.word(*style as u64);
            hash_block(h, body);
        }
        Stmt::Block(b) => {
            h.word(9);
            hash_block(h, b);
        }
        Stmt::Check(c) => {
            h.word(10);
            match &c.kind {
                CheckKind::NonNull(e) => {
                    h.word(0);
                    hash_expr(h, e);
                }
                CheckKind::Upper { ptr, len } => {
                    h.word(1);
                    hash_expr(h, ptr);
                    h.word(*len as u64);
                }
                CheckKind::Bounds { ptr, len } => {
                    h.word(2);
                    hash_expr(h, ptr);
                    h.word(*len as u64);
                }
                CheckKind::IndexBound { idx, n } => {
                    h.word(3);
                    hash_expr(h, idx);
                    h.word(*n as u64);
                }
            }
            h.word(c.flid.0 as u64);
        }
        Stmt::Nop => h.word(11),
    }
}

fn hash_expr(h: &mut Hasher, e: &Expr) {
    hash_type(h, &e.ty);
    match &e.kind {
        ExprKind::Const(v) => {
            h.word(0);
            h.word(*v as u64);
        }
        ExprKind::Str(id) => {
            h.word(1);
            h.word(id.0 as u64);
        }
        ExprKind::Load(p) => {
            h.word(2);
            hash_place(h, p);
        }
        ExprKind::AddrOf(p) => {
            h.word(3);
            hash_place(h, p);
        }
        ExprKind::Unary(op, a) => {
            h.word(4);
            h.word(*op as u64);
            hash_expr(h, a);
        }
        ExprKind::Binary(op, a, b) => {
            h.word(5);
            h.word(*op as u64);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        ExprKind::Cast(a) => {
            h.word(6);
            hash_expr(h, a);
        }
        ExprKind::SizeOf(t) => {
            h.word(7);
            hash_type(h, t);
        }
        ExprKind::MakeFat { val, base, end } => {
            h.word(8);
            hash_expr(h, val);
            match base {
                None => h.word(0),
                Some(b) => {
                    h.word(1);
                    hash_expr(h, b);
                }
            }
            hash_expr(h, end);
        }
    }
}

fn hash_place(h: &mut Hasher, p: &Place) {
    match &p.base {
        PlaceBase::Local(id) => {
            h.word(0);
            h.word(id.0 as u64);
        }
        PlaceBase::Global(id) => {
            h.word(1);
            h.word(id.0 as u64);
        }
        PlaceBase::Deref(e) => {
            h.word(2);
            hash_expr(h, e);
        }
    }
    h.word(p.elems.len() as u64);
    for el in &p.elems {
        match el {
            PlaceElem::Field { sid, idx } => {
                h.word(0);
                h.word(sid.0 as u64);
                h.word(*idx as u64);
            }
            PlaceElem::Index(e) => {
                h.word(1);
                hash_expr(h, e);
            }
        }
    }
    hash_type(h, &p.ty);
}

fn hash_opt_place(h: &mut Hasher, p: &Option<Place>) {
    match p {
        None => h.word(0),
        Some(p) => {
            h.word(1);
            hash_place(h, p);
        }
    }
}

// ---------------------------------------------------------------------
// Keys, entries, and the cache.
// ---------------------------------------------------------------------

/// A cache key: the content digest of the input program plus the
/// canonical spec of the pass applied to it. Spec strings come from
/// [`crate::Pass::spec`], whose renderers emit options in one fixed
/// order — so every equivalent spelling of a pass normalizes to the same
/// key, and two passes with the same name but different options key
/// apart.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`ir_digest`] of the input program.
    pub digest: u64,
    /// Canonical pass spec (e.g. `cxprop(domain=constants,rounds=1)`).
    pub spec: String,
}

impl CacheKey {
    /// A key for applying the pass spelled `spec` to a program with
    /// content digest `digest`.
    pub fn new(digest: u64, spec: impl Into<String>) -> CacheKey {
        CacheKey {
            digest,
            spec: spec.into(),
        }
    }
}

/// One cached pass application: the output program (shared, never
/// mutated), its digest (so chained lookups skip rehashing), the metrics
/// the pass deposited when it ran against an empty scratch context, and
/// — for backend passes — the prepared program and options for the final
/// link.
#[derive(Debug, Clone)]
pub(crate) struct PassOutput {
    pub program: Arc<Program>,
    /// [`ir_digest`] of `program`.
    pub digest: u64,
    /// Approximate serialized size of `program` in bytes.
    pub bytes: usize,
    /// What the pass deposited into a fresh [`Metrics`] (zero times; the
    /// consuming build replays the merge via [`crate::Pass::absorb`]).
    pub effect: Metrics,
    /// The backend-prepared program, when this entry is a backend pass.
    pub prepared: Option<Arc<Program>>,
    /// The backend options in force, when this entry is a backend pass.
    pub backend_options: Option<BackendOptions>,
}

type Slot = Arc<OnceLock<Result<PassOutput, tcil::CompileError>>>;

const SHARDS: usize = 16;

/// Hit/miss/size counters for one pass name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCounters {
    /// Lookups served from an already-computed entry.
    pub hits: u64,
    /// Lookups that computed the entry (≡ distinct keys touched, however
    /// the jobs were scheduled).
    pub misses: u64,
    /// Approximate bytes of output IR the computed entries retain.
    pub bytes: u64,
}

impl PassCounters {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Aggregated cache statistics, keyed by pass name (sorted, so reports
/// are deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Counters per pass name.
    pub passes: BTreeMap<String, PassCounters>,
}

impl CacheStats {
    /// Counters for `pass` (zeros if it never consulted the cache).
    pub fn get(&self, pass: &str) -> PassCounters {
        self.passes.get(pass).copied().unwrap_or_default()
    }

    /// Total hits across all passes.
    pub fn hits(&self) -> u64 {
        self.passes.values().map(|c| c.hits).sum()
    }

    /// Total misses (computations) across all passes.
    pub fn misses(&self) -> u64 {
        self.passes.values().map(|c| c.misses).sum()
    }

    /// Total retained output bytes across all passes.
    pub fn bytes(&self) -> u64 {
        self.passes.values().map(|c| c.bytes).sum()
    }
}

/// The sharded, `Arc`-shared pass-output cache.
///
/// Sixteen `RwLock` shards keyed by digest bits keep contention low
/// across experiment-runner workers; each entry is an
/// `Arc<OnceLock<…>>` slot, so the shard lock is held only to find the
/// slot and the (possibly expensive) pass computation runs outside it,
/// exactly once per key.
#[derive(Default)]
pub struct PassCache {
    shards: [RwLock<HashMap<CacheKey, Slot>>; SHARDS],
    stats: Mutex<BTreeMap<String, PassCounters>>,
}

impl PassCache {
    /// An empty cache.
    pub fn new() -> PassCache {
        PassCache::default()
    }

    /// The slot for `key`, inserting an empty one if absent. The caller
    /// runs (or waits for) the computation via the slot's `OnceLock`.
    pub(crate) fn slot(&self, key: &CacheKey) -> Slot {
        let shard = &self.shards[(key.digest as usize) & (SHARDS - 1)];
        if let Some(s) = shard.read().unwrap().get(key) {
            return s.clone();
        }
        let mut w = shard.write().unwrap();
        w.entry(key.clone()).or_default().clone()
    }

    /// Records one lookup of `pass`: a miss (this caller computed the
    /// entry, retaining `bytes` of output IR) or a hit.
    pub(crate) fn note(&self, pass: &str, computed: bool, bytes: usize) {
        let mut stats = self.stats.lock().unwrap();
        let c = stats.entry(pass.to_string()).or_default();
        if computed {
            c.misses += 1;
            c.bytes += bytes as u64;
        } else {
            c.hits += 1;
        }
    }

    /// A snapshot of the per-pass counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            passes: self.stats.lock().unwrap().clone(),
        }
    }

    /// Number of entries currently cached.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

impl std::fmt::Debug for PassCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassCache")
            .field("entries", &self.entries())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcil::ir::{AtomicStyle, Check, Flid, FuncId, Function, Global};
    use tcil::types::IntKind;

    fn tiny_program() -> Program {
        let mut p = Program::default();
        p.globals.push(Global {
            name: "counter".into(),
            ty: Type::u16(),
            init: Init::Int(7),
            norace: false,
            is_const: false,
            racy: false,
        });
        let mut f = Function::new("main", Type::Void);
        f.body.push(Stmt::Check(Check {
            kind: CheckKind::IndexBound {
                idx: Expr::const_int(3, IntKind::U8),
                n: 4,
            },
            flid: Flid(9),
        }));
        f.body.push(Stmt::Return(None));
        p.functions.push(f);
        p.entry = Some(FuncId(0));
        p
    }

    #[test]
    fn digest_is_deterministic_and_clone_stable() {
        let p = tiny_program();
        let q = p.clone();
        assert_eq!(ir_digest(&p), ir_digest(&q));
        assert_eq!(ir_digest(&p), ir_digest(&p));
    }

    #[test]
    fn digest_sees_obscure_semantic_fields() {
        let base = tiny_program();
        let (d0, _) = ir_digest(&base);

        // Fields a sloppy hasher would skip: each must change the digest.
        let mut p = base.clone();
        p.globals[0].norace = true;
        assert_ne!(ir_digest(&p).0, d0, "norace flag invisible");

        let mut p = base.clone();
        p.globals[0].racy = true;
        assert_ne!(ir_digest(&p).0, d0, "racy flag invisible");

        let mut p = base.clone();
        p.functions[0].trusted = true;
        assert_ne!(ir_digest(&p).0, d0, "trusted flag invisible");

        let mut p = base.clone();
        p.functions[0].inline_hint = true;
        assert_ne!(ir_digest(&p).0, d0, "inline hint invisible");

        let mut p = base.clone();
        p.functions[0].interrupt = Some(0);
        assert_ne!(ir_digest(&p).0, d0, "interrupt vector invisible");

        let mut p = base.clone();
        let Stmt::Check(c) = &mut p.functions[0].body[0] else {
            unreachable!()
        };
        c.flid = Flid(10);
        assert_ne!(ir_digest(&p).0, d0, "FLID invisible");

        let mut p = base.clone();
        p.flid_messages.push((9, "m.nc:1: bounds".into()));
        assert_ne!(ir_digest(&p).0, d0, "FLID table invisible");
    }

    #[test]
    fn digest_distinguishes_atomic_styles_and_order() {
        let mut a = tiny_program();
        a.functions[0].body.insert(
            0,
            Stmt::Atomic {
                body: vec![Stmt::Nop],
                style: AtomicStyle::SaveRestore,
            },
        );
        let mut b = a.clone();
        let Stmt::Atomic { style, .. } = &mut b.functions[0].body[0] else {
            unreachable!()
        };
        *style = AtomicStyle::DisableEnable;
        assert_ne!(ir_digest(&a).0, ir_digest(&b).0);

        // Transposed statements must differ even though the multiset of
        // words is identical (position-mixed hashing).
        let mut c = tiny_program();
        c.functions[0].body.push(Stmt::Break);
        let mut d = tiny_program();
        d.functions[0].body.insert(0, Stmt::Break);
        assert_ne!(ir_digest(&c).0, ir_digest(&d).0);
    }

    #[test]
    fn cache_slots_compute_once_and_count_deterministically() {
        let cache = PassCache::new();
        let key = CacheKey::new(42, "cure(flid)");
        let computed = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let slot = cache.slot(&key);
                    let mut mine = false;
                    slot.get_or_init(|| {
                        mine = true;
                        computed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        Ok(PassOutput {
                            program: Arc::new(Program::default()),
                            digest: 7,
                            bytes: 64,
                            effect: Metrics::default(),
                            prepared: None,
                            backend_options: None,
                        })
                    });
                    cache.note("cure", mine, 64);
                });
            }
        });
        assert_eq!(computed.load(std::sync::atomic::Ordering::Relaxed), 1);
        let stats = cache.stats();
        let c = stats.get("cure");
        // However the eight threads raced, exactly one miss: the miss
        // count is the number of distinct keys, not a schedule artifact.
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 7);
        assert_eq!(c.bytes, 64);
        assert_eq!(cache.entries(), 1);
    }
}
