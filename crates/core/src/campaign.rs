//! Fault-injection campaigns: does a pipeline's output *detect*
//! corruption, or merely suffer it?
//!
//! The figure harnesses measure what safety costs (checks, bytes, duty
//! cycle); a campaign measures what safety *buys*. For one build it runs
//! a golden (uninjected) simulation, enumerates a seeded, deterministic
//! list of corruption plans over the image's static data
//! ([`mcu::faults::enumerate_sites`]), replays the workload once per
//! plan with the corruption applied mid-run, and triages every replay
//! against the golden observation ([`ccured::triage`]). The resulting
//! [`CampaignReport`] is the paper's missing evaluation axis: cured
//! pipelines convert silent corruption into FLID-diagnosable traps,
//! uncured ones cannot (an image with zero checks can never produce a
//! [`ccured::Verdict::Detected`]).
//!
//! Campaigns are pure functions of `(build, workload, config)` — no
//! wall-clock, no global RNG — so an experiment grid over worker threads
//! emits byte-identical reports in any schedule.
//!
//! # Example
//!
//! ```
//! use safe_tinyos::{BuildSession, CampaignConfig, Pipeline};
//!
//! let session = BuildSession::new();
//! let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
//! let cfg = CampaignConfig { seconds: 2, sites: 8, seed: 1 };
//! let unsafe_report = session.campaign(&spec, &Pipeline::unsafe_baseline(), &cfg).unwrap();
//! // An uncured image has no checks: it can crash or corrupt, never detect.
//! assert_eq!(unsafe_report.counts.detected, 0);
//! assert_eq!(unsafe_report.results.len(), 8);
//! ```

use std::collections::BTreeSet;

use ccured::triage::{self, RunObservation, Verdict, VerdictCounts};
use mcu::faults::{self, FaultKind, FaultPlan};
use mcu::RunState;
use tcil::ir::{CheckKind, Expr, ExprKind, Place, PlaceBase, PlaceElem, Stmt};
use tcil::visit;
use tosapps::AppSpec;

use crate::{prepare_machine, Build};

/// Configuration of one fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Simulated seconds per run (golden and injected alike).
    pub seconds: u64,
    /// Number of injection sites to enumerate.
    pub sites: usize,
    /// Site-enumerator seed: same seed, same plans, same report.
    pub seed: u64,
}

impl Default for CampaignConfig {
    /// A moderate default: 16 sites over the standard short workload.
    fn default() -> Self {
        CampaignConfig {
            seconds: 4,
            sites: 16,
            seed: 0xC0DE,
        }
    }
}

/// One injected run's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteResult {
    /// Stable site label (see [`FaultPlan::label`]).
    pub site: String,
    /// Cycle point of the injection.
    pub at_cycle: u64,
    /// What the corruption did.
    pub verdict: Verdict,
}

/// The outcome of one campaign (one build × workload).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Final state of the golden (uninjected) run — campaigns over
    /// healthy apps expect `Sleeping`.
    pub golden_state: RunState,
    /// Per-site outcomes, in enumeration order.
    pub results: Vec<SiteResult>,
    /// The verdict tally.
    pub counts: VerdictCounts,
}

impl CampaignReport {
    /// The detected sites, with their FLIDs and decoded messages.
    pub fn detections(&self) -> impl Iterator<Item = (&SiteResult, u16, &str)> + '_ {
        self.results.iter().filter_map(|r| match &r.verdict {
            Verdict::Detected { flid, message } => Some((r, *flid, message.as_str())),
            _ => None,
        })
    }
}

/// The RAM cells whose corruption probes *checked* accesses: scalar
/// globals used as an array index anywhere in the final program —
/// receive-buffer positions, task-queue heads, sample counters. These
/// cells exist identically in cured and uncured builds (curing adds
/// checks before the accesses; it does not change which globals index
/// arrays), so targeting them is the logically comparable fault model:
/// push a buffer position or queue head out of range, and a cured image
/// traps an `IndexBound` check where an uncured one reads or writes
/// past the array.
///
/// Addresses come from the image's symbol table and are returned sorted
/// and deduplicated — plan enumeration must not depend on traversal
/// order.
pub fn target_cells(build: &Build) -> Vec<u16> {
    target_names(build)
        .iter()
        .filter_map(|name| build.image.find_global_addr(name))
        .collect::<BTreeSet<u16>>()
        .into_iter()
        .collect()
}

/// The *names* of the index globals [`target_cells`] resolves — the
/// layout-independent half of the fault model. The differential oracle
/// ([`crate::difftest`]) targets cells by name so the same logical fault
/// can be injected into two differently-laid-out builds of one program.
/// Sorted and deduplicated for enumeration-order independence.
pub fn target_names(build: &Build) -> Vec<String> {
    let mut ids: BTreeSet<u32> = BTreeSet::new();
    let mark_index_expr = |ie: &Expr, ids: &mut BTreeSet<u32>| {
        visit::walk_expr(ie, &mut |e| {
            if let ExprKind::Load(p) = &e.kind {
                if p.elems.is_empty() && p.ty.as_int().is_some() {
                    if let PlaceBase::Global(gid) = &p.base {
                        ids.insert(gid.0);
                    }
                }
            }
        });
    };
    // Every place projection with an `Index` element marks the globals
    // its index expression reads; `IndexBound` checks mark theirs too
    // (the same set in cured builds, present only there).
    let scan_place = |p: &Place, ids: &mut BTreeSet<u32>| {
        for el in &p.elems {
            if let PlaceElem::Index(ie) = el {
                mark_index_expr(ie, ids);
            }
        }
    };
    for f in &build.program.functions {
        visit::walk_stmts(&f.body, &mut |s: &Stmt| {
            if let Stmt::Check(c) = s {
                if let CheckKind::IndexBound { idx, .. } = &c.kind {
                    mark_index_expr(idx, &mut ids);
                }
            }
            visit::stmt_exprs(s, &mut |top| {
                visit::walk_expr(top, &mut |e| {
                    if let ExprKind::Load(p) | ExprKind::AddrOf(p) = &e.kind {
                        scan_place(p, &mut ids);
                    }
                });
            });
            // `stmt_exprs` hands out assignment/call *target* index
            // expressions directly (not wrapped in a Load), so scan the
            // statement's places explicitly too.
            match s {
                Stmt::Assign(p, _) => scan_place(p, &mut ids),
                Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => {
                    scan_place(p, &mut ids)
                }
                _ => {}
            }
        });
    }
    ids.iter()
        .map(|gid| build.program.globals[*gid as usize].name.clone())
        .collect::<BTreeSet<String>>()
        .into_iter()
        .collect()
}

/// Runs a fault-injection campaign against one finished build.
///
/// The golden run and every injected run share identical machine setup
/// (via [`prepare_machine`]); an injected run executes to the plan's
/// cycle point, applies the corruption, and resumes to the horizon.
/// Plans are enumerated from the build's own image, with the
/// [`target_cells`] as priority targets — fat pointers move globals
/// around, so *logical* comparability across pipelines comes from the
/// shared seed, site mix, and target roles, not from identical
/// addresses.
pub fn run_campaign(build: &Build, spec: &AppSpec, config: &CampaignConfig) -> CampaignReport {
    let (mut golden_machine, until) = prepare_machine(build, spec, config.seconds);
    golden_machine.run(until);
    let golden = RunObservation::capture(&golden_machine);

    let targets = target_cells(build);
    let plans = faults::enumerate_sites(&build.image, &targets, config.seed, config.sites, until);
    let mut results = Vec::with_capacity(plans.len());
    let mut counts = VerdictCounts::default();
    for plan in &plans {
        let verdict = run_injected(build, spec, config.seconds, plan, &golden);
        counts.record(&verdict);
        results.push(SiteResult {
            site: plan.label(),
            at_cycle: plan.at_cycle,
            verdict,
        });
    }
    CampaignReport {
        golden_state: golden_machine.state,
        results,
        counts,
    }
}

// ---------------------------------------------------------------------
// The torn-update atomicity campaign.
// ---------------------------------------------------------------------

/// XOR masks for torn corruption, cycled per injection so one campaign
/// probes several bit positions of each half.
const TORN_MASKS: [u8; 4] = [0x80, 0x01, 0x40, 0x08];

/// The names of the multi-byte globals with *flagged torn access sites*
/// (reads or writes) in `build`'s final program — the torn-update fault
/// model's target pool (classification runs on a clone; the build is not
/// mutated). Sorted and deduplicated for enumeration-order independence.
///
/// For a `races(fix)` build this is empty by construction: the point of
/// the campaign is to enumerate targets from the *unhardened* build and
/// inject the same logical faults (by name) into both.
pub fn torn_target_names(build: &Build) -> Vec<String> {
    let mut program = build.program.clone();
    let findings = cxprop::race_sites::classify(&mut program);
    findings
        .sites
        .iter()
        .filter(|s| s.width > 1)
        .map(|s| s.global.clone())
        .collect::<BTreeSet<String>>()
        .into_iter()
        .collect()
}

/// Enumerates torn-update plans for `build`: for each named 16-bit
/// target present in the image's symbol table (a name optimized away by
/// DCE is skipped), `per_target` watchpoints — the 1st, 2nd, … Nth
/// IRQ-enabled 16-bit access to the global — alternating low/high byte,
/// with a mask cycled from `TORN_MASKS`. Plans apply at boot (cycle 0,
/// the skew-free injection point): arming a watchpoint costs no
/// execution, so golden and injected runs never drift apart before the
/// fault lands.
pub fn torn_plans(build: &Build, names: &[String], per_target: usize) -> Vec<FaultPlan> {
    let mut plans = Vec::new();
    for name in names {
        let Some(addr) = build.image.find_global_addr(name) else {
            continue;
        };
        for i in 0..per_target {
            plans.push(FaultPlan {
                at_cycle: 0,
                kind: FaultKind::TornUpdate16 {
                    addr,
                    nth: (i / 2 + 1) as u32,
                    mask: TORN_MASKS[i % TORN_MASKS.len()],
                    hi: i % 2 == 1,
                },
            });
        }
    }
    plans
}

/// Runs a torn-update atomicity campaign against one build: one golden
/// run, then one replay per plan from [`torn_plans`] over `names`
/// (enumerate them from the unhardened build via [`torn_target_names`]
/// so hardened and unhardened builds face the same logical faults).
///
/// A build whose flagged accesses all sit inside atomic sections is
/// mechanically immune — the watchpoint only fires on accesses executed
/// with interrupts enabled — so every replay matches golden and tallies
/// [`Verdict::Benign`]. The interesting measure is therefore
/// [`VerdictCounts::divergences`] compared across builds.
pub fn run_torn_campaign(
    build: &Build,
    spec: &AppSpec,
    names: &[String],
    per_target: usize,
    seconds: u64,
) -> CampaignReport {
    let (mut golden_machine, until) = prepare_machine(build, spec, seconds);
    golden_machine.run(until);
    let golden = RunObservation::capture(&golden_machine);

    let plans = torn_plans(build, names, per_target);
    let mut results = Vec::with_capacity(plans.len());
    let mut counts = VerdictCounts::default();
    for plan in &plans {
        let verdict = run_injected(build, spec, seconds, plan, &golden);
        counts.record(&verdict);
        results.push(SiteResult {
            site: plan.label(),
            at_cycle: plan.at_cycle,
            verdict,
        });
    }
    CampaignReport {
        golden_state: golden_machine.state,
        results,
        counts,
    }
}

/// One injected replay: run to the fault point, corrupt, resume, triage.
fn run_injected(
    build: &Build,
    spec: &AppSpec,
    seconds: u64,
    plan: &FaultPlan,
    golden: &RunObservation,
) -> Verdict {
    let (mut m, until) = prepare_machine(build, spec, seconds);
    m.run(plan.at_cycle.min(until));
    faults::apply(&mut m, plan);
    m.run(until);
    let observed = RunObservation::capture(&m);
    triage::triage(golden, &observed, &build.image.flid_table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildSession, Pipeline};

    fn campaign(pipeline: &Pipeline, cfg: &CampaignConfig) -> CampaignReport {
        let session = BuildSession::new();
        let spec = tosapps::spec("SenseToRfm_Mica2").unwrap();
        session.campaign(&spec, pipeline, cfg).unwrap()
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = CampaignConfig {
            seconds: 2,
            sites: 8,
            seed: 99,
        };
        let a = campaign(&Pipeline::safe_flid(), &cfg);
        let b = campaign(&Pipeline::safe_flid(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn torn_campaign_separates_hardened_from_unhardened() {
        // HighFrequencySampling's flush() task reads its racy uint16_t
        // sample buffer with interrupts enabled — a runtime-reachable
        // torn-read hazard (most apps only touch their 16-bit globals
        // from handler context or in pre-IrqEnable init code, where the
        // watchpoint can never fire).
        let session = crate::BuildSession::new();
        let spec = tosapps::spec("HighFrequencySampling_Mica2").unwrap();
        let unhardened = session
            .build(&spec, &Pipeline::parse("cure(flid)|cxprop|prune").unwrap())
            .unwrap();
        let hardened = session
            .build(
                &spec,
                &Pipeline::parse("cure(flid)|races(fix)|cxprop|prune").unwrap(),
            )
            .unwrap();
        // Targets come from the unhardened build; the hardened build has
        // no flagged torn accesses left, by construction.
        let names = torn_target_names(&unhardened);
        assert!(!names.is_empty(), "no torn-access targets flagged");
        assert!(torn_target_names(&hardened).is_empty());

        let torn = |build: &crate::Build| run_torn_campaign(build, &spec, &names, 4, 2);
        let hardened_report = torn(&hardened);
        assert_eq!(
            hardened_report.counts.divergences(),
            0,
            "hardened build not immune: {:?}",
            hardened_report.results
        );
        let unhardened_report = torn(&unhardened);
        assert!(
            unhardened_report.counts.divergences() > 0,
            "no torn injection diverged on the unhardened build: {:?}",
            unhardened_report.results
        );
        // Determinism: same build, same plans, same report.
        assert_eq!(torn(&unhardened), unhardened_report);
    }

    #[test]
    fn uncured_builds_never_detect_and_every_detection_decodes() {
        let cfg = CampaignConfig {
            seconds: 2,
            sites: 12,
            seed: 7,
        };
        let uncured = campaign(&Pipeline::unsafe_baseline(), &cfg);
        assert_eq!(uncured.counts.detected, 0, "no checks, no detections");
        assert_eq!(uncured.counts.total(), 12);

        let cured = campaign(&Pipeline::safe_flid(), &cfg);
        assert_eq!(cured.counts.total(), 12);
        for (result, flid, message) in cured.detections() {
            assert!(
                !message.is_empty(),
                "{}: FLID {flid} undecodable",
                result.site
            );
        }
    }
}
