//! Structured diagnostics: the typed finding record analysis passes
//! deposit into a [`crate::PassCx`].
//!
//! The toolchain's first-class analyses (today the `races` pass; the
//! design is pass-agnostic) report findings as [`Diagnostic`]s rather
//! than log lines: a severity, a stable machine-matchable code, a
//! FLID-style `func:site` location, and a human-readable message. The
//! records land in [`crate::Metrics::diagnostics`], so harnesses can
//! count them by code, gates can diff them, and `races(fix)` can prove
//! a fixpoint by emitting none.
//!
//! # Diagnostic codes
//!
//! | Code | Name | Meaning |
//! |------|------|---------|
//! | `R001` | `unprotected-sync-write` | synchronous write to a racy global outside any atomic section |
//! | `R002` | `torn-16bit-access` | unprotected access wider than the 8-bit bus (interruptible between the two bus transfers) |
//! | `R003` | `async-rmw` | unprotected synchronous read-modify-write of a global that async context also updates (lost-update hazard) |
//! | `S001` | `unbounded-recursion` | the call graph has a cycle, so no finite stack bound exists |
//! | `S002` | `unresolved-call-target` | a call's target set could not be resolved (out-of-range function index or a vector wired to a missing function) |
//! | `S003` | `stack-budget-exceeded` | the certified worst-case stack bound exceeds the SRAM stack budget |

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Note,
    /// A hazard worth fixing; the build is still usable.
    Warning,
    /// A defect; the artifact should not ship.
    Error,
}

impl Severity {
    /// The severity's lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One structured finding from an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable, machine-matchable code (e.g. `R001`).
    pub code: String,
    /// FLID-style site label: `func:site` (the statement-site analogue
    /// of `file:line` — the IR carries no source positions).
    pub site: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A new diagnostic.
    pub fn new(
        severity: Severity,
        code: impl Into<String>,
        site: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            code: code.into(),
            site: site.into(),
            message: message.into(),
        }
    }

    /// The diagnostic as one JSON object
    /// (`{"severity":"warning","code":"R001","site":"f:3","message":"..."}`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"site\":\"{}\",\"message\":\"{}\"}}",
            self.severity.name(),
            escape(&self.code),
            escape(&self.site),
            escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity.name(),
            self.code,
            self.site,
            self.message
        )
    }
}

/// A list of diagnostics as a JSON array.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_display_and_json() {
        let d = Diagnostic::new(
            Severity::Warning,
            "R002",
            "TimerM__fired:3",
            "torn 16-bit write to `TimerM__interval`",
        );
        assert_eq!(
            d.to_string(),
            "warning[R002] TimerM__fired:3: torn 16-bit write to `TimerM__interval`"
        );
        assert_eq!(
            d.to_json(),
            "{\"severity\":\"warning\",\"code\":\"R002\",\"site\":\"TimerM__fired:3\",\
             \"message\":\"torn 16-bit write to `TimerM__interval`\"}"
        );
        assert_eq!(diagnostics_json(&[]), "[]");
        assert!(diagnostics_json(&[d.clone(), d]).starts_with("[{"));
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new(Severity::Error, "X\"1", "f:0", "a\\b\nc");
        assert_eq!(
            d.to_json(),
            "{\"severity\":\"error\",\"code\":\"X\\\"1\",\"site\":\"f:0\",\"message\":\"a\\\\b\\nc\"}"
        );
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
