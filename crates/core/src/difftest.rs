//! The differential-execution oracle: does an optimizer stack preserve
//! what the reference pipeline means?
//!
//! Every figure in the evaluation assumes the pass stacks are
//! *semantics-preserving* refinements of the cure-only build. This
//! module is the instrument that earns that assumption instead of
//! stating it, in the tradition of differential tool validation: run
//! the same program through the full preset registry and through the
//! reference `cure`-only pipeline, observe everything observable, and
//! classify every divergence.
//!
//! Two subject populations feed the oracle:
//!
//! * **Generated programs** — a seeded, deterministic TCL program
//!   generator ([`generate_source`], SplitMix64-driven with the same
//!   seeding discipline as `mcu::faults`) produces closed computations:
//!   bounded loops, helper calls, array traffic with both provably-safe
//!   and deliberately out-of-range indices, optional (never-firing)
//!   interrupt handlers to exercise the concurrency-aware analysis, and
//!   an epilogue that streams every global over the UART so RAM state
//!   becomes trace-observable. Every generated program type-checks by
//!   construction (it goes through the ordinary frontend) and
//!   terminates structurally (literal-bound `for` loops over dedicated
//!   counters, acyclic helpers).
//! * **The benchmark apps** — the eleven Mica2 applications, compared
//!   on their stock workloads.
//!
//! For each subject × preset, the oracle compares a *golden* run
//! (observable trace, fault category, and a by-name RAM snapshot of
//! integer globals) and, when the golden reference run is clean, a set
//! of *fault-injected* replays: the same logical corruption — a high
//! bit flipped in a named index global, **at boot**, so both builds
//! face the identical invariant-violating initial state with no
//! cross-build timing skew — applied to both builds, each triaged
//! against its own golden run ([`ccured::triage`]), so
//! check-elimination decisions are audited against the fault model they
//! must answer to.
//!
//! Each divergence lands in one of three classes:
//!
//! * [`DiffVerdict::Miscompile`] — observable behavior diverged on an
//!   uncorrupted run (or the preset introduced a trap the reference
//!   does not have). Always a bug; CI gates on zero.
//! * [`DiffVerdict::CheckStrengthReduction`] — the reference detected a
//!   violation (safety trap / FLID) that the preset ran straight
//!   through: the optimizer deleted the check that would have caught
//!   it. Expected for uncured presets (they have no checks); a bug for
//!   cured ones — this is the class that pinned the interval-domain
//!   check-elimination unsoundness the hardened policy fixes.
//! * [`DiffVerdict::Benign`] — a divergence with no semantic loss:
//!   RAM-only differences on cells no trace depends on, or a preset
//!   detecting *more* than the reference.
//!
//! Identical observations are [`DiffVerdict::Match`]. Everything here
//! is a pure function of `(seed, presets, config)` — no wall clock, no
//! global RNG — so a parallel experiment grid emits byte-identical
//! reports in any schedule.
//!
//! # Example
//!
//! ```
//! use safe_tinyos::difftest::{self, DiffConfig, DiffVerdict};
//! use safe_tinyos::Pipeline;
//!
//! let presets = vec![Pipeline::safe_flid_inline_cxprop()];
//! let report = difftest::diff_seed(7, &presets, &DiffConfig::default()).unwrap();
//! assert!(report
//!     .cases
//!     .iter()
//!     .all(|c| c.verdict != DiffVerdict::Miscompile));
//! ```

use std::collections::BTreeMap;

use ccured::triage::{self, RunObservation, Verdict};
use mcu::faults::{self, FaultKind, FaultPlan, SplitMix64};
use mcu::{Fault, Machine, RunState};
use tcil::types::{size_of, Type};
use tcil::{CompileError, Program};
use tosapps::AppSpec;

use crate::{campaign, prepare_machine, Build, Pipeline};

/// Configuration of one differential comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffConfig {
    /// Cycle budget for generated-program runs (apps use their workload
    /// horizon instead). A subject still running at the budget is
    /// observed as such — a preset that diverges in termination is a
    /// miscompile like any other.
    pub budget_cycles: u64,
    /// Fault-injected replays per subject × preset (0 disables the
    /// fault-outcome comparison).
    pub fault_sites: usize,
    /// Seed for the injected-replay site stream (mixed with the
    /// subject's identity, so every subject sees distinct sites but the
    /// same subject always sees the same ones).
    pub seed: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            budget_cycles: 2_000_000,
            fault_sites: 4,
            seed: 0xD1FF,
        }
    }
}

/// The reference pipeline every preset is compared against: `cure`
/// alone (FLID error mode), the unoptimized-but-safe semantics of the
/// paper's §2.
pub fn reference_pipeline() -> Pipeline {
    Pipeline::safe_flid().with_name("reference")
}

/// Coarse fault category for cross-build comparison. Two builds of one
/// program lay memory out differently, so fault *payloads* (FLID
/// numbers, fault addresses) legitimately differ; the category and the
/// output trace up to the fault do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTag {
    /// A Safe TinyOS check trapped.
    Safety,
    /// A raw hardware fault (unmapped access, stack overflow, …).
    Hardware,
}

/// Everything the oracle observes about one finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffObservation {
    /// Final run state.
    pub state: RunState,
    /// Coarse fault category, if the run stopped on one.
    pub fault: Option<FaultTag>,
    /// Human-readable fault rendering (FLID-decoded when possible) —
    /// report detail only, never compared across builds.
    pub fault_detail: String,
    /// UART byte stream.
    pub uart: Vec<u8>,
    /// Radio byte stream, timestamps stripped: optimization legally
    /// changes *when* a byte goes out, never *what* or in what order.
    pub radio: Vec<u8>,
    /// LED register transitions.
    pub led_transitions: u64,
    /// Final values of integer globals, by name — the by-name snapshot
    /// makes RAM comparable across builds with different layouts.
    /// Compared over the intersection of names (dead-data elimination
    /// legitimately drops cells).
    pub ram: BTreeMap<String, Vec<u8>>,
}

impl DiffObservation {
    /// Captures `m` after a run of `build`.
    pub fn capture(build: &Build, m: &Machine) -> DiffObservation {
        let (fault, fault_detail) = match &m.fault {
            Some(Fault::SafetyTrap(flid)) => (
                Some(FaultTag::Safety),
                match build.image.flid_table.get(flid) {
                    Some(msg) => format!("flid {flid}: {msg}"),
                    None => format!("flid {flid}: <no table entry>"),
                },
            ),
            Some(other) => (Some(FaultTag::Hardware), format!("{other:?}")),
            None => (None, String::new()),
        };
        DiffObservation {
            state: m.state,
            fault,
            fault_detail,
            uart: m.uart_out.clone(),
            radio: m.radio_out.iter().map(|&(_, b)| b).collect(),
            led_transitions: m.devices.leds.transitions,
            ram: ram_snapshot(build, m),
        }
    }

    /// Whether the cross-build-comparable trace (state, fault category,
    /// UART, radio, LEDs) matches `other`'s.
    fn trace_matches(&self, other: &DiffObservation) -> bool {
        self.state == other.state
            && self.fault == other.fault
            && self.uart == other.uart
            && self.radio == other.radio
            && self.led_transitions == other.led_transitions
    }
}

/// Reads the final bytes of every integer-typed, non-runtime global.
/// Pointer-typed and struct globals hold layout-dependent values
/// (addresses) and are excluded by construction.
fn ram_snapshot(build: &Build, m: &Machine) -> BTreeMap<String, Vec<u8>> {
    let mut snap = BTreeMap::new();
    for g in &build.program.globals {
        if g.name.starts_with("__") {
            continue;
        }
        let comparable = matches!(&g.ty, Type::Int(_))
            || matches!(&g.ty, Type::Array(elem, _) if matches!(**elem, Type::Int(_)));
        if !comparable {
            continue;
        }
        let Some(addr) = build.image.find_global_addr(&g.name) else {
            continue;
        };
        let size = size_of(&g.ty, &build.program.structs) as u16;
        let bytes = (0..size)
            .map(|i| m.ram_peek(addr.wrapping_add(i)))
            .collect();
        snap.insert(g.name.clone(), bytes);
    }
    snap
}

/// How one comparison point turned out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffVerdict {
    /// Observably identical (fault-outcome points: same triage class).
    Match,
    /// Divergent, but without semantic loss — RAM-only differences on
    /// untraced cells, or strictly stronger fault detection.
    Benign,
    /// The reference detected a violation the preset ran through: the
    /// stack deleted the check that would have caught it.
    CheckStrengthReduction,
    /// Observable behavior diverged on an uncorrupted run. A bug.
    Miscompile,
}

impl DiffVerdict {
    /// Stable report key.
    pub fn key(self) -> &'static str {
        match self {
            DiffVerdict::Match => "match",
            DiffVerdict::Benign => "benign",
            DiffVerdict::CheckStrengthReduction => "check_strength_reduction",
            DiffVerdict::Miscompile => "miscompile",
        }
    }
}

/// Which comparison produced a [`DiffCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffPhase {
    /// Golden (uninjected) run comparison.
    Golden,
    /// Fault-injected replay comparison.
    Injected,
}

/// One comparison point: subject × preset × phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffCase {
    /// Subject label (`seed:N` or an app name).
    pub subject: String,
    /// Preset pipeline name.
    pub preset: String,
    /// Golden or injected comparison.
    pub phase: DiffPhase,
    /// Site label for injected comparisons (`bitflip@<global>^<mask>`),
    /// empty for golden ones.
    pub site: String,
    /// The classification.
    pub verdict: DiffVerdict,
    /// Human-readable explanation of any divergence.
    pub detail: String,
}

/// Verdict tally over any set of cases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffCounts {
    /// Identical observations.
    pub matched: usize,
    /// Harmless divergences.
    pub benign: usize,
    /// Lost fault coverage.
    pub check_strength_reduction: usize,
    /// Real miscompilations.
    pub miscompile: usize,
}

impl DiffCounts {
    /// Adds one verdict.
    pub fn record(&mut self, v: DiffVerdict) {
        match v {
            DiffVerdict::Match => self.matched += 1,
            DiffVerdict::Benign => self.benign += 1,
            DiffVerdict::CheckStrengthReduction => self.check_strength_reduction += 1,
            DiffVerdict::Miscompile => self.miscompile += 1,
        }
    }

    /// Folds another tally into this one.
    pub fn add(&mut self, o: &DiffCounts) {
        self.matched += o.matched;
        self.benign += o.benign;
        self.check_strength_reduction += o.check_strength_reduction;
        self.miscompile += o.miscompile;
    }

    /// Total comparison points tallied.
    pub fn total(&self) -> usize {
        self.matched + self.benign + self.check_strength_reduction + self.miscompile
    }
}

/// All comparison points for one subject across a preset list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectReport {
    /// Subject label.
    pub subject: String,
    /// Every comparison point, in preset order then phase order.
    pub cases: Vec<DiffCase>,
}

impl SubjectReport {
    /// The subject's verdict tally.
    pub fn counts(&self) -> DiffCounts {
        let mut c = DiffCounts::default();
        for case in &self.cases {
            c.record(case.verdict);
        }
        c
    }
}

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

/// How a subject is executed.
enum Workload<'a> {
    /// Bare machine run to a cycle budget (generated programs).
    Raw {
        /// Cycle budget.
        budget: u64,
    },
    /// App workload context (waveform, radio traffic) for a horizon.
    App {
        /// The app under test.
        spec: &'a AppSpec,
        /// Simulated seconds.
        seconds: u64,
        /// The app's radio payload *encodes time* (e.g. it echoes a
        /// captured tick counter): builds of different speeds legally
        /// transmit different bytes, so only the transmission count is
        /// comparable across builds.
        timing_encoded_radio: bool,
    },
}

impl Workload<'_> {
    /// A machine set up for `build` and the run horizon in cycles.
    fn machine(&self, build: &Build) -> (Machine, u64) {
        match self {
            Workload::Raw { budget } => {
                let mut m = Machine::new(&build.image);
                if m.engine() == mcu::Engine::Bt {
                    m.set_block_cache(build.block_cache());
                }
                (m, *budget)
            }
            Workload::App { spec, seconds, .. } => prepare_machine(build, spec, *seconds),
        }
    }

    /// Reduces an observation to what this workload makes comparable
    /// across builds.
    fn comparable(&self, mut obs: DiffObservation) -> DiffObservation {
        if let Workload::App {
            timing_encoded_radio: true,
            ..
        } = self
        {
            // Keep the count, drop the time-encoding payload bytes.
            obs.radio = (obs.radio.len() as u64).to_le_bytes().to_vec();
        }
        obs
    }
}

/// Runs `build` to the horizon, optionally applying `plan` mid-run.
fn run_build(build: &Build, workload: &Workload<'_>, plan: Option<&FaultPlan>) -> Machine {
    let (mut m, until) = workload.machine(build);
    if let Some(plan) = plan {
        m.run(plan.at_cycle.min(until));
        faults::apply(&mut m, plan);
    }
    m.run(until);
    m
}

/// `a` is a prefix of `b`.
fn is_prefix<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    a.len() <= b.len() && b[..a.len()] == *a
}

/// Classifies the golden (uninjected) comparison.
fn classify_golden(reference: &DiffObservation, preset: &DiffObservation) -> (DiffVerdict, String) {
    if reference.trace_matches(preset) {
        // Traces agree; audit the by-name RAM intersection.
        for (name, bytes) in &reference.ram {
            if let Some(other) = preset.ram.get(name) {
                if other != bytes {
                    return (
                        DiffVerdict::Benign,
                        format!("RAM-only divergence at `{name}`: {bytes:?} vs {other:?}"),
                    );
                }
            }
        }
        return (DiffVerdict::Match, String::new());
    }
    // The reference trapped a safety violation and the preset sailed
    // past it (its trace extends the reference's): the guilty check was
    // optimized away. For uncured presets that is the expected cost of
    // having no checks; for cured ones the harness gates it separately.
    if reference.fault == Some(FaultTag::Safety)
        && preset.fault != Some(FaultTag::Safety)
        && is_prefix(&reference.uart, &preset.uart)
        && is_prefix(&reference.radio, &preset.radio)
        && preset.led_transitions >= reference.led_transitions
    {
        return (
            DiffVerdict::CheckStrengthReduction,
            format!(
                "reference trapped ({}) but preset ran on (state {:?})",
                reference.fault_detail, preset.state
            ),
        );
    }
    (
        DiffVerdict::Miscompile,
        format!(
            "trace diverged: ref(state {:?}, fault {:?} {}, uart {}B, radio {}B, leds {}) vs \
             preset(state {:?}, fault {:?} {}, uart {}B, radio {}B, leds {})",
            reference.state,
            reference.fault,
            reference.fault_detail,
            reference.uart.len(),
            reference.radio.len(),
            reference.led_transitions,
            preset.state,
            preset.fault,
            preset.fault_detail,
            preset.uart.len(),
            preset.radio.len(),
            preset.led_transitions,
        ),
    )
}

/// Classifies one fault-injected comparison from the two builds' triage
/// verdicts (each against its own golden run).
fn classify_injected(reference: &Verdict, preset: &Verdict) -> (DiffVerdict, String) {
    let (r, p) = (reference.key(), preset.key());
    if r == p {
        return (DiffVerdict::Match, String::new());
    }
    if r == "detected" {
        let detail = match reference {
            Verdict::Detected { flid, message } => {
                format!("reference detected (flid {flid}: {message}); preset outcome: {p}")
            }
            _ => unreachable!("key said detected"),
        };
        return (DiffVerdict::CheckStrengthReduction, detail);
    }
    if p == "detected" {
        return (
            DiffVerdict::Benign,
            format!("preset detects where reference is {r} — strictly stronger"),
        );
    }
    (
        DiffVerdict::Benign,
        format!("divergent corruption response ({r} vs {p}), detection-neutral"),
    )
}

/// FNV-1a, for mixing subject labels into the site-stream seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// High-bit masks for targeted index-cell flips (the same mix the
/// campaign enumerator uses: far out of range, plausible upset).
const HIGH_MASKS: [u8; 4] = [0x80, 0xC0, 0xA0, 0xE0];

/// Compares one preset build against the reference build over a
/// workload: the golden comparison plus (when the reference's golden
/// run is clean) `cfg.fault_sites` injected-replay comparisons.
fn diff_builds(
    subject: &str,
    reference: &Build,
    preset_build: &Build,
    preset_name: &str,
    workload: &Workload<'_>,
    cfg: &DiffConfig,
) -> Vec<DiffCase> {
    let mut cases = Vec::new();

    let ref_machine = run_build(reference, workload, None);
    let preset_machine = run_build(preset_build, workload, None);
    let ref_obs = workload.comparable(DiffObservation::capture(reference, &ref_machine));
    let preset_obs = workload.comparable(DiffObservation::capture(preset_build, &preset_machine));
    let ref_golden = RunObservation::capture(&ref_machine);
    let preset_golden = RunObservation::capture(&preset_machine);

    let (verdict, detail) = classify_golden(&ref_obs, &preset_obs);
    cases.push(DiffCase {
        subject: subject.to_string(),
        preset: preset_name.to_string(),
        phase: DiffPhase::Golden,
        site: String::new(),
        verdict,
        detail,
    });

    // Fault-outcome comparison only makes sense against a clean golden
    // reference: a subject that already traps exercises the check paths
    // in the golden comparison itself.
    if cfg.fault_sites == 0 || ref_obs.fault.is_some() {
        return cases;
    }
    let targets = campaign::target_names(reference);
    if targets.is_empty() {
        return cases;
    }
    // Injections land at *boot* — the corrupted cell holds its upset
    // value before either build executes an instruction. Mid-run
    // injection cannot be compared fairly across builds: the same cycle
    // point (or even the same fraction of each build's run) falls into
    // different statement windows — e.g. between one build's load and
    // store of the very cell, where the in-flight store erases the
    // corruption — so detection asymmetry would measure instruction
    // scheduling, not check strength. A corrupted *initial state* is
    // the skew-free version of the question check elimination must
    // answer: both builds face the identical logical state, one that
    // violates the invariants the analysis proved, and detection
    // parity becomes a pure function of which checks survived.
    // (Mid-run upsets are the fault_injection campaign's axis, which
    // triages each build against its own golden run and never compares
    // timing across builds.)
    let mut rng = SplitMix64::new(cfg.seed ^ fnv1a(subject));
    for _ in 0..cfg.fault_sites {
        let name = &targets[rng.below(targets.len() as u64) as usize];
        let mask = HIGH_MASKS[rng.below(HIGH_MASKS.len() as u64) as usize];
        // The same logical fault lands in both builds by name; a build
        // whose optimizer removed the cell outright cannot receive it.
        let (Some(ref_addr), Some(preset_addr)) = (
            reference.image.find_global_addr(name),
            preset_build.image.find_global_addr(name),
        ) else {
            continue;
        };
        let plan_for = |addr: u16| FaultPlan {
            at_cycle: 0,
            kind: FaultKind::BitFlip { addr, mask },
        };
        let ref_run = run_build(reference, workload, Some(&plan_for(ref_addr)));
        let preset_run = run_build(preset_build, workload, Some(&plan_for(preset_addr)));
        let ref_verdict = triage::triage(
            &ref_golden,
            &RunObservation::capture(&ref_run),
            &reference.image.flid_table,
        );
        let preset_verdict = triage::triage(
            &preset_golden,
            &RunObservation::capture(&preset_run),
            &preset_build.image.flid_table,
        );
        let (verdict, detail) = classify_injected(&ref_verdict, &preset_verdict);
        cases.push(DiffCase {
            subject: subject.to_string(),
            preset: preset_name.to_string(),
            phase: DiffPhase::Injected,
            site: format!("bitflip@{name}^{mask:02x}@boot"),
            verdict,
            detail,
        });
    }
    cases
}

/// Differential comparison of one already-lowered program across
/// `presets`, against the cure-only reference.
///
/// # Errors
///
/// Propagates compile errors from any pipeline.
pub fn diff_program(
    subject: &str,
    program: &Program,
    presets: &[Pipeline],
    cfg: &DiffConfig,
) -> Result<SubjectReport, CompileError> {
    let platform = mcu::Profile::mica2();
    let reference = reference_pipeline().build(program.clone(), platform.clone())?;
    let workload = Workload::Raw {
        budget: cfg.budget_cycles,
    };
    let mut cases = Vec::new();
    for preset in presets {
        let build = preset.build(program.clone(), platform.clone())?;
        cases.extend(diff_builds(
            subject,
            &reference,
            &build,
            preset.name(),
            &workload,
            cfg,
        ));
    }
    Ok(SubjectReport {
        subject: subject.to_string(),
        cases,
    })
}

/// [`diff_program`] over the generated program for `seed` (subject
/// label `seed:N`).
///
/// # Errors
///
/// Propagates compile errors — a generator-validity bug if the frontend
/// rejects its output, a pipeline bug otherwise.
pub fn diff_seed(
    seed: u64,
    presets: &[Pipeline],
    cfg: &DiffConfig,
) -> Result<SubjectReport, CompileError> {
    let program = generate_program(seed)?;
    diff_program(&format!("seed:{seed}"), &program, presets, cfg)
}

/// Apps whose radio payload encodes captured time by specification —
/// `TestTimeStamping` answers each request with the hardware tick
/// counter at reception, so builds of different speeds legally transmit
/// different bytes. For these, the oracle compares transmission counts
/// instead of payload contents (everything else — UART, LEDs, state,
/// fault category, RAM — stays byte-compared).
pub const TIMING_ENCODED_RADIO_APPS: [&str; 1] = ["TestTimeStamping_Mica2"];

/// Differential comparison of one benchmark app under one preset,
/// through `session`'s frontend cache.
///
/// # Errors
///
/// Propagates compile errors from either pipeline.
pub fn diff_app(
    session: &crate::BuildSession,
    spec: &AppSpec,
    preset: &Pipeline,
    seconds: u64,
    cfg: &DiffConfig,
) -> Result<Vec<DiffCase>, CompileError> {
    let reference = session.build(spec, &reference_pipeline())?;
    let build = session.build(spec, preset)?;
    let workload = Workload::App {
        spec,
        seconds,
        timing_encoded_radio: TIMING_ENCODED_RADIO_APPS.contains(&spec.name),
    };
    Ok(diff_builds(
        spec.name,
        &reference,
        &build,
        preset.name(),
        &workload,
        cfg,
    ))
}

// ---------------------------------------------------------------------
// The seeded program generator.
// ---------------------------------------------------------------------

/// An integer kind the generator deals in.
#[derive(Clone, Copy)]
struct GKind {
    name: &'static str,
    max_literal: u64,
}

const KINDS: [GKind; 4] = [
    GKind {
        name: "uint8_t",
        max_literal: 255,
    },
    GKind {
        name: "uint8_t",
        max_literal: 255,
    },
    GKind {
        name: "uint16_t",
        max_literal: 1023,
    },
    GKind {
        name: "int16_t",
        max_literal: 511,
    },
];

struct ScalarVar {
    name: String,
    kind: GKind,
}

struct ArrayVar {
    name: String,
    len: usize,
}

/// The seeded source generator. Expressions are fully parenthesized and
/// cast at every composite node, so the frontend's coercion rules can
/// never reject a composition; divisors and shift counts are literal
/// constants, so no generated program divides by zero or shifts wide.
struct Gen {
    rng: SplitMix64,
    scalars: Vec<ScalarVar>,
    arrays: Vec<ArrayVar>,
    locals: Vec<ScalarVar>,
    loop_vars: usize,
    has_isr: bool,
    helpers: usize,
}

impl Gen {
    fn below(&mut self, n: usize) -> usize {
        self.rng.below(n.max(1) as u64) as usize
    }

    fn chance(&mut self, pct: usize) -> bool {
        self.below(100) < pct
    }

    fn literal(&mut self, kind: &GKind) -> String {
        format!("{}", self.rng.below(kind.max_literal + 1))
    }

    /// A leaf operand rendered as a cast to `kind`.
    fn leaf(&mut self, kind: &GKind, in_helper: bool) -> String {
        // Helpers see only their own params (handled by the caller via
        // `locals`); main sees globals, locals, and loop counters.
        let mut pool: Vec<String> = Vec::new();
        if !in_helper {
            pool.extend(self.scalars.iter().map(|s| s.name.clone()));
        }
        pool.extend(self.locals.iter().map(|l| l.name.clone()));
        for i in 0..self.loop_vars {
            pool.push(format!("i{i}"));
        }
        if pool.is_empty() || self.chance(30) {
            return self.literal(kind);
        }
        let pick = pool[self.below(pool.len())].clone();
        format!("({})({pick})", kind.name)
    }

    /// A depth-bounded expression of `kind`.
    fn expr(&mut self, kind: &GKind, depth: usize, in_helper: bool) -> String {
        if depth == 0 || self.chance(35) {
            return self.leaf(kind, in_helper);
        }
        let a = self.expr(kind, depth - 1, in_helper);
        let b = self.expr(kind, depth - 1, in_helper);
        let cast = kind.name;
        match self.below(10) {
            0 => format!("({cast})({a} + {b})"),
            1 => format!("({cast})({a} - {b})"),
            2 => format!("({cast})({a} * {b})"),
            3 => format!("({cast})({a} & {b})"),
            4 => format!("({cast})({a} | {b})"),
            5 => format!("({cast})({a} ^ {b})"),
            6 => {
                let d = 2 + self.below(8); // literal, never zero
                format!("({cast})({a} % {d})")
            }
            7 => {
                let d = 2 + self.below(8);
                format!("({cast})({a} / {d})")
            }
            8 => {
                let s = self.below(4);
                format!("({cast})({a} << {s})")
            }
            _ => {
                let s = self.below(4);
                format!("({cast})({a} >> {s})")
            }
        }
    }

    /// An index expression for an array of `len` elements. Mostly
    /// provably safe (literal, masked, mod-reduced, or a loop counter
    /// with a fitting bound); sometimes deliberately unconstrained, so
    /// generated subjects exercise *firing* checks too.
    fn index(&mut self, len: usize, bound_loop: Option<usize>) -> String {
        let u8k = &KINDS[0];
        match self.below(10) {
            0..=2 => format!("{}", self.below(len)),
            3..=4 => {
                let e = self.expr(u8k, 1, false);
                format!("(uint8_t)({e} % {len})")
            }
            5..=6 if len.is_power_of_two() => {
                let e = self.expr(u8k, 1, false);
                format!("(uint8_t)({e} & {})", len - 1)
            }
            7 if bound_loop.is_some() => format!("i{}", bound_loop.expect("checked")),
            _ => {
                // Unconstrained: whatever a global holds right now.
                self.expr(u8k, 1, false)
            }
        }
    }

    fn stmt(&mut self, out: &mut String, indent: usize, depth: usize, loop_ctx: Option<usize>) {
        let pad = "    ".repeat(indent);
        match self.below(12) {
            0..=2 => {
                // Scalar global assignment.
                let gi = self.below(self.scalars.len());
                let (name, kind) = {
                    let s = &self.scalars[gi];
                    (s.name.clone(), s.kind)
                };
                let e = self.expr(&kind, 2, false);
                out.push_str(&format!("{pad}{name} = ({})({e});\n", kind.name));
            }
            3..=4 => {
                // Local assignment.
                let li = self.below(self.locals.len());
                let (name, kind) = {
                    let l = &self.locals[li];
                    (l.name.clone(), l.kind)
                };
                let e = self.expr(&kind, 2, false);
                out.push_str(&format!("{pad}{name} = ({})({e});\n", kind.name));
            }
            5..=6 => {
                // Array write.
                let ai = self.below(self.arrays.len());
                let (name, len) = {
                    let a = &self.arrays[ai];
                    (a.name.clone(), a.len)
                };
                let idx = self.index(len, loop_ctx);
                let e = self.expr(&KINDS[0], 2, false);
                out.push_str(&format!("{pad}{name}[{idx}] = (uint8_t)({e});\n"));
            }
            7 => {
                // Array read folded into a scalar.
                let ai = self.below(self.arrays.len());
                let (aname, len) = {
                    let a = &self.arrays[ai];
                    (a.name.clone(), a.len)
                };
                let gi = self.below(self.scalars.len());
                let (gname, gkind) = {
                    let s = &self.scalars[gi];
                    (s.name.clone(), s.kind)
                };
                let idx = self.index(len, loop_ctx);
                out.push_str(&format!(
                    "{pad}{gname} = ({})({gname} + {aname}[{idx}]);\n",
                    gkind.name
                ));
            }
            8 if self.helpers > 0 => {
                // Helper call.
                let h = self.below(self.helpers);
                let gi = self.below(self.scalars.len());
                let (gname, gkind) = {
                    let s = &self.scalars[gi];
                    (s.name.clone(), s.kind)
                };
                if h.is_multiple_of(2) {
                    let ai = self.below(self.arrays.len());
                    let aname = self.arrays[ai].name.clone();
                    let idx = self.expr(&KINDS[0], 1, false);
                    out.push_str(&format!(
                        "{pad}{gname} = ({})(h{h}({aname}, (uint8_t)({idx})));\n",
                        gkind.name
                    ));
                } else {
                    let a = self.expr(&KINDS[2], 1, false);
                    let b = self.expr(&KINDS[2], 1, false);
                    out.push_str(&format!(
                        "{pad}{gname} = ({})(h{h}((uint16_t)({a}), (uint16_t)({b})));\n",
                        gkind.name
                    ));
                }
            }
            9 if depth > 0 => {
                // Conditional.
                let kind = KINDS[self.below(KINDS.len())];
                let a = self.expr(&kind, 1, false);
                let b = self.expr(&kind, 1, false);
                let op = ["<", "<=", "==", "!="][self.below(4)];
                out.push_str(&format!("{pad}if ({a} {op} {b}) {{\n"));
                for _ in 0..1 + self.below(2) {
                    self.stmt(out, indent + 1, depth - 1, loop_ctx);
                }
                if self.chance(50) {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    for _ in 0..1 + self.below(2) {
                        self.stmt(out, indent + 1, depth - 1, loop_ctx);
                    }
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            10 if depth > 0 => {
                // Bounded loop over a dedicated counter (never otherwise
                // assigned — structural termination).
                let lv = self.loop_vars;
                self.loop_vars += 1;
                let bound = 2 + self.below(10);
                out.push_str(&format!(
                    "{pad}for (i{lv} = 0; i{lv} < {bound}; i{lv}++) {{\n"
                ));
                for _ in 0..1 + self.below(3) {
                    self.stmt(out, indent + 1, depth - 1, Some(lv));
                }
                out.push_str(&format!("{pad}}}\n"));
                self.loop_vars -= 1;
            }
            11 if self.has_isr => {
                // Atomic section touching the ISR-shared global.
                let e = self.expr(&KINDS[0], 1, false);
                out.push_str(&format!(
                    "{pad}atomic {{ shared = (uint8_t)(shared + {e}); }}\n"
                ));
            }
            _ => {
                // Fallback: scalar bump.
                let gi = self.below(self.scalars.len());
                let (name, kind) = {
                    let s = &self.scalars[gi];
                    (s.name.clone(), s.kind)
                };
                out.push_str(&format!("{pad}{name} = ({})({name} + 1);\n", kind.name));
            }
        }
    }
}

/// Generates the TCL source for `seed`. Same seed, same source, forever
/// — the regression corpus depends on it.
pub fn generate_source(seed: u64) -> String {
    let mut g = Gen {
        rng: SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1FF_7E57),
        scalars: Vec::new(),
        arrays: Vec::new(),
        locals: Vec::new(),
        loop_vars: 0,
        has_isr: false,
        helpers: 0,
    };
    let mut src = String::new();
    src.push_str(&format!("/* difftest subject, seed {seed} */\n"));

    // Globals.
    let n_scalars = 3 + g.below(3);
    for i in 0..n_scalars {
        let kind = KINDS[g.below(KINDS.len())];
        let name = format!("g{i}");
        src.push_str(&format!("{} {name};\n", kind.name));
        g.scalars.push(ScalarVar { name, kind });
    }
    let n_arrays = 1 + g.below(2);
    for i in 0..n_arrays {
        let len = [4usize, 6, 8, 12, 16, 24, 32][g.below(7)];
        let name = format!("a{i}");
        src.push_str(&format!("uint8_t {name}[{len}];\n"));
        g.arrays.push(ArrayVar { name, len });
    }

    // Optional never-firing interrupt handler: no timer is enabled, so
    // runtime behavior stays deterministic, but the analysis must treat
    // everything it touches as asynchronously accessed. Besides its own
    // `shared` global, the handler read-modify-writes one named task
    // global and plain-writes another (possibly 16-bit) — so generated
    // programs exercise every per-site race code (`R001`–`R003`), not
    // just the dedicated `shared` byte.
    g.has_isr = g.chance(50);
    if g.has_isr {
        src.push_str("uint8_t shared;\n");
        let rmw = g.below(n_scalars);
        let wr = g.below(n_scalars);
        let (rmw_name, rmw_kind) = (g.scalars[rmw].name.clone(), g.scalars[rmw].kind);
        let (wr_name, wr_kind) = (g.scalars[wr].name.clone(), g.scalars[wr].kind);
        let wr_val = g.literal(&wr_kind);
        src.push_str(&format!(
            "interrupt(TIMER0) void isr() {{ shared = (uint8_t)(shared + 1); \
             {rmw_name} = ({})({rmw_name} + 1); {wr_name} = ({})({wr_val}); }}\n",
            rmw_kind.name, wr_kind.name
        ));
        g.scalars.push(ScalarVar {
            name: "shared".to_string(),
            kind: KINDS[0],
        });
    }

    // Helpers (acyclic: bodies reference no other helpers).
    g.helpers = 1 + g.below(3);
    for h in 0..g.helpers {
        if h.is_multiple_of(2) {
            // Pointer helper: exercises fat-pointer checks and the
            // inliner's context-sensitivity story.
            g.locals = vec![ScalarVar {
                name: "i".to_string(),
                kind: KINDS[0],
            }];
            let idx = match g.below(3) {
                0 => "i".to_string(),
                1 => {
                    let m = [3usize, 7, 15][g.below(3)];
                    format!("(uint8_t)(i & {m})")
                }
                _ => {
                    let m = 2 + g.below(6);
                    format!("(uint8_t)(i % {m})")
                }
            };
            src.push_str(&format!(
                "uint8_t h{h}(uint8_t * p, uint8_t i) {{ return p[{idx}]; }}\n"
            ));
        } else {
            g.locals = vec![
                ScalarVar {
                    name: "a".to_string(),
                    kind: KINDS[2],
                },
                ScalarVar {
                    name: "b".to_string(),
                    kind: KINDS[2],
                },
            ];
            let e = g.expr(&KINDS[2], 2, true);
            src.push_str(&format!(
                "uint16_t h{h}(uint16_t a, uint16_t b) {{ return (uint16_t)({e}); }}\n"
            ));
        }
    }
    g.locals.clear();

    // main: locals, body, observability epilogue.
    src.push_str("void main() {\n");
    let n_locals = 2 + g.below(3);
    for i in 0..n_locals {
        let kind = KINDS[g.below(KINDS.len())];
        let name = format!("t{i}");
        src.push_str(&format!("    {} {name};\n", kind.name));
        g.locals.push(ScalarVar { name, kind });
    }
    for i in 0..8 {
        src.push_str(&format!("    uint8_t i{i};\n"));
    }
    for l in 0..n_locals {
        src.push_str(&format!("    t{l} = 0;\n"));
    }
    let n_stmts = 6 + g.below(10);
    for _ in 0..n_stmts {
        g.stmt(&mut src, 1, 2, None);
    }
    // Epilogue: stream every integer global over the UART so the final
    // RAM state is part of the observable trace (and no store to it is
    // dead). The modeled UART drops writes while a byte is shifting
    // (~416 cycles), so every write is preceded by a delay loop long
    // enough in even the fastest build — otherwise *which* bytes
    // survive would depend on optimization level and the comparison
    // would drown in timing artifacts. The loop body does real work
    // (`i7` feeds the final write) so no pass can fold it away. 0xA5
    // delimits body output from the dump.
    src.push_str("    i7 = 0;\n");
    let uart_write = |src: &mut String, value: &str| {
        src.push_str("    for (i6 = 0; i6 < 200; i6++) { i7 = (uint8_t)(i7 + 1); }\n");
        src.push_str(&format!("    __hw_write8(0xF040, (uint8_t)({value}));\n"));
    };
    uart_write(&mut src, "165");
    let scalar_names: Vec<String> = g.scalars.iter().map(|s| s.name.clone()).collect();
    for name in scalar_names {
        uart_write(&mut src, &name);
    }
    let arrays: Vec<(String, usize)> = g.arrays.iter().map(|a| (a.name.clone(), a.len)).collect();
    for (name, len) in arrays {
        src.push_str(&format!("    for (i0 = 0; i0 < {len}; i0++) {{\n"));
        src.push_str("        for (i6 = 0; i6 < 200; i6++) { i7 = (uint8_t)(i7 + 1); }\n");
        src.push_str(&format!("        __hw_write8(0xF040, {name}[i0]);\n"));
        src.push_str("    }\n");
    }
    uart_write(&mut src, "i7");
    src.push_str("}\n");
    src
}

/// Parses and lowers the generated source for `seed` — the frontend is
/// the generator's type-checking witness.
///
/// # Errors
///
/// A [`CompileError`] here is a generator-validity bug by definition.
pub fn generate_program(seed: u64) -> Result<Program, CompileError> {
    tcil::parse_and_lower(&generate_source(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;

    #[test]
    fn generator_is_deterministic_and_valid() {
        for seed in 0..20 {
            assert_eq!(generate_source(seed), generate_source(seed));
            generate_program(seed)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", generate_source(seed)));
        }
    }

    #[test]
    fn generated_programs_terminate_under_budget() {
        let cfg = DiffConfig::default();
        for seed in 0..10 {
            let program = generate_program(seed).unwrap();
            let build = reference_pipeline()
                .build(program, mcu::Profile::mica2())
                .unwrap();
            let m = run_build(
                &build,
                &Workload::Raw {
                    budget: cfg.budget_cycles,
                },
                None,
            );
            assert_ne!(
                m.state,
                RunState::Running,
                "seed {seed} still running at the budget"
            );
        }
    }

    #[test]
    fn reference_is_identical_to_itself() {
        let report = diff_program(
            "self",
            &generate_program(3).unwrap(),
            &[reference_pipeline().with_name("self")],
            &DiffConfig::default(),
        )
        .unwrap();
        for case in &report.cases {
            assert_eq!(case.verdict, DiffVerdict::Match, "{case:?}");
        }
    }

    #[test]
    fn uncured_presets_lose_detection_not_semantics() {
        // On a clean-running seed, the unsafe baseline must match the
        // reference trace; under injected faults it can only lose
        // detection (CheckStrengthReduction), never miscompile.
        let presets = [Pipeline::unsafe_baseline()];
        let cfg = DiffConfig::default();
        let mut saw_injected = false;
        for seed in 0..12 {
            let report = diff_seed(seed, &presets, &cfg).unwrap();
            for case in &report.cases {
                assert_ne!(case.verdict, DiffVerdict::Miscompile, "{case:?}");
                if case.phase == DiffPhase::Injected {
                    saw_injected = true;
                }
            }
        }
        assert!(saw_injected, "no clean seed produced injected comparisons");
    }

    #[test]
    fn cured_interval_stack_keeps_detection_parity() {
        // The hardened elimination policy: on injected replays the
        // interval-domain cured stack must never lose a detection the
        // reference makes.
        let presets = [Pipeline::safe_flid_cxprop()];
        let cfg = DiffConfig::default();
        for seed in 0..12 {
            let report = diff_seed(seed, &presets, &cfg).unwrap();
            for case in &report.cases {
                assert_ne!(case.verdict, DiffVerdict::Miscompile, "{case:?}");
                if case.phase == DiffPhase::Injected {
                    assert_ne!(
                        case.verdict,
                        DiffVerdict::CheckStrengthReduction,
                        "hardened stack lost coverage: {case:?}"
                    );
                }
            }
        }
    }
}
