//! Fleet-level simulation and network-level fault campaigns.
//!
//! [`mcu::fleet`] provides the event-driven mote scheduler; this module
//! wires it to the toolchain: it builds Surge-style data-collection
//! fleets from a [`Build`] (per-mote sensor seeds, base-station beacons
//! into mote 0, unit-disk or full-mesh topologies), decodes the active
//! message stream a base station would hear from the sink mote, checks
//! the event-driven engine against the lockstep [`mcu::net::Network`]
//! reference, and runs *network-level* fault-injection campaigns: corrupt
//! one mote's RAM mid-run and classify what the fleet observes — a FLID
//! safety trap at the victim, a crash, silent route poisoning visible in
//! the sink's delivered readings, or corruption contained to the victim.

use std::collections::BTreeSet;

use mcu::devices::Waveform;
use mcu::faults::{enumerate_sites, FaultPlan, SplitMix64};
use mcu::fleet::{Fleet, LinkQuality, MoteObservation, MoteSetup, Topology};
use mcu::net::Network;
use mcu::{Fault, Machine};

use crate::campaign::target_cells;
use crate::Build;

/// Salt mixed into the fleet seed to derive per-mote waveform seeds (so
/// the waveform stream and the link-decision stream never alias).
const WAVEFORM_SALT: u64 = 0x51ED_5EED_0F1E_E750;

/// First base-station beacon arrival at the sink mote, in cycles.
const BEACON_START: u64 = 500_000;
/// Beacon period, in cycles (2 s at 4 MHz — matches the single-mote
/// Surge context in `tosapps`).
const BEACON_PERIOD: u64 = 8_000_000;

/// The Surge active-message type carrying sensor readings.
pub const AM_SURGE_MSG: u8 = 17;
/// The Surge beacon/command message type.
pub const AM_SURGE_CMD: u8 = 18;

/// One fleet scenario: how many motes, for how long, over what links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of motes; mote 0 is the sink (it hears the base-station
    /// beacons, so the routing gradient descends toward it).
    pub motes: usize,
    /// Simulated seconds.
    pub seconds: u64,
    /// Master seed: drives per-link delivery decisions and per-mote
    /// sensor waveforms.
    pub seed: u64,
    /// Link quality of every edge.
    pub quality: LinkQuality,
    /// Unit-disk squared radius on the mote grid (`2` = 8-neighbour);
    /// `0` means a full mesh instead.
    pub range2: u64,
    /// Boot-time desynchronization window in cycles: mote `m ≥ 1` boots
    /// at `(m · 99991) mod stagger` instead of cycle 0 (the sink always
    /// boots at 0). `0` boots the whole fleet in lock phase — which
    /// synchronizes every sampling timer, so reading transmissions
    /// collide almost everywhere; real deployments never power on
    /// cycle-simultaneously. Must be `0` for lockstep-equivalence specs
    /// (the lockstep reference cannot express boot offsets).
    pub stagger: u64,
}

/// Default boot-desynchronization window of realistic fleets: 100 ms at
/// the Mica2 clock.
pub const SURGE_STAGGER: u64 = 400_000;

impl FleetSpec {
    /// A lossless full-mesh fleet — the configuration the lockstep
    /// reference can also simulate, used for equivalence checks.
    pub fn lossless_mesh(motes: usize, seconds: u64, seed: u64) -> FleetSpec {
        FleetSpec {
            motes,
            seconds,
            seed,
            quality: LinkQuality::LOSSLESS,
            range2: 0,
            stagger: 0,
        }
    }

    /// A unit-disk grid with the given per-link quality — the realistic
    /// multihop configuration the bench harness sweeps.
    pub fn grid(motes: usize, seconds: u64, seed: u64, quality: LinkQuality) -> FleetSpec {
        FleetSpec {
            motes,
            seconds,
            seed,
            quality,
            range2: 2,
            stagger: SURGE_STAGGER,
        }
    }
}

/// The simulation horizon of `spec` in cycles of `build`'s clock.
pub fn horizon_cycles(build: &Build, spec: &FleetSpec) -> u64 {
    spec.seconds * build.image.profile.clock_hz
}

/// The per-mote boot configurations of `spec`: every mote gets its own
/// seeded noise waveform, and mote 0 additionally hears base-station
/// beacons (hops = 0) so the routing tree forms around it. Shared by
/// [`build_fleet`] and the lockstep reference in
/// [`lockstep_matches_event_driven`] so both engines see the same world.
pub fn mote_setups(spec: &FleetSpec, horizon: u64) -> Vec<MoteSetup> {
    let mut seeds = SplitMix64::new(spec.seed ^ WAVEFORM_SALT);
    let beacon = tosapps::AmPacket::broadcast(AM_SURGE_CMD, vec![0, 0, 0]).frame_bytes();
    (0..spec.motes)
        .map(|m| {
            let mut setup = MoteSetup {
                waveform: Some(Waveform::Noise {
                    seed: seeds.next_u64() as u32,
                    min: 200,
                    max: 900,
                }),
                injections: Vec::new(),
            };
            if m == 0 {
                let mut at = BEACON_START;
                while at < horizon {
                    setup.injections.push((at, beacon.clone()));
                    at += BEACON_PERIOD;
                }
            }
            setup
        })
        .collect()
}

/// Builds (but does not run) the fleet described by `spec`, with every
/// mote running `build`'s image. Under the translating engine the fleet
/// shares the build's basic-block cache.
pub fn build_fleet(build: &Build, spec: &FleetSpec) -> Fleet {
    let topology = if spec.range2 == 0 {
        Topology::full_mesh(spec.motes, spec.quality)
    } else {
        Topology::unit_disk_grid(spec.motes, spec.range2, spec.quality)
    };
    let mut fleet = Fleet::new(&build.image, topology, spec.seed);
    if fleet.machine(0).engine() == mcu::Engine::Bt {
        fleet.set_block_cache(build.block_cache());
    }
    for (m, setup) in mote_setups(spec, horizon_cycles(build, spec))
        .into_iter()
        .enumerate()
    {
        fleet.set_setup(m, setup);
    }
    if spec.stagger > 0 {
        for m in 1..spec.motes {
            let offset = (m as u64).wrapping_mul(99_991) % spec.stagger;
            if offset > 0 {
                fleet.schedule_power_cycle(m, 0, Some(offset));
            }
        }
    }
    fleet
}

// ---------------------------------------------------------------------
// Sink-side active-message decoding
// ---------------------------------------------------------------------

/// One decoded active-message frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmFrame {
    /// Destination address.
    pub addr: u16,
    /// Active-message type.
    pub am_type: u8,
    /// Group id.
    pub group: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Decodes a raw radio byte stream into CRC-valid active-message frames
/// (sync byte, header, payload, CRC-CCITT — the `RadioM` wire format).
/// Returns the frames and the number of sync candidates rejected by a
/// bad or truncated CRC; decoding resyncs one byte after a bad frame.
pub fn decode_am_frames(bytes: &[u8]) -> (Vec<AmFrame>, u64) {
    let mut frames = Vec::new();
    let mut rejects = 0u64;
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != 0x7E {
            i += 1;
            continue;
        }
        if i + 6 > bytes.len() {
            rejects += 1;
            break;
        }
        let len = bytes[i + 5] as usize;
        let end = i + 6 + len + 2;
        if end > bytes.len() {
            rejects += 1;
            i += 1;
            continue;
        }
        let mut crc = 0u16;
        for &b in &bytes[i + 1..i + 6 + len] {
            crc = tosapps::context::crc_byte(crc, b);
        }
        if crc.to_le_bytes() != [bytes[end - 2], bytes[end - 1]] {
            rejects += 1;
            i += 1;
            continue;
        }
        frames.push(AmFrame {
            addr: u16::from_le_bytes([bytes[i + 1], bytes[i + 2]]),
            am_type: bytes[i + 3],
            group: bytes[i + 4],
            payload: bytes[i + 6..i + 6 + len].to_vec(),
        });
        i = end;
    }
    (frames, rejects)
}

/// The distinct Surge readings among `frames`, keyed by the `(seq,
/// reading)` payload words. `TOS_LOCAL_ADDRESS` is a compile-time
/// constant, so the on-air source field cannot distinguish motes; the
/// per-mote sensor seeds make the key collision-resistant enough to
/// serve as a delivery metric.
pub fn surge_reading_keys(frames: &[AmFrame]) -> BTreeSet<u32> {
    frames
        .iter()
        .filter(|f| f.am_type == AM_SURGE_MSG && f.payload.len() >= 7)
        .map(|f| u32::from_le_bytes([f.payload[2], f.payload[3], f.payload[4], f.payload[5]]))
        .collect()
}

fn mote_frames(fleet: &Fleet, m: usize) -> (Vec<AmFrame>, u64) {
    let bytes: Vec<u8> = fleet.tx_log(m).iter().map(|&(_, b)| b).collect();
    decode_am_frames(&bytes)
}

/// The readings a base station wired to the sink mote would have
/// received: everything mote 0 put on the air, CRC-decoded.
pub fn sink_reading_keys(fleet: &Fleet) -> BTreeSet<u32> {
    surge_reading_keys(&mote_frames(fleet, 0).0)
}

/// What the sink delivered versus what the fleet offered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkReport {
    /// CRC-valid frames heard at the sink (all message types).
    pub frames: u64,
    /// Sync candidates at the sink rejected by CRC.
    pub crc_rejects: u64,
    /// Distinct readings heard at the sink.
    pub heard: usize,
    /// Distinct readings that ever hit the air anywhere in the fleet.
    pub offered: usize,
    /// `heard / offered`, in percent (0 when nothing was offered).
    pub delivery_rate_pct: f64,
}

/// Decodes every mote's transmission log and scores end-to-end delivery
/// at the sink.
pub fn sink_report(fleet: &Fleet) -> SinkReport {
    let (sink_frames, crc_rejects) = mote_frames(fleet, 0);
    let heard = surge_reading_keys(&sink_frames);
    let mut offered = BTreeSet::new();
    for m in 0..fleet.node_count() {
        offered.extend(surge_reading_keys(&mote_frames(fleet, m).0));
    }
    let delivery_rate_pct = if offered.is_empty() {
        0.0
    } else {
        heard.len() as f64 * 100.0 / offered.len() as f64
    };
    SinkReport {
        frames: sink_frames.len() as u64,
        crc_rejects,
        heard: heard.len(),
        offered: offered.len(),
        delivery_rate_pct,
    }
}

// ---------------------------------------------------------------------
// Lockstep equivalence
// ---------------------------------------------------------------------

/// Runs the same scenario under the lockstep [`Network`] reference and
/// the event-driven [`Fleet`] engine and reports whether every mote's
/// observable state — run state, fault, cycle and instruction counts,
/// UART and radio logs, LED transitions, and full RAM — is
/// byte-identical. Only meaningful for lossless full-mesh specs (the
/// only topology the lockstep model can express).
pub fn lockstep_matches_event_driven(build: &Build, spec: &FleetSpec) -> bool {
    assert_eq!(spec.range2, 0, "the lockstep reference is a full mesh");
    assert_eq!(
        spec.quality,
        LinkQuality::LOSSLESS,
        "the lockstep reference has perfect links"
    );
    assert_eq!(
        spec.stagger, 0,
        "the lockstep reference cannot express boot offsets"
    );
    let horizon = horizon_cycles(build, spec);

    let nodes: Vec<Machine> = mote_setups(spec, horizon)
        .into_iter()
        .map(|setup| {
            let mut m = Machine::new(&build.image);
            if m.engine() == mcu::Engine::Bt {
                m.set_block_cache(build.block_cache());
            }
            if let Some(w) = &setup.waveform {
                m.set_waveform(w.clone());
            }
            for (at, bytes) in &setup.injections {
                m.inject_rx_bytes(*at, bytes);
            }
            m
        })
        .collect();
    let mut net = Network::new(nodes);
    net.run(horizon);

    let mut fleet = build_fleet(build, spec);
    fleet.run(horizon);

    (0..spec.motes).all(|m| {
        let a = &net.nodes[m];
        let b = fleet.machine(m);
        a.state == b.state
            && a.fault == b.fault
            && a.cycles == b.cycles
            && a.awake_cycles == b.awake_cycles
            && a.instr_count == b.instr_count
            && a.uart_out == b.uart_out
            && a.radio_out == b.radio_out
            && a.devices.leds.transitions == b.devices.leds.transitions
            && a.ram_bytes() == b.ram_bytes()
    })
}

// ---------------------------------------------------------------------
// Network-level fault campaigns
// ---------------------------------------------------------------------

/// A network-level fault campaign: one victim mote, many corruption
/// sites, fleet-level outcome classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetCampaignConfig {
    /// The fleet to corrupt.
    pub spec: FleetSpec,
    /// Which mote gets its RAM corrupted.
    pub victim: usize,
    /// Number of corruption sites to enumerate.
    pub sites: usize,
    /// Seed for site enumeration (independent of the fleet seed).
    pub site_seed: u64,
}

/// What the fleet observed after corrupting the victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetVerdict {
    /// A Safe TinyOS check caught the corruption at the victim: the
    /// fleet-level analogue of the paper's detection outcome.
    DetectedAtVictim {
        /// The failure-location id the trap carried.
        flid: u16,
        /// The decoded host-side message.
        message: String,
    },
    /// The victim crashed without a safety trap.
    CrashedAtVictim {
        /// The fault it crashed with.
        fault: String,
    },
    /// The victim kept running, but the set of readings delivered at the
    /// sink changed: the corruption silently poisoned the routing or the
    /// data stream, visible fleet-wide.
    RoutePoisoning,
    /// The victim's own observable behavior diverged, but the sink
    /// delivered exactly the golden readings: the corruption stayed
    /// contained.
    Contained,
    /// No observable difference anywhere.
    Benign,
}

impl FleetVerdict {
    /// Stable short key for counters and JSON.
    pub fn key(&self) -> &'static str {
        match self {
            FleetVerdict::DetectedAtVictim { .. } => "detected",
            FleetVerdict::CrashedAtVictim { .. } => "crashed",
            FleetVerdict::RoutePoisoning => "poisoned",
            FleetVerdict::Contained => "contained",
            FleetVerdict::Benign => "benign",
        }
    }
}

/// Outcome histogram of a fleet campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetVerdictCounts {
    /// Safety traps at the victim.
    pub detected: usize,
    /// Non-trap crashes at the victim.
    pub crashed: usize,
    /// Sink-visible silent corruption.
    pub poisoned: usize,
    /// Victim-local divergence only.
    pub contained: usize,
    /// No divergence.
    pub benign: usize,
}

impl FleetVerdictCounts {
    /// Adds one verdict.
    pub fn record(&mut self, v: &FleetVerdict) {
        match v {
            FleetVerdict::DetectedAtVictim { .. } => self.detected += 1,
            FleetVerdict::CrashedAtVictim { .. } => self.crashed += 1,
            FleetVerdict::RoutePoisoning => self.poisoned += 1,
            FleetVerdict::Contained => self.contained += 1,
            FleetVerdict::Benign => self.benign += 1,
        }
    }

    /// Total verdicts recorded.
    pub fn total(&self) -> usize {
        self.detected + self.crashed + self.poisoned + self.contained + self.benign
    }
}

/// One corruption site's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSiteResult {
    /// Human-readable site label.
    pub site: String,
    /// Injection cycle (global fleet time).
    pub at_cycle: u64,
    /// The fleet-level outcome.
    pub verdict: FleetVerdict,
}

/// The uncorrupted run's observables, compared against by every site.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetGolden {
    /// The victim's golden observation.
    pub victim: MoteObservation,
    /// The golden set of readings delivered at the sink.
    pub sink: BTreeSet<u32>,
}

/// A full fleet campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCampaignReport {
    /// Per-site outcomes, in plan order.
    pub results: Vec<FleetSiteResult>,
    /// The outcome histogram.
    pub counts: FleetVerdictCounts,
}

/// Enumerates the campaign's corruption plans: the same seeded site
/// model as the single-mote campaigns ([`crate::run_campaign`]), aimed
/// at the victim's checked index globals.
pub fn fleet_campaign_plans(build: &Build, cfg: &FleetCampaignConfig) -> Vec<FaultPlan> {
    enumerate_sites(
        &build.image,
        &target_cells(build),
        cfg.site_seed,
        cfg.sites,
        horizon_cycles(build, &cfg.spec),
    )
}

/// Runs the uncorrupted fleet once and captures the golden observables.
pub fn fleet_golden(build: &Build, cfg: &FleetCampaignConfig) -> FleetGolden {
    let mut fleet = build_fleet(build, &cfg.spec);
    fleet.run(horizon_cycles(build, &cfg.spec));
    FleetGolden {
        victim: fleet.observation(cfg.victim),
        sink: sink_reading_keys(&fleet),
    }
}

/// Runs one corruption site to completion and classifies the outcome
/// (see [`FleetVerdict`]). Pure in its inputs, so campaigns shard across
/// threads site-by-site.
pub fn run_fleet_site(
    build: &Build,
    cfg: &FleetCampaignConfig,
    plan: &FaultPlan,
    golden: &FleetGolden,
) -> FleetSiteResult {
    let mut fleet = build_fleet(build, &cfg.spec);
    fleet.set_fault(cfg.victim, *plan);
    fleet.run(horizon_cycles(build, &cfg.spec));
    let obs = fleet.observation(cfg.victim);
    let verdict = match &obs.fault {
        Some(Fault::SafetyTrap(flid)) => FleetVerdict::DetectedAtVictim {
            flid: *flid,
            message: fleet
                .machine(cfg.victim)
                .fault_message()
                .unwrap_or_default(),
        },
        Some(fault) => FleetVerdict::CrashedAtVictim {
            fault: format!("{fault:?}"),
        },
        None => {
            if sink_reading_keys(&fleet) != golden.sink {
                FleetVerdict::RoutePoisoning
            } else if obs != golden.victim {
                FleetVerdict::Contained
            } else {
                FleetVerdict::Benign
            }
        }
    };
    FleetSiteResult {
        site: plan.label(),
        at_cycle: plan.at_cycle,
        verdict,
    }
}

/// Runs the whole campaign serially. Harnesses that want to shard call
/// [`fleet_campaign_plans`] / [`fleet_golden`] / [`run_fleet_site`]
/// directly; this wrapper is their single-threaded reference.
pub fn run_fleet_campaign(build: &Build, cfg: &FleetCampaignConfig) -> FleetCampaignReport {
    let golden = fleet_golden(build, cfg);
    let results: Vec<FleetSiteResult> = fleet_campaign_plans(build, cfg)
        .iter()
        .map(|plan| run_fleet_site(build, cfg, plan, &golden))
        .collect();
    let mut counts = FleetVerdictCounts::default();
    for r in &results {
        counts.record(&r.verdict);
    }
    FleetCampaignReport { results, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn am_decoder_round_trips_and_rejects_corruption() {
        let p1 = tosapps::AmPacket::broadcast(AM_SURGE_MSG, vec![1, 0, 2, 0, 44, 1, 1]);
        let p2 = tosapps::AmPacket::broadcast(AM_SURGE_CMD, vec![0, 0, 0]);
        let mut stream = Vec::new();
        stream.extend_from_slice(&[0x00, 0x13]); // leading noise
        stream.extend(p1.frame_bytes());
        stream.extend_from_slice(&[0x7E]); // stray sync byte
        stream.extend(p2.frame_bytes());
        let (frames, rejects) = decode_am_frames(&stream);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].am_type, AM_SURGE_MSG);
        assert_eq!(frames[0].payload, vec![1, 0, 2, 0, 44, 1, 1]);
        assert_eq!(frames[1].am_type, AM_SURGE_CMD);
        assert!(rejects >= 1, "the stray sync byte must be rejected");

        // Flip a payload bit: the frame must fail its CRC.
        let mut bad = p1.frame_bytes();
        bad[7] ^= 0x20;
        let (frames, rejects) = decode_am_frames(&bad);
        assert!(frames.is_empty());
        assert!(rejects >= 1);

        let keys = surge_reading_keys(&decode_am_frames(&p1.frame_bytes()).0);
        assert_eq!(keys.len(), 1);
    }
}
