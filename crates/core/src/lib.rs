//! Safe TinyOS: the toolchain driver.
//!
//! This crate wires the stages of the paper's Figure 1 into named
//! pipeline configurations — one per bar of Figures 2 and 3 — and
//! collects the metrics the evaluation reports: code size, static data
//! size, checks inserted/surviving, and duty cycle.
//!
//! ```text
//! nesC-lite ──▶ [CCured + error mode] ──▶ [inliner] ──▶ [cXprop] ──▶ backend ──▶ M16 image
//! ```
//!
//! # Example
//!
//! ```
//! use safe_tinyos::{build_app, BuildConfig};
//!
//! let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
//! let unsafe_build = build_app(&spec, &BuildConfig::unsafe_baseline()).unwrap();
//! let safe_build = build_app(&spec, &BuildConfig::safe_flid_inline_cxprop()).unwrap();
//! assert!(safe_build.metrics.checks_inserted > 0);
//! assert!(safe_build.metrics.checks_surviving < safe_build.metrics.checks_inserted);
//! // Optimized safe code lands near the unsafe baseline (Figure 3a).
//! let ratio = safe_build.metrics.code_bytes as f64 / unsafe_build.metrics.code_bytes as f64;
//! assert!(ratio < 1.6, "ratio {ratio}");
//! ```

use backend::BackendOptions;
use ccured::{cure, CureOptions, CureStats, ErrorMode};
use cxprop::{CxpropOptions, CxpropStats};
use mcu::{Image, Machine, RunState};
use tcil::{CompileError, Program};
use tosapps::AppSpec;

/// A named toolchain configuration (one bar of the paper's figures).
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Short name used in experiment output.
    pub name: &'static str,
    /// Run the CCured stage.
    pub safe: bool,
    /// Error-message configuration (safe builds).
    pub error_mode: ErrorMode,
    /// Run CCured's local check optimizer.
    pub ccured_optimize: bool,
    /// Run the source-level inliner before cXprop.
    pub inline: bool,
    /// Run the cXprop whole-program optimizer.
    pub cxprop: bool,
    /// Use the naive (unported) runtime footprint (§2.3 experiment).
    pub naive_runtime: bool,
}

impl BuildConfig {
    /// The paper's baseline: unsafe, unoptimized (plain nesC + gcc).
    pub fn unsafe_baseline() -> Self {
        BuildConfig {
            name: "unsafe",
            safe: false,
            error_mode: ErrorMode::Flid,
            ccured_optimize: false,
            inline: false,
            cxprop: false,
            naive_runtime: false,
        }
    }

    /// Figure 3 bar 7: unsafe, inlined and optimized by cXprop (the
    /// "new baseline").
    pub fn unsafe_optimized() -> Self {
        BuildConfig {
            name: "unsafe+cxprop",
            inline: true,
            cxprop: true,
            ..Self::unsafe_baseline()
        }
    }

    /// Figure 3 bar 1: safe, verbose error messages in SRAM.
    pub fn safe_verbose_ram() -> Self {
        BuildConfig {
            name: "safe-verbose-ram",
            safe: true,
            error_mode: ErrorMode::VerboseRam,
            ccured_optimize: true,
            inline: false,
            cxprop: false,
            naive_runtime: false,
        }
    }

    /// Figure 3 bar 2: safe, verbose error messages in ROM.
    pub fn safe_verbose_rom() -> Self {
        BuildConfig {
            name: "safe-verbose-rom",
            error_mode: ErrorMode::VerboseRom,
            ..Self::safe_verbose_ram()
        }
    }

    /// Figure 3 bar 3: safe, terse error messages.
    pub fn safe_terse() -> Self {
        BuildConfig {
            name: "safe-terse",
            error_mode: ErrorMode::Terse,
            ..Self::safe_verbose_ram()
        }
    }

    /// Figure 3 bar 4: safe, FLID-compressed error messages.
    pub fn safe_flid() -> Self {
        BuildConfig {
            name: "safe-flid",
            error_mode: ErrorMode::Flid,
            ..Self::safe_verbose_ram()
        }
    }

    /// Figure 3 bar 5: safe + FLIDs + cXprop (no inliner).
    pub fn safe_flid_cxprop() -> Self {
        BuildConfig {
            name: "safe-flid-cxprop",
            cxprop: true,
            ..Self::safe_flid()
        }
    }

    /// Figure 3 bar 6: safe + FLIDs + inliner + cXprop (the full stack).
    pub fn safe_flid_inline_cxprop() -> Self {
        BuildConfig {
            name: "safe-flid-inline-cxprop",
            inline: true,
            cxprop: true,
            ..Self::safe_flid()
        }
    }

    /// Figure 2 config 1: gcc alone (checks inserted, nothing else).
    pub fn fig2_gcc_only() -> Self {
        BuildConfig {
            name: "gcc",
            ccured_optimize: false,
            ..Self::safe_flid()
        }
    }

    /// Figure 2 config 2: CCured optimizer + gcc.
    pub fn fig2_ccured_gcc() -> Self {
        BuildConfig {
            name: "ccured+gcc",
            ..Self::safe_flid()
        }
    }

    /// Figure 2 config 3: CCured optimizer + cXprop (no inliner) + gcc.
    pub fn fig2_ccured_cxprop_gcc() -> Self {
        BuildConfig {
            name: "ccured+cxprop+gcc",
            ..Self::safe_flid_cxprop()
        }
    }

    /// Figure 2 config 4: CCured optimizer + inliner + cXprop + gcc.
    pub fn fig2_full() -> Self {
        BuildConfig {
            name: "ccured+inline+cxprop+gcc",
            ..Self::safe_flid_inline_cxprop()
        }
    }

    /// The seven Figure 3 bars, in the paper's order.
    pub fn fig3_bars() -> Vec<BuildConfig> {
        vec![
            Self::safe_verbose_ram(),
            Self::safe_verbose_rom(),
            Self::safe_terse(),
            Self::safe_flid(),
            Self::safe_flid_cxprop(),
            Self::safe_flid_inline_cxprop(),
            Self::unsafe_optimized(),
        ]
    }

    /// The four Figure 2 optimizer stacks, in the paper's order.
    pub fn fig2_stacks() -> Vec<BuildConfig> {
        vec![
            Self::fig2_gcc_only(),
            Self::fig2_ccured_gcc(),
            Self::fig2_ccured_cxprop_gcc(),
            Self::fig2_full(),
        ]
    }
}

/// Metrics collected from one build.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Code (text) bytes.
    pub code_bytes: u32,
    /// Total flash bytes (code + rodata + data initializers + vectors).
    pub flash_bytes: u32,
    /// Static SRAM bytes (the paper's "static data size").
    pub sram_bytes: u32,
    /// Checks inserted by CCured (zero for unsafe builds).
    pub checks_inserted: usize,
    /// Distinct check sites surviving in the final machine code — the
    /// Figure 2 survivor census.
    pub checks_surviving: usize,
    /// Locks inserted around racy checks.
    pub locks_inserted: usize,
    /// Cure-stage statistics, if the build was safe.
    pub cure: Option<CureStats>,
    /// cXprop statistics, if it ran.
    pub cxprop: Option<CxpropStats>,
}

/// A finished build.
#[derive(Debug, Clone)]
pub struct Build {
    /// The linked image.
    pub image: Image,
    /// Collected metrics.
    pub metrics: Metrics,
    /// The final IR (for inspection).
    pub program: Program,
}

/// Compiles `spec` under `config`.
///
/// # Errors
///
/// Propagates compile errors from any stage.
pub fn build_app(spec: &AppSpec, config: &BuildConfig) -> Result<Build, CompileError> {
    let out = nesc::compile(&tosapps::source_set(), spec.config)?;
    build_program(out.program, spec.platform.clone(), config)
}

/// Compiles an already-lowered program under `config` (used by tests and
/// by experiments that synthesize programs directly).
///
/// # Errors
///
/// Propagates compile errors from any stage.
pub fn build_program(
    mut program: Program,
    platform: mcu::Profile,
    config: &BuildConfig,
) -> Result<Build, CompileError> {
    let mut metrics = Metrics::default();
    if config.safe {
        let opts = CureOptions {
            error_mode: config.error_mode,
            local_optimize: config.ccured_optimize,
            lock_racy_checks: true,
            naive_runtime: config.naive_runtime,
        };
        let stats = cure(&mut program, &opts)?;
        metrics.checks_inserted = stats.checks_inserted;
        metrics.locks_inserted = stats.locks_inserted;
        metrics.cure = Some(stats);
    }
    if config.cxprop || config.inline {
        let opts = CxpropOptions {
            inline: config.inline,
            // cXprop-off-but-inline-on is used by ablations: run only the
            // inliner by disabling every other pass.
            dce: config.cxprop,
            copyprop: config.cxprop,
            atomic_opt: config.cxprop,
            refine_races: config.cxprop,
            max_rounds: if config.cxprop { 3 } else { 0 },
            ..CxpropOptions::default()
        };
        let stats = cxprop::optimize(&mut program, &opts);
        metrics.cxprop = Some(stats);
        // Sweep messages whose checks were removed (Figure 2 methodology:
        // strings of eliminated checks become unreferenced).
        ccured::errmsg::prune_unused_messages(&mut program);
    }
    let image = backend::compile(&program, platform, &BackendOptions { optimize: true })?;
    metrics.code_bytes = image.code_bytes();
    metrics.flash_bytes = image.flash_bytes();
    metrics.sram_bytes = image.sram_bytes();
    metrics.checks_surviving = image.surviving_checks();
    Ok(Build {
        image,
        metrics,
        program,
    })
}

/// Result of a duty-cycle simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Awake / total cycles, in percent.
    pub duty_cycle_percent: f64,
    /// Final machine state.
    pub state: RunState,
    /// Fault message, if the node trapped.
    pub fault: Option<String>,
    /// LED register transitions observed.
    pub led_transitions: u64,
    /// Radio bytes transmitted.
    pub radio_tx_bytes: usize,
    /// UART bytes emitted.
    pub uart_bytes: usize,
    /// Instructions executed.
    pub instructions: u64,
}

/// Runs `build` in `spec`'s context for `seconds` of simulated time
/// (overriding the context default).
pub fn simulate(build: &Build, spec: &AppSpec, seconds: u64) -> SimResult {
    let mut ctx = spec.context.clone();
    ctx.seconds = seconds;
    let mut m = Machine::new(&build.image);
    // Rebuild periodic injections for the overridden duration.
    let hz = build.image.profile.clock_hz;
    m.set_waveform(ctx.waveform.clone());
    for inj in &ctx.injections {
        if inj.at < ctx.duration_cycles(hz) {
            m.inject_rx_bytes(inj.at, &inj.packet.frame_bytes());
        }
    }
    // Extend periodic patterns beyond the stock context if needed.
    extend_injections(&spec.context, &mut m, hz, ctx.duration_cycles(hz));
    m.run(ctx.duration_cycles(hz));
    SimResult {
        duty_cycle_percent: m.duty_cycle_percent(),
        state: m.state,
        fault: m.fault_message(),
        led_transitions: m.devices.leds.transitions,
        radio_tx_bytes: m.radio_out.len(),
        uart_bytes: m.uart_out.len(),
        instructions: m.instr_count,
    }
}

/// If the stock context's injections form a periodic pattern shorter than
/// the requested duration, repeat the pattern to cover it.
fn extend_injections(stock: &tosapps::Context, m: &mut Machine, hz: u64, until: u64) {
    let stock_dur = stock.duration_cycles(hz);
    if stock.injections.is_empty() || until <= stock_dur {
        return;
    }
    let mut t = stock_dur;
    while t < until {
        for inj in &stock.injections {
            let at = inj.at + t;
            if at < until {
                m.inject_rx_bytes(at, &inj.packet.frame_bytes());
            }
        }
        t += stock_dur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blink_runs_unsafe_and_safe() {
        let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
        for config in [
            BuildConfig::unsafe_baseline(),
            BuildConfig::safe_flid_inline_cxprop(),
        ] {
            let b = build_app(&spec, &config).unwrap();
            let r = simulate(&b, &spec, 3);
            assert_eq!(
                r.state,
                RunState::Sleeping,
                "{}: fault {:?}",
                config.name,
                r.fault
            );
            assert!(
                r.led_transitions >= 4,
                "{}: LEDs toggled {}",
                config.name,
                r.led_transitions
            );
            assert!(
                r.duty_cycle_percent < 50.0,
                "{}: duty {}",
                config.name,
                r.duty_cycle_percent
            );
        }
    }

    #[test]
    fn fig3_bar_order_is_paper_order() {
        let bars = BuildConfig::fig3_bars();
        assert_eq!(bars.len(), 7);
        assert_eq!(bars[0].name, "safe-verbose-ram");
        assert_eq!(bars[6].name, "unsafe+cxprop");
    }
}
