//! Safe TinyOS: the toolchain driver.
//!
//! This crate wires the stages of the paper's Figure 1 into named
//! pipeline configurations — one per bar of Figures 2 and 3 — and
//! collects the metrics the evaluation reports: code size, static data
//! size, checks inserted/surviving, and duty cycle.
//!
//! ```text
//! nesC-lite ──▶ [CCured + error mode] ──▶ [inliner] ──▶ [cXprop] ──▶ backend ──▶ M16 image
//! ```
//!
//! # Example
//!
//! ```
//! use safe_tinyos::{build_app, BuildConfig};
//!
//! let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
//! let unsafe_build = build_app(&spec, &BuildConfig::unsafe_baseline()).unwrap();
//! let safe_build = build_app(&spec, &BuildConfig::safe_flid_inline_cxprop()).unwrap();
//! assert!(safe_build.metrics.checks_inserted > 0);
//! assert!(safe_build.metrics.checks_surviving < safe_build.metrics.checks_inserted);
//! // Optimized safe code lands near the unsafe baseline (Figure 3a).
//! let ratio = safe_build.metrics.code_bytes as f64 / unsafe_build.metrics.code_bytes as f64;
//! assert!(ratio < 1.6, "ratio {ratio}");
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use backend::BackendOptions;
use ccured::{cure, CureOptions, CureStats, ErrorMode};
use cxprop::{CxpropOptions, CxpropStats};
use mcu::{Image, Machine, RunState};
use tcil::{CompileError, Program};
use tosapps::AppSpec;

/// A named toolchain configuration (one bar of the paper's figures).
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Short name used in experiment output.
    pub name: &'static str,
    /// Run the CCured stage.
    pub safe: bool,
    /// Error-message configuration (safe builds).
    pub error_mode: ErrorMode,
    /// Run CCured's local check optimizer.
    pub ccured_optimize: bool,
    /// Run the source-level inliner before cXprop.
    pub inline: bool,
    /// Run the cXprop whole-program optimizer.
    pub cxprop: bool,
    /// Use the naive (unported) runtime footprint (§2.3 experiment).
    pub naive_runtime: bool,
}

impl BuildConfig {
    /// The paper's baseline: unsafe, unoptimized (plain nesC + gcc).
    pub fn unsafe_baseline() -> Self {
        BuildConfig {
            name: "unsafe",
            safe: false,
            error_mode: ErrorMode::Flid,
            ccured_optimize: false,
            inline: false,
            cxprop: false,
            naive_runtime: false,
        }
    }

    /// Figure 3 bar 7: unsafe, inlined and optimized by cXprop (the
    /// "new baseline").
    pub fn unsafe_optimized() -> Self {
        BuildConfig {
            name: "unsafe+cxprop",
            inline: true,
            cxprop: true,
            ..Self::unsafe_baseline()
        }
    }

    /// Figure 3 bar 1: safe, verbose error messages in SRAM.
    pub fn safe_verbose_ram() -> Self {
        BuildConfig {
            name: "safe-verbose-ram",
            safe: true,
            error_mode: ErrorMode::VerboseRam,
            ccured_optimize: true,
            inline: false,
            cxprop: false,
            naive_runtime: false,
        }
    }

    /// Figure 3 bar 2: safe, verbose error messages in ROM.
    pub fn safe_verbose_rom() -> Self {
        BuildConfig {
            name: "safe-verbose-rom",
            error_mode: ErrorMode::VerboseRom,
            ..Self::safe_verbose_ram()
        }
    }

    /// Figure 3 bar 3: safe, terse error messages.
    pub fn safe_terse() -> Self {
        BuildConfig {
            name: "safe-terse",
            error_mode: ErrorMode::Terse,
            ..Self::safe_verbose_ram()
        }
    }

    /// Figure 3 bar 4: safe, FLID-compressed error messages.
    pub fn safe_flid() -> Self {
        BuildConfig {
            name: "safe-flid",
            error_mode: ErrorMode::Flid,
            ..Self::safe_verbose_ram()
        }
    }

    /// Figure 3 bar 5: safe + FLIDs + cXprop (no inliner).
    pub fn safe_flid_cxprop() -> Self {
        BuildConfig {
            name: "safe-flid-cxprop",
            cxprop: true,
            ..Self::safe_flid()
        }
    }

    /// Figure 3 bar 6: safe + FLIDs + inliner + cXprop (the full stack).
    pub fn safe_flid_inline_cxprop() -> Self {
        BuildConfig {
            name: "safe-flid-inline-cxprop",
            inline: true,
            cxprop: true,
            ..Self::safe_flid()
        }
    }

    /// Figure 2 config 1: gcc alone (checks inserted, nothing else).
    pub fn fig2_gcc_only() -> Self {
        BuildConfig {
            name: "gcc",
            ccured_optimize: false,
            ..Self::safe_flid()
        }
    }

    /// Figure 2 config 2: CCured optimizer + gcc.
    pub fn fig2_ccured_gcc() -> Self {
        BuildConfig {
            name: "ccured+gcc",
            ..Self::safe_flid()
        }
    }

    /// Figure 2 config 3: CCured optimizer + cXprop (no inliner) + gcc.
    pub fn fig2_ccured_cxprop_gcc() -> Self {
        BuildConfig {
            name: "ccured+cxprop+gcc",
            ..Self::safe_flid_cxprop()
        }
    }

    /// Figure 2 config 4: CCured optimizer + inliner + cXprop + gcc.
    pub fn fig2_full() -> Self {
        BuildConfig {
            name: "ccured+inline+cxprop+gcc",
            ..Self::safe_flid_inline_cxprop()
        }
    }

    /// The seven Figure 3 bars, in the paper's order.
    pub fn fig3_bars() -> Vec<BuildConfig> {
        vec![
            Self::safe_verbose_ram(),
            Self::safe_verbose_rom(),
            Self::safe_terse(),
            Self::safe_flid(),
            Self::safe_flid_cxprop(),
            Self::safe_flid_inline_cxprop(),
            Self::unsafe_optimized(),
        ]
    }

    /// The four Figure 2 optimizer stacks, in the paper's order.
    pub fn fig2_stacks() -> Vec<BuildConfig> {
        vec![
            Self::fig2_gcc_only(),
            Self::fig2_ccured_gcc(),
            Self::fig2_ccured_cxprop_gcc(),
            Self::fig2_full(),
        ]
    }
}

/// A named pipeline stage, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// nesC-lite parse, wiring resolution, and lowering to tcil.
    Frontend,
    /// CCured: pointer-kind inference, check insertion, local optimizer.
    Cure,
    /// Source-level inliner + cXprop whole-program optimizer.
    Opt,
    /// The weak GCC-class backend optimizer.
    Backend,
    /// Data layout, code generation, and image emission.
    Link,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Frontend,
        Stage::Cure,
        Stage::Opt,
        Stage::Backend,
        Stage::Link,
    ];

    /// The stage's display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::Cure => "cure",
            Stage::Opt => "opt",
            Stage::Backend => "backend",
            Stage::Link => "link",
        }
    }
}

/// Per-stage wall times for one or more builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimes {
    nanos: [u64; Stage::ALL.len()],
}

impl StageTimes {
    /// Adds `elapsed` to `stage`'s bucket.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.nanos[stage as usize] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// Accumulated time in `stage`.
    pub fn get(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.nanos[stage as usize])
    }

    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Accumulates another set of stage times into this one.
    pub fn add(&mut self, other: &StageTimes) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += b;
        }
    }

    /// Iterates `(stage, accumulated time)` in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, Duration)> + '_ {
        Stage::ALL.into_iter().map(|s| (s, self.get(s)))
    }
}

/// Metrics collected from one build.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Code (text) bytes.
    pub code_bytes: u32,
    /// Total flash bytes (code + rodata + data initializers + vectors).
    pub flash_bytes: u32,
    /// Static SRAM bytes (the paper's "static data size").
    pub sram_bytes: u32,
    /// Checks inserted by CCured (zero for unsafe builds).
    pub checks_inserted: usize,
    /// Distinct check sites surviving in the final machine code — the
    /// Figure 2 survivor census.
    pub checks_surviving: usize,
    /// Locks inserted around racy checks.
    pub locks_inserted: usize,
    /// Cure-stage statistics, if the build was safe.
    pub cure: Option<CureStats>,
    /// cXprop statistics, if it ran.
    pub cxprop: Option<CxpropStats>,
    /// Per-stage wall times for this build. The frontend bucket is
    /// non-zero only on the build that actually ran the frontend — a
    /// cache hit in a [`BuildSession`] costs (and records) nothing.
    pub stage_times: StageTimes,
}

/// A finished build.
#[derive(Debug, Clone)]
pub struct Build {
    /// The linked image.
    pub image: Image,
    /// Collected metrics.
    pub metrics: Metrics,
    /// The final IR (for inspection).
    pub program: Program,
}

/// The frontend's output for one app, cached by a [`BuildSession`] and
/// cheaply cloned per configuration.
///
/// The lowered program sits behind an [`Arc`]; [`FrontendArtifact::program`]
/// clones it out for the mutating middle-end stages.
#[derive(Debug, Clone)]
pub struct FrontendArtifact {
    out: Arc<nesc::CompileOutput>,
    /// Wall time of the frontend compile that produced this artifact.
    pub elapsed: Duration,
}

impl FrontendArtifact {
    /// A fresh mutable copy of the lowered program.
    pub fn program(&self) -> Program {
        self.out.program.clone()
    }

    /// The full frontend output (program, concurrency report, component
    /// instantiation order).
    pub fn output(&self) -> &nesc::CompileOutput {
        &self.out
    }
}

/// A toolchain session: owns the shared nesC-lite source set, the parsed
/// frontend, and a per-app [`FrontendArtifact`] cache.
///
/// An evaluation grid builds each app under many configurations; the
/// frontend's work (parse, wiring, lowering) is identical across
/// configurations, so a session compiles it once per app and hands every
/// build a cheap clone. Sessions are `Sync`: the experiment runner shares
/// one across worker threads.
///
/// ```
/// use safe_tinyos::{BuildConfig, BuildSession};
///
/// let session = BuildSession::new();
/// let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
/// let a = session.build(&spec, &BuildConfig::unsafe_baseline()).unwrap();
/// let b = session.build(&spec, &BuildConfig::safe_flid()).unwrap();
/// assert_eq!(session.frontend_compiles(), 1); // frontend ran once
/// assert!(b.metrics.code_bytes > a.metrics.code_bytes);
/// ```
pub struct BuildSession {
    sources: nesc::SourceSet,
    state: Mutex<SessionState>,
    frontend_compiles: AtomicUsize,
}

/// The lazily-parsed frontend and the per-app artifact cache, under one
/// lock so a miss can parse and compile atomically.
#[derive(Default)]
struct SessionState {
    frontend: Option<nesc::Frontend>,
    cache: HashMap<String, FrontendArtifact>,
}

impl BuildSession {
    /// A session over the stock TinyOS-lite source set.
    pub fn new() -> BuildSession {
        Self::with_sources(tosapps::source_set())
    }

    /// A session over a custom source set.
    pub fn with_sources(sources: nesc::SourceSet) -> BuildSession {
        BuildSession {
            sources,
            state: Mutex::new(SessionState::default()),
            frontend_compiles: AtomicUsize::new(0),
        }
    }

    /// How many times the frontend actually compiled an app (cache
    /// misses). A grid over N apps costs exactly N, however many
    /// configurations it spans.
    pub fn frontend_compiles(&self) -> usize {
        self.frontend_compiles.load(Ordering::Relaxed)
    }

    /// The cached frontend artifact for `spec`, compiling it on first
    /// use. The cache lock is held across the compile, so the frontend
    /// runs at most once per app even under concurrent callers. (This
    /// serializes first-touch frontend compiles of *different* apps
    /// too — an accepted tradeoff: the runner claims jobs app-major so
    /// contention is mostly same-app, and the frontend is a few percent
    /// of grid compile time.)
    ///
    /// # Errors
    ///
    /// Propagates frontend compile errors.
    pub fn frontend(&self, spec: &AppSpec) -> Result<FrontendArtifact, CompileError> {
        self.frontend_entry(spec).map(|(a, _)| a)
    }

    /// Like [`BuildSession::frontend`], also reporting whether this call
    /// was the one that compiled the artifact (callers attributing the
    /// frontend's wall time need to count it exactly once).
    ///
    /// # Errors
    ///
    /// Propagates frontend compile errors.
    pub fn frontend_entry(&self, spec: &AppSpec) -> Result<(FrontendArtifact, bool), CompileError> {
        let mut state = self.state.lock().unwrap();
        if let Some(a) = state.cache.get(spec.config) {
            return Ok((a.clone(), false));
        }
        let start = Instant::now();
        if state.frontend.is_none() {
            state.frontend = Some(nesc::Frontend::new(&self.sources)?);
        }
        let out = state
            .frontend
            .as_ref()
            .expect("parsed above")
            .compile(spec.config)?;
        let artifact = FrontendArtifact {
            out: Arc::new(out),
            elapsed: start.elapsed(),
        };
        self.frontend_compiles.fetch_add(1, Ordering::Relaxed);
        state
            .cache
            .insert(spec.config.to_string(), artifact.clone());
        Ok((artifact, true))
    }

    /// Builds `spec` under `config`, reusing the cached frontend
    /// artifact. The frontend's wall time lands in the metrics of the
    /// one build that compiled it.
    ///
    /// # Errors
    ///
    /// Propagates compile errors from any stage.
    pub fn build(&self, spec: &AppSpec, config: &BuildConfig) -> Result<Build, CompileError> {
        let (artifact, fresh) = self.frontend_entry(spec)?;
        let mut build = build_program(artifact.program(), spec.platform.clone(), config)?;
        if fresh {
            build
                .metrics
                .stage_times
                .record(Stage::Frontend, artifact.elapsed);
        }
        Ok(build)
    }
}

impl Default for BuildSession {
    fn default() -> Self {
        Self::new()
    }
}

/// Compiles `spec` under `config`, running the frontend from scratch.
///
/// One-shot convenience over [`BuildSession::build`]; anything building
/// the same app more than once should use a session.
///
/// # Errors
///
/// Propagates compile errors from any stage.
pub fn build_app(spec: &AppSpec, config: &BuildConfig) -> Result<Build, CompileError> {
    let start = Instant::now();
    let out = nesc::compile(&tosapps::source_set(), spec.config)?;
    let frontend = start.elapsed();
    let mut build = build_program(out.program, spec.platform.clone(), config)?;
    build.metrics.stage_times.record(Stage::Frontend, frontend);
    Ok(build)
}

/// Compiles an already-lowered program under `config` (used by tests and
/// by experiments that synthesize programs directly), running the named
/// middle/back-end stages `cure → inline/cxprop → backend → link` and
/// recording each stage's wall time in the metrics.
///
/// # Errors
///
/// Propagates compile errors from any stage.
pub fn build_program(
    mut program: Program,
    platform: mcu::Profile,
    config: &BuildConfig,
) -> Result<Build, CompileError> {
    let mut metrics = Metrics::default();
    if config.safe {
        let start = Instant::now();
        let opts = CureOptions {
            error_mode: config.error_mode,
            local_optimize: config.ccured_optimize,
            lock_racy_checks: true,
            naive_runtime: config.naive_runtime,
        };
        let stats = cure(&mut program, &opts)?;
        metrics.checks_inserted = stats.checks_inserted;
        metrics.locks_inserted = stats.locks_inserted;
        metrics.cure = Some(stats);
        metrics.stage_times.record(Stage::Cure, start.elapsed());
    }
    if config.cxprop || config.inline {
        let start = Instant::now();
        let opts = CxpropOptions {
            inline: config.inline,
            // cXprop-off-but-inline-on is used by ablations: run only the
            // inliner by disabling every other pass.
            dce: config.cxprop,
            copyprop: config.cxprop,
            atomic_opt: config.cxprop,
            refine_races: config.cxprop,
            max_rounds: if config.cxprop { 3 } else { 0 },
            ..CxpropOptions::default()
        };
        let stats = cxprop::optimize(&mut program, &opts);
        metrics.cxprop = Some(stats);
        // Sweep messages whose checks were removed (Figure 2 methodology:
        // strings of eliminated checks become unreferenced).
        ccured::errmsg::prune_unused_messages(&mut program);
        metrics.stage_times.record(Stage::Opt, start.elapsed());
    }
    let start = Instant::now();
    let prepared = backend::prepare(&program, &BackendOptions { optimize: true });
    metrics.stage_times.record(Stage::Backend, start.elapsed());
    let start = Instant::now();
    let image = backend::link(&prepared, platform)?;
    metrics.stage_times.record(Stage::Link, start.elapsed());
    metrics.code_bytes = image.code_bytes();
    metrics.flash_bytes = image.flash_bytes();
    metrics.sram_bytes = image.sram_bytes();
    metrics.checks_surviving = image.surviving_checks();
    Ok(Build {
        image,
        metrics,
        program,
    })
}

/// Result of a duty-cycle simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Awake / total cycles, in percent.
    pub duty_cycle_percent: f64,
    /// Final machine state.
    pub state: RunState,
    /// Fault message, if the node trapped.
    pub fault: Option<String>,
    /// LED register transitions observed.
    pub led_transitions: u64,
    /// Radio bytes transmitted.
    pub radio_tx_bytes: usize,
    /// UART bytes emitted.
    pub uart_bytes: usize,
    /// Instructions executed.
    pub instructions: u64,
}

/// Runs `build` in `spec`'s context for `seconds` of simulated time
/// (overriding the context default).
pub fn simulate(build: &Build, spec: &AppSpec, seconds: u64) -> SimResult {
    let mut ctx = spec.context.clone();
    ctx.seconds = seconds;
    let mut m = Machine::new(&build.image);
    // Rebuild periodic injections for the overridden duration.
    let hz = build.image.profile.clock_hz;
    m.set_waveform(ctx.waveform.clone());
    for inj in &ctx.injections {
        if inj.at < ctx.duration_cycles(hz) {
            m.inject_rx_bytes(inj.at, &inj.packet.frame_bytes());
        }
    }
    // Extend periodic patterns beyond the stock context if needed.
    extend_injections(&spec.context, &mut m, hz, ctx.duration_cycles(hz));
    m.run(ctx.duration_cycles(hz));
    SimResult {
        duty_cycle_percent: m.duty_cycle_percent(),
        state: m.state,
        fault: m.fault_message(),
        led_transitions: m.devices.leds.transitions,
        radio_tx_bytes: m.radio_out.len(),
        uart_bytes: m.uart_out.len(),
        instructions: m.instr_count,
    }
}

/// If the stock context's injections form a periodic pattern shorter than
/// the requested duration, repeat the pattern to cover it.
fn extend_injections(stock: &tosapps::Context, m: &mut Machine, hz: u64, until: u64) {
    let stock_dur = stock.duration_cycles(hz);
    if stock.injections.is_empty() || until <= stock_dur {
        return;
    }
    let mut t = stock_dur;
    while t < until {
        for inj in &stock.injections {
            let at = inj.at + t;
            if at < until {
                m.inject_rx_bytes(at, &inj.packet.frame_bytes());
            }
        }
        t += stock_dur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blink_runs_unsafe_and_safe() {
        let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
        for config in [
            BuildConfig::unsafe_baseline(),
            BuildConfig::safe_flid_inline_cxprop(),
        ] {
            let b = build_app(&spec, &config).unwrap();
            let r = simulate(&b, &spec, 3);
            assert_eq!(
                r.state,
                RunState::Sleeping,
                "{}: fault {:?}",
                config.name,
                r.fault
            );
            assert!(
                r.led_transitions >= 4,
                "{}: LEDs toggled {}",
                config.name,
                r.led_transitions
            );
            assert!(
                r.duty_cycle_percent < 50.0,
                "{}: duty {}",
                config.name,
                r.duty_cycle_percent
            );
        }
    }

    #[test]
    fn fig3_bar_order_is_paper_order() {
        let bars = BuildConfig::fig3_bars();
        assert_eq!(bars.len(), 7);
        assert_eq!(bars[0].name, "safe-verbose-ram");
        assert_eq!(bars[6].name, "unsafe+cxprop");
    }
}
