//! Safe TinyOS: the toolchain driver.
//!
//! This crate wires the stages of the paper's Figure 1 into composable
//! pass [`Pipeline`]s — with one preset per bar of Figures 2 and 3 — and
//! collects the metrics the evaluation reports: code size, static data
//! size, checks inserted/surviving, and duty cycle.
//!
//! ```text
//! nesC-lite ──▶ [CCured + error mode] ──▶ [inliner] ──▶ [cXprop] ──▶ backend ──▶ M16 image
//! ```
//!
//! # Example
//!
//! ```
//! use safe_tinyos::{build_app, Pipeline};
//!
//! let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
//! let unsafe_build = build_app(&spec, &Pipeline::unsafe_baseline()).unwrap();
//! let safe_build = build_app(&spec, &Pipeline::safe_flid_inline_cxprop()).unwrap();
//! assert!(safe_build.metrics.checks_inserted > 0);
//! assert!(safe_build.metrics.checks_surviving < safe_build.metrics.checks_inserted);
//! // Optimized safe code lands near the unsafe baseline (Figure 3a).
//! let ratio = safe_build.metrics.code_bytes as f64 / unsafe_build.metrics.code_bytes as f64;
//! assert!(ratio < 1.6, "ratio {ratio}");
//! ```
//!
//! Arbitrary stacks come from the pipeline-spec language (see
//! [`spec`]):
//!
//! ```
//! use safe_tinyos::Pipeline;
//!
//! let custom = Pipeline::parse("cure(terse)|cxprop(domain=constants,rounds=1)|prune").unwrap();
//! let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
//! let build = safe_tinyos::build_app(&spec, &custom).unwrap();
//! assert!(build.metrics.checks_inserted > 0);
//! ```

pub mod cache;
pub mod campaign;
pub mod diag;
pub mod difftest;
pub mod fleet;
pub mod pipeline;
pub mod service;
pub mod spec;
pub mod stackbound;

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ccured::CureStats;
use cxprop::CxpropStats;
use mcu::{Image, Machine, RunState};
use tcil::{CompileError, Program};
use tosapps::AppSpec;

pub use cache::{ir_digest, CacheKey, CacheStats, PassCache, PassCounters};
pub use campaign::{
    run_campaign, run_torn_campaign, torn_plans, torn_target_names, CampaignConfig, CampaignReport,
    SiteResult,
};
pub use diag::{Diagnostic, Severity};
pub use difftest::{DiffCase, DiffConfig, DiffCounts, DiffVerdict, SubjectReport};
pub use fleet::{
    build_fleet, lockstep_matches_event_driven, run_fleet_campaign, sink_report,
    FleetCampaignConfig, FleetCampaignReport, FleetSpec, FleetVerdict, FleetVerdictCounts,
    SinkReport,
};
pub use pipeline::{
    BackendPass, CurePass, CxpropPass, InlinePass, Pass, PassCx, PassTimes, Pipeline,
    PipelineBuilder, PruneErrmsgPass, RacesPass, StackboundPass, PRESET_NAMES,
};
pub use service::{BuildRequest, BuildResult, BuildService};
pub use spec::{parse_pipeline_list, pipelines_from_env_or, SpecError};
pub use stackbound::{StackReport, StackStats};

/// A coarse, fixed-slot rollup of pipeline timing: every [`Pass`] maps
/// onto one of these five buckets (see [`Pass::stage`]), keeping the
/// `BENCH_toolchain_speed*.json` schema stable while pipelines grow
/// arbitrary pass lists (whose exact per-pass times live in
/// [`PassTimes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// nesC-lite parse, wiring resolution, and lowering to tcil.
    Frontend,
    /// CCured: pointer-kind inference, check insertion, local optimizer.
    Cure,
    /// Middle-end optimizers: inliner, cXprop, error-message pruning.
    Opt,
    /// The weak GCC-class backend optimizer.
    Backend,
    /// Data layout, code generation, and image emission.
    Link,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Frontend,
        Stage::Cure,
        Stage::Opt,
        Stage::Backend,
        Stage::Link,
    ];

    /// The stage's display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::Cure => "cure",
            Stage::Opt => "opt",
            Stage::Backend => "backend",
            Stage::Link => "link",
        }
    }
}

/// Per-stage wall times for one or more builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimes {
    nanos: [u64; Stage::ALL.len()],
}

impl StageTimes {
    /// Adds `elapsed` to `stage`'s bucket.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.nanos[stage as usize] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// Accumulated time in `stage`.
    pub fn get(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.nanos[stage as usize])
    }

    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Accumulates another set of stage times into this one.
    pub fn add(&mut self, other: &StageTimes) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += b;
        }
    }

    /// Iterates `(stage, accumulated time)` in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, Duration)> + '_ {
        Stage::ALL.into_iter().map(|s| (s, self.get(s)))
    }
}

/// Concurrency-analysis rollup for one build: what the race analyses
/// found and what the atomic-section transforms did. Filled by the
/// `cxprop` pass (refinement + atomic optimization counts) and the
/// `races` pass (per-site analysis + auto-hardening counts); `None` when
/// neither ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Globals confirmed racy by the most recent refinement.
    pub racy_globals: usize,
    /// Globals a coarser earlier analysis flagged that the most recent
    /// refinement cleared.
    pub cleared_globals: usize,
    /// Atomic sections removed (nested or async-only), accumulated
    /// across the stack.
    pub atomics_removed: usize,
    /// Atomic sections demoted from save/restore to disable/enable,
    /// accumulated across the stack.
    pub atomics_demoted: usize,
    /// Minimal atomic sections `races(fix)` wrapped around flagged
    /// sites, accumulated across the stack.
    pub sections_added: usize,
    /// Iterations `races(fix)` needed to reach its fixpoint (from the
    /// most recent run).
    pub fix_iterations: usize,
}

/// Metrics collected from one build.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Code (text) bytes.
    pub code_bytes: u32,
    /// Total flash bytes (code + rodata + data initializers + vectors).
    pub flash_bytes: u32,
    /// Static SRAM bytes (the paper's "static data size").
    pub sram_bytes: u32,
    /// Checks inserted by CCured (zero for unsafe builds).
    pub checks_inserted: usize,
    /// Distinct check sites surviving in the final machine code — the
    /// Figure 2 survivor census.
    pub checks_surviving: usize,
    /// Locks inserted around racy checks.
    pub locks_inserted: usize,
    /// Cure-stage statistics, if the build was safe.
    pub cure: Option<CureStats>,
    /// cXprop statistics, if it ran.
    pub cxprop: Option<CxpropStats>,
    /// Concurrency-analysis rollup, if a race-aware pass ran.
    pub races: Option<RaceStats>,
    /// Stack-bound analysis rollup, if the `stackbound` pass ran.
    pub stack: Option<StackStats>,
    /// Structured diagnostics emitted by analysis passes, in emission
    /// order (see [`diag`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Coarse per-stage wall times for this build. The frontend bucket
    /// is non-zero only on the build that actually ran the frontend — a
    /// cache hit in a [`BuildSession`] costs (and records) nothing.
    pub stage_times: StageTimes,
    /// Per-pass wall times, keyed by pass name (dynamic buckets; the
    /// fine-grained view [`Metrics::stage_times`] rolls up).
    pub pass_times: PassTimes,
}

/// A finished build.
#[derive(Debug, Clone)]
pub struct Build {
    /// The linked image.
    pub image: Image,
    /// Collected metrics.
    pub metrics: Metrics,
    /// The final middle-end IR (for inspection; the backend prepares and
    /// links from a copy).
    pub program: Program,
    /// Lazily-built basic-block cache for the translating execution
    /// engine, shared across every machine spun up from this build
    /// (clones share it too — the image is identical, so the decode is).
    block_cache: OnceLock<Arc<mcu::BlockCache>>,
}

impl Build {
    /// A build over `image` with `metrics` and final IR `program`.
    pub fn new(image: Image, metrics: Metrics, program: Program) -> Build {
        Build {
            image,
            metrics,
            program,
            block_cache: OnceLock::new(),
        }
    }

    /// The build's shared basic-block cache, decoding the image on first
    /// use. Machines handed this cache skip their own per-machine decode
    /// when running under [`mcu::Engine::Bt`].
    pub fn block_cache(&self) -> Arc<mcu::BlockCache> {
        self.block_cache
            .get_or_init(|| Arc::new(mcu::BlockCache::build(&self.image)))
            .clone()
    }
}

/// The frontend's output for one app, cached by a [`BuildSession`] and
/// cheaply cloned per configuration.
///
/// The lowered program sits behind an [`Arc`]; [`FrontendArtifact::program`]
/// clones it out for the mutating middle-end passes.
#[derive(Debug, Clone)]
pub struct FrontendArtifact {
    out: Arc<nesc::CompileOutput>,
    /// Wall time of the frontend compile that produced this artifact.
    pub elapsed: Duration,
}

impl FrontendArtifact {
    /// A fresh mutable copy of the lowered program.
    pub fn program(&self) -> Program {
        self.out.program.clone()
    }

    /// The full frontend output (program, concurrency report, component
    /// instantiation order).
    pub fn output(&self) -> &nesc::CompileOutput {
        &self.out
    }
}

/// A toolchain session: owns the shared nesC-lite source set, the parsed
/// frontend, and a per-app [`FrontendArtifact`] cache.
///
/// An evaluation grid builds each app under many pipelines; the
/// frontend's work (parse, wiring, lowering) is identical across
/// pipelines, so a session compiles it once per app and hands every
/// build a cheap clone. Sessions are `Sync`: the experiment runner shares
/// one across worker threads.
///
/// ```
/// use safe_tinyos::{BuildSession, Pipeline};
///
/// let session = BuildSession::new();
/// let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
/// let a = session.build(&spec, &Pipeline::unsafe_baseline()).unwrap();
/// let b = session.build(&spec, &Pipeline::safe_flid()).unwrap();
/// assert_eq!(session.frontend_compiles(), 1); // frontend ran once
/// assert!(b.metrics.code_bytes > a.metrics.code_bytes);
/// ```
pub struct BuildSession {
    sources: nesc::SourceSet,
    state: Mutex<SessionState>,
    frontend_compiles: AtomicUsize,
    /// The shared pass-output cache (`None` for [`BuildSession::uncached`]
    /// sessions). Builds through this session consult it before every
    /// cacheable pass, so pipeline prefixes shared across the session's
    /// builds are computed once.
    pass_cache: Option<Arc<PassCache>>,
}

/// The lazily-parsed frontend and the per-app artifact cache, under one
/// lock so a miss can parse and compile atomically.
#[derive(Default)]
struct SessionState {
    frontend: Option<nesc::Frontend>,
    cache: HashMap<String, FrontendArtifact>,
}

impl BuildSession {
    /// A session over the stock TinyOS-lite source set, with the pass
    /// cache enabled.
    pub fn new() -> BuildSession {
        Self::with_sources(tosapps::source_set())
    }

    /// A session over a custom source set, with the pass cache enabled.
    pub fn with_sources(sources: nesc::SourceSet) -> BuildSession {
        BuildSession {
            sources,
            state: Mutex::new(SessionState::default()),
            frontend_compiles: AtomicUsize::new(0),
            pass_cache: Some(Arc::new(PassCache::new())),
        }
    }

    /// A session with no pass cache: every build runs every pass. The
    /// comparison baseline for the cache-correctness tests; everything
    /// else wants [`BuildSession::new`].
    pub fn uncached() -> BuildSession {
        BuildSession {
            pass_cache: None,
            ..Self::new()
        }
    }

    /// The session's shared pass cache, if caching is enabled.
    pub fn pass_cache(&self) -> Option<&Arc<PassCache>> {
        self.pass_cache.as_ref()
    }

    /// A snapshot of the pass cache's per-pass hit/miss/size counters
    /// (empty for uncached sessions). Misses count actual pass
    /// executions — on a warm grid, `cure` misses once per distinct
    /// (app, cure-spec) pair, however many presets share it.
    pub fn cache_stats(&self) -> CacheStats {
        self.pass_cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// How many times the frontend actually compiled an app (cache
    /// misses). A grid over N apps costs exactly N, however many
    /// pipelines it spans.
    pub fn frontend_compiles(&self) -> usize {
        self.frontend_compiles.load(Ordering::Relaxed)
    }

    /// The cached frontend artifact for `spec`, compiling it on first
    /// use. The cache lock is held across the compile, so the frontend
    /// runs at most once per app even under concurrent callers. (This
    /// serializes first-touch frontend compiles of *different* apps
    /// too — an accepted tradeoff: the runner claims jobs app-major so
    /// contention is mostly same-app, and the frontend is a few percent
    /// of grid compile time.)
    ///
    /// # Errors
    ///
    /// Propagates frontend compile errors.
    pub fn frontend(&self, spec: &AppSpec) -> Result<FrontendArtifact, CompileError> {
        self.frontend_entry(spec).map(|(a, _)| a)
    }

    /// Like [`BuildSession::frontend`], also reporting whether this call
    /// was the one that compiled the artifact (callers attributing the
    /// frontend's wall time need to count it exactly once).
    ///
    /// # Errors
    ///
    /// Propagates frontend compile errors.
    pub fn frontend_entry(&self, spec: &AppSpec) -> Result<(FrontendArtifact, bool), CompileError> {
        let mut state = self.state.lock().unwrap();
        if let Some(a) = state.cache.get(spec.config) {
            return Ok((a.clone(), false));
        }
        let start = Instant::now();
        if state.frontend.is_none() {
            state.frontend = Some(nesc::Frontend::new(&self.sources)?);
        }
        let out = state
            .frontend
            .as_ref()
            .expect("parsed above")
            .compile(spec.config)?;
        let artifact = FrontendArtifact {
            out: Arc::new(out),
            elapsed: start.elapsed(),
        };
        self.frontend_compiles.fetch_add(1, Ordering::Relaxed);
        state
            .cache
            .insert(spec.config.to_string(), artifact.clone());
        Ok((artifact, true))
    }

    /// Builds `spec` under `pipeline`, reusing the cached frontend
    /// artifact. The frontend's wall time lands in the metrics of the
    /// one build that compiled it.
    ///
    /// # Errors
    ///
    /// Propagates compile errors from any pass.
    pub fn build(&self, spec: &AppSpec, pipeline: &Pipeline) -> Result<Build, CompileError> {
        let (artifact, fresh) = self.frontend_entry(spec)?;
        let mut build = pipeline.build_with_cache(
            artifact.program(),
            spec.platform.clone(),
            self.pass_cache.as_deref(),
        )?;
        if fresh {
            build
                .metrics
                .stage_times
                .record(Stage::Frontend, artifact.elapsed);
            build
                .metrics
                .pass_times
                .record(Stage::Frontend.name(), artifact.elapsed);
        }
        Ok(build)
    }

    /// Builds `spec` under `pipeline` (through the frontend cache) and
    /// runs a fault-injection campaign against the result — the hook an
    /// experiment grid uses to measure detection rates per pipeline
    /// preset (see [`campaign`]).
    ///
    /// # Errors
    ///
    /// Propagates compile errors from any pass.
    pub fn campaign(
        &self,
        spec: &AppSpec,
        pipeline: &Pipeline,
        config: &CampaignConfig,
    ) -> Result<CampaignReport, CompileError> {
        let build = self.build(spec, pipeline)?;
        Ok(campaign::run_campaign(&build, spec, config))
    }
}

impl Default for BuildSession {
    fn default() -> Self {
        Self::new()
    }
}

/// Compiles `spec` under `pipeline` with a throwaway one-shot
/// [`BuildSession`] — a convenience for doctests and true one-offs.
/// Anything building more than once should hold a [`BuildSession`],
/// and anything batch-shaped should go through [`BuildService`], so the
/// frontend and pass caches actually pay off.
///
/// # Errors
///
/// Propagates compile errors from any pass.
pub fn build_app(spec: &AppSpec, pipeline: &Pipeline) -> Result<Build, CompileError> {
    BuildSession::new().build(spec, pipeline)
}

/// Result of a duty-cycle simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Awake / total cycles, in percent.
    pub duty_cycle_percent: f64,
    /// Final machine state.
    pub state: RunState,
    /// Fault message, if the node trapped.
    pub fault: Option<String>,
    /// LED register transitions observed.
    pub led_transitions: u64,
    /// Radio bytes transmitted.
    pub radio_tx_bytes: usize,
    /// UART bytes emitted.
    pub uart_bytes: usize,
    /// Instructions executed.
    pub instructions: u64,
    /// Deepest call-stack extent observed, in bytes below the top of
    /// SRAM — the dynamic ground truth the `stackbound` analyzer's
    /// certified bound must dominate.
    pub stack_watermark: u16,
}

/// Creates a machine for `build` with `spec`'s workload context applied
/// (waveform set, radio traffic scheduled) for `seconds` of simulated
/// time, returning the machine and the run horizon in cycles. Shared by
/// [`simulate`] and the fault-injection campaigns in [`campaign`], which
/// must set machines up identically for golden and injected runs.
pub fn prepare_machine(build: &Build, spec: &AppSpec, seconds: u64) -> (Machine, u64) {
    let mut ctx = spec.context.clone();
    ctx.seconds = seconds;
    let mut m = Machine::new(&build.image);
    if m.engine() == mcu::Engine::Bt {
        m.set_block_cache(build.block_cache());
    }
    // Rebuild periodic injections for the overridden duration.
    let hz = build.image.profile.clock_hz;
    let until = ctx.duration_cycles(hz);
    m.set_waveform(ctx.waveform.clone());
    for inj in &ctx.injections {
        if inj.at < until {
            m.inject_rx_bytes(inj.at, &inj.packet.frame_bytes());
        }
    }
    // Extend periodic patterns beyond the stock context if needed.
    extend_injections(&spec.context, &mut m, hz, until);
    (m, until)
}

/// Runs `build` in `spec`'s context for `seconds` of simulated time
/// (overriding the context default).
pub fn simulate(build: &Build, spec: &AppSpec, seconds: u64) -> SimResult {
    let (mut m, until) = prepare_machine(build, spec, seconds);
    m.run(until);
    SimResult {
        duty_cycle_percent: m.duty_cycle_percent(),
        state: m.state,
        fault: m.fault_message(),
        led_transitions: m.devices.leds.transitions,
        radio_tx_bytes: m.radio_out.len(),
        uart_bytes: m.uart_out.len(),
        instructions: m.instr_count,
        stack_watermark: m.stack_watermark(),
    }
}

/// If the stock context's injections form a periodic pattern shorter than
/// the requested duration, repeat the pattern to cover it.
fn extend_injections(stock: &tosapps::Context, m: &mut Machine, hz: u64, until: u64) {
    let stock_dur = stock.duration_cycles(hz);
    if stock.injections.is_empty() || until <= stock_dur {
        return;
    }
    let mut t = stock_dur;
    while t < until {
        for inj in &stock.injections {
            let at = inj.at + t;
            if at < until {
                m.inject_rx_bytes(at, &inj.packet.frame_bytes());
            }
        }
        t += stock_dur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blink_runs_unsafe_and_safe() {
        let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
        let session = BuildSession::new();
        for pipeline in [
            Pipeline::unsafe_baseline(),
            Pipeline::safe_flid_inline_cxprop(),
        ] {
            let b = session.build(&spec, &pipeline).unwrap();
            let r = simulate(&b, &spec, 3);
            assert_eq!(
                r.state,
                RunState::Sleeping,
                "{}: fault {:?}",
                pipeline.name(),
                r.fault
            );
            assert!(
                r.led_transitions >= 4,
                "{}: LEDs toggled {}",
                pipeline.name(),
                r.led_transitions
            );
            assert!(
                r.duty_cycle_percent < 50.0,
                "{}: duty {}",
                pipeline.name(),
                r.duty_cycle_percent
            );
        }
    }

    #[test]
    fn fig3_bar_order_is_paper_order() {
        let bars = Pipeline::fig3_bars();
        assert_eq!(bars.len(), 7);
        assert_eq!(bars[0].name(), "safe-verbose-ram");
        assert_eq!(bars[6].name(), "unsafe+cxprop");
    }

    #[test]
    fn every_preset_resolves_and_is_named_consistently() {
        for name in PRESET_NAMES {
            let p = Pipeline::preset(name).unwrap_or_else(|| panic!("missing preset {name}"));
            assert_eq!(p.name(), name);
        }
        assert!(Pipeline::preset("no-such-preset").is_none());
    }

    #[test]
    fn pass_times_roll_up_into_stages() {
        let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
        let b = build_app(&spec, &Pipeline::safe_flid_inline_cxprop()).unwrap();
        let t = &b.metrics.pass_times;
        for pass in ["cure", "inline", "cxprop", "prune", "backend", "link"] {
            assert!(t.get(pass) > Duration::ZERO, "pass {pass} untimed");
        }
        // Opt rollup = inline + cxprop + prune, to the nanosecond.
        let opt = t.get("inline") + t.get("cxprop") + t.get("prune");
        assert_eq!(b.metrics.stage_times.get(Stage::Opt), opt);
        assert_eq!(t.total(), b.metrics.stage_times.total());
    }
}
