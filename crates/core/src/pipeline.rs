//! The composable pass manager: [`Pass`], [`Pipeline`], and the preset
//! registry.
//!
//! The paper's evaluation is a study of *optimizer-stack compositions* —
//! Figure 2 compares four pass stacks, Figure 3 seven — so the driver's
//! unit of configuration is an ordered, named list of passes rather than
//! a closed struct of booleans. Each pass mutates the lowered
//! [`tcil::Program`] in place and deposits its statistics into a
//! [`PassCx`]; the pipeline times every pass individually (dynamic
//! [`PassTimes`] buckets keyed by pass name) and rolls each one up into
//! the coarse [`Stage`] enum so the `BENCH_toolchain_speed*.json` schema
//! is unchanged.
//!
//! Pipelines come from three places:
//!
//! * the preset registry ([`Pipeline::preset`], one preset per bar of the
//!   paper's figures),
//! * the fluent [`PipelineBuilder`] (`Pipeline::builder("x").cure()...`),
//! * the textual spec language of [`crate::spec`]
//!   (`Pipeline::parse("cure(flid)|inline|cxprop(rounds=3)")`), also
//!   honored process-wide via the `STOS_PIPELINE` environment variable.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use backend::BackendOptions;
use ccured::{CureOptions, CureStats};
use cxprop::{CxpropOptions, CxpropStats, InlineOptions};
use tcil::{CompileError, Program};

use crate::cache::{ir_digest, CacheKey, PassCache, PassOutput};
use crate::diag::{Diagnostic, Severity};
use crate::{Build, Metrics, Stage};

/// Mutable context threaded through a pipeline run: the metrics being
/// collected, the target platform, and the backend's prepared program
/// (set by the `backend` pass, consumed by the final link).
pub struct PassCx {
    platform: mcu::Profile,
    /// Metrics accumulated so far; passes deposit their statistics here.
    pub metrics: Metrics,
    prepared: Option<Program>,
    /// The most recent backend pass's options. Unlike the prepared
    /// program itself, these survive invalidation: if later passes force
    /// a re-prepare at link time, it honors what the spec asked for.
    backend_options: Option<BackendOptions>,
}

impl PassCx {
    /// The platform the pipeline is building for.
    pub fn platform(&self) -> &mcu::Profile {
        &self.platform
    }

    /// Stores the backend-prepared program for the final link. Any later
    /// pass invalidates it (the pipeline discards the stale preparation
    /// and re-prepares at link time, reusing the most recent backend
    /// pass's options).
    pub fn set_prepared(&mut self, prepared: Program) {
        self.prepared = Some(prepared);
    }

    /// Emits a structured diagnostic into the build's metrics. Any pass
    /// can report findings this way; they accumulate in emission order
    /// in [`Metrics::diagnostics`].
    pub fn emit(&mut self, diagnostic: Diagnostic) {
        self.metrics.diagnostics.push(diagnostic);
    }
}

/// One stage of a [`Pipeline`]: a named, individually timed transform of
/// the lowered program.
///
/// Implementations must be `Send + Sync` (pipelines are shared across
/// experiment-runner worker threads) and are held behind an [`Arc`], so
/// a pass carries its options but no per-run state — per-run results go
/// through the [`PassCx`].
pub trait Pass: Send + Sync {
    /// The pass's name: its spec-language keyword and its bucket in
    /// [`PassTimes`].
    fn name(&self) -> &str;

    /// The coarse [`Stage`] this pass's wall time rolls up into.
    fn stage(&self) -> Stage;

    /// The pass's canonical spec-language rendering, including any
    /// non-default options (e.g. `cxprop(domain=constants,rounds=1)`).
    /// Doubles as the pass half of a [`crate::cache::CacheKey`]: two
    /// pass instances with equal specs must transform programs
    /// identically.
    fn spec(&self) -> String {
        self.name().to_string()
    }

    /// Whether this pass's output may be served from a shared
    /// [`crate::cache::PassCache`]. Only passes that are pure functions
    /// of `(input program, spec)` may opt in; the default is `false`, so
    /// a user-defined pass with hidden state is never cached by
    /// accident. Cacheable passes with metrics must also implement
    /// [`Pass::absorb`].
    fn cacheable(&self) -> bool {
        false
    }

    /// Replays this pass's metrics deposit from a cached run. `effect`
    /// is what [`Pass::run`] wrote into a *fresh* [`Metrics`] when the
    /// entry was computed; implementations must merge it into `into`
    /// exactly as a direct run would have (diagnostics are replayed by
    /// the pipeline itself). The default does nothing — correct for
    /// passes that deposit no metrics.
    fn absorb(&self, into: &mut Metrics, effect: &Metrics) {
        let _ = (into, effect);
    }

    /// If this pass requests the post-link stack-bound analysis,
    /// returns the budget override it was configured with
    /// (`Some(None)` = analyze with the platform's default budget).
    /// Post-link analyses cannot run inside [`Pass::run`] — the linked
    /// image does not exist yet — so the pipeline collects these
    /// requests and runs [`crate::stackbound::analyze`] after the link.
    /// The default requests nothing.
    fn stackbound_request(&self) -> Option<Option<u32>> {
        None
    }

    /// Transforms `program` in place.
    ///
    /// # Errors
    ///
    /// Propagates the pass's compile errors.
    fn run(&self, program: &mut Program, cx: &mut PassCx) -> Result<(), CompileError>;
}

/// Per-pass wall times: dynamic buckets keyed by pass name, in first-run
/// order. The dynamic generalization of [`crate::StageTimes`] — a
/// pipeline can contain any number of passes, including the same pass
/// twice (times accumulate into one bucket).
#[derive(Debug, Clone, Default)]
pub struct PassTimes {
    entries: Vec<(String, Duration)>,
}

impl PassTimes {
    /// Adds `elapsed` to `pass`'s bucket, creating it on first use.
    pub fn record(&mut self, pass: &str, elapsed: Duration) {
        match self.entries.iter_mut().find(|(name, _)| name == pass) {
            Some((_, t)) => *t += elapsed,
            None => self.entries.push((pass.to_string(), elapsed)),
        }
    }

    /// Accumulated time in `pass` (zero if it never ran).
    pub fn get(&self, pass: &str) -> Duration {
        self.entries
            .iter()
            .find(|(name, _)| name == pass)
            .map(|(_, t)| *t)
            .unwrap_or_default()
    }

    /// Sum over all passes.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, t)| *t).sum()
    }

    /// Accumulates another set of pass times into this one.
    pub fn add(&mut self, other: &PassTimes) {
        for (name, t) in &other.entries {
            self.record(name, *t);
        }
    }

    /// Iterates `(pass name, accumulated time)` in first-run order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> + '_ {
        self.entries.iter().map(|(name, t)| (name.as_str(), *t))
    }
}

// ---------------------------------------------------------------------
// The built-in passes.
// ---------------------------------------------------------------------

/// The CCured stage: pointer-kind inference, check insertion, error
/// messages, and (optionally) the local check optimizer.
#[derive(Debug, Clone, Default)]
pub struct CurePass {
    /// Options forwarded to [`ccured::cure`].
    pub options: CureOptions,
}

impl CurePass {
    /// Deposits one cure run's `stats` into `metrics` — shared by the
    /// direct path ([`Pass::run`]) and the cached replay
    /// ([`Pass::absorb`]) so the two are identical by construction.
    fn deposit(metrics: &mut Metrics, mut stats: CureStats) {
        if let Some(prior) = metrics.cure.take() {
            // Accumulate counters across repeated cure passes (each run
            // really does insert its own checks); the pointer-kind and
            // runtime censuses are point-in-time, so latest wins.
            stats.checks_inserted += prior.checks_inserted;
            stats.checks_removed_locally += prior.checks_removed_locally;
            stats.locks_inserted += prior.locks_inserted;
            stats.message_bytes.0 += prior.message_bytes.0;
            stats.message_bytes.1 += prior.message_bytes.1;
        }
        metrics.checks_inserted = stats.checks_inserted;
        metrics.locks_inserted = stats.locks_inserted;
        metrics.cure = Some(stats);
    }
}

impl Pass for CurePass {
    fn name(&self) -> &str {
        "cure"
    }

    fn stage(&self) -> Stage {
        Stage::Cure
    }

    fn spec(&self) -> String {
        crate::spec::render_cure(&self.options)
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn absorb(&self, into: &mut Metrics, effect: &Metrics) {
        if let Some(stats) = effect.cure.clone() {
            Self::deposit(into, stats);
        }
    }

    fn run(&self, program: &mut Program, cx: &mut PassCx) -> Result<(), CompileError> {
        let stats = ccured::cure(program, &self.options)?;
        Self::deposit(&mut cx.metrics, stats);
        Ok(())
    }
}

/// The standalone source-level inliner (runs [`cxprop::inline`] outside
/// the cXprop fixpoint; the composite `cxprop(inline)` runs it inside,
/// after race refinement, as the paper's tool did).
#[derive(Debug, Clone, Default)]
pub struct InlinePass {
    /// Inliner thresholds.
    pub options: InlineOptions,
}

impl Pass for InlinePass {
    fn name(&self) -> &str {
        "inline"
    }

    fn stage(&self) -> Stage {
        Stage::Opt
    }

    fn spec(&self) -> String {
        crate::spec::render_inline(&self.options)
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn absorb(&self, into: &mut Metrics, effect: &Metrics) {
        let inlined = effect.cxprop.as_ref().map_or(0, |c| c.inlined);
        into.cxprop.get_or_insert_with(Default::default).inlined += inlined;
    }

    fn run(&self, program: &mut Program, cx: &mut PassCx) -> Result<(), CompileError> {
        let inlined = cxprop::inline::run(program, &self.options);
        cx.metrics
            .cxprop
            .get_or_insert_with(Default::default)
            .inlined += inlined;
        Ok(())
    }
}

/// The cXprop whole-program optimizer. Inlined-call-site counts from an
/// earlier [`InlinePass`] are folded into this pass's statistics so
/// `Metrics::cxprop` reports the stack's total either way.
#[derive(Debug, Clone)]
pub struct CxpropPass {
    /// Options forwarded to [`cxprop::optimize`].
    pub options: CxpropOptions,
}

impl Default for CxpropPass {
    /// Unlike [`CxpropOptions::default`], the standalone pass defaults to
    /// *not* inlining — `inline` is its own pass in the spec language.
    fn default() -> Self {
        CxpropPass {
            options: CxpropOptions {
                inline: false,
                ..CxpropOptions::default()
            },
        }
    }
}

impl CxpropPass {
    /// Deposits one cXprop run's `stats` into `metrics` — shared by the
    /// direct path and the cached replay so the two are identical by
    /// construction.
    fn deposit(&self, metrics: &mut Metrics, mut stats: CxpropStats) {
        {
            // Surface the concurrency counts in the build-level rollup:
            // refinement censuses are point-in-time (latest wins, and
            // only when refinement actually ran), atomic-section work
            // accumulates across the stack.
            let races = metrics.races.get_or_insert_with(Default::default);
            if self.options.refine_races {
                races.racy_globals = stats.races.racy.len();
                races.cleared_globals = stats.races.cleared.len();
            }
            races.atomics_removed += stats.atomics.removed;
            races.atomics_demoted += stats.atomics.demoted;
        }
        if let Some(prior) = metrics.cxprop.take() {
            // Accumulate across repeated cxprop/inline passes so the
            // metrics report what the whole stack did, not just the last
            // run. The race report is point-in-time, so latest wins.
            stats.inlined += prior.inlined;
            stats.engine.checks_removed += prior.engine.checks_removed;
            stats.engine.branches_folded += prior.engine.branches_folded;
            stats.engine.consts_folded += prior.engine.consts_folded;
            stats.copies_propagated += prior.copies_propagated;
            stats.dce.functions_removed += prior.dce.functions_removed;
            stats.dce.globals_removed += prior.dce.globals_removed;
            stats.dce.stores_removed += prior.dce.stores_removed;
            stats.atomics.removed += prior.atomics.removed;
            stats.atomics.demoted += prior.atomics.demoted;
        }
        metrics.cxprop = Some(stats);
    }
}

impl Pass for CxpropPass {
    fn name(&self) -> &str {
        "cxprop"
    }

    fn stage(&self) -> Stage {
        Stage::Opt
    }

    fn spec(&self) -> String {
        crate::spec::render_cxprop(&self.options)
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn absorb(&self, into: &mut Metrics, effect: &Metrics) {
        if let Some(stats) = effect.cxprop.clone() {
            self.deposit(into, stats);
        }
    }

    fn run(&self, program: &mut Program, cx: &mut PassCx) -> Result<(), CompileError> {
        let stats = cxprop::optimize(program, &self.options);
        self.deposit(&mut cx.metrics, stats);
        Ok(())
    }
}

/// Sweeps error-message globals whose checks were optimized away
/// (Figure 2 methodology: strings of eliminated checks become
/// unreferenced and must not be charged to the image).
#[derive(Debug, Clone, Copy, Default)]
pub struct PruneErrmsgPass;

impl Pass for PruneErrmsgPass {
    fn name(&self) -> &str {
        "prune"
    }

    fn stage(&self) -> Stage {
        Stage::Opt
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn run(&self, program: &mut Program, _cx: &mut PassCx) -> Result<(), CompileError> {
        ccured::errmsg::prune_unused_messages(program);
        Ok(())
    }
}

/// The whole-program race & atomicity analysis pass (`races`), with an
/// optional auto-hardening transform (`races(fix)`).
///
/// The analysis runs [`cxprop::race_sites::classify`]: it refines the
/// racy-global set on the pointer-following concurrency lattice, walks
/// every racy global's actual access sites in synchronous code, and
/// emits one [`Diagnostic`] per unprotected site — `R001`
/// (unprotected-sync-write), `R002` (torn-16bit-access), or `R003`
/// (async-rmw) — with a FLID-style `func:site` location.
///
/// With `fix`, the pass first runs [`cxprop::race_sites::harden`]:
/// every flagged statement is wrapped in a minimal atomic section and
/// the analysis is re-run to a zero-diagnostic fixpoint, then
/// [`cxprop::atomic_opt`] cleans up the nesting the wrapping introduced.
/// The diagnostics the pass emits are the *post-fix* findings — an empty
/// set is the fixpoint certificate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RacesPass {
    /// Auto-harden flagged sites instead of only reporting them.
    pub fix: bool,
}

impl Pass for RacesPass {
    fn name(&self) -> &str {
        "races"
    }

    fn stage(&self) -> Stage {
        Stage::Opt
    }

    fn spec(&self) -> String {
        crate::spec::render_races(self.fix)
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn absorb(&self, into: &mut Metrics, effect: &Metrics) {
        // Replay the same merge `run` performs: cleanup and hardening
        // counters accumulate, the site censuses are point-in-time
        // (cleared keeps its high-water mark), and the fixpoint
        // iteration count only exists under `fix`.
        let er = effect.races.unwrap_or_default();
        let races = into.races.get_or_insert_with(Default::default);
        races.atomics_removed += er.atomics_removed;
        races.atomics_demoted += er.atomics_demoted;
        races.racy_globals = er.racy_globals;
        races.cleared_globals = races.cleared_globals.max(er.cleared_globals);
        races.sections_added += er.sections_added;
        if self.fix {
            races.fix_iterations = er.fix_iterations;
        }
    }

    fn run(&self, program: &mut Program, cx: &mut PassCx) -> Result<(), CompileError> {
        let fix_stats = if self.fix {
            let stats = cxprop::race_sites::harden(program);
            let cleanup = cxprop::atomic_opt::run(program);
            let races = cx.metrics.races.get_or_insert_with(Default::default);
            races.atomics_removed += cleanup.removed;
            races.atomics_demoted += cleanup.demoted;
            Some(stats)
        } else {
            None
        };
        let findings = cxprop::race_sites::classify(program);
        for site in &findings.sites {
            let kind = site.kind;
            cx.emit(Diagnostic::new(
                Severity::Warning,
                kind.code(),
                site.label(),
                format!(
                    "{} of racy global `{}` ({} bytes)",
                    kind.name(),
                    site.global,
                    site.width
                ),
            ));
        }
        let races = cx.metrics.races.get_or_insert_with(Default::default);
        races.racy_globals = findings.report.racy.len();
        races.cleared_globals = races.cleared_globals.max(findings.report.cleared.len());
        if let Some(stats) = fix_stats {
            races.sections_added += stats.sections_added;
            races.fix_iterations = stats.iterations;
        }
        Ok(())
    }
}

/// The whole-program interrupt-aware stack-bound analysis pass
/// (`stackbound`, optionally `stackbound(budget=N)`).
///
/// The IR-level [`Pass::run`] is a no-op: stack frames only exist after
/// the backend has laid them out, so the real work —
/// [`crate::stackbound::analyze`] over the linked [`mcu::Image`] — runs
/// post-link, requested through [`Pass::stackbound_request`]. It emits
/// `S001`/`S002`/`S003` [`Diagnostic`]s and deposits [`crate::StackStats`]
/// into [`Metrics::stack`]. Because the analyzer is a pure function of
/// the image (and the link is never cached), its results are
/// byte-identical with or without a pass cache, across worker counts,
/// and across execution engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackboundPass {
    /// SRAM stack budget override in bytes (`None` = the space between
    /// the image's static data and the top of SRAM).
    pub budget: Option<u32>,
}

impl Pass for StackboundPass {
    fn name(&self) -> &str {
        "stackbound"
    }

    fn stage(&self) -> Stage {
        Stage::Opt
    }

    fn spec(&self) -> String {
        crate::spec::render_stackbound(self.budget)
    }

    fn cacheable(&self) -> bool {
        // The IR transform is the identity and the effect is empty, so
        // caching is trivially correct; the post-link analysis is
        // outside the cache entirely.
        true
    }

    fn stackbound_request(&self) -> Option<Option<u32>> {
        Some(self.budget)
    }

    fn run(&self, _program: &mut Program, _cx: &mut PassCx) -> Result<(), CompileError> {
        Ok(())
    }
}

/// The backend-prepare stage: the weak GCC-class optimizer over a copy of
/// the program, staged for the final link. If other passes run after it,
/// the pipeline re-prepares at link time with this pass's options; a
/// pipeline with no backend pass at all prepares with the defaults.
#[derive(Debug, Clone, Default)]
pub struct BackendPass {
    /// Options forwarded to [`backend::prepare`].
    pub options: BackendOptions,
}

impl Pass for BackendPass {
    fn name(&self) -> &str {
        "backend"
    }

    fn stage(&self) -> Stage {
        Stage::Backend
    }

    fn spec(&self) -> String {
        crate::spec::render_backend(&self.options)
    }

    fn cacheable(&self) -> bool {
        true
    }

    fn run(&self, program: &mut Program, cx: &mut PassCx) -> Result<(), CompileError> {
        cx.backend_options = Some(self.options.clone());
        cx.set_prepared(backend::prepare(program, &self.options));
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Pipeline.
// ---------------------------------------------------------------------

/// An ordered, named list of passes — one optimizer-stack composition.
///
/// The name is an owned `String` so generated sweep configurations are
/// nameable, not just the static presets. `Display` renders the
/// canonical spec string, which [`Pipeline::parse`] round-trips.
///
/// ```
/// use safe_tinyos::Pipeline;
///
/// let p = Pipeline::parse("cure(flid) | inline | cxprop(rounds=3)").unwrap();
/// assert_eq!(p.to_string(), "cure(flid)|inline|cxprop");
/// assert_eq!(Pipeline::parse(&p.to_string()).unwrap().to_string(), p.to_string());
/// ```
#[derive(Clone)]
pub struct Pipeline {
    name: String,
    passes: Vec<Arc<dyn Pass>>,
}

impl Pipeline {
    /// Starts a fluent builder for a pipeline called `name`.
    pub fn builder(name: impl Into<String>) -> PipelineBuilder {
        PipelineBuilder {
            name: name.into(),
            passes: Vec::new(),
        }
    }

    /// Parses a pipeline-spec string (see [`crate::spec`] for the
    /// grammar). The pipeline's name is the canonical spec rendering.
    ///
    /// # Errors
    ///
    /// Rejects empty specs, unknown passes, and unknown or malformed
    /// options.
    pub fn parse(spec: &str) -> Result<Pipeline, crate::spec::SpecError> {
        crate::spec::parse(spec)
    }

    /// The pipeline's display name (experiment-output label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The same pipeline under a different name.
    pub fn with_name(mut self, name: impl Into<String>) -> Pipeline {
        self.name = name.into();
        self
    }

    /// The passes, in execution order.
    pub fn passes(&self) -> &[Arc<dyn Pass>] {
        &self.passes
    }

    /// The canonical spec string (what `Display` renders).
    pub fn spec(&self) -> String {
        self.passes
            .iter()
            .map(|p| p.spec())
            .collect::<Vec<_>>()
            .join("|")
    }

    /// Runs the pipeline over an already-lowered program: every pass in
    /// order (each individually timed), then the final link. If no
    /// backend pass prepared the program — or passes ran after it did —
    /// the backend re-runs at link time with the most recent backend
    /// pass's options (defaults if there was none), so every composition
    /// yields a linkable image.
    ///
    /// Equivalent to [`Pipeline::build_with_cache`] with no cache.
    ///
    /// # Errors
    ///
    /// Propagates compile errors from any pass or from the link.
    pub fn build(&self, program: Program, platform: mcu::Profile) -> Result<Build, CompileError> {
        self.build_with_cache(program, platform, None)
    }

    /// Runs the pipeline, consulting `cache` before each
    /// [cacheable](Pass::cacheable) pass and populating it after. A hit
    /// replays the stored output program and metric deposit (via
    /// [`Pass::absorb`]) instead of re-running the pass; the result is
    /// byte-identical to an uncached build. The final link is never
    /// cached (it is cheap and produces the per-build image), but the
    /// implicit link-time backend prepare is — under the same key a
    /// spelled-out `backend` pass would use, so `…|cxprop` and
    /// `…|cxprop|backend` share one entry.
    ///
    /// Timing buckets record what *this* build spent: a hit charges its
    /// (cheap) lookup to the pass's bucket, so stage/pass rollup
    /// invariants hold with or without a cache while warm wall times
    /// collapse.
    ///
    /// # Errors
    ///
    /// Propagates compile errors from any pass or from the link. Errors
    /// are cached too — every build of a failing key reports the same
    /// error without re-running the pass.
    pub fn build_with_cache(
        &self,
        program: Program,
        platform: mcu::Profile,
        cache: Option<&PassCache>,
    ) -> Result<Build, CompileError> {
        let mut cx = PassCx {
            platform,
            metrics: Metrics::default(),
            prepared: None,
            backend_options: None,
        };
        let mut state = Arc::new(program);
        // The digest of `state`, when known: computed lazily on the
        // first cached lookup, chained from entry to entry on hits, and
        // invalidated whenever an uncacheable pass mutates `state`
        // directly.
        let mut digest: Option<(u64, usize)> = None;
        let mut prepared: Option<Arc<Program>> = None;
        let mut backend_options: Option<BackendOptions> = None;
        for pass in &self.passes {
            // Both arms below overwrite `prepared`, so a later pass
            // invalidates any staged preparation: the backend's output is
            // only reusable when nothing ran after it, whatever order a
            // generated sweep put the passes in.
            cx.prepared = None;
            let start = Instant::now();
            match cache.filter(|_| pass.cacheable()) {
                Some(cache) => {
                    let (d, _) = *digest.get_or_insert_with(|| ir_digest(&state));
                    let slot = cache.slot(&CacheKey::new(d, pass.spec()));
                    let mut computed = false;
                    let out = slot.get_or_init(|| {
                        computed = true;
                        // Run against a scratch context so the entry
                        // records the pass's *own* deposit, replayable
                        // into any build's accumulated metrics.
                        let mut scratch = PassCx {
                            platform: cx.platform.clone(),
                            metrics: Metrics::default(),
                            prepared: None,
                            backend_options: None,
                        };
                        let mut program = (*state).clone();
                        pass.run(&mut program, &mut scratch).map(|()| {
                            let (digest, bytes) = ir_digest(&program);
                            PassOutput {
                                program: Arc::new(program),
                                digest,
                                bytes,
                                effect: scratch.metrics,
                                prepared: scratch.prepared.take().map(Arc::new),
                                backend_options: scratch.backend_options.take(),
                            }
                        })
                    });
                    cache.note(
                        pass.name(),
                        computed,
                        out.as_ref().map(|o| o.bytes).unwrap_or(0),
                    );
                    let out = out.as_ref().map_err(Clone::clone)?;
                    state = out.program.clone();
                    digest = Some((out.digest, out.bytes));
                    prepared = out.prepared.clone();
                    if let Some(options) = &out.backend_options {
                        backend_options = Some(options.clone());
                    }
                    cx.metrics
                        .diagnostics
                        .extend(out.effect.diagnostics.iter().cloned());
                    pass.absorb(&mut cx.metrics, &out.effect);
                }
                None => {
                    pass.run(Arc::make_mut(&mut state), &mut cx)?;
                    digest = None;
                    prepared = cx.prepared.take().map(Arc::new);
                    if let Some(options) = cx.backend_options.take() {
                        backend_options = Some(options);
                    }
                }
            }
            let elapsed = start.elapsed();
            cx.metrics.stage_times.record(pass.stage(), elapsed);
            cx.metrics.pass_times.record(pass.name(), elapsed);
        }
        let prepared = match prepared {
            Some(prepared) => prepared,
            None => {
                // No usable preparation staged: re-prepare with the most
                // recent backend pass's options (default if none ran).
                // An invalidated prepare's time stays on the books — the
                // work really happened — so a backend-mid-pipeline stack
                // honestly shows two prepares in its timing.
                let options = backend_options.unwrap_or_default();
                let start = Instant::now();
                let prepared = match cache {
                    Some(cache) => {
                        // Same keyspace as a spelled-out `backend` pass:
                        // whichever computes first, the other hits, and
                        // the entries are identical (the backend never
                        // mutates the program, so output digest == input
                        // digest).
                        let (d, b) = *digest.get_or_insert_with(|| ir_digest(&state));
                        let spec = crate::spec::render_backend(&options);
                        let slot = cache.slot(&CacheKey::new(d, spec));
                        let mut computed = false;
                        let out = slot.get_or_init(|| {
                            computed = true;
                            Ok(PassOutput {
                                program: state.clone(),
                                digest: d,
                                bytes: b,
                                effect: Metrics::default(),
                                prepared: Some(Arc::new(backend::prepare(&state, &options))),
                                backend_options: Some(options.clone()),
                            })
                        });
                        cache.note("backend", computed, b);
                        let out = out.as_ref().map_err(Clone::clone)?;
                        out.prepared
                            .clone()
                            .expect("backend entries stage a prepared program")
                    }
                    None => Arc::new(backend::prepare(&state, &options)),
                };
                let elapsed = start.elapsed();
                cx.metrics.stage_times.record(Stage::Backend, elapsed);
                cx.metrics.pass_times.record("backend", elapsed);
                prepared
            }
        };
        let start = Instant::now();
        let image = backend::link(&prepared, cx.platform)?;
        let elapsed = start.elapsed();
        let mut metrics = cx.metrics;
        metrics.stage_times.record(Stage::Link, elapsed);
        metrics.pass_times.record("link", elapsed);
        metrics.code_bytes = image.code_bytes();
        metrics.flash_bytes = image.flash_bytes();
        metrics.sram_bytes = image.sram_bytes();
        metrics.checks_surviving = image.surviving_checks();
        // Post-link analyses: passes that certify properties of the
        // linked image (today `stackbound`) run here, after the link
        // stamped the image but before the build is sealed. The link is
        // never cached and the analyzer is a pure function of the
        // image, so the results — diagnostics included — are identical
        // with or without the pass cache and for any worker count. The
        // time lands in the requesting pass's own buckets, preserving
        // the stage/pass rollup invariant.
        for pass in &self.passes {
            if let Some(budget) = pass.stackbound_request() {
                let start = Instant::now();
                let report = crate::stackbound::analyze(&image, budget);
                metrics.diagnostics.extend(report.diagnostics);
                metrics.stack = Some(report.stats);
                let elapsed = start.elapsed();
                metrics.stage_times.record(pass.stage(), elapsed);
                metrics.pass_times.record(pass.name(), elapsed);
            }
        }
        let program = Arc::try_unwrap(state).unwrap_or_else(|shared| (*shared).clone());
        Ok(Build::new(image, metrics, program))
    }
}

impl Pipeline {
    pub(crate) fn from_parts(name: String, passes: Vec<Arc<dyn Pass>>) -> Pipeline {
        Pipeline { name, passes }
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("name", &self.name)
            .field("spec", &self.spec())
            .finish()
    }
}

/// Fluent construction of a [`Pipeline`]: chain pass methods in
/// execution order, then [`PipelineBuilder::build`].
///
/// ```
/// use safe_tinyos::Pipeline;
///
/// let p = Pipeline::builder("my-stack").cure().inline().cxprop().prune().build();
/// assert_eq!(p.to_string(), "cure(flid)|inline|cxprop|prune");
/// ```
pub struct PipelineBuilder {
    name: String,
    passes: Vec<Arc<dyn Pass>>,
}

impl PipelineBuilder {
    /// Appends an arbitrary (possibly user-defined) pass.
    pub fn pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Arc::new(pass));
        self
    }

    /// Appends the CCured pass with default options (FLIDs, local
    /// optimizer on).
    pub fn cure(self) -> Self {
        self.pass(CurePass::default())
    }

    /// Appends the CCured pass with explicit options.
    pub fn cure_with(self, options: CureOptions) -> Self {
        self.pass(CurePass { options })
    }

    /// Appends the standalone inliner with default thresholds.
    pub fn inline(self) -> Self {
        self.pass(InlinePass::default())
    }

    /// Appends the standalone inliner with explicit thresholds.
    pub fn inline_with(self, options: InlineOptions) -> Self {
        self.pass(InlinePass { options })
    }

    /// Appends cXprop with the standalone-pass defaults (no inlining).
    pub fn cxprop(self) -> Self {
        self.pass(CxpropPass::default())
    }

    /// Appends cXprop with explicit options (set `inline: true` to run
    /// the inliner inside the fixpoint, as the paper's composite did).
    pub fn cxprop_with(self, options: CxpropOptions) -> Self {
        self.pass(CxpropPass { options })
    }

    /// Appends the error-message pruner.
    pub fn prune(self) -> Self {
        self.pass(PruneErrmsgPass)
    }

    /// Appends the race & atomicity analysis pass (report only).
    pub fn races(self) -> Self {
        self.pass(RacesPass { fix: false })
    }

    /// Appends the race & atomicity pass with auto-hardening
    /// (`races(fix)`).
    pub fn races_fix(self) -> Self {
        self.pass(RacesPass { fix: true })
    }

    /// Appends the stack-bound analysis pass with the platform's
    /// default SRAM budget.
    pub fn stackbound(self) -> Self {
        self.pass(StackboundPass { budget: None })
    }

    /// Appends the stack-bound analysis pass with an explicit budget in
    /// bytes (`stackbound(budget=N)`).
    pub fn stackbound_budget(self, budget: u32) -> Self {
        self.pass(StackboundPass {
            budget: Some(budget),
        })
    }

    /// Appends the backend-prepare pass (weak optimizer on).
    pub fn backend(self) -> Self {
        self.pass(BackendPass::default())
    }

    /// Appends the backend-prepare pass with explicit options.
    pub fn backend_with(self, options: BackendOptions) -> Self {
        self.pass(BackendPass { options })
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline {
            name: self.name,
            passes: self.passes,
        }
    }
}

// ---------------------------------------------------------------------
// Presets: one pipeline per bar of the paper's figures.
// ---------------------------------------------------------------------

/// Every preset name, in registry order (Figure 3's seven bars, the
/// unsafe baseline, then Figure 2's four stacks).
pub const PRESET_NAMES: [&str; 12] = [
    "unsafe",
    "unsafe+cxprop",
    "safe-verbose-ram",
    "safe-verbose-rom",
    "safe-terse",
    "safe-flid",
    "safe-flid-cxprop",
    "safe-flid-inline-cxprop",
    "gcc",
    "ccured+gcc",
    "ccured+cxprop+gcc",
    "ccured+inline+cxprop+gcc",
];

impl Pipeline {
    /// Looks up a preset pipeline by name (see [`PRESET_NAMES`]).
    pub fn preset(name: &str) -> Option<Pipeline> {
        Some(match name {
            "unsafe" => Self::unsafe_baseline(),
            "unsafe+cxprop" => Self::unsafe_optimized(),
            "safe-verbose-ram" => Self::safe_verbose_ram(),
            "safe-verbose-rom" => Self::safe_verbose_rom(),
            "safe-terse" => Self::safe_terse(),
            "safe-flid" => Self::safe_flid(),
            "safe-flid-cxprop" => Self::safe_flid_cxprop(),
            "safe-flid-inline-cxprop" => Self::safe_flid_inline_cxprop(),
            "gcc" => Self::fig2_gcc_only(),
            "ccured+gcc" => Self::fig2_ccured_gcc(),
            "ccured+cxprop+gcc" => Self::fig2_ccured_cxprop_gcc(),
            "ccured+inline+cxprop+gcc" => Self::fig2_full(),
            _ => return None,
        })
    }

    /// The paper's baseline: unsafe, unoptimized (plain nesC + gcc —
    /// just the backend).
    pub fn unsafe_baseline() -> Pipeline {
        Self::builder("unsafe").backend().build()
    }

    /// Figure 3 bar 7: unsafe, inlined and optimized by cXprop (the
    /// "new baseline").
    pub fn unsafe_optimized() -> Pipeline {
        Self::builder("unsafe+cxprop")
            .inline()
            .cxprop()
            .prune()
            .build()
    }

    fn safe_with(name: &str, error_mode: ccured::ErrorMode) -> Pipeline {
        Self::builder(name)
            .cure_with(CureOptions {
                error_mode,
                ..CureOptions::default()
            })
            .build()
    }

    /// Figure 3 bar 1: safe, verbose error messages in SRAM.
    pub fn safe_verbose_ram() -> Pipeline {
        Self::safe_with("safe-verbose-ram", ccured::ErrorMode::VerboseRam)
    }

    /// Figure 3 bar 2: safe, verbose error messages in ROM.
    pub fn safe_verbose_rom() -> Pipeline {
        Self::safe_with("safe-verbose-rom", ccured::ErrorMode::VerboseRom)
    }

    /// Figure 3 bar 3: safe, terse error messages.
    pub fn safe_terse() -> Pipeline {
        Self::safe_with("safe-terse", ccured::ErrorMode::Terse)
    }

    /// Figure 3 bar 4: safe, FLID-compressed error messages.
    pub fn safe_flid() -> Pipeline {
        Self::safe_with("safe-flid", ccured::ErrorMode::Flid)
    }

    /// Figure 3 bar 5: safe + FLIDs + cXprop (no inliner).
    pub fn safe_flid_cxprop() -> Pipeline {
        Self::builder("safe-flid-cxprop")
            .cure()
            .cxprop()
            .prune()
            .build()
    }

    /// Figure 3 bar 6: safe + FLIDs + inliner + cXprop (the full stack).
    pub fn safe_flid_inline_cxprop() -> Pipeline {
        Self::builder("safe-flid-inline-cxprop")
            .cure()
            .inline()
            .cxprop()
            .prune()
            .build()
    }

    /// Figure 2 config 1: gcc alone (checks inserted, nothing else —
    /// CCured's local optimizer off).
    pub fn fig2_gcc_only() -> Pipeline {
        Self::builder("gcc")
            .cure_with(CureOptions {
                local_optimize: false,
                ..CureOptions::default()
            })
            .build()
    }

    /// Figure 2 config 2: CCured optimizer + gcc.
    pub fn fig2_ccured_gcc() -> Pipeline {
        Self::builder("ccured+gcc").cure().build()
    }

    /// Figure 2 config 3: CCured optimizer + cXprop (no inliner) + gcc.
    pub fn fig2_ccured_cxprop_gcc() -> Pipeline {
        Self::builder("ccured+cxprop+gcc")
            .cure()
            .cxprop()
            .prune()
            .build()
    }

    /// Figure 2 config 4: CCured optimizer + inliner + cXprop + gcc.
    pub fn fig2_full() -> Pipeline {
        Self::builder("ccured+inline+cxprop+gcc")
            .cure()
            .inline()
            .cxprop()
            .prune()
            .build()
    }

    /// The seven Figure 3 bars, in the paper's order.
    pub fn fig3_bars() -> Vec<Pipeline> {
        vec![
            Self::safe_verbose_ram(),
            Self::safe_verbose_rom(),
            Self::safe_terse(),
            Self::safe_flid(),
            Self::safe_flid_cxprop(),
            Self::safe_flid_inline_cxprop(),
            Self::unsafe_optimized(),
        ]
    }

    /// The four Figure 2 optimizer stacks, in the paper's order.
    pub fn fig2_stacks() -> Vec<Pipeline> {
        vec![
            Self::fig2_gcc_only(),
            Self::fig2_ccured_gcc(),
            Self::fig2_ccured_cxprop_gcc(),
            Self::fig2_full(),
        ]
    }
}
