//! [`BuildService`]: the batch build facade.
//!
//! A [`crate::BuildSession`] answers one question — "build this app
//! under this pipeline, reusing the frontend and pass caches". The
//! service layers the *batch* shape every evaluation harness actually
//! has on top of it: submit a vector of [`BuildRequest`]s, get the
//! vector of results back in request order, with the work fanned out
//! across worker threads that share both caches and with jobs ordered
//! so siblings that share a pipeline prefix run near each other (the
//! first one warms the entries the rest hit).
//!
//! ```
//! use safe_tinyos::{BuildRequest, BuildService, Pipeline};
//!
//! let service = BuildService::new();
//! let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
//! let requests: Vec<_> = Pipeline::fig2_stacks()
//!     .into_iter()
//!     .map(|pipeline| BuildRequest::new(spec.clone(), pipeline))
//!     .collect();
//! let results = service.submit(requests);
//! assert!(results.iter().all(|r| r.is_ok()));
//! // One frontend compile, and the shared `cure(flid)` prefix of the
//! // last three stacks ran once (two hits).
//! assert_eq!(service.session().frontend_compiles(), 1);
//! assert_eq!(service.cache_stats().get("cure").hits, 2);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tcil::CompileError;
use tosapps::AppSpec;

use crate::{Build, BuildSession, CacheStats, Pipeline};

/// One unit of batch work: an app built under a pipeline.
#[derive(Debug, Clone)]
pub struct BuildRequest {
    /// The app to build.
    pub spec: AppSpec,
    /// The pipeline to build it under.
    pub pipeline: Pipeline,
}

impl BuildRequest {
    /// A request to build `spec` under `pipeline`.
    pub fn new(spec: AppSpec, pipeline: Pipeline) -> BuildRequest {
        BuildRequest { spec, pipeline }
    }
}

/// The outcome of one [`BuildRequest`].
pub type BuildResult = Result<Build, CompileError>;

/// A batch build service: a [`BuildSession`] (frontend + pass caches)
/// plus a worker pool. The one blessed entry point for anything that
/// builds more than one configuration; one-off callers can use
/// [`BuildService::build`] or a bare session.
pub struct BuildService {
    session: BuildSession,
    threads: usize,
}

impl BuildService {
    /// A service over a fresh cached session, with one worker per
    /// available core.
    pub fn new() -> BuildService {
        Self::with_session(BuildSession::new())
    }

    /// A service with an explicit worker count (1 = fully serial; the
    /// results are byte-identical either way).
    pub fn with_threads(threads: usize) -> BuildService {
        BuildService {
            session: BuildSession::new(),
            threads: threads.max(1),
        }
    }

    /// Wraps an existing session (cached or not).
    pub fn with_session(session: BuildSession) -> BuildService {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        BuildService { session, threads }
    }

    /// The underlying session.
    pub fn session(&self) -> &BuildSession {
        &self.session
    }

    /// The worker-pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the session's pass-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }

    /// Builds one request inline (no worker fan-out), through the shared
    /// caches.
    ///
    /// # Errors
    ///
    /// Propagates compile errors from the frontend or any pass.
    pub fn build(&self, spec: &AppSpec, pipeline: &Pipeline) -> BuildResult {
        self.session.build(spec, pipeline)
    }

    /// Builds a batch, returning results in request order.
    ///
    /// Jobs are *executed* in cache-aware order — grouped by app, then
    /// by canonical pipeline spec — so requests sharing a pipeline
    /// prefix run adjacently and the first warms the pass-cache entries
    /// its siblings hit. Because cache entries compute exactly once
    /// (concurrent requesters of a key block on one computation), the
    /// results and the cache's miss counts are identical for any worker
    /// count, including 1.
    pub fn submit(&self, requests: Vec<BuildRequest>) -> Vec<BuildResult> {
        // Sort job indices, not jobs: results scatter back by index so
        // callers see request order.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        let keys: Vec<(&str, String)> = requests
            .iter()
            .map(|r| (r.spec.config, r.pipeline.spec()))
            .collect();
        order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));

        let mut scattered: Vec<Option<BuildResult>> = self
            .run_jobs_labeled(
                order.len(),
                |slot| {
                    let request = &requests[order[slot]];
                    self.session.build(&request.spec, &request.pipeline)
                },
                |slot| {
                    let request = &requests[order[slot]];
                    format!("{} / {}", request.spec.config, request.pipeline.spec())
                },
            )
            .into_iter()
            .map(Some)
            .collect();
        let mut results: Vec<Option<BuildResult>> = (0..requests.len()).map(|_| None).collect();
        for (slot, &index) in order.iter().enumerate() {
            results[index] = scattered[slot].take();
        }
        results
            .into_iter()
            .map(|r| r.expect("every request produced a result"))
            .collect()
    }

    /// Runs `f(0..n)` across the worker pool, returning the results in
    /// index order. Workers claim indices from a shared counter
    /// (work-stealing by atomic increment), so long jobs don't leave a
    /// statically-assigned worker idle. The generic engine under
    /// [`BuildService::submit`], exposed for harnesses that fan out
    /// non-build work (simulation cells, fault campaigns) over the same
    /// pool.
    pub fn run_jobs<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_jobs_labeled(n, f, |i| format!("job {i}"))
    }

    /// [`BuildService::run_jobs`] with a caller-supplied job label. If a
    /// job panics, the pool re-raises the *first* panic (by job index)
    /// on the caller's thread with the label prepended — `label(i):
    /// original message` — so a grid failure names the app × spec that
    /// died instead of surfacing as a bare worker-thread panic.
    pub fn run_jobs_labeled<R, F, L>(&self, n: usize, f: F, label: L) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        L: Fn(usize) -> String + Sync,
    {
        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            return (0..n)
                .map(|i| {
                    run_labeled(&label, i, || f(i)).unwrap_or_else(|msg| std::panic::panic_any(msg))
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // The first panic by *job index* (not arrival order), so the
        // error a caller sees is deterministic across worker counts.
        let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match run_labeled(&label, i, || f(i)) {
                        Ok(r) => *slots[i].lock().unwrap() = Some(r),
                        Err(msg) => {
                            let mut failure = failure.lock().unwrap();
                            if failure.as_ref().is_none_or(|(j, _)| i < *j) {
                                *failure = Some((i, msg));
                            }
                        }
                    }
                });
            }
        });
        if let Some((_, msg)) = failure.into_inner().unwrap() {
            std::panic::panic_any(msg);
        }
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }
}

impl Default for BuildService {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `body`, converting a panic into `Err("label: message")` with
/// the payload stringified the way the default hook renders it
/// (`&str`/`String` payloads verbatim, anything else opaque).
fn run_labeled<R>(
    label: &(impl Fn(usize) -> String + Sync),
    i: usize,
    body: impl FnOnce() -> R,
) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("{}: {msg}", label(i))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_returns_results_in_request_order() {
        let service = BuildService::with_threads(2);
        let blink = tosapps::spec("BlinkTask_Mica2").unwrap();
        let requests = vec![
            BuildRequest::new(blink.clone(), Pipeline::safe_flid()),
            BuildRequest::new(blink.clone(), Pipeline::unsafe_baseline()),
            BuildRequest::new(blink.clone(), Pipeline::safe_flid()),
        ];
        let results = service.submit(requests);
        let sizes: Vec<u32> = results
            .iter()
            .map(|r| r.as_ref().unwrap().metrics.code_bytes)
            .collect();
        // Safe builds are bigger than the unsafe baseline, and the two
        // identical requests match: order survived the cache-aware
        // permutation.
        assert_eq!(sizes[0], sizes[2]);
        assert!(sizes[0] > sizes[1]);
    }

    #[test]
    fn shared_prefixes_miss_once_across_a_batch() {
        let service = BuildService::with_threads(4);
        let blink = tosapps::spec("BlinkTask_Mica2").unwrap();
        // Four stacks sharing the default-cure prefix.
        let requests: Vec<_> = [
            "cure(flid)",
            "cure(flid)|cxprop",
            "cure(flid)|cxprop|prune",
            "cure(flid)|inline|cxprop|prune",
        ]
        .iter()
        .map(|s| BuildRequest::new(blink.clone(), Pipeline::parse(s).unwrap()))
        .collect();
        let results = service.submit(requests);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = service.cache_stats();
        let cure = stats.get("cure");
        assert_eq!(cure.misses, 1, "shared cure prefix computed once");
        assert_eq!(cure.hits, 3);
        // cxprop forks: same input after cure in stacks 2–4? Stack 4
        // inlines first, so cxprop sees two distinct inputs.
        assert_eq!(stats.get("cxprop").misses, 2);
    }

    #[test]
    fn worker_panics_carry_the_job_label() {
        // Jobs 5..8 panic; the pool must re-raise the lowest-index
        // failure with its label prepended, for any worker count.
        for threads in [1, 4] {
            let service = BuildService::with_threads(threads);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                service.run_jobs_labeled(
                    8,
                    |i| {
                        if i >= 5 {
                            panic!("boom {i}");
                        }
                        i
                    },
                    |i| format!("App{i}_Mica2 / cure(flid)"),
                )
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert_eq!(msg, "App5_Mica2 / cure(flid): boom 5");
        }
    }
}
