//! The pipeline-spec language: a textual notation for optimizer-stack
//! compositions, parsed into a [`Pipeline`] and round-tripped by its
//! `Display`.
//!
//! # Grammar
//!
//! ```text
//! pipeline := pass ( "|" pass )*
//! pass     := name [ "(" opt ( "," opt )* ")" ]
//! opt      := flag | key "=" value
//! ```
//!
//! Whitespace (spaces, tabs, newlines) around tokens — pass names,
//! options, `|`, and `;` in pipeline lists — is ignored; the canonical
//! `Display` rendering uses none. Within one pass, each option key may
//! appear at most once: `cxprop(rounds=2,rounds=3)` and contradictory
//! flag pairs like `cure(opt,noopt)` are rejected rather than silently
//! last-wins (a flag and its negation share a key, as do the four cure
//! error modes). The passes and their options:
//!
//! | Pass | Options |
//! |------|---------|
//! | `cure` | mode `flid` / `terse` / `verbose-ram` / `verbose-rom`; flags `opt`/`noopt` (local check optimizer), `lock`/`nolock` (racy-check locking), `naive` (§2.3 naive runtime) |
//! | `inline` | `max-size=N`, `single-site=N`, `rounds=N` |
//! | `cxprop` | flag `inline` (run the inliner inside the fixpoint, after race refinement — the paper's composite); `domain=constants`/`intervals`; `rounds=N`; flags `dce`/`nodce`, `copyprop`/`nocopyprop`, `atomic`/`noatomic`, `refine`/`norefine`, `harden`/`noharden` (fault-hardened check elimination; `noharden` restores the classical policy) |
//! | `prune` | (none) |
//! | `races` | flag `fix` (auto-harden flagged access sites in minimal atomic sections and re-analyze to a zero-diagnostic fixpoint; without it the pass only reports `R001`–`R003` diagnostics) |
//! | `stackbound` | `budget=N` (override the SRAM stack budget in bytes; must be positive — the default budget is the space between the image's static data and the top of SRAM). Certifies a worst-case stack bound on the linked image and reports `S001`–`S003` diagnostics |
//! | `backend` | `opt`/`noopt` (weak GCC-class optimizer) |
//!
//! Examples: `cure(flid)|inline|cxprop(rounds=3)`,
//! `cure(terse,noopt)|cxprop(domain=constants)|prune`, `backend(noopt)`.
//!
//! A pipeline parsed from a spec is *named* by its canonical rendering
//! (an owned `String`, so sweep-generated stacks label experiment output
//! correctly); prefix `name:` inside `STOS_PIPELINE` entries to label it
//! explicitly.
//!
//! # `STOS_PIPELINE`
//!
//! The environment variable holds a `;`-separated list of entries, each
//! one of
//!
//! * a preset name (`safe-flid-inline-cxprop`, see
//!   [`crate::pipeline::PRESET_NAMES`]),
//! * a spec string (`cure(flid)|cxprop`),
//! * `name:spec` to parse a spec but keep an explicit label
//!   (`gcc:cure(flid,noopt)`).
//!
//! Harnesses that honor it (fig2, fig3a/b/c, `pipeline_matrix`) replace
//! their default stack list with the parsed one.

use std::fmt;
use std::sync::Arc;

use backend::BackendOptions;
use ccured::{CureOptions, ErrorMode};
use cxprop::{CxpropOptions, DomainKind, InlineOptions};

use crate::pipeline::{
    BackendPass, CurePass, CxpropPass, InlinePass, Pass, Pipeline, PruneErrmsgPass, RacesPass,
    StackboundPass,
};

/// A pipeline-spec parse error, with the offending fragment named.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    fn new(msg: impl Into<String>) -> SpecError {
        SpecError(msg.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// The spec-language pass keywords, for error messages.
pub const PASS_NAMES: [&str; 7] = [
    "cure",
    "inline",
    "cxprop",
    "prune",
    "races",
    "stackbound",
    "backend",
];

/// Parses a spec string into a [`Pipeline`] named by its canonical
/// rendering.
///
/// # Errors
///
/// Rejects empty specs, unknown passes, and unknown or malformed
/// options.
pub fn parse(spec: &str) -> Result<Pipeline, SpecError> {
    let trimmed = spec.trim();
    if trimmed.is_empty() {
        return Err(SpecError::new(
            "empty spec (for a bare-backend build, use \"backend\")",
        ));
    }
    let mut passes: Vec<Arc<dyn Pass>> = Vec::new();
    for segment in trimmed.split('|') {
        passes.push(parse_pass(segment.trim())?);
    }
    let name = passes
        .iter()
        .map(|p| p.spec())
        .collect::<Vec<_>>()
        .join("|");
    Ok(Pipeline::from_parts(name, passes))
}

/// Splits one segment into `(name, options)`. Options are normalized
/// for whitespace — around commas and around a `key=value`'s `=` — so
/// hand-typed spellings land on the same canonical spec (and therefore
/// the same cache key) as `Display` output.
fn split_segment(segment: &str) -> Result<(&str, Vec<String>), SpecError> {
    if segment.is_empty() {
        return Err(SpecError::new("empty pass segment"));
    }
    let Some(open) = segment.find('(') else {
        return Ok((segment, Vec::new()));
    };
    let rest = &segment[open + 1..];
    let Some(close) = rest.rfind(')') else {
        return Err(SpecError::new(format!("`{segment}`: missing `)`")));
    };
    if !rest[close + 1..].trim().is_empty() {
        return Err(SpecError::new(format!(
            "`{segment}`: trailing input after `)`"
        )));
    }
    let name = segment[..open].trim();
    let opts = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|o| !o.is_empty())
        .map(|o| match o.split_once('=') {
            Some((key, value)) => format!("{}={}", key.trim_end(), value.trim_start()),
            None => o.to_string(),
        })
        .collect();
    Ok((name, opts))
}

/// Parses `key=value`'s value as a count.
fn parse_count(pass: &str, opt: &str) -> Result<usize, SpecError> {
    let (key, value) = opt.split_once('=').expect("caller checked");
    value
        .trim()
        .parse()
        .map_err(|_| SpecError::new(format!("{pass}: `{}` needs a number, got `{value}`", key)))
}

fn unknown_option(pass: &str, opt: &str, known: &str) -> SpecError {
    SpecError::new(format!("{pass}: unknown option `{opt}` (known: {known})"))
}

/// Duplicate-option tracking for one pass segment. Every option maps to
/// a canonical *key* (a flag and its negation share one, e.g.
/// `dce`/`nodce`; the four cure error modes share `error mode`); a key
/// claimed twice is rejected rather than silently last-wins — the
/// `Display` canonicalization renders each key at most once, so a spec
/// that sets one twice cannot round-trip and is a user error by
/// construction.
struct SeenOpts {
    pass: &'static str,
    seen: Vec<(&'static str, String)>,
}

impl SeenOpts {
    fn new(pass: &'static str) -> SeenOpts {
        SeenOpts {
            pass,
            seen: Vec::new(),
        }
    }

    fn claim(&mut self, key: &'static str, opt: &str) -> Result<(), SpecError> {
        if let Some((_, first)) = self.seen.iter().find(|(k, _)| *k == key) {
            return Err(SpecError::new(format!(
                "{}: duplicate option `{opt}` ({key} already set by `{first}`)",
                self.pass
            )));
        }
        self.seen.push((key, opt.to_string()));
        Ok(())
    }

    /// Claims `key` for `opt` and stores `value` — one call per match
    /// arm, so the duplicate check can never drift from the assignment.
    fn set<T>(
        &mut self,
        key: &'static str,
        opt: &str,
        slot: &mut T,
        value: T,
    ) -> Result<(), SpecError> {
        self.claim(key, opt)?;
        *slot = value;
        Ok(())
    }
}

fn parse_pass(segment: &str) -> Result<Arc<dyn Pass>, SpecError> {
    let (name, opts) = split_segment(segment)?;
    match name {
        "cure" => {
            let mut options = CureOptions::default();
            let mut seen = SeenOpts::new("cure");
            for opt in &opts {
                let opt = opt.as_str();
                // Each arm claims its canonical key before acting, so a
                // flag and its negation (or two error modes) collide.
                match opt {
                    "flid" => seen.set("error mode", opt, &mut options.error_mode, ErrorMode::Flid),
                    "terse" => {
                        seen.set("error mode", opt, &mut options.error_mode, ErrorMode::Terse)
                    }
                    "verbose-ram" => seen.set(
                        "error mode",
                        opt,
                        &mut options.error_mode,
                        ErrorMode::VerboseRam,
                    ),
                    "verbose-rom" => seen.set(
                        "error mode",
                        opt,
                        &mut options.error_mode,
                        ErrorMode::VerboseRom,
                    ),
                    "opt" => seen.set("local optimizer", opt, &mut options.local_optimize, true),
                    "noopt" => seen.set("local optimizer", opt, &mut options.local_optimize, false),
                    "lock" => seen.set(
                        "racy-check locking",
                        opt,
                        &mut options.lock_racy_checks,
                        true,
                    ),
                    "nolock" => seen.set(
                        "racy-check locking",
                        opt,
                        &mut options.lock_racy_checks,
                        false,
                    ),
                    "naive" => seen.set("runtime", opt, &mut options.naive_runtime, true),
                    _ => Err(unknown_option(
                        "cure",
                        opt,
                        "flid, terse, verbose-ram, verbose-rom, opt, noopt, lock, nolock, naive",
                    )),
                }?;
            }
            Ok(Arc::new(CurePass { options }))
        }
        "inline" => {
            let mut options = InlineOptions::default();
            let mut seen = SeenOpts::new("inline");
            for opt in &opts {
                let opt = opt.as_str();
                if opt.starts_with("max-size=") {
                    let v = parse_count("inline", opt)?;
                    seen.set("max-size", opt, &mut options.max_size, v)?;
                } else if opt.starts_with("single-site=") {
                    let v = parse_count("inline", opt)?;
                    seen.set("single-site", opt, &mut options.max_single_site, v)?;
                } else if opt.starts_with("rounds=") {
                    let v = parse_count("inline", opt)?;
                    seen.set("rounds", opt, &mut options.rounds, v)?;
                } else {
                    return Err(unknown_option(
                        "inline",
                        opt,
                        "max-size=N, single-site=N, rounds=N",
                    ));
                }
            }
            Ok(Arc::new(InlinePass { options }))
        }
        "cxprop" => {
            let mut options = CxpropPass::default().options;
            let mut seen = SeenOpts::new("cxprop");
            for opt in &opts {
                let opt = opt.as_str();
                match opt {
                    "inline" => seen.set("inline", opt, &mut options.inline, true),
                    "dce" => seen.set("dce", opt, &mut options.dce, true),
                    "nodce" => seen.set("dce", opt, &mut options.dce, false),
                    "copyprop" => seen.set("copyprop", opt, &mut options.copyprop, true),
                    "nocopyprop" => seen.set("copyprop", opt, &mut options.copyprop, false),
                    "atomic" => seen.set("atomic", opt, &mut options.atomic_opt, true),
                    "noatomic" => seen.set("atomic", opt, &mut options.atomic_opt, false),
                    "refine" => seen.set("race refinement", opt, &mut options.refine_races, true),
                    "norefine" => {
                        seen.set("race refinement", opt, &mut options.refine_races, false)
                    }
                    "harden" => seen.set("hardening", opt, &mut options.fault_harden, true),
                    "noharden" => seen.set("hardening", opt, &mut options.fault_harden, false),
                    "domain=constants" => {
                        seen.set("domain", opt, &mut options.domain, DomainKind::Constants)
                    }
                    "domain=intervals" => {
                        seen.set("domain", opt, &mut options.domain, DomainKind::Intervals)
                    }
                    _ if opt.starts_with("rounds=") => {
                        let rounds = parse_count("cxprop", opt)?;
                        seen.set("rounds", opt, &mut options.max_rounds, rounds)
                    }
                    _ => Err(unknown_option(
                        "cxprop",
                        opt,
                        "inline, domain=constants|intervals, rounds=N, dce, nodce, \
                         copyprop, nocopyprop, atomic, noatomic, refine, norefine, \
                         harden, noharden",
                    )),
                }?;
            }
            Ok(Arc::new(CxpropPass { options }))
        }
        "prune" => {
            if let Some(opt) = opts.first() {
                return Err(SpecError::new(format!(
                    "prune: takes no options, got `{opt}`"
                )));
            }
            Ok(Arc::new(PruneErrmsgPass))
        }
        "races" => {
            let mut fix = false;
            let mut seen = SeenOpts::new("races");
            for opt in &opts {
                let opt = opt.as_str();
                match opt {
                    "fix" => seen.set("fix", opt, &mut fix, true),
                    _ => Err(unknown_option("races", opt, "fix")),
                }?;
            }
            Ok(Arc::new(RacesPass { fix }))
        }
        "stackbound" => {
            let mut budget = None;
            let mut seen = SeenOpts::new("stackbound");
            for opt in &opts {
                let opt = opt.as_str();
                if opt.starts_with("budget=") {
                    let v = parse_count("stackbound", opt)?;
                    if v == 0 {
                        return Err(SpecError::new(
                            "stackbound: `budget` must be positive, got `0` \
                             (omit the option for the profile's default budget)",
                        ));
                    }
                    let v = u32::try_from(v).map_err(|_| {
                        SpecError::new(format!("stackbound: `budget={v}` out of range"))
                    })?;
                    seen.set("budget", opt, &mut budget, Some(v))?;
                } else {
                    return Err(unknown_option("stackbound", opt, "budget=N"));
                }
            }
            Ok(Arc::new(StackboundPass { budget }))
        }
        "backend" => {
            let mut options = BackendOptions::default();
            let mut seen = SeenOpts::new("backend");
            for opt in &opts {
                let opt = opt.as_str();
                match opt {
                    "opt" => seen.set("optimizer", opt, &mut options.optimize, true),
                    "noopt" => seen.set("optimizer", opt, &mut options.optimize, false),
                    _ => Err(unknown_option("backend", opt, "opt, noopt")),
                }?;
            }
            Ok(Arc::new(BackendPass { options }))
        }
        _ => Err(SpecError::new(format!(
            "unknown pass `{name}` (known: {})",
            PASS_NAMES.join(", ")
        ))),
    }
}

// ---------------------------------------------------------------------
// Canonical renderings (each pass's `Pass::spec`). Only non-default
// options are shown, in a fixed order, so parse → Display → parse is
// stable after one canonicalization.
// ---------------------------------------------------------------------

pub(crate) fn render_cure(options: &CureOptions) -> String {
    // The error mode is always rendered: it is the pass's headline
    // configuration (Figure 3 bars 1–4).
    let mut opts = vec![match options.error_mode {
        ErrorMode::Flid => "flid",
        ErrorMode::Terse => "terse",
        ErrorMode::VerboseRam => "verbose-ram",
        ErrorMode::VerboseRom => "verbose-rom",
    }
    .to_string()];
    if !options.local_optimize {
        opts.push("noopt".into());
    }
    if !options.lock_racy_checks {
        opts.push("nolock".into());
    }
    if options.naive_runtime {
        opts.push("naive".into());
    }
    format!("cure({})", opts.join(","))
}

pub(crate) fn render_inline(options: &InlineOptions) -> String {
    let default = InlineOptions::default();
    let mut opts = Vec::new();
    if options.max_size != default.max_size {
        opts.push(format!("max-size={}", options.max_size));
    }
    if options.max_single_site != default.max_single_site {
        opts.push(format!("single-site={}", options.max_single_site));
    }
    if options.rounds != default.rounds {
        opts.push(format!("rounds={}", options.rounds));
    }
    render("inline", opts)
}

pub(crate) fn render_cxprop(options: &CxpropOptions) -> String {
    let default = CxpropPass::default().options;
    let mut opts = Vec::new();
    if options.inline {
        opts.push("inline".to_string());
    }
    if options.domain != default.domain {
        opts.push(match options.domain {
            DomainKind::Constants => "domain=constants".to_string(),
            DomainKind::Intervals => "domain=intervals".to_string(),
        });
    }
    if options.max_rounds != default.max_rounds {
        opts.push(format!("rounds={}", options.max_rounds));
    }
    if !options.dce {
        opts.push("nodce".into());
    }
    if !options.copyprop {
        opts.push("nocopyprop".into());
    }
    if !options.atomic_opt {
        opts.push("noatomic".into());
    }
    if !options.refine_races {
        opts.push("norefine".into());
    }
    if !options.fault_harden {
        opts.push("noharden".into());
    }
    render("cxprop", opts)
}

pub(crate) fn render_races(fix: bool) -> String {
    let opts = if fix {
        vec!["fix".to_string()]
    } else {
        Vec::new()
    };
    render("races", opts)
}

pub(crate) fn render_stackbound(budget: Option<u32>) -> String {
    let opts = match budget {
        Some(n) => vec![format!("budget={n}")],
        None => Vec::new(),
    };
    render("stackbound", opts)
}

pub(crate) fn render_backend(options: &BackendOptions) -> String {
    let opts = if options.optimize {
        Vec::new()
    } else {
        vec!["noopt".to_string()]
    };
    render("backend", opts)
}

fn render(name: &str, opts: Vec<String>) -> String {
    if opts.is_empty() {
        name.to_string()
    } else {
        format!("{name}({})", opts.join(","))
    }
}

// ---------------------------------------------------------------------
// STOS_PIPELINE.
// ---------------------------------------------------------------------

/// Parses a `;`-separated pipeline list (the `STOS_PIPELINE` format):
/// each entry a preset name, a spec string, or `name:spec`.
///
/// # Errors
///
/// Propagates the first entry's parse error; an empty list is an error.
pub fn parse_pipeline_list(list: &str) -> Result<Vec<Pipeline>, SpecError> {
    let mut pipelines = Vec::new();
    for entry in list.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        if let Some((name, spec)) = entry.split_once(':') {
            // The labeled form relabels a preset or a parsed spec alike.
            let pipeline = match Pipeline::preset(spec.trim()) {
                Some(preset) => preset,
                None => parse(spec)?,
            };
            pipelines.push(pipeline.with_name(name.trim()));
        } else if let Some(preset) = Pipeline::preset(entry) {
            pipelines.push(preset);
        } else {
            pipelines.push(parse(entry)?);
        }
    }
    if pipelines.is_empty() {
        return Err(SpecError::new("empty pipeline list"));
    }
    Ok(pipelines)
}

/// The stack list a harness should run: `STOS_PIPELINE` if set (panicking
/// loudly on a malformed value — harnesses want loud failures), otherwise
/// `default()`.
pub fn pipelines_from_env_or(default: impl FnOnce() -> Vec<Pipeline>) -> Vec<Pipeline> {
    match std::env::var("STOS_PIPELINE") {
        Ok(list) => parse_pipeline_list(&list).unwrap_or_else(|e| panic!("STOS_PIPELINE: {e}")),
        Err(_) => default(),
    }
}
