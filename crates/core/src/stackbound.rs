//! Whole-program interrupt-aware stack-bound analysis (`stackbound`).
//!
//! Runs over the *linked* [`mcu::Image`] — after every optimization and
//! the backend have had their say — so the frames it sums are exactly
//! the frames the machine's `do_call` pushes. On the M16, RAM stack
//! usage is precisely the sum of frame sizes along the active call
//! chain: return addresses, saved registers, and the evaluation stack
//! are host-side machine state that occupies no simulated SRAM, so a
//! function's worst-case stack effect is its `frame_size` and nothing
//! else.
//!
//! The analysis:
//!
//! 1. builds the whole-program call graph — direct `Call` edges plus
//!    the interrupt-vector entry points. The M16 ISA has no indirect
//!    calls, so a call's target set is unresolved only when its
//!    function index is out of the image's function table (the static
//!    shadow of the machine's `BadCode("bad function index")` fault) or
//!    a vector is wired to a missing function;
//! 2. computes each function's worst-case depth,
//!    `worst(f) = frame(f) + max over callees of worst(c)`, by DFS
//!    with cycle detection;
//! 3. composes the certified bound the way the machine model nests
//!    interrupts: handler frames stack on top of the deepest task-mode
//!    point; handlers enter with interrupts disabled, so unless some
//!    handler-reachable code executes `IrqEnable`, at most one handler
//!    is ever on the stack (max over wired vectors). If a handler *can*
//!    re-enable, the bound conservatively lets every wired vector
//!    preempt once (sum over vectors; each vector's pending bit is
//!    cleared at dispatch, so a second frame of the same vector needs a
//!    fresh device event).
//!
//! Findings are structured [`Diagnostic`]s — `S001` (recursion: no
//! finite bound exists), `S002` (unresolved call target), `S003`
//! (bound exceeds the SRAM stack budget) — and the numbers land in
//! [`StackStats`] ([`crate::Metrics::stack`]). The simulator's
//! [`mcu::Machine::stack_watermark`] is the dynamic ground truth every
//! certified bound must dominate; the `stack_analysis` harness and the
//! property tests assert exactly that across the app suite.

use mcu::isa::Instr;
use mcu::Image;

use crate::diag::{Diagnostic, Severity};

/// Stack-bound analysis rollup for one build (`None` in
/// [`crate::Metrics::stack`] when the `stackbound` pass did not run).
/// All byte counts measure down from the top of SRAM, the same unit as
/// [`mcu::Machine::stack_watermark`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// The certified worst-case stack bound: task depth plus interrupt
    /// overhead. `None` when no finite bound exists (`S001`).
    pub bound_bytes: Option<u32>,
    /// Worst-case task-mode depth (the entry function's chain).
    pub task_bytes: Option<u32>,
    /// Worst-case interrupt overhead stacked on top of the task depth.
    pub isr_bytes: Option<u32>,
    /// The SRAM stack budget the bound was checked against: the space
    /// between the image's static data and the top of SRAM, unless the
    /// spec overrode it with `stackbound(budget=N)`.
    pub budget_bytes: u32,
    /// Interrupt vectors wired to a handler.
    pub wired_vectors: usize,
    /// Whether handler-reachable code can re-enable interrupts, forcing
    /// the conservative sum-over-vectors nesting policy.
    pub nested_irqs: bool,
}

/// What [`analyze`] certifies: the numbers and the findings.
#[derive(Debug, Clone, Default)]
pub struct StackReport {
    /// The analysis rollup (deposited into [`crate::Metrics::stack`]).
    pub stats: StackStats,
    /// `S001`–`S003` findings, in deterministic traversal order.
    pub diagnostics: Vec<Diagnostic>,
}

/// Per-function DFS state: worst-case depth and IrqEnable reachability,
/// memoized under a white/grey/black coloring for cycle detection.
struct Dfs<'a> {
    image: &'a Image,
    /// `(pc, callee)` call sites per function, in code order.
    edges: Vec<Vec<(u32, u32)>>,
    /// 0 = unvisited, 1 = on the DFS stack, 2 = done.
    color: Vec<u8>,
    /// Valid when black: `(worst depth, subtree contains IrqEnable)`.
    memo: Vec<(Option<u32>, bool)>,
    diagnostics: Vec<Diagnostic>,
}

impl Dfs<'_> {
    fn new(image: &Image) -> Dfs<'_> {
        let n = image.functions.len();
        let edges = image
            .functions
            .iter()
            .map(|f| {
                f.code
                    .iter()
                    .enumerate()
                    .filter_map(|(pc, i)| match i {
                        Instr::Call { func } => Some((pc as u32, *func)),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        Dfs {
            image,
            edges,
            color: vec![0; n],
            memo: vec![(None, false); n],
            diagnostics: Vec::new(),
        }
    }

    /// Worst-case stack depth rooted at `f` (its own frame included) and
    /// whether `f`'s call subtree can execute `IrqEnable`. Emits `S001`
    /// on every cycle-closing edge and `S002` on every out-of-range
    /// call; each function is expanded once, so each finding is emitted
    /// once, in deterministic DFS order.
    fn worst(&mut self, f: u32) -> (Option<u32>, bool) {
        let fi = f as usize;
        match self.color[fi] {
            2 => return self.memo[fi],
            1 => return (None, false), // callers handle the back edge
            _ => {}
        }
        self.color[fi] = 1;
        let me = &self.image.functions[fi];
        let frame = me.frame_size as u32;
        let mut enables = me.code.iter().any(|i| matches!(i, Instr::IrqEnable));
        let mut deepest_callee: u32 = 0;
        let mut unbounded = false;
        for k in 0..self.edges[fi].len() {
            let (pc, callee) = self.edges[fi][k];
            let caller_name = &self.image.functions[fi].name;
            if callee as usize >= self.image.functions.len() {
                // The machine faults `BadCode` here before pushing a
                // frame, so the edge's stack effect is exactly zero —
                // but the image is broken and the bound is advisory.
                self.diagnostics.push(Diagnostic::new(
                    Severity::Error,
                    "S002",
                    format!("{caller_name}:{pc}"),
                    format!(
                        "unresolved call target: function index {callee} is out of range \
                         (image has {} functions)",
                        self.image.functions.len()
                    ),
                ));
                continue;
            }
            if self.color[callee as usize] == 1 {
                let callee_name = &self.image.functions[callee as usize].name;
                self.diagnostics.push(Diagnostic::new(
                    Severity::Error,
                    "S001",
                    format!("{caller_name}:{pc}"),
                    format!(
                        "recursive call to `{callee_name}`: the call graph has a cycle, \
                         so no finite stack bound exists"
                    ),
                ));
                unbounded = true;
                continue;
            }
            let (w, e) = self.worst(callee);
            enables |= e;
            match w {
                None => unbounded = true,
                Some(w) => deepest_callee = deepest_callee.max(w),
            }
        }
        let result = if unbounded {
            None
        } else {
            Some(frame + deepest_callee)
        };
        self.color[fi] = 2;
        self.memo[fi] = (result, enables);
        (result, enables)
    }
}

/// Certifies a worst-case stack bound for `image` against the SRAM
/// stack budget (`budget_override` in bytes, or the space between the
/// image's static data and the top of SRAM). A pure function of its
/// arguments — byte-identical across worker counts, pass-cache states,
/// and execution engines by construction.
pub fn analyze(image: &Image, budget_override: Option<u32>) -> StackReport {
    let mut dfs = Dfs::new(image);

    // Task mode: the entry function's worst chain (its frame counts —
    // `Machine::new` places it on the stack before the first cycle).
    let task = match image.entry {
        Some(e) => dfs.worst(e).0,
        None => Some(0),
    };

    // Interrupt mode: wired vectors in vector order.
    let mut wired = Vec::new();
    for (v, slot) in image.vectors.iter().enumerate() {
        if let Some(h) = *slot {
            if h as usize >= image.functions.len() {
                dfs.diagnostics.push(Diagnostic::new(
                    Severity::Error,
                    "S002",
                    format!("vector{v}"),
                    format!(
                        "interrupt vector {v} is wired to missing function index {h} \
                         (image has {} functions)",
                        image.functions.len()
                    ),
                ));
                continue;
            }
            wired.push(h);
        }
    }
    let mut nested_irqs = false;
    let handler_worsts: Option<Vec<u32>> = wired
        .iter()
        .map(|&h| {
            let (w, e) = dfs.worst(h);
            nested_irqs |= e;
            w
        })
        .collect();
    let isr = handler_worsts.map(|ws| {
        if nested_irqs {
            // Some handler-reachable code re-enables interrupts: any
            // wired vector may preempt the running handler. Each
            // vector's pending bit clears at dispatch, so one frame per
            // vector bounds the pile-up.
            ws.iter().sum()
        } else {
            // Handlers run interrupts-disabled to the Reti: at most one
            // handler chain is ever on the stack.
            ws.iter().copied().max().unwrap_or(0)
        }
    });

    let bound = match (task, isr) {
        (Some(t), Some(i)) => Some(t + i),
        _ => None,
    };
    let budget =
        budget_override.unwrap_or_else(|| u32::from(image.profile.sram_end() - image.static_top));
    let site = match image.entry {
        Some(e) => image.functions[e as usize].name.clone(),
        None => "image".to_string(),
    };
    match bound {
        None => dfs.diagnostics.push(Diagnostic::new(
            Severity::Error,
            "S003",
            site,
            format!(
                "no finite worst-case stack bound exists (see S001); \
                 the SRAM stack budget is {budget} bytes"
            ),
        )),
        Some(b) if b > budget => dfs.diagnostics.push(Diagnostic::new(
            Severity::Error,
            "S003",
            site,
            format!(
                "worst-case stack of {b} bytes exceeds the SRAM stack budget of {budget} bytes"
            ),
        )),
        Some(_) => {}
    }

    StackReport {
        stats: StackStats {
            bound_bytes: bound,
            task_bytes: task,
            isr_bytes: isr,
            budget_bytes: budget,
            wired_vectors: wired.len(),
            nested_irqs,
        },
        diagnostics: dfs.diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu::image::CodeFunction;
    use mcu::Profile;

    /// An image whose functions are `(name, frame, calls, interrupt)`.
    fn image(fns: &[(&str, u16, &[u32], Option<u8>)]) -> Image {
        let mut img = Image::new(Profile::mica2());
        for (name, frame, calls, irq) in fns {
            let mut f = CodeFunction::new(*name);
            f.frame_size = *frame;
            f.interrupt = *irq;
            f.code = calls.iter().map(|&c| Instr::Call { func: c }).collect();
            f.code.push(if irq.is_some() {
                Instr::Reti
            } else {
                Instr::Ret
            });
            img.add_function(f);
        }
        img.entry = img.find_function("main");
        img
    }

    fn codes(r: &StackReport) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn straight_chain_sums_frames() {
        // main(16) -> a(32) -> b(8)
        let img = image(&[
            ("b", 8, &[], None),
            ("a", 32, &[0], None),
            ("main", 16, &[1], None),
        ]);
        let r = analyze(&img, None);
        assert_eq!(r.stats.bound_bytes, Some(56));
        assert_eq!(r.stats.task_bytes, Some(56));
        assert_eq!(r.stats.isr_bytes, Some(0));
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn diamond_takes_the_deeper_branch() {
        // main(4) calls thin(8) and fat(100); both call leaf(2).
        let img = image(&[
            ("leaf", 2, &[], None),
            ("thin", 8, &[0], None),
            ("fat", 100, &[0], None),
            ("main", 4, &[1, 2], None),
        ]);
        let r = analyze(&img, None);
        assert_eq!(r.stats.bound_bytes, Some(4 + 100 + 2));
    }

    #[test]
    fn recursion_is_unbounded_and_flagged() {
        let img = image(&[("rec", 64, &[0], None), ("main", 16, &[0], None)]);
        let r = analyze(&img, None);
        assert_eq!(r.stats.bound_bytes, None);
        assert_eq!(codes(&r), ["S001", "S003"]);
        assert!(r.diagnostics[0].site.starts_with("rec:"));
        assert!(r.diagnostics[0].message.contains("`rec`"));
    }

    #[test]
    fn mutual_recursion_is_flagged_once() {
        let img = image(&[
            ("ping", 8, &[1], None),
            ("pong", 8, &[0], None),
            ("main", 4, &[0], None),
        ]);
        let r = analyze(&img, None);
        assert_eq!(r.stats.bound_bytes, None);
        assert_eq!(codes(&r), ["S001", "S003"]);
    }

    #[test]
    fn out_of_range_call_is_unresolved_but_bounded() {
        // The machine faults before pushing a frame, so the bound holds.
        let img = image(&[("main", 16, &[7], None)]);
        let r = analyze(&img, None);
        assert_eq!(codes(&r), ["S002"]);
        assert_eq!(r.stats.bound_bytes, Some(16));
    }

    #[test]
    fn single_handler_stacks_on_deepest_task_point() {
        let img = image(&[
            ("leaf", 10, &[], None),
            ("tick", 24, &[0], Some(mcu::vectors::TIMER0)),
            ("main", 16, &[0], None),
        ]);
        let r = analyze(&img, None);
        assert_eq!(r.stats.task_bytes, Some(26));
        assert_eq!(r.stats.isr_bytes, Some(34));
        assert_eq!(r.stats.bound_bytes, Some(60));
        assert_eq!(r.stats.wired_vectors, 1);
        assert!(!r.stats.nested_irqs);
    }

    #[test]
    fn handlers_take_max_unless_one_reenables() {
        let fns: &[(&str, u16, &[u32], Option<u8>)] = &[
            ("tick", 24, &[], Some(mcu::vectors::TIMER0)),
            ("adc", 40, &[], Some(mcu::vectors::ADC)),
            ("main", 16, &[], None),
        ];
        let img = image(fns);
        let r = analyze(&img, None);
        assert_eq!(r.stats.isr_bytes, Some(40), "disjoint handlers: max");

        // Same image, but `tick` re-enables interrupts mid-handler:
        // every wired vector may now preempt once, so the ISR overhead
        // is the sum.
        let mut img = image(fns);
        img.functions[0].code.insert(0, Instr::IrqEnable);
        let r = analyze(&img, None);
        assert!(r.stats.nested_irqs);
        assert_eq!(r.stats.isr_bytes, Some(64));
        assert_eq!(r.stats.bound_bytes, Some(16 + 64));
    }

    #[test]
    fn budget_override_trips_s003() {
        let img = image(&[("main", 16, &[], None)]);
        let ok = analyze(&img, Some(16));
        assert!(ok.diagnostics.is_empty());
        let tight = analyze(&img, Some(15));
        assert_eq!(codes(&tight), ["S003"]);
        assert!(tight.diagnostics[0].message.contains("16 bytes"));
        assert_eq!(tight.stats.budget_bytes, 15);
    }

    #[test]
    fn default_budget_is_sram_above_static_data() {
        let mut img = image(&[("main", 16, &[], None)]);
        img.static_top = img.profile.sram_base() + 100;
        let r = analyze(&img, None);
        let expect = u32::from(img.profile.sram_end() - img.static_top);
        assert_eq!(r.stats.budget_bytes, expect);
    }

    #[test]
    fn bound_dominates_observed_watermark() {
        // End-to-end on a real machine: run the chain and compare.
        let img = image(&[
            ("b", 8, &[], None),
            ("a", 32, &[0], None),
            ("main", 16, &[1], None),
        ]);
        let mut img = img;
        // Make main halt instead of returning so the run is clean.
        let main = img.entry.unwrap() as usize;
        *img.functions[main].code.last_mut().unwrap() = Instr::Halt;
        let bound = analyze(&img, None).stats.bound_bytes.unwrap();
        let mut m = mcu::Machine::new(&img);
        m.run(10_000);
        assert_eq!(m.state, mcu::RunState::Halted);
        assert!(u32::from(m.stack_watermark()) <= bound);
        // And here the chain is unconditional, so the bound is tight.
        assert_eq!(u32::from(m.stack_watermark()), bound);
    }
}
