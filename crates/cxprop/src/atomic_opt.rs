//! Atomic-section optimization (§2.1).
//!
//! The concurrency analysis "supports the elimination of nested atomic
//! sections and the avoidance of the need to save the state of the
//! interrupt-enable bit for non-nested atomic sections":
//!
//! * an `atomic` lexically nested inside another is a no-op — unwrap it,
//! * an `atomic` in code reachable **only from interrupt handlers** runs
//!   with interrupts already disabled — unwrap it,
//! * an `atomic` in code reachable **only from task/main context** runs
//!   with interrupts known-enabled — demote
//!   [`AtomicStyle::SaveRestore`] to the cheaper
//!   [`AtomicStyle::DisableEnable`],
//! * code reachable from both contexts keeps the conservative form.

use tcil::ir::*;
use tcil::visit;
use tcil::Program;

/// What the pass changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtomicStats {
    /// Nested or handler-context sections unwrapped entirely.
    pub removed: usize,
    /// Save/restore sections demoted to plain disable/enable.
    pub demoted: usize,
}

/// Runs the optimization.
pub fn run(program: &mut Program) -> AtomicStats {
    let nf = program.functions.len();
    let mut callees: Vec<Vec<u32>> = vec![Vec::new(); nf];
    for (fi, f) in program.functions.iter().enumerate() {
        visit::walk_stmts(&f.body, &mut |s| {
            if let Stmt::Call { func, .. } = s {
                callees[fi].push(func.0);
            }
        });
    }
    let reach_from = |roots: Vec<u32>| -> Vec<bool> {
        let mut seen = vec![false; nf];
        let mut work = roots;
        while let Some(f) = work.pop() {
            if std::mem::replace(&mut seen[f as usize], true) {
                continue;
            }
            work.extend(callees[f as usize].iter().copied());
        }
        seen
    };
    let async_reach = reach_from(
        program
            .functions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.interrupt.map(|_| i as u32))
            .collect(),
    );
    let sync_reach = reach_from(program.entry.iter().map(|e| e.0).collect());

    let mut stats = AtomicStats::default();
    for (fi, f) in program.functions.iter_mut().enumerate() {
        let ctx = match (sync_reach[fi], async_reach[fi]) {
            (true, false) => Ctx::SyncOnly,
            (false, true) => Ctx::AsyncOnly,
            _ => Ctx::Mixed,
        };
        rewrite_block(&mut f.body, ctx, 0, &mut stats);
        visit::sweep_nops(&mut f.body);
    }
    stats
}

#[derive(Clone, Copy, PartialEq)]
enum Ctx {
    SyncOnly,
    AsyncOnly,
    Mixed,
}

fn rewrite_block(b: &mut Block, ctx: Ctx, depth: u32, stats: &mut AtomicStats) {
    for s in b.iter_mut() {
        match s {
            Stmt::Atomic { body, style } => {
                let mut inner = std::mem::take(body);
                rewrite_block(&mut inner, ctx, depth + 1, stats);
                if depth > 0 || ctx == Ctx::AsyncOnly {
                    // Nested, or interrupts already off: plain block.
                    stats.removed += 1;
                    *s = Stmt::Block(inner);
                } else {
                    if ctx == Ctx::SyncOnly && *style == AtomicStyle::SaveRestore {
                        *style = AtomicStyle::DisableEnable;
                        stats.demoted += 1;
                    }
                    *body = inner;
                }
            }
            Stmt::If { then_, else_, .. } => {
                rewrite_block(then_, ctx, depth, stats);
                rewrite_block(else_, ctx, depth, stats);
            }
            Stmt::While { body, .. } | Stmt::Block(body) => {
                rewrite_block(body, ctx, depth, stats);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_atomics_unwrapped() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             interrupt(TIMER0) void h() { g = g; }
             void main() { atomic { atomic { g = 1; } } }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.demoted, 1);
    }

    #[test]
    fn handler_context_atomics_removed() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             void helper() { atomic { g = 1; } }
             interrupt(TIMER0) void h() { helper(); }
             void main() { }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn sync_atomics_demoted() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             interrupt(TIMER0) void h() { g = 1; }
             void main() { atomic { g = 2; } }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.demoted, 1);
        assert_eq!(stats.removed, 0);
        let main = &p.functions[p.entry.unwrap().0 as usize];
        assert!(matches!(
            main.body[0],
            Stmt::Atomic {
                style: AtomicStyle::DisableEnable,
                ..
            }
        ));
    }

    #[test]
    fn mixed_context_kept_conservative() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             void shared() { atomic { g = 1; } }
             interrupt(TIMER0) void h() { shared(); }
             void main() { shared(); }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.removed, 0);
        assert_eq!(stats.demoted, 0);
    }
}
