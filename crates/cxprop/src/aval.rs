//! Abstract values: the reduced product of an integer interval domain and
//! a fat-pointer bounds domain.
//!
//! Pointer values do not track *which* object they point into — only the
//! three quantities the inserted checks actually test:
//!
//! * nullness,
//! * `room` = `end - val` in bytes (how much referent is left),
//! * `back` = `val - base` in bytes (how far past the base we are).
//!
//! This is enough to decide every [`tcil::ir::CheckKind`], and it joins
//! cleanly across pointers into different objects because each fat
//! pointer's bounds are its own.

use tcil::ir::*;
use tcil::types::{size_of, IntKind, StructDef, Type};

use crate::ival::Ival;

/// Three-valued nullness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely null.
    Yes,
    /// Definitely not null.
    No,
    /// Unknown.
    Maybe,
}

impl Tri {
    /// Lattice join.
    pub fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Maybe
        }
    }
}

/// Abstract pointer: nullness plus fat bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct APtr {
    /// Is the value null?
    pub null: Tri,
    /// `end - val` in bytes.
    pub room: Ival,
    /// `val - base` in bytes.
    pub back: Ival,
}

impl APtr {
    /// A completely unknown pointer.
    pub fn top() -> APtr {
        APtr {
            null: Tri::Maybe,
            room: Ival::any(),
            back: Ival::any(),
        }
    }

    /// The null pointer.
    pub fn null() -> APtr {
        APtr {
            null: Tri::Yes,
            room: Ival::any(),
            back: Ival::any(),
        }
    }

    /// A non-null pointer with `room` bytes ahead and `back` bytes behind.
    pub fn object(room: Ival, back: Ival) -> APtr {
        APtr {
            null: Tri::No,
            room,
            back,
        }
    }

    /// Lattice join.
    pub fn join(self, o: APtr) -> APtr {
        APtr {
            null: self.null.join(o.null),
            room: self.room.join(o.room),
            back: self.back.join(o.back),
        }
    }

    /// Advances the pointer by `delta` bytes.
    pub fn advance(self, delta: Ival) -> APtr {
        APtr {
            null: self.null,
            room: Ival::binop(BinOp::Sub, self.room, delta, IntKind::I32),
            back: Ival::binop(BinOp::Add, self.back, delta, IntKind::I32),
        }
    }
}

/// An abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AVal {
    /// Unreachable.
    Bot,
    /// Integer interval.
    Int(Ival),
    /// Pointer.
    Ptr(APtr),
    /// Anything.
    Top,
}

impl AVal {
    /// Lattice join.
    pub fn join(self, o: AVal) -> AVal {
        match (self, o) {
            (AVal::Bot, x) | (x, AVal::Bot) => x,
            (AVal::Int(a), AVal::Int(b)) => AVal::Int(a.join(b)),
            (AVal::Ptr(a), AVal::Ptr(b)) => AVal::Ptr(a.join(b)),
            _ => AVal::Top,
        }
    }

    /// Widening for loop heads.
    pub fn widen(self, next: AVal, kind: IntKind) -> AVal {
        match (self, next) {
            (AVal::Int(a), AVal::Int(b)) => AVal::Int(a.widen(b, kind)),
            (AVal::Ptr(a), AVal::Ptr(b)) => AVal::Ptr(APtr {
                null: a.null.join(b.null),
                room: a.room.widen(b.room, IntKind::I32),
                back: a.back.widen(b.back, IntKind::I32),
            }),
            (a, b) => a.join(b),
        }
    }

    /// The constant value, if exactly one integer is possible.
    pub fn as_const(self) -> Option<i64> {
        match self {
            AVal::Int(i) => i.as_const(),
            _ => None,
        }
    }

    /// Truth of this value as a branch condition, if decidable.
    pub fn truth(self) -> Option<bool> {
        match self {
            AVal::Int(i) => {
                if i.never_zero() {
                    Some(true)
                } else if i.always_zero() {
                    Some(false)
                } else {
                    None
                }
            }
            AVal::Ptr(p) => match p.null {
                Tri::Yes => Some(false),
                Tri::No => Some(true),
                Tri::Maybe => None,
            },
            _ => None,
        }
    }

    /// The pointer view, if this is a pointer.
    pub fn as_ptr(self) -> Option<APtr> {
        match self {
            AVal::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// Top for a given type.
    pub fn top_for(ty: &Type) -> AVal {
        match ty {
            Type::Int(k) => AVal::Int(Ival::top(*k)),
            Type::Ptr(..) => AVal::Ptr(APtr::top()),
            _ => AVal::Top,
        }
    }
}

/// Computes the abstract value of `&place` (and thus of the `MakeFat` the
/// CCured stage builds over it): `back` is the byte offset into the
/// bounds object (the instrumenter strips one trailing index to find it),
/// `room` is the remainder.
pub fn addr_of_value(
    place: &Place,
    place_ty_resolver: impl Fn(&Place) -> Type,
    structs: &[StructDef],
    eval_index: impl Fn(&Expr) -> Ival,
) -> APtr {
    // Mirror `ccured::instrument::make_fat`: the bounds object is the
    // place with one trailing index stripped.
    let mut obj = place.clone();
    let mut idx: Option<Ival> = None;
    if let Some(PlaceElem::Index(i)) = obj.elems.last() {
        idx = Some(eval_index(i));
        obj.elems.pop();
        obj.ty = place_ty_resolver(&obj);
    }
    let obj_size = size_of(&obj.ty, structs) as i64;
    let elem_size = match &obj.ty {
        Type::Array(t, _) => size_of(t, structs) as i64,
        _ => obj_size.max(1),
    };
    let back = match idx {
        Some(i) => Ival::binop(BinOp::Mul, i, Ival::const_(elem_size), IntKind::I32),
        None => Ival::const_(0),
    };
    let room = Ival::binop(BinOp::Sub, Ival::const_(obj_size), back, IntKind::I32);
    APtr::object(room, back)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_preserve_decidability_when_equal() {
        let a = AVal::Int(Ival::const_(3));
        let b = AVal::Int(Ival::const_(3));
        assert_eq!(a.join(b).as_const(), Some(3));
        let c = AVal::Int(Ival::const_(5));
        assert_eq!(a.join(c).as_const(), None);
    }

    #[test]
    fn ptr_join_keeps_common_bounds() {
        let a = APtr::object(Ival::const_(8), Ival::const_(0));
        let b = APtr::object(Ival::const_(16), Ival::const_(0));
        let j = a.join(b);
        assert_eq!(j.null, Tri::No);
        assert_eq!(j.room, Ival::Range(8, 16));
    }

    #[test]
    fn advance_tracks_room_and_back() {
        let p = APtr::object(Ival::const_(8), Ival::const_(0));
        let q = p.advance(Ival::const_(3));
        assert_eq!(q.room.as_const(), Some(5));
        assert_eq!(q.back.as_const(), Some(3));
    }

    #[test]
    fn truth_of_pointers() {
        assert_eq!(AVal::Ptr(APtr::null()).truth(), Some(false));
        assert_eq!(
            AVal::Ptr(APtr::object(Ival::const_(1), Ival::const_(0))).truth(),
            Some(true)
        );
        assert_eq!(AVal::Ptr(APtr::top()).truth(), None);
    }
}
