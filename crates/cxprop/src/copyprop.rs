//! Block-local copy propagation (§2.1: "eliminates useless variables and
//! increases cXprop's dataflow analysis precision slightly").
//!
//! After inlining, caller bodies are full of `__inl_* = x; use(__inl_*)`
//! chains. Within one block (and with no intervening write to either
//! side), a use of the copy can read the original instead, turning the
//! copy into a dead store for DCE to sweep.

use std::collections::HashMap;

use tcil::ir::*;
use tcil::visit;
use tcil::Program;

/// Runs copy propagation; returns the number of loads redirected.
pub fn run(program: &mut Program) -> usize {
    let mut redirected = 0;
    for f in &mut program.functions {
        // Locals whose address escapes can alias; skip them.
        let mut addr_taken = vec![false; f.locals.len()];
        visit::walk_stmts(&f.body, &mut |s| {
            visit::stmt_exprs(s, &mut |e| {
                visit::walk_expr(e, &mut |x| {
                    if let ExprKind::AddrOf(p) = &x.kind {
                        if let PlaceBase::Local(id) = &p.base {
                            addr_taken[id.0 as usize] = true;
                        }
                    }
                });
            });
        });
        redirected += prop_block(&mut f.body, &addr_taken);
    }
    redirected
}

fn prop_block(b: &mut Block, addr_taken: &[bool]) -> usize {
    let mut n = 0;
    // copy[a] = b  means  "a currently equals local b".
    let mut copies: HashMap<u32, u32> = HashMap::new();
    for s in b.iter_mut() {
        // First rewrite uses in this statement.
        visit::stmt_exprs_mut(s, &mut |e| {
            visit::walk_expr_mut(e, &mut |x| {
                if let ExprKind::Load(p) = &mut x.kind {
                    if p.elems.is_empty() {
                        if let PlaceBase::Local(id) = &mut p.base {
                            if let Some(src) = copies.get(&id.0) {
                                id.0 = *src;
                                n += 1;
                            }
                        }
                    }
                }
            });
        });
        // Then account for this statement's effects.
        match s {
            Stmt::Assign(p, e) if p.elems.is_empty() => {
                if let PlaceBase::Local(dst) = &p.base {
                    let dst = dst.0;
                    // Any existing copies of dst are invalidated.
                    copies.retain(|a, b| *a != dst && *b != dst);
                    if let ExprKind::Load(src) = &e.kind {
                        if src.elems.is_empty() {
                            if let PlaceBase::Local(sid) = &src.base {
                                if !addr_taken[dst as usize]
                                    && !addr_taken[sid.0 as usize]
                                    && p.ty.is_scalar()
                                {
                                    copies.insert(dst, sid.0);
                                }
                            }
                        }
                    }
                } else {
                    // Store to a global or through a pointer: globals do
                    // not affect local copies; pointer stores may hit
                    // address-taken locals, which we excluded.
                }
            }
            Stmt::Assign(_, _) => {}
            Stmt::Call { dst, .. } | Stmt::BuiltinCall { dst, .. } => {
                if let Some(p) = dst {
                    if let PlaceBase::Local(d) = &p.base {
                        let d = d.0;
                        copies.retain(|a, b| *a != d && *b != d);
                    }
                }
            }
            Stmt::If { then_, else_, .. } => {
                n += prop_block(then_, addr_taken);
                n += prop_block(else_, addr_taken);
                copies.clear();
            }
            Stmt::While { body, .. } => {
                n += prop_block(body, addr_taken);
                copies.clear();
            }
            Stmt::Atomic { body, .. } | Stmt::Block(body) => {
                n += prop_block(body, addr_taken);
                copies.clear();
            }
            _ => {}
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirects_through_copies() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             void f(uint8_t x) { uint8_t y; y = x; g = y; }
             void main() { f(1); }",
        )
        .unwrap();
        let n = run(&mut p);
        assert!(n >= 1);
        // g = y became g = x; y is now a dead store.
        let stats = crate::dce::run(&mut p);
        assert!(stats.stores_removed >= 1);
    }

    #[test]
    fn respects_reassignment() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             void f(uint8_t x) { uint8_t y; y = x; x = 9; g = y; }
             void main() { f(1); }",
        )
        .unwrap();
        run(&mut p);
        // y must NOT be replaced by x after x changed; execution still
        // correct — verified by the engine-level tests; here just ensure
        // the copy map dropped the pair (no redirect of the final load).
        let f = &p.functions[p.find_function("f").unwrap().0 as usize];
        let Stmt::Assign(_, e) = f.body.last().unwrap() else {
            panic!()
        };
        let ExprKind::Load(pl) = &e.kind else {
            panic!()
        };
        let PlaceBase::Local(id) = &pl.base else {
            panic!()
        };
        assert_eq!(f.locals[id.0 as usize].name, "y");
    }

    #[test]
    fn skips_address_taken_locals() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             void touch(uint8_t * p) { *p = 5; }
             void f(uint8_t x) { uint8_t y; y = x; touch(&y); g = y; }
             void main() { f(1); }",
        )
        .unwrap();
        run(&mut p);
        let f = &p.functions[p.find_function("f").unwrap().0 as usize];
        let Stmt::Assign(_, e) = f.body.last().unwrap() else {
            panic!()
        };
        let ExprKind::Load(pl) = &e.kind else {
            panic!()
        };
        let PlaceBase::Local(id) = &pl.base else {
            panic!()
        };
        assert_eq!(f.locals[id.0 as usize].name, "y");
    }
}
