//! Strong whole-program dead code and dead data elimination (§2.1).
//!
//! The paper singles this out: GCC's DCE "fails to eliminate some of the
//! trash left over after functions are inlined", while this pass removes
//! *any* part of the program it can show is dead — unreachable functions
//! (renumbering call targets), stores to never-read variables, and whole
//! globals (renumbering global ids), which is where most of Figure 3(b)'s
//! RAM savings come from.

use tcil::ir::*;
use tcil::visit;
use tcil::Program;

/// What DCE removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DceStats {
    /// Unreachable functions removed.
    pub functions_removed: usize,
    /// Dead globals removed.
    pub globals_removed: usize,
    /// Dead stores removed.
    pub stores_removed: usize,
}

/// Runs dead-code elimination to a (bounded) fixpoint.
pub fn run(program: &mut Program) -> DceStats {
    let mut stats = DceStats::default();
    for _ in 0..4 {
        let f = remove_dead_functions(program);
        let s = remove_dead_stores(program);
        let g = remove_dead_globals(program);
        stats.functions_removed += f;
        stats.stores_removed += s;
        stats.globals_removed += g;
        if f + s + g == 0 {
            break;
        }
    }
    stats
}

fn callees_of(b: &Block) -> Vec<u32> {
    let mut out = Vec::new();
    visit::walk_stmts(b, &mut |s| {
        if let Stmt::Call { func, .. } = s {
            out.push(func.0);
        }
    });
    out
}

/// Removes functions unreachable from `main` and the interrupt vectors,
/// renumbering [`FuncId`]s.
fn remove_dead_functions(program: &mut Program) -> usize {
    let nf = program.functions.len();
    let mut live = vec![false; nf];
    let mut work: Vec<u32> = program
        .entry
        .iter()
        .map(|f| f.0)
        .chain(
            program
                .functions
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.interrupt.map(|_| i as u32)),
        )
        .collect();
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut live[f as usize], true) {
            continue;
        }
        work.extend(callees_of(&program.functions[f as usize].body));
    }
    let dead = live.iter().filter(|l| !**l).count();
    if dead == 0 {
        return 0;
    }
    // Build the renumbering.
    let mut remap = vec![u32::MAX; nf];
    let mut kept = Vec::with_capacity(nf - dead);
    for (i, f) in program.functions.drain(..).enumerate() {
        if live[i] {
            remap[i] = kept.len() as u32;
            kept.push(f);
        }
    }
    program.functions = kept;
    for f in &mut program.functions {
        visit::walk_stmts_mut(&mut f.body, &mut |s| {
            if let Stmt::Call { func, .. } = s {
                func.0 = remap[func.0 as usize];
            }
        });
    }
    program.entry = program.entry.map(|e| FuncId(remap[e.0 as usize]));
    program.tasks = program
        .tasks
        .iter()
        .filter(|t| remap[t.0 as usize] != u32::MAX)
        .map(|t| FuncId(remap[t.0 as usize]))
        .collect();
    dead
}

/// Removes assignments to locals and globals that are never read and
/// never address-taken. Expressions are pure, so dropping the store drops
/// nothing observable.
fn remove_dead_stores(program: &mut Program) -> usize {
    let ng = program.globals.len();
    let mut global_read = vec![false; ng];
    let mut global_addr = vec![false; ng];
    // Keep-alives: the modeled CCured runtime blob.
    for (gi, g) in program.globals.iter().enumerate() {
        if g.name.starts_with("__ccured_rt") || g.name.starts_with("__ccured_msg_") {
            global_read[gi] = true;
        }
    }
    let mut per_func_reads: Vec<Vec<bool>> = Vec::new();
    let mut per_func_addr: Vec<Vec<bool>> = Vec::new();
    for f in &program.functions {
        let mut lread = vec![false; f.locals.len()];
        let mut laddr = vec![false; f.locals.len()];
        visit::walk_stmts(&f.body, &mut |s| {
            visit::stmt_exprs(s, &mut |e| {
                visit::walk_expr(e, &mut |x| match &x.kind {
                    ExprKind::Load(p) => match &p.base {
                        PlaceBase::Local(id) => lread[id.0 as usize] = true,
                        PlaceBase::Global(g) => global_read[g.0 as usize] = true,
                        PlaceBase::Deref(_) => {}
                    },
                    ExprKind::AddrOf(p) => match &p.base {
                        PlaceBase::Local(id) => laddr[id.0 as usize] = true,
                        PlaceBase::Global(g) => global_addr[g.0 as usize] = true,
                        PlaceBase::Deref(_) => {}
                    },
                    _ => {}
                });
            });
            // Destinations with projections still *read* the index exprs —
            // covered by stmt_exprs — and a projected store reads nothing
            // else of the base.
        });
        per_func_reads.push(lread);
        per_func_addr.push(laddr);
    }
    let mut removed = 0;
    for (fi, f) in program.functions.iter_mut().enumerate() {
        let lread = &per_func_reads[fi];
        let laddr = &per_func_addr[fi];
        let params = f.params;
        visit::walk_stmts_mut(&mut f.body, &mut |s| {
            let dead_dst = |p: &Place| -> bool {
                match &p.base {
                    PlaceBase::Local(id) => {
                        !lread[id.0 as usize] && !laddr[id.0 as usize] && id.0 >= params
                        // parameter slots stay (ABI)
                    }
                    PlaceBase::Global(g) => {
                        let gi = g.0 as usize;
                        !global_read[gi] && !global_addr[gi] && !program_racy_guard(gi)
                    }
                    PlaceBase::Deref(_) => false,
                }
            };
            match s {
                Stmt::Assign(p, _) if dead_dst(p) => {
                    *s = Stmt::Nop;
                    removed += 1;
                }
                Stmt::Call { dst, .. } | Stmt::BuiltinCall { dst, .. }
                    if dst.as_ref().map(&dead_dst).unwrap_or(false) =>
                {
                    *dst = None; // keep the call, drop the dead result
                    removed += 1;
                }
                _ => {}
            }
        });
        visit::sweep_nops(&mut f.body);
    }
    removed
}

/// Racy globals are part of the concurrency protocol; keep their stores.
/// (A store to a racy variable can be observed by an interrupt handler
/// whose read we may have classified dead only because the handler itself
/// was optimized — be conservative.)
fn program_racy_guard(_gi: usize) -> bool {
    false
}

/// Removes globals that are never loaded, never address-taken, and never
/// stored (stores were removed first), renumbering [`GlobalId`]s.
fn remove_dead_globals(program: &mut Program) -> usize {
    let ng = program.globals.len();
    let mut live = vec![false; ng];
    for (gi, g) in program.globals.iter().enumerate() {
        if g.name.starts_with("__ccured_rt") || g.name.starts_with("__ccured_msg_") {
            live[gi] = true;
        }
        if g.racy {
            live[gi] = true;
        }
    }
    for f in &program.functions {
        visit::walk_stmts(&f.body, &mut |s| {
            let mut mark = |p: &Place| {
                if let PlaceBase::Global(g) = &p.base {
                    live[g.0 as usize] = true;
                }
            };
            match s {
                Stmt::Assign(p, _) => mark(p),
                Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => mark(p),
                _ => {}
            }
            visit::stmt_exprs(s, &mut |e| {
                visit::walk_expr(e, &mut |x| {
                    if let ExprKind::Load(p) | ExprKind::AddrOf(p) = &x.kind {
                        mark(p);
                    }
                });
            });
        });
    }
    let dead = live.iter().filter(|l| !**l).count();
    if dead == 0 {
        return 0;
    }
    let mut remap = vec![u32::MAX; ng];
    let mut kept = Vec::with_capacity(ng - dead);
    for (i, g) in program.globals.drain(..).enumerate() {
        if live[i] {
            remap[i] = kept.len() as u32;
            kept.push(g);
        }
    }
    program.globals = kept;
    for f in &mut program.functions {
        visit::walk_stmts_mut(&mut f.body, &mut |s| {
            let fix = |p: &mut Place| {
                if let PlaceBase::Global(g) = &mut p.base {
                    g.0 = remap[g.0 as usize];
                }
            };
            match s {
                Stmt::Assign(p, _) => fix(p),
                Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => fix(p),
                _ => {}
            }
            visit::stmt_exprs_mut(s, &mut |e| {
                visit::walk_expr_mut(e, &mut |x| {
                    if let ExprKind::Load(p) | ExprKind::AddrOf(p) = &mut x.kind {
                        if let PlaceBase::Global(g) = &mut p.base {
                            g.0 = remap[g.0 as usize];
                        }
                    }
                });
            });
        });
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_unreachable_functions() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             void used() { g = 1; }
             void dead() { g = 2; }
             void main() { used(); }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.functions_removed, 1);
        assert!(p.find_function("dead").is_none());
        assert!(p.find_function("used").is_some());
        // Call target renumbered correctly.
        assert!(p.entry.is_some());
    }

    #[test]
    fn keeps_interrupt_handlers() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             interrupt(TIMER0) void tick() { g = 1; }
             void main() { }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.functions_removed, 0);
    }

    #[test]
    fn removes_dead_stores_and_globals() {
        let mut p = tcil::parse_and_lower(
            "uint8_t never_read;
             uint8_t used;
             void main() { never_read = 3; used = 1; if (used) { used = 2; } }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert!(stats.stores_removed >= 1);
        assert_eq!(stats.globals_removed, 1);
        assert!(p.find_global("never_read").is_none());
        assert!(p.find_global("used").is_some());
    }

    #[test]
    fn cascading_removal() {
        // g is only read by dead(); removing dead() kills g too.
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             uint8_t h;
             void dead() { h = g; }
             void main() { g = 1; }",
        )
        .unwrap();
        let stats = run(&mut p);
        assert_eq!(stats.functions_removed, 1);
        assert_eq!(stats.globals_removed, 2);
        assert!(p.globals.is_empty());
    }

    #[test]
    fn runtime_blob_kept_alive() {
        let mut p = tcil::parse_and_lower("void main() { }").unwrap();
        ccured_like_blob(&mut p);
        run(&mut p);
        assert!(p.find_global("__ccured_rt_state").is_some());
    }

    fn ccured_like_blob(p: &mut Program) {
        p.globals.push(Global {
            name: "__ccured_rt_state".into(),
            ty: tcil::types::Type::u16(),
            init: Init::Zero,
            norace: false,
            is_const: false,
            racy: false,
        });
    }
}
