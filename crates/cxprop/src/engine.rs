//! The whole-program dataflow engine.
//!
//! Flow-sensitive within functions, context-insensitive across them (the
//! paper's §3.1 explains that this context insensitivity is exactly why
//! the source-level inliner matters: inlining a check gives its operands
//! call-site-specific values). Globals are handled with the TinyOS
//! concurrency model in mind:
//!
//! * a global never touched by interrupt-reachable code is refined
//!   flow-sensitively,
//! * a global touched by interrupt code is only refined *inside an
//!   `atomic` section* (handlers cannot interleave there) — this is the
//!   concurrency awareness §2.1 describes,
//! * address-taken globals are never refined (stores through pointers).
//!
//! The engine runs in two phases: a fixpoint **analysis** that stabilizes
//! per-function entry values, return summaries, and whole-program global
//! values; then a **transform** pass that folds constant expressions and
//! branches and deletes checks the analysis proves redundant.
//!
//! # Fault-hardened check elimination
//!
//! Check *removal* answers to a stricter standard than ordinary dataflow
//! soundness. An interval proof that an index global stays in `0..N`
//! holds for every uncorrupted execution — but the checks exist to catch
//! *corrupted* ones: a bit flip in a RAM cell produces any value the
//! cell's type can represent, invariants be damned. Deleting a check on
//! the strength of such an invariant silently deletes the program's
//! fault coverage (the fault-injection campaign measures exactly this
//! collapse).
//!
//! The engine therefore keeps a second, *hardened* value for every
//! local: the value the expression would have if every load from a
//! RAM-resident mutable global returned the global's full type range
//! (ROM-resident `const` globals are immune and keep their precise
//! value; locals live in the stack region outside the static-data fault
//! window and stay precise, including refinements earned from checks
//! and branches that the running code actually executed). A check is
//! removed only when it passes in **both** worlds — i.e. when the
//! interval proof covers the entire fault-reachable value set, such as
//! a `u8` index into a 256-element array or an index reduced by
//! `% N` between the load and the access. Constant and branch folding
//! keep using the ordinary (uncorrupted-semantics) values: folding can
//! mask a fault but never removes a trap.
//!
//! `harden: false` (the spec language's `cxprop(noharden)`) restores the
//! classical policy, which is how the campaign harness demonstrates the
//! coverage collapse on demand.

use tcil::ir::*;
use tcil::types::{size_of, IntKind, Type};
use tcil::visit;
use tcil::Program;

use crate::aval::{addr_of_value, APtr, AVal, Tri};
use crate::ival::Ival;

/// Which abstract integer domain the engine plugs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DomainKind {
    /// Flat constant lattice (cXprop's cheapest domain).
    Constants,
    /// Full interval domain.
    #[default]
    Intervals,
}

/// What the transform phase changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Checks proven redundant and removed.
    pub checks_removed: usize,
    /// Branches with decided conditions folded.
    pub branches_folded: usize,
    /// Expressions replaced by constants.
    pub consts_folded: usize,
}

/// Pre-computed program facts.
#[derive(Debug, Clone, Default)]
pub struct Summaries {
    /// `writes[f][g]`: function `f` (transitively) writes global `g`.
    pub writes: Vec<Vec<bool>>,
    /// Function (transitively) stores through a pointer.
    pub indirect_writes: Vec<bool>,
    /// Global has its address taken somewhere.
    pub addr_taken: Vec<bool>,
    /// Global is accessed by interrupt-reachable code.
    pub async_touched: Vec<bool>,
    /// Function reachable from any root.
    pub reachable: Vec<bool>,
    /// `mentions[f][g]`: function `f`'s body mentions global `g` directly
    /// (load, store, or address-of — anywhere, including check operands
    /// and place subscripts). The sparse engine's dependency edges: only
    /// mentioning functions can observe a change to the global's
    /// whole-program value.
    pub mentions: Vec<Vec<bool>>,
    /// Direct callees per function, in call-site order (duplicates kept).
    pub callees: Vec<Vec<u32>>,
}

/// Computes [`Summaries`] for `program`.
pub fn summarize(program: &Program) -> Summaries {
    let nf = program.functions.len();
    let ng = program.globals.len();
    let mut s = Summaries {
        writes: vec![vec![false; ng]; nf],
        indirect_writes: vec![false; nf],
        addr_taken: vec![false; ng],
        async_touched: vec![false; ng],
        reachable: vec![false; nf],
        mentions: vec![vec![false; ng]; nf],
        callees: vec![Vec::new(); nf],
    };
    for (fi, f) in program.functions.iter().enumerate() {
        visit::walk_stmts(&f.body, &mut |st| {
            let mut dest = |p: &Place| {
                match &p.base {
                    PlaceBase::Global(g) => {
                        s.writes[fi][g.0 as usize] = true;
                        s.mentions[fi][g.0 as usize] = true;
                    }
                    PlaceBase::Deref(_) => s.indirect_writes[fi] = true,
                    _ => {}
                };
            };
            match st {
                Stmt::Assign(p, _) => dest(p),
                Stmt::Call { dst, func, .. } => {
                    s.callees[fi].push(func.0);
                    if let Some(p) = dst {
                        dest(p);
                    }
                }
                Stmt::BuiltinCall { dst: Some(p), .. } => dest(p),
                _ => {}
            }
            visit::stmt_exprs(st, &mut |e| {
                visit::walk_expr(e, &mut |x| {
                    if let ExprKind::Load(p) | ExprKind::AddrOf(p) = &x.kind {
                        if let PlaceBase::Global(g) = &p.base {
                            s.mentions[fi][g.0 as usize] = true;
                            if matches!(x.kind, ExprKind::AddrOf(_)) {
                                s.addr_taken[g.0 as usize] = true;
                            }
                        }
                    }
                });
            });
        });
    }
    // Take the callee lists out so the closure below can mutate the
    // other summary fields; restored before returning.
    let callees = std::mem::take(&mut s.callees);
    // Transitive closure of writes / indirect writes.
    loop {
        let mut changed = false;
        for (fi, fi_callees) in callees.iter().enumerate() {
            for &c in fi_callees {
                let c = c as usize;
                if s.indirect_writes[c] && !s.indirect_writes[fi] {
                    s.indirect_writes[fi] = true;
                    changed = true;
                }
                for g in 0..ng {
                    if s.writes[c][g] && !s.writes[fi][g] {
                        s.writes[fi][g] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Reachability and async context.
    let mut async_fn = vec![false; nf];
    let roots: Vec<u32> = program
        .entry
        .iter()
        .map(|f| f.0)
        .chain(
            program
                .functions
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.interrupt.map(|_| i as u32)),
        )
        .collect();
    let mut work = roots.clone();
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut s.reachable[f as usize], true) {
            continue;
        }
        work.extend(callees[f as usize].iter().copied());
    }
    let mut work: Vec<u32> = program
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.interrupt.is_some())
        .map(|(i, _)| i as u32)
        .collect();
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut async_fn[f as usize], true) {
            continue;
        }
        work.extend(callees[f as usize].iter().copied());
    }
    // Globals touched by async code.
    for (fi, f) in program.functions.iter().enumerate() {
        if !async_fn[fi] {
            continue;
        }
        visit::walk_stmts(&f.body, &mut |st| {
            let mut touch = |p: &Place| {
                if let PlaceBase::Global(g) = &p.base {
                    s.async_touched[g.0 as usize] = true;
                }
            };
            match st {
                Stmt::Assign(p, _) => touch(p),
                Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => {
                    touch(p)
                }
                _ => {}
            }
            visit::stmt_exprs(st, &mut |e| {
                visit::walk_expr(e, &mut |x| {
                    if let ExprKind::Load(p) | ExprKind::AddrOf(p) = &x.kind {
                        if let PlaceBase::Global(g) = &p.base {
                            s.async_touched[g.0 as usize] = true;
                        }
                    }
                });
            });
        });
    }
    s.callees = callees;
    s
}

/// The flow environment at a program point.
///
/// `hard_locals` is the fault-hardened shadow of `locals`: the value
/// each local would hold if every global it was computed from had been
/// corrupted to an arbitrary value of its type (see the module docs).
/// Globals need no shadow — their hardened value is always their type's
/// top, by definition of the fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct Env {
    locals: Vec<AVal>,
    hard_locals: Vec<AVal>,
    globals: Vec<AVal>,
    reachable: bool,
}

impl Env {
    fn join_from(&mut self, other: &Env) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        for (a, b) in self
            .locals
            .iter_mut()
            .chain(self.hard_locals.iter_mut())
            .zip(other.locals.iter().chain(&other.hard_locals))
        {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        for (a, b) in self.globals.iter_mut().zip(&other.globals) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }
}

/// The analysis engine.
pub struct Engine {
    /// Chosen integer domain.
    pub domain: DomainKind,
    /// Fault-hardened check elimination (see the module docs). When
    /// false, checks are removed on uncorrupted-semantics proofs alone —
    /// the classical (pre-fix) policy.
    pub harden: bool,
    /// Program facts.
    pub sums: Summaries,
    /// Whole-program abstract value of each global.
    pub wpv: Vec<AVal>,
    /// Join of argument values at every call site, per function.
    pub entry: Vec<Option<Vec<AVal>>>,
    /// Fault-hardened twin of [`Engine::entry`].
    pub entry_hard: Vec<Option<Vec<AVal>>>,
    /// Return-value summaries.
    pub retv: Vec<AVal>,
    /// Fault-hardened twin of [`Engine::retv`].
    pub retv_hard: Vec<AVal>,
    changed: bool,
    /// `gdeps[g]`: functions whose walk reads global `g` — the ones a
    /// change to `wpv[g]` can re-derive facts in.
    gdeps: Vec<Vec<u32>>,
    /// Call-graph inverse: `callers[f]` = functions with a call to `f`
    /// (deduplicated), dirtied when `f`'s return summary grows.
    callers: Vec<Vec<u32>>,
    /// The sparse worklist: functions whose analysis inputs (entry
    /// values, mentioned globals, callee return summaries) changed since
    /// their last walk. A function whose inputs are unchanged re-derives
    /// exactly the same joins (the walk is idempotent), so clean
    /// functions are skipped without changing any result.
    dirty: Vec<bool>,
}

impl Engine {
    /// Runs the fixpoint analysis over `program` with fault-hardened
    /// check elimination (the default policy).
    ///
    /// Takes `&mut` only to borrow the function bodies in place (they
    /// are moved out and restored, never cloned); the program is
    /// unchanged when this returns.
    pub fn analyze(program: &mut Program, domain: DomainKind) -> Engine {
        Self::analyze_opts(program, domain, true)
    }

    /// [`Engine::analyze`] with the hardening policy explicit.
    pub fn analyze_opts(program: &mut Program, domain: DomainKind, harden: bool) -> Engine {
        let sums = summarize(program);
        let ng = program.globals.len();
        let nf = program.functions.len();
        let mut wpv = Vec::with_capacity(ng);
        for (gi, g) in program.globals.iter().enumerate() {
            let v = if sums.addr_taken[gi] {
                AVal::top_for(&g.ty)
            } else {
                match (&g.ty, &g.init) {
                    (Type::Int(k), Init::Zero) => AVal::Int(Ival::const_(0)).normed(domain, *k),
                    (Type::Int(k), Init::Int(v)) => {
                        AVal::Int(Ival::const_(k.wrap(*v))).normed(domain, *k)
                    }
                    (Type::Ptr(..), Init::Zero | Init::Int(_)) => AVal::Ptr(APtr::null()),
                    _ => AVal::top_for(&g.ty),
                }
            };
            wpv.push(v);
        }
        // Dependency edges for the sparse worklist: which functions a
        // changed global summary or return summary can affect.
        let mut gdeps: Vec<Vec<u32>> = vec![Vec::new(); ng];
        for (fi, row) in sums.mentions.iter().enumerate() {
            for (gi, &m) in row.iter().enumerate() {
                if m {
                    gdeps[gi].push(fi as u32);
                }
            }
        }
        let mut callers: Vec<Vec<u32>> = vec![Vec::new(); nf];
        for (fi, callees) in sums.callees.iter().enumerate() {
            for &c in callees {
                let row = &mut callers[c as usize];
                if row.last() != Some(&(fi as u32)) && !row.contains(&(fi as u32)) {
                    row.push(fi as u32);
                }
            }
        }
        let mut eng = Engine {
            domain,
            harden,
            sums,
            wpv,
            entry: vec![None; nf],
            entry_hard: vec![None; nf],
            retv: vec![AVal::Bot; nf],
            retv_hard: vec![AVal::Bot; nf],
            changed: true,
            gdeps,
            callers,
            // Everyone starts dirty: round 1 walks every live function,
            // exactly like the dense engine did.
            dirty: vec![true; nf],
        };
        // Roots have no parameters.
        for (i, f) in program.functions.iter().enumerate() {
            if program.entry == Some(FuncId(i as u32)) || f.interrupt.is_some() {
                eng.entry[i] = Some(vec![]);
                eng.entry_hard[i] = Some(vec![]);
            }
        }
        // Move the bodies out of the program so the walker can borrow
        // the rest of it as context — no per-round (or any) body clones.
        let mut bodies: Vec<Block> = program
            .functions
            .iter_mut()
            .map(|f| std::mem::take(&mut f.body))
            .collect();
        let mut rounds = 0;
        // The loop condition (and therefore the fixpoint reached) is the
        // same as the dense engine's; `dirty` only filters *within* a
        // round. A clean function's inputs — its entry values, the
        // globals it mentions, its callees' return summaries — are
        // unchanged since its last walk, and a walk over unchanged
        // inputs re-derives exactly the joins it already published
        // (joins are monotone and idempotent), so skipping it cannot
        // alter any summary or the round count.
        while eng.changed && rounds < 12 {
            eng.changed = false;
            rounds += 1;
            for (fi, body) in bodies.iter_mut().enumerate() {
                if !eng.dirty[fi] {
                    continue;
                }
                eng.dirty[fi] = false;
                if !eng.sums.reachable[fi] || eng.entry[fi].is_none() {
                    continue;
                }
                let mut stats = EngineStats::default();
                eng.walk_function(program, fi, body, false, &mut stats);
            }
        }
        for (f, body) in program.functions.iter_mut().zip(bodies) {
            f.body = body;
        }
        eng
    }

    /// Re-queues every function that mentions global `gi` (its walk can
    /// derive different facts once `wpv[gi]` widens).
    fn mark_global_deps(&mut self, gi: usize) {
        for i in 0..self.gdeps[gi].len() {
            let f = self.gdeps[gi][i] as usize;
            self.dirty[f] = true;
        }
    }

    /// Re-queues every caller of `fi` (their call sites read its return
    /// summary).
    fn mark_callers(&mut self, fi: usize) {
        for i in 0..self.callers[fi].len() {
            let f = self.callers[fi][i] as usize;
            self.dirty[f] = true;
        }
    }

    /// Applies the analysis results: folds constants and branches, deletes
    /// proven checks. Returns what changed.
    pub fn transform(&mut self, program: &mut Program) -> EngineStats {
        let mut stats = EngineStats::default();
        // The walker reads only body-independent context (locals, globals,
        // structs, strings) from the program, so moving every body out at
        // once avoids the whole-program snapshot clone.
        let mut bodies: Vec<Block> = program
            .functions
            .iter_mut()
            .map(|f| std::mem::take(&mut f.body))
            .collect();
        for (fi, body) in bodies.iter_mut().enumerate() {
            if !self.sums.reachable[fi] || self.entry[fi].is_none() {
                continue;
            }
            self.walk_function(program, fi, body, true, &mut stats);
        }
        for (f, body) in program.functions.iter_mut().zip(bodies) {
            f.body = body;
        }
        for f in &mut program.functions {
            visit::sweep_nops(&mut f.body);
        }
        stats
    }

    fn entry_env(&self, program: &Program, fi: usize) -> Env {
        let f = &program.functions[fi];
        let mut locals: Vec<AVal> = f.locals.iter().map(|l| AVal::top_for(&l.ty)).collect();
        let mut hard_locals = locals.clone();
        if let Some(params) = &self.entry[fi] {
            for (i, v) in params.iter().enumerate() {
                if i < locals.len() {
                    locals[i] = *v;
                }
            }
        }
        if let Some(params) = &self.entry_hard[fi] {
            for (i, v) in params.iter().enumerate() {
                if i < hard_locals.len() {
                    hard_locals[i] = *v;
                }
            }
        }
        Env {
            locals,
            hard_locals,
            globals: self.wpv.clone(),
            reachable: true,
        }
    }

    fn walk_function(
        &mut self,
        program: &Program,
        fi: usize,
        body: &mut Block,
        transform: bool,
        stats: &mut EngineStats,
    ) {
        let mut env = self.entry_env(program, fi);
        let mut w = Walker {
            eng: self,
            prog: program,
            fidx: fi,
            atomic: 0,
            transform,
            loop_breaks: Vec::new(),
        };
        w.walk_block(body, &mut env, stats);
        // A void function falling off the end "returns" unit.
        if program.functions[fi].ret == Type::Void && env.reachable {
            // nothing to record
        }
    }
}

trait Normed {
    fn normed(self, domain: DomainKind, kind: IntKind) -> Self;
}

impl Normed for AVal {
    /// In the constants domain, non-singleton intervals collapse to top.
    fn normed(self, domain: DomainKind, kind: IntKind) -> AVal {
        match (domain, self) {
            (DomainKind::Constants, AVal::Int(i)) => {
                if i.as_const().is_some() {
                    self
                } else {
                    AVal::Int(Ival::top(kind))
                }
            }
            _ => self,
        }
    }
}

struct Walker<'a> {
    eng: &'a mut Engine,
    prog: &'a Program,
    fidx: usize,
    atomic: u32,
    transform: bool,
    loop_breaks: Vec<Vec<Env>>,
}

impl Walker<'_> {
    fn func(&self) -> &Function {
        &self.prog.functions[self.fidx]
    }

    /// Whether loads of global `g` may use the flow-sensitive value.
    fn refinable(&self, g: usize) -> bool {
        if self.eng.sums.addr_taken[g] {
            return false;
        }
        if !self.eng.sums.async_touched[g] {
            return true;
        }
        // Async-touched globals: only inside atomic sections, and always
        // within interrupt handlers themselves (nothing preempts them).
        self.atomic > 0 || self.func().interrupt.is_some()
    }

    // ----- evaluation -----

    /// Evaluates `e` under uncorrupted program semantics.
    fn eval(&self, e: &Expr, env: &Env) -> AVal {
        self.eval_in(e, env, false)
    }

    /// Evaluates `e`; with `hard` set, under the fault model — loads of
    /// RAM-resident mutable globals return the global's full type range
    /// and locals read their hardened shadow values. With `hard` unset
    /// (or hardening disabled engine-wide) this is the ordinary
    /// evaluation.
    fn eval_in(&self, e: &Expr, env: &Env, hard: bool) -> AVal {
        let hard = hard && self.eng.harden;
        let v = match &e.kind {
            ExprKind::Const(c) => match &e.ty {
                Type::Ptr(..) if *c == 0 => AVal::Ptr(APtr::null()),
                Type::Int(_) => AVal::Int(Ival::const_(*c)),
                _ => AVal::Top,
            },
            ExprKind::Str(id) => {
                let len = self.prog.strings.get(*id).len() as i64;
                AVal::Ptr(APtr::object(Ival::const_(len + 1), Ival::const_(0)))
            }
            ExprKind::SizeOf(t) => AVal::Int(Ival::const_(size_of(t, &self.prog.structs) as i64)),
            ExprKind::Load(p) => self.eval_place(p, env, hard),
            ExprKind::AddrOf(p) => AVal::Ptr(addr_of_value(
                p,
                |pl| self.place_ty(pl),
                &self.prog.structs,
                |i| match self.eval_in(i, env, hard) {
                    AVal::Int(iv) => iv,
                    _ => Ival::any(),
                },
            )),
            ExprKind::MakeFat { val, .. } => self.eval_in(val, env, hard),
            ExprKind::Unary(op, a) => match self.eval_in(a, env, hard) {
                AVal::Int(i) => {
                    let k = a.ty.as_int().unwrap_or(IntKind::U16);
                    AVal::Int(Ival::unop(*op, i, k))
                }
                AVal::Ptr(p) if *op == UnOp::Not => match p.null {
                    Tri::Yes => AVal::Int(Ival::const_(1)),
                    Tri::No => AVal::Int(Ival::const_(0)),
                    Tri::Maybe => AVal::Int(Ival::Range(0, 1)),
                },
                _ => AVal::top_for(&e.ty),
            },
            ExprKind::Binary(op, a, b) => self.eval_binary(*op, a, b, env, &e.ty, hard),
            ExprKind::Cast(a) => match (self.eval_in(a, env, hard), e.ty.as_int()) {
                (AVal::Int(i), Some(k)) => AVal::Int(i.cast(k)),
                (v @ AVal::Ptr(_), None) if e.ty.is_ptr() => v,
                _ => AVal::top_for(&e.ty),
            },
        };
        match e.ty.as_int() {
            Some(k) => v.normed(self.eng.domain, k),
            None => v,
        }
    }

    fn eval_binary(&self, op: BinOp, a: &Expr, b: &Expr, env: &Env, ty: &Type, hard: bool) -> AVal {
        let va = self.eval_in(a, env, hard);
        let vb = self.eval_in(b, env, hard);
        match op {
            BinOp::PtrAdd | BinOp::PtrSub => {
                let elem = match &a.ty {
                    Type::Ptr(t, _) => size_of(t, &self.prog.structs) as i64,
                    _ => 1,
                };
                let (AVal::Ptr(p), AVal::Int(i)) = (va, vb) else {
                    return AVal::Ptr(APtr::top());
                };
                let mut delta = Ival::binop(BinOp::Mul, i, Ival::const_(elem), IntKind::I32);
                if op == BinOp::PtrSub {
                    delta = Ival::unop(UnOp::Neg, delta, IntKind::I32);
                }
                AVal::Ptr(p.advance(delta))
            }
            BinOp::Eq | BinOp::Ne if a.ty.is_ptr() || b.ty.is_ptr() => {
                let decided = match (va.as_ptr().map(|p| p.null), vb.as_ptr().map(|p| p.null)) {
                    (Some(Tri::Yes), Some(Tri::Yes)) => Some(true),
                    (Some(Tri::Yes), Some(Tri::No)) | (Some(Tri::No), Some(Tri::Yes)) => {
                        Some(false)
                    }
                    _ => None,
                };
                match decided {
                    Some(eq) => {
                        let t = if op == BinOp::Eq { eq } else { !eq };
                        AVal::Int(Ival::const_(t as i64))
                    }
                    None => AVal::Int(Ival::Range(0, 1)),
                }
            }
            _ => {
                let (AVal::Int(ia), AVal::Int(ib)) = (va, vb) else {
                    return AVal::top_for(ty);
                };
                let k =
                    a.ty.as_int()
                        .or_else(|| b.ty.as_int())
                        .unwrap_or(IntKind::U16);
                AVal::Int(Ival::binop(op, ia, ib, k))
            }
        }
    }

    fn eval_place(&self, p: &Place, env: &Env, hard: bool) -> AVal {
        if !p.elems.is_empty() {
            return AVal::top_for(&p.ty);
        }
        match &p.base {
            PlaceBase::Local(id) => {
                if hard {
                    env.hard_locals[id.0 as usize]
                } else {
                    env.locals[id.0 as usize]
                }
            }
            PlaceBase::Global(g) => {
                let gi = g.0 as usize;
                if hard && !self.prog.globals[gi].is_const {
                    // A RAM cell under the fault model: any value of its
                    // type (`const` globals live in ROM and are immune).
                    return AVal::top_for(&p.ty);
                }
                if self.refinable(gi) {
                    env.globals[gi]
                } else {
                    self.eng.wpv[gi]
                }
            }
            PlaceBase::Deref(_) => AVal::top_for(&p.ty),
        }
    }

    fn place_ty(&self, p: &Place) -> Type {
        let mut ty = match &p.base {
            PlaceBase::Local(id) => self.func().locals[id.0 as usize].ty.clone(),
            PlaceBase::Global(g) => self.prog.globals[g.0 as usize].ty.clone(),
            PlaceBase::Deref(e) => match &e.ty {
                Type::Ptr(t, _) => (**t).clone(),
                _ => Type::u8(),
            },
        };
        for el in &p.elems {
            match el {
                PlaceElem::Field { sid, idx } => {
                    ty = self.prog.structs[sid.0 as usize].fields[*idx as usize]
                        .ty
                        .clone();
                }
                PlaceElem::Index(_) => {
                    if let Type::Array(t, _) = ty {
                        ty = *t;
                    }
                }
            }
        }
        ty
    }

    // ----- assignment effects -----

    fn assign_place(&mut self, p: &Place, v: AVal, v_hard: AVal, env: &mut Env) {
        if !p.elems.is_empty() {
            // Field/array stores: field-insensitive; nothing tracked, but a
            // store through a pointer may hit address-taken globals (their
            // wpv is already Top).
            return;
        }
        match &p.base {
            PlaceBase::Local(id) => {
                env.locals[id.0 as usize] = v;
                env.hard_locals[id.0 as usize] = v_hard;
            }
            PlaceBase::Global(g) => {
                let gi = g.0 as usize;
                env.globals[gi] = v;
                // Every store contributes to the whole-program value.
                let j = self.eng.wpv[gi].join(v);
                if j != self.eng.wpv[gi] {
                    self.eng.wpv[gi] = j;
                    self.eng.changed = true;
                    // A wider summary can re-derive facts in any function
                    // that mentions this global.
                    self.eng.mark_global_deps(gi);
                }
            }
            PlaceBase::Deref(_) => {}
        }
    }

    // ----- statements -----

    fn fold_expr_to_const(&mut self, e: &mut Expr, env: &Env, stats: &mut EngineStats) {
        if !self.transform {
            return;
        }
        if e.as_const().is_some() || !e.ty.is_int() {
            return;
        }
        // Loads of named variables are usually cheaper than wide constants;
        // still fold (the backend folds sizes anyway and DCE benefits).
        if let Some(c) = self.eval(e, env).as_const() {
            let k = e.ty.as_int().unwrap_or(IntKind::U16);
            *e = Expr::const_int(c, k);
            stats.consts_folded += 1;
        }
    }

    fn walk_block(&mut self, b: &mut Block, env: &mut Env, stats: &mut EngineStats) {
        for s in b.iter_mut() {
            if !env.reachable {
                if self.transform {
                    *s = Stmt::Nop;
                }
                continue;
            }
            self.walk_stmt(s, env, stats);
        }
    }

    fn walk_stmt(&mut self, s: &mut Stmt, env: &mut Env, stats: &mut EngineStats) {
        match s {
            Stmt::Assign(place, e) => {
                let v = self.eval(e, env);
                self.fold_expr_to_const(e, env, stats);
                // Hardened value after folding: a folded constant no
                // longer reads RAM, so it is fault-immune by construction.
                // (With hardening off the twin equals `v`; skip the
                // second evaluation.)
                let vh = if self.eng.harden {
                    self.eval_in(e, env, true)
                } else {
                    v
                };
                self.assign_place(&place.clone(), v, vh, env);
            }
            Stmt::Call { dst, func, args } => {
                let callee = func.0 as usize;
                let vals: Vec<AVal> = args.iter().map(|a| self.eval(a, env)).collect();
                for a in args.iter_mut() {
                    self.fold_expr_to_const(a, env, stats);
                }
                let vals_hard: Vec<AVal> = if self.eng.harden {
                    args.iter().map(|a| self.eval_in(a, env, true)).collect()
                } else {
                    vals.clone()
                };
                // Join into the callee's entry summaries (both worlds).
                let params = self.prog.functions[callee].params as usize;
                let mut changed = false;
                // First call site discovered for this callee: it needs a
                // walk even if every slot join below is a no-op (a
                // 0-param callee has no slots at all). Note that mere
                // discovery does not set `eng.changed` — the dense
                // engine didn't either, and the round count must match.
                let created = self.eng.entry[callee].is_none();
                let entry = self.eng.entry[callee].get_or_insert_with(|| vec![AVal::Bot; params]);
                for (slot, v) in entry.iter_mut().zip(vals.iter()) {
                    let j = slot.join(*v);
                    if j != *slot {
                        *slot = j;
                        changed = true;
                    }
                }
                let entry_hard =
                    self.eng.entry_hard[callee].get_or_insert_with(|| vec![AVal::Bot; params]);
                for (slot, v) in entry_hard.iter_mut().zip(vals_hard.iter()) {
                    let j = slot.join(*v);
                    if j != *slot {
                        *slot = j;
                        changed = true;
                    }
                }
                if changed {
                    self.eng.changed = true;
                }
                if created || changed {
                    self.eng.dirty[callee] = true;
                }
                // Havoc globals the callee writes (indexing into the
                // summary row directly — no clone per call site).
                for gi in 0..env.globals.len() {
                    if self.eng.sums.writes[callee][gi] {
                        env.globals[gi] = self.eng.wpv[gi];
                    }
                }
                if let Some(d) = dst.clone() {
                    let rv = self.eng.retv[callee];
                    let rvh = self.eng.retv_hard[callee];
                    self.assign_place(&d, rv, rvh, env);
                }
            }
            Stmt::BuiltinCall { dst, args, .. } => {
                for a in args.iter_mut() {
                    self.fold_expr_to_const(a, env, stats);
                }
                if let Some(d) = dst.clone() {
                    let top = AVal::top_for(&d.ty);
                    self.assign_place(&d, top, top, env);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                let cv = self.eval(cond, env).truth();
                if let Some(t) = cv {
                    if self.transform {
                        let taken = if t {
                            std::mem::take(then_)
                        } else {
                            std::mem::take(else_)
                        };
                        stats.branches_folded += 1;
                        *s = Stmt::Block(taken);
                        // Re-walk the surviving branch.
                        self.walk_stmt(s, env, stats);
                        return;
                    }
                    // Analysis: only the taken branch contributes.
                    let b = if t { then_ } else { else_ };
                    self.walk_block(b, env, stats);
                    return;
                }
                let mut env_t = env.clone();
                let mut env_f = env.clone();
                self.refine_cond(cond, true, &mut env_t);
                self.refine_cond(cond, false, &mut env_f);
                self.walk_block(then_, &mut env_t, stats);
                self.walk_block(else_, &mut env_f, stats);
                if env_t.reachable {
                    *env = env_t;
                    if env_f.reachable {
                        env.join_from(&env_f);
                    }
                } else {
                    *env = env_f;
                }
            }
            Stmt::While { cond, body } => {
                self.walk_while(cond, body, env, stats);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let v = self.eval(e, env);
                    self.fold_expr_to_const(e, env, stats);
                    let vh = if self.eng.harden {
                        self.eval_in(e, env, true)
                    } else {
                        v
                    };
                    let mut grew = false;
                    let j = self.eng.retv[self.fidx].join(v);
                    if j != self.eng.retv[self.fidx] {
                        self.eng.retv[self.fidx] = j;
                        self.eng.changed = true;
                        grew = true;
                    }
                    let jh = self.eng.retv_hard[self.fidx].join(vh);
                    if jh != self.eng.retv_hard[self.fidx] {
                        self.eng.retv_hard[self.fidx] = jh;
                        self.eng.changed = true;
                        grew = true;
                    }
                    if grew {
                        // A wider return summary feeds back into every
                        // call site.
                        self.eng.mark_callers(self.fidx);
                    }
                }
                env.reachable = false;
            }
            Stmt::Break | Stmt::Continue => {
                if matches!(s, Stmt::Break) {
                    if let Some(breaks) = self.loop_breaks.last_mut() {
                        breaks.push(env.clone());
                    }
                }
                // Continue: conservatively handled by the loop fixpoint
                // (the loop head env already joins every iteration state).
                env.reachable = false;
            }
            Stmt::Atomic { body, .. } => {
                self.atomic += 1;
                // Fresh observation point for async-touched globals.
                for gi in 0..env.globals.len() {
                    if self.eng.sums.async_touched[gi] {
                        env.globals[gi] = self.eng.wpv[gi];
                    }
                }
                self.walk_block(body, env, stats);
                self.atomic -= 1;
                for gi in 0..env.globals.len() {
                    if self.eng.sums.async_touched[gi] {
                        env.globals[gi] = self.eng.wpv[gi];
                    }
                }
            }
            Stmt::Block(b) => self.walk_block(b, env, stats),
            Stmt::Check(c) => {
                // Removal demands the proof in both worlds: the ordinary
                // one *and* the fault-hardened one, where every mutable
                // RAM global holds an arbitrary value of its type. A
                // check provable only from uncorrupted-run invariants is
                // exactly the fault coverage the cured build exists for.
                let passes = self.check_passes(c, env, false);
                if passes && (!self.eng.harden || self.check_passes(c, env, true)) {
                    if self.transform {
                        stats.checks_removed += 1;
                        *s = Stmt::Nop;
                    }
                } else {
                    // Execution continues only if the check passed:
                    // refine (the hardened shadow too — the running code
                    // really did pass this check).
                    self.refine_check(&c.clone(), env);
                }
            }
            Stmt::Nop => {}
        }
    }

    fn walk_while(
        &mut self,
        cond: &mut Expr,
        body: &mut Block,
        env: &mut Env,
        stats: &mut EngineStats,
    ) {
        // Fixpoint over the loop head (analysis semantics; in transform
        // mode the invariant is computed on a scratch copy first).
        let mut head = env.clone();
        for round in 0..4 {
            let mut iter_env = head.clone();
            self.refine_cond(cond, true, &mut iter_env);
            self.loop_breaks.push(Vec::new());
            let mut sink = EngineStats::default();
            if self.transform {
                // The fixpoint must not rewrite the body: iterate on a
                // scratch copy with transforms disabled.
                let mut scratch = body.clone();
                self.transform = false;
                self.walk_block(&mut scratch, &mut iter_env, &mut sink);
                self.transform = true;
            } else {
                // Analysis never mutates: walk the body in place.
                self.walk_block(body, &mut iter_env, &mut sink);
            }
            let _breaks = self.loop_breaks.pop();
            let mut merged = head.clone();
            let changed = if iter_env.reachable {
                merged.join_from(&iter_env)
            } else {
                false
            };
            if !changed {
                head = merged;
                break;
            }
            if round >= 1 {
                // Widen to guarantee termination.
                for (i, l) in merged.locals.iter().enumerate() {
                    let k = self.func().locals[i].ty.as_int().unwrap_or(IntKind::I32);
                    head.locals[i] = head.locals[i].widen(*l, k);
                }
                for (i, l) in merged.hard_locals.iter().enumerate() {
                    let k = self.func().locals[i].ty.as_int().unwrap_or(IntKind::I32);
                    head.hard_locals[i] = head.hard_locals[i].widen(*l, k);
                }
                for (i, g) in merged.globals.iter().enumerate() {
                    let k = self.prog.globals[i].ty.as_int().unwrap_or(IntKind::I32);
                    head.globals[i] = head.globals[i].widen(*g, k);
                }
                head.reachable = true;
            } else {
                head = merged;
            }
        }
        // Decided loop condition?
        let entry_truth = self.eval(cond, &head).truth();
        if self.transform
            && entry_truth == Some(false)
            && self.eval(cond, env).truth() == Some(false)
        {
            // Loop never runs at all.
            stats.branches_folded += 1;
            *env = {
                let mut e = env.clone();
                self.refine_cond(cond, false, &mut e);
                e
            };
            cond.kind = ExprKind::Const(0);
            body.clear();
            return;
        }
        // Final pass over the body with the stable invariant (transforming
        // if enabled).
        let mut body_env = head.clone();
        self.refine_cond(cond, true, &mut body_env);
        self.loop_breaks.push(Vec::new());
        self.walk_block(body, &mut body_env, stats);
        let breaks = self.loop_breaks.pop().unwrap_or_default();
        // Exit env: head refined by !cond, joined with break states.
        let mut exit = head;
        self.refine_cond(cond, false, &mut exit);
        let cond_can_be_false = self.eval(cond, &exit).truth() != Some(true);
        if !cond_can_be_false && breaks.is_empty() {
            // while(1) with no breaks: nothing after the loop runs.
            exit.reachable = false;
        }
        for b in &breaks {
            exit.join_from(b);
        }
        *env = exit;
    }

    // ----- refinement -----

    fn refine_cond(&self, cond: &Expr, taken: bool, env: &mut Env) {
        match &cond.kind {
            ExprKind::Unary(UnOp::Not, inner) => self.refine_cond(inner, !taken, env),
            ExprKind::Binary(op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le), a, b) => {
                // Pointer null tests.
                if a.ty.is_ptr() || b.ty.is_ptr() {
                    let (ptr_e, other) = if a.ty.is_ptr() { (a, b) } else { (b, a) };
                    if self.eval(other, env).as_const() == Some(0)
                        || matches!(self.eval(other, env), AVal::Ptr(p) if p.null == Tri::Yes)
                    {
                        let nonnull = match (op, taken) {
                            (BinOp::Ne, true) | (BinOp::Eq, false) => Some(true),
                            (BinOp::Eq, true) | (BinOp::Ne, false) => Some(false),
                            _ => None,
                        };
                        if let Some(nn) = nonnull {
                            self.refine_ptr_null(ptr_e, nn, env);
                        }
                    }
                    return;
                }
                // Integer refinement on direct loads. The hardened
                // shadow refines too — the branch really executed on the
                // loaded value — but against the *hardened* bound: a
                // bound read from a corruptible global constrains
                // nothing in the fault world.
                let vb = match self.eval(b, env) {
                    AVal::Int(i) => i,
                    _ => return,
                };
                if let Some((target, AVal::Int(ia))) = self.refinable_load(a, env) {
                    let refined = ia.refine(*op, vb, taken);
                    self.set_refined(target, AVal::Int(refined), env);
                    if let (Some(AVal::Int(ha)), AVal::Int(hb)) =
                        (self.hard_of(target, env), self.eval_in(b, env, true))
                    {
                        self.set_refined_hard(target, AVal::Int(ha.refine(*op, hb, taken)), env);
                    }
                }
                // Symmetric case: const op load — flip the comparison.
                let va = match self.eval(a, env) {
                    AVal::Int(i) => i,
                    _ => return,
                };
                if let Some((target, AVal::Int(ib))) = self.refinable_load(b, env) {
                    let flipped = match op {
                        BinOp::Lt => BinOp::Le, // a < b  ≡  b >= a+1... approximate with >=
                        BinOp::Le => BinOp::Lt,
                        o => *o,
                    };
                    // a OP b refines b via the flipped relation with
                    // inverted taken-ness for orderings.
                    let refine_with = |ib: Ival, va: Ival| match op {
                        BinOp::Eq | BinOp::Ne => ib.refine(*op, va, taken),
                        _ => ib.refine(flipped, va, !taken),
                    };
                    self.set_refined(target, AVal::Int(refine_with(ib, va)), env);
                    if let (Some(AVal::Int(hb)), AVal::Int(ha)) =
                        (self.hard_of(target, env), self.eval_in(a, env, true))
                    {
                        self.set_refined_hard(target, AVal::Int(refine_with(hb, ha)), env);
                    }
                }
            }
            ExprKind::Load(_) => {
                if let Some((target, cur)) = self.refinable_load(cond, env) {
                    match cur {
                        AVal::Int(i) => {
                            let refined = if taken {
                                i // non-zero: can't express holes; keep
                            } else {
                                i.meet(Ival::const_(0))
                            };
                            self.set_refined(target, AVal::Int(refined), env);
                            if !taken {
                                if let Some(AVal::Int(h)) = self.hard_of(target, env) {
                                    self.set_refined_hard(
                                        target,
                                        AVal::Int(h.meet(Ival::const_(0))),
                                        env,
                                    );
                                }
                            }
                        }
                        AVal::Ptr(_) => self.refine_ptr_null(cond, taken, env),
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }

    /// A load of a refinable location: returns the target and its current
    /// value.
    fn refinable_load(&self, e: &Expr, env: &Env) -> Option<(RefTarget, AVal)> {
        let inner = match &e.kind {
            ExprKind::Cast(a) => a,
            _ => e,
        };
        let ExprKind::Load(p) = &inner.kind else {
            return None;
        };
        if !p.elems.is_empty() {
            return None;
        }
        match &p.base {
            PlaceBase::Local(id) => {
                Some((RefTarget::Local(id.0 as usize), env.locals[id.0 as usize]))
            }
            PlaceBase::Global(g) => {
                let gi = g.0 as usize;
                if self.refinable(gi) {
                    Some((RefTarget::Global(gi), env.globals[gi]))
                } else {
                    None
                }
            }
            PlaceBase::Deref(_) => None,
        }
    }

    fn set_refined(&self, target: RefTarget, v: AVal, env: &mut Env) {
        match target {
            RefTarget::Local(i) => env.locals[i] = v,
            RefTarget::Global(i) => env.globals[i] = v,
        }
    }

    /// The fault-hardened shadow of a refinement target, if it has one
    /// (locals only — globals are unconditionally top in the fault
    /// world, so refining them there would be unsound).
    fn hard_of(&self, target: RefTarget, env: &Env) -> Option<AVal> {
        match target {
            RefTarget::Local(i) => Some(env.hard_locals[i]),
            RefTarget::Global(_) => None,
        }
    }

    fn set_refined_hard(&self, target: RefTarget, v: AVal, env: &mut Env) {
        if let RefTarget::Local(i) = target {
            env.hard_locals[i] = v;
        }
    }

    fn refine_ptr_null(&self, e: &Expr, nonnull: bool, env: &mut Env) {
        if let Some((target, AVal::Ptr(mut p))) = self.refinable_load(e, env) {
            p.null = if nonnull { Tri::No } else { Tri::Yes };
            self.set_refined(target, AVal::Ptr(p), env);
            if let Some(AVal::Ptr(mut h)) = self.hard_of(target, env) {
                h.null = if nonnull { Tri::No } else { Tri::Yes };
                self.set_refined_hard(target, AVal::Ptr(h), env);
            }
        }
    }

    // ----- checks -----

    /// Whether `c` provably passes; with `hard`, under the fault model
    /// (see [`Walker::eval_in`]).
    fn check_passes(&self, c: &Check, env: &Env, hard: bool) -> bool {
        match &c.kind {
            CheckKind::NonNull(e) => {
                matches!(self.eval_in(e, env, hard), AVal::Ptr(p) if p.null == Tri::No)
            }
            CheckKind::Upper { ptr, len } => match self.eval_in(ptr, env, hard) {
                AVal::Ptr(p) => {
                    p.null == Tri::No
                        && matches!(p.room.bounds(), Some((lo, _)) if lo >= *len as i64)
                }
                _ => false,
            },
            CheckKind::Bounds { ptr, len } => match self.eval_in(ptr, env, hard) {
                AVal::Ptr(p) => {
                    p.null == Tri::No
                        && matches!(p.room.bounds(), Some((lo, _)) if lo >= *len as i64)
                        && matches!(p.back.bounds(), Some((lo, _)) if lo >= 0)
                }
                _ => false,
            },
            CheckKind::IndexBound { idx, n } => match self.eval_in(idx, env, hard) {
                AVal::Int(i) => {
                    matches!(i.bounds(), Some((lo, hi)) if lo >= 0 && hi < *n as i64)
                }
                _ => false,
            },
        }
    }

    /// After a passing check, execution is conditioned on its truth —
    /// in both worlds: whatever may have been corrupted beforehand, the
    /// value the surviving check just tested satisfied it.
    fn refine_check(&self, c: &Check, env: &mut Env) {
        let (ptr_expr, need_room, need_back) = match &c.kind {
            CheckKind::NonNull(e) => (e, None, false),
            CheckKind::Upper { ptr, len } => (ptr, Some(*len), false),
            CheckKind::Bounds { ptr, len } => (ptr, Some(*len), true),
            CheckKind::IndexBound { idx, n } => {
                if let Some((target, AVal::Int(i))) = self.refinable_load(idx, env) {
                    let range = Ival::Range(0, *n as i64 - 1);
                    self.set_refined(target, AVal::Int(i.meet(range)), env);
                    if let Some(AVal::Int(h)) = self.hard_of(target, env) {
                        self.set_refined_hard(target, AVal::Int(h.meet(range)), env);
                    }
                }
                return;
            }
        };
        if let Some((target, AVal::Ptr(mut p))) = self.refinable_load(ptr_expr, env) {
            let strengthen = |p: &mut APtr| {
                p.null = Tri::No;
                if let Some(len) = need_room {
                    p.room = p.room.meet(Ival::Range(len as i64, i64::MAX / 4));
                }
                if need_back {
                    p.back = p.back.meet(Ival::Range(0, i64::MAX / 4));
                }
            };
            strengthen(&mut p);
            self.set_refined(target, AVal::Ptr(p), env);
            if let Some(AVal::Ptr(mut h)) = self.hard_of(target, env) {
                strengthen(&mut h);
                self.set_refined_hard(target, AVal::Ptr(h), env);
            }
        }
    }
}

#[derive(Clone, Copy)]
enum RefTarget {
    Local(usize),
    Global(usize),
}
