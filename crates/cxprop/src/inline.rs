//! The source-to-source function inliner (§2.1).
//!
//! The paper is explicit about why this exists: cXprop is context
//! insensitive, so the null/bounds checks — which live in tiny helper
//! patterns repeated at many call sites — cannot be analyzed per-site
//! until they are physically copied to the site. Inlining before the
//! backend also produces ~5% smaller code than letting the backend inline
//! the same functions, because the backend inlines too late to clean up
//! after itself.
//!
//! Eligibility: non-recursive, not an interrupt handler, not `main`, not
//! a task (dispatched by id), `return` only in tail position, and small
//! (or called exactly once).

use std::collections::HashMap;

use tcil::ir::*;
use tcil::visit;
use tcil::Program;

/// Inliner knobs.
#[derive(Debug, Clone)]
pub struct InlineOptions {
    /// Body-size threshold (statements, counted recursively).
    pub max_size: usize,
    /// Inline any single-call-site function up to this size.
    pub max_single_site: usize,
    /// Maximum inlining rounds (to follow call chains).
    pub rounds: usize,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions {
            max_size: 16,
            max_single_site: 48,
            rounds: 3,
        }
    }
}

/// Runs the inliner; returns the number of call sites expanded.
pub fn run(program: &mut Program, options: &InlineOptions) -> usize {
    let mut total = 0;
    for _ in 0..options.rounds {
        let n = run_once(program, options);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

fn stmt_count(b: &Block) -> usize {
    let mut n = 0;
    visit::walk_stmts(b, &mut |_| n += 1);
    n
}

fn calls_in(b: &Block) -> Vec<FuncId> {
    let mut out = Vec::new();
    visit::walk_stmts(b, &mut |s| {
        if let Stmt::Call { func, .. } = s {
            out.push(*func);
        }
    });
    out
}

/// `return` appears only as the final top-level statement (or not at all).
fn tail_return_only(b: &Block) -> bool {
    let mut returns = 0;
    visit::walk_stmts(b, &mut |s| {
        if matches!(s, Stmt::Return(_)) {
            returns += 1;
        }
    });
    match returns {
        0 => true,
        1 => matches!(b.last(), Some(Stmt::Return(_))),
        _ => false,
    }
}

fn run_once(program: &mut Program, options: &InlineOptions) -> usize {
    let nf = program.functions.len();
    // Call-site counts and eligibility.
    let mut site_count = vec![0usize; nf];
    for f in &program.functions {
        for c in calls_in(&f.body) {
            site_count[c.0 as usize] += 1;
        }
    }
    let mut eligible = vec![false; nf];
    for (i, f) in program.functions.iter().enumerate() {
        let recursive = calls_in(&f.body).contains(&FuncId(i as u32));
        let size = stmt_count(&f.body);
        let small = size <= options.max_size
            || (site_count[i] == 1 && size <= options.max_single_site)
            || f.inline_hint;
        eligible[i] = small
            && !recursive
            && f.interrupt.is_none()
            && !f.is_task
            && program.entry != Some(FuncId(i as u32))
            && tail_return_only(&f.body);
    }

    let mut inlined = 0;
    for ci in 0..nf {
        // Don't inline into an eligible tiny function that will itself be
        // inlined upward anyway? It is fine — rounds handle chains.
        let mut caller = std::mem::replace(
            &mut program.functions[ci],
            Function::new("<inlining>", tcil::types::Type::Void),
        );
        let mut body = std::mem::take(&mut caller.body);
        inline_in_block(&mut body, &mut caller, program, &eligible, ci, &mut inlined);
        caller.body = body;
        program.functions[ci] = caller;
    }
    inlined
}

fn inline_in_block(
    b: &mut Block,
    caller: &mut Function,
    program: &Program,
    eligible: &[bool],
    caller_idx: usize,
    inlined: &mut usize,
) {
    for s in b.iter_mut() {
        match s {
            Stmt::If { then_, else_, .. } => {
                inline_in_block(then_, caller, program, eligible, caller_idx, inlined);
                inline_in_block(else_, caller, program, eligible, caller_idx, inlined);
            }
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } => {
                inline_in_block(body, caller, program, eligible, caller_idx, inlined);
            }
            Stmt::Block(bb) => {
                inline_in_block(bb, caller, program, eligible, caller_idx, inlined);
            }
            Stmt::Call { dst, func, args } => {
                let callee_idx = func.0 as usize;
                if !eligible[callee_idx] || callee_idx == caller_idx {
                    continue;
                }
                let callee = &program.functions[callee_idx];
                // Map callee locals into fresh caller locals.
                let mut map: HashMap<u32, LocalId> = HashMap::new();
                for (li, l) in callee.locals.iter().enumerate() {
                    let nid = caller.add_local(
                        format!("__inl_{}_{}", callee.name, l.name),
                        l.ty.clone(),
                        true,
                    );
                    map.insert(li as u32, nid);
                }
                let mut spliced: Block = Vec::new();
                // Bind arguments to the (remapped) parameters.
                for (pi, a) in args.iter().enumerate() {
                    let nid = map[&(pi as u32)];
                    let ty = callee.locals[pi].ty.clone();
                    spliced.push(Stmt::Assign(Place::local(nid, ty), a.clone()));
                }
                // Copy the body with locals remapped.
                let mut copy = callee.body.clone();
                remap_block(&mut copy, &map);
                // Tail return → assignment to the destination.
                if let Some(Stmt::Return(re)) = copy.last().cloned() {
                    copy.pop();
                    if let (Some(d), Some(e)) = (dst.clone(), re) {
                        copy.push(Stmt::Assign(d, e));
                    }
                }
                spliced.extend(copy);
                *s = Stmt::Block(spliced);
                *inlined += 1;
            }
            _ => {}
        }
    }
}

fn remap_block(b: &mut Block, map: &HashMap<u32, LocalId>) {
    visit::walk_stmts_mut(b, &mut |s| {
        // Destinations.
        match s {
            Stmt::Assign(p, _) => remap_place(p, map),
            Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => {
                remap_place(p, map)
            }
            _ => {}
        }
        visit::stmt_exprs_mut(s, &mut |e| {
            visit::walk_expr_mut(e, &mut |x| {
                if let ExprKind::Load(p) | ExprKind::AddrOf(p) = &mut x.kind {
                    remap_place(p, map);
                }
            });
        });
    });
}

/// Remaps only the base local id; the callers' expression walkers visit
/// place-embedded expressions (deref bases, indices) themselves, so
/// recursing here would remap twice.
fn remap_place(p: &mut Place, map: &HashMap<u32, LocalId>) {
    if let PlaceBase::Local(id) = &mut p.base {
        *id = map[&id.0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inlines_small_helpers() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             uint8_t bump(uint8_t v) { return (uint8_t)(v + 1); }
             void main() { g = bump(g); g = bump(g); }",
        )
        .unwrap();
        let n = run(&mut p, &InlineOptions::default());
        assert_eq!(n, 2);
        // main no longer calls bump.
        let main = &p.functions[p.entry.unwrap().0 as usize];
        assert!(calls_in(&main.body).is_empty());
    }

    #[test]
    fn skips_recursive_functions() {
        let mut p = tcil::parse_and_lower(
            "uint8_t f(uint8_t n) { if (n) { return f((uint8_t)(n - 1)); } return 0; }
             void main() { f(3); }",
        )
        .unwrap();
        // `f` has a non-tail return too, but recursion alone must block it.
        let n = run(&mut p, &InlineOptions::default());
        assert_eq!(n, 0);
    }

    #[test]
    fn skips_mid_body_returns() {
        let mut p = tcil::parse_and_lower(
            "uint8_t f(uint8_t n) { if (n) { return 1; } return 0; }
             void main() { f(3); }",
        )
        .unwrap();
        assert_eq!(run(&mut p, &InlineOptions::default()), 0);
    }

    #[test]
    fn follows_call_chains_across_rounds() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             void inner() { g = 1; }
             void outer() { inner(); }
             void main() { outer(); }",
        )
        .unwrap();
        run(&mut p, &InlineOptions::default());
        let main = &p.functions[p.entry.unwrap().0 as usize];
        assert!(calls_in(&main.body).is_empty(), "chain fully inlined");
    }
}
