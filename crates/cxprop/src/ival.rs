//! Concrete interval arithmetic: the workhorse value representation of
//! the dataflow engine and of fat-pointer bounds tracking.

use tcil::ir::{BinOp, UnOp};
use tcil::types::IntKind;

/// A (possibly unbounded) integer interval `[lo, hi]`, or bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ival {
    /// No value (unreachable).
    Bot,
    /// All values in `lo..=hi` (inclusive; `i64` bounds are wide enough
    /// for every M16 type).
    Range(i64, i64),
}

impl Ival {
    /// The full range of an integer kind.
    pub fn top(kind: IntKind) -> Ival {
        Ival::Range(kind.min_value(), kind.max_value())
    }

    /// An unconstrained 64-bit interval (used when the kind is unknown).
    pub fn any() -> Ival {
        Ival::Range(i64::MIN / 4, i64::MAX / 4)
    }

    /// A singleton interval.
    pub fn const_(v: i64) -> Ival {
        Ival::Range(v, v)
    }

    /// The single value, if this interval is a singleton.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Ival::Range(a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// The bounds, if non-bottom.
    pub fn bounds(self) -> Option<(i64, i64)> {
        match self {
            Ival::Range(a, b) => Some((a, b)),
            Ival::Bot => None,
        }
    }

    /// Least upper bound.
    pub fn join(self, other: Ival) -> Ival {
        match (self, other) {
            (Ival::Bot, x) | (x, Ival::Bot) => x,
            (Ival::Range(a, b), Ival::Range(c, d)) => Ival::Range(a.min(c), b.max(d)),
        }
    }

    /// Widening: bounds that grew are pushed to the kind's extremes so
    /// loop fixpoints terminate quickly.
    pub fn widen(self, next: Ival, kind: IntKind) -> Ival {
        match (self, next) {
            (Ival::Bot, x) | (x, Ival::Bot) => x,
            (Ival::Range(a, b), Ival::Range(c, d)) => {
                let lo = if c < a { kind.min_value() } else { a };
                let hi = if d > b { kind.max_value() } else { b };
                Ival::Range(lo, hi)
            }
        }
    }

    /// Intersection (used by branch refinement).
    pub fn meet(self, other: Ival) -> Ival {
        match (self, other) {
            (Ival::Bot, _) | (_, Ival::Bot) => Ival::Bot,
            (Ival::Range(a, b), Ival::Range(c, d)) => {
                let lo = a.max(c);
                let hi = b.min(d);
                if lo > hi {
                    Ival::Bot
                } else {
                    Ival::Range(lo, hi)
                }
            }
        }
    }

    /// Whether every value satisfies `v != 0`.
    pub fn never_zero(self) -> bool {
        match self {
            Ival::Bot => true,
            Ival::Range(a, b) => a > 0 || b < 0,
        }
    }

    /// Whether the interval is exactly `{0}`.
    pub fn always_zero(self) -> bool {
        self == Ival::const_(0)
    }

    /// Abstract binary operation; result clamped to `kind`'s range when
    /// the exact range might wrap.
    pub fn binop(op: BinOp, a: Ival, b: Ival, kind: IntKind) -> Ival {
        let (Some((al, ah)), Some((bl, bh))) = (a.bounds(), b.bounds()) else {
            return Ival::Bot;
        };
        let exact = |lo: i64, hi: i64| -> Ival {
            if lo >= kind.min_value() && hi <= kind.max_value() {
                Ival::Range(lo, hi)
            } else {
                Ival::top(kind)
            }
        };
        match op {
            BinOp::Add => exact(al.saturating_add(bl), ah.saturating_add(bh)),
            BinOp::Sub => exact(al.saturating_sub(bh), ah.saturating_sub(bl)),
            BinOp::Mul => {
                let candidates = [
                    al.saturating_mul(bl),
                    al.saturating_mul(bh),
                    ah.saturating_mul(bl),
                    ah.saturating_mul(bh),
                ];
                exact(
                    *candidates.iter().min().expect("nonempty"),
                    *candidates.iter().max().expect("nonempty"),
                )
            }
            BinOp::Div if bl == bh && bl != 0 => {
                let candidates = [al / bl, ah / bl];
                exact(
                    *candidates.iter().min().expect("nonempty"),
                    *candidates.iter().max().expect("nonempty"),
                )
            }
            BinOp::Mod if bl == bh && bl > 0 && al >= 0 => {
                if ah < bl {
                    Ival::Range(al, ah) // no reduction happens
                } else {
                    Ival::Range(0, bl - 1)
                }
            }
            BinOp::And if al >= 0 && bl >= 0 => {
                // Conservative: result within [0, min(ah, bh)].
                Ival::Range(0, ah.min(bh))
            }
            BinOp::Or | BinOp::Xor if al >= 0 && bl >= 0 => {
                // Result < next power of two above both maxima. The
                // power-of-two walk saturates: a huge maximum must clamp
                // to `i64::MAX`, never wrap into a negative (lo > hi)
                // pseudo-interval that would decide comparisons wrongly.
                let m = ah.max(bh).max(1) as u64;
                let hi = m
                    .checked_next_power_of_two()
                    .and_then(|p| p.checked_mul(2))
                    .map_or(i64::MAX, |p| i64::try_from(p - 1).unwrap_or(i64::MAX));
                exact(0, hi)
            }
            BinOp::Shl if bl == bh && (0..16).contains(&bl) && al >= 0 => {
                // Saturating shifts: `ah << bl` on a wide bound would
                // overflow i64 (wrapping to a nonsense range in release,
                // panicking in debug).
                let sh = |v: i64| v.checked_mul(1i64 << bl).unwrap_or(i64::MAX);
                exact(sh(al), sh(ah))
            }
            BinOp::Shr if bl == bh && (0..16).contains(&bl) && al >= 0 => {
                Ival::Range(al >> bl, ah >> bl)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le => {
                match Self::compare(op, a, b, kind.signed()) {
                    Some(t) => Ival::const_(t as i64),
                    None => Ival::Range(0, 1),
                }
            }
            _ => Ival::top(kind),
        }
    }

    /// Decides a comparison when the intervals do not overlap usefully.
    pub fn compare(op: BinOp, a: Ival, b: Ival, _signed: bool) -> Option<bool> {
        let ((al, ah), (bl, bh)) = (a.bounds()?, b.bounds()?);
        match op {
            BinOp::Eq => {
                if ah < bl || bh < al {
                    Some(false)
                } else if al == ah && bl == bh && al == bl {
                    Some(true)
                } else {
                    None
                }
            }
            BinOp::Ne => Self::compare(BinOp::Eq, a, b, _signed).map(|t| !t),
            BinOp::Lt => {
                if ah < bl {
                    Some(true)
                } else if al >= bh {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Le => {
                if ah <= bl {
                    Some(true)
                } else if al > bh {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Abstract unary operation.
    pub fn unop(op: UnOp, a: Ival, kind: IntKind) -> Ival {
        let Some((lo, hi)) = a.bounds() else {
            return Ival::Bot;
        };
        match op {
            UnOp::Neg => {
                let (nl, nh) = (-hi, -lo);
                if nl >= kind.min_value() && nh <= kind.max_value() {
                    Ival::Range(nl, nh)
                } else {
                    Ival::top(kind)
                }
            }
            UnOp::Not => {
                if a.never_zero() {
                    Ival::const_(0)
                } else if a.always_zero() {
                    Ival::const_(1)
                } else {
                    Ival::Range(0, 1)
                }
            }
            UnOp::BitNot => Ival::top(kind),
        }
    }

    /// Conversion to another integer kind.
    pub fn cast(self, to: IntKind) -> Ival {
        match self {
            Ival::Bot => Ival::Bot,
            Ival::Range(lo, hi) => {
                if lo >= to.min_value() && hi <= to.max_value() {
                    Ival::Range(lo, hi)
                } else {
                    Ival::top(to)
                }
            }
        }
    }

    /// Refines `self` assuming `self op other` evaluated to `taken`.
    pub fn refine(self, op: BinOp, other: Ival, taken: bool) -> Ival {
        let Some((ol, oh)) = other.bounds() else {
            return self;
        };
        let constraint = match (op, taken) {
            (BinOp::Eq, true) | (BinOp::Ne, false) => Ival::Range(ol, oh),
            (BinOp::Lt, true) => Ival::Range(i64::MIN / 4, oh - 1),
            (BinOp::Lt, false) => Ival::Range(ol, i64::MAX / 4),
            (BinOp::Le, true) => Ival::Range(i64::MIN / 4, oh),
            (BinOp::Le, false) => Ival::Range(ol + 1, i64::MAX / 4),
            // != when taken / == when not taken: only useful for singletons
            // at an interval boundary; skip.
            _ => return self,
        };
        self.meet(constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_meet() {
        let a = Ival::Range(1, 5);
        let b = Ival::Range(3, 9);
        assert_eq!(a.join(b), Ival::Range(1, 9));
        assert_eq!(a.meet(b), Ival::Range(3, 5));
        assert_eq!(Ival::Range(1, 2).meet(Ival::Range(5, 6)), Ival::Bot);
    }

    #[test]
    fn arithmetic_stays_exact_when_in_range() {
        let a = Ival::Range(1, 5);
        let b = Ival::Range(10, 20);
        assert_eq!(
            Ival::binop(BinOp::Add, a, b, IntKind::U16),
            Ival::Range(11, 25)
        );
        assert_eq!(
            Ival::binop(BinOp::Mul, a, b, IntKind::U16),
            Ival::Range(10, 100)
        );
    }

    #[test]
    fn overflow_goes_to_top() {
        let a = Ival::Range(200, 255);
        let b = Ival::Range(200, 255);
        assert_eq!(
            Ival::binop(BinOp::Add, a, b, IntKind::U8),
            Ival::top(IntKind::U8)
        );
    }

    #[test]
    fn comparisons_decide_when_disjoint() {
        let a = Ival::Range(0, 5);
        let b = Ival::Range(10, 20);
        assert_eq!(Ival::compare(BinOp::Lt, a, b, false), Some(true));
        assert_eq!(Ival::compare(BinOp::Eq, a, b, false), Some(false));
        assert_eq!(Ival::compare(BinOp::Lt, b, a, false), Some(false));
        let c = Ival::Range(3, 12);
        assert_eq!(Ival::compare(BinOp::Lt, a, c, false), None);
    }

    #[test]
    fn refinement_narrows() {
        let i = Ival::top(IntKind::U8);
        let n = Ival::const_(10);
        assert_eq!(i.refine(BinOp::Lt, n, true), Ival::Range(0, 9));
        assert_eq!(i.refine(BinOp::Lt, n, false), Ival::Range(10, 255));
        assert_eq!(i.refine(BinOp::Eq, n, true), Ival::const_(10));
    }

    #[test]
    fn widening_terminates() {
        let a = Ival::Range(0, 1);
        let b = Ival::Range(0, 2);
        let w = a.widen(b, IntKind::U8);
        assert_eq!(w, Ival::Range(0, 255));
        // Stable once widened.
        assert_eq!(w.widen(w, IntKind::U8), w);
    }

    #[test]
    fn wide_shift_saturates_instead_of_overflowing() {
        // A near-i64-wide bound shifted left must clamp, not wrap (or
        // panic in debug): the result collapses to the kind's top.
        let a = Ival::Range(0, i64::MAX / 4);
        let b = Ival::const_(15);
        let r = Ival::binop(BinOp::Shl, a, b, IntKind::U16);
        assert_eq!(r, Ival::top(IntKind::U16));
    }

    #[test]
    fn wide_or_never_builds_an_inverted_interval() {
        // next_power_of_two on a huge maximum must not wrap hi below lo.
        let a = Ival::Range(0, i64::MAX / 4);
        let r = Ival::binop(BinOp::Or, a, a, IntKind::U16);
        let (lo, hi) = r.bounds().expect("non-bottom");
        assert!(lo <= hi, "inverted interval {lo}..{hi}");
        assert_eq!(r, Ival::top(IntKind::U16));
    }

    #[test]
    fn mod_by_constant_bounds() {
        let a = Ival::Range(0, 100);
        let b = Ival::const_(8);
        assert_eq!(
            Ival::binop(BinOp::Mod, a, b, IntKind::U8),
            Ival::Range(0, 7)
        );
    }
}
