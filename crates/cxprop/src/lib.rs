//! cXprop: the aggressive whole-program dataflow analyzer and optimizer
//! of the Safe TinyOS toolchain (§2.1 of the paper).
//!
//! Where CCured's own optimizer (and the backend's GCC tier) only remove
//! "easy" checks, this crate removes *any* part of a program it can show
//! dead or useless:
//!
//! * [`engine`] — whole-program dataflow over pluggable abstract domains
//!   (constants or intervals) with fat-pointer bounds tracking,
//!   TinyOS-concurrency-aware global refinement, and branch refinement;
//!   its transform phase deletes checks, folds constants, and folds
//!   branches,
//! * [`inline`] — the source-to-source inliner that gives the context
//!   sensitivity Figure 2 shows is decisive,
//! * [`copyprop`] — block-local copy propagation,
//! * [`dce`] — strong dead code *and data* elimination with id
//!   renumbering (Figure 3(b)'s RAM savings),
//! * [`atomic_opt`] — nested-atomic elimination and interrupt-enable-bit
//!   save avoidance,
//! * [`races`] — cXprop's own conservative, pointer-following race
//!   detector.
//!
//! # Example
//!
//! ```
//! use cxprop::{optimize, CxpropOptions};
//!
//! let mut program = tcil::parse_and_lower(
//!     "uint8_t g;
//!      uint8_t dead;
//!      void main() { uint8_t x; x = 2; if (x < 5) { g = 1; } dead = 9; }",
//! ).unwrap();
//! let stats = optimize(&mut program, &CxpropOptions::default());
//! assert!(stats.dce.globals_removed >= 1);      // `dead` eliminated
//! assert!(stats.engine.branches_folded >= 1);   // `x < 5` decided
//! ```

pub mod atomic_opt;
pub mod aval;
pub mod copyprop;
pub mod dce;
pub mod engine;
pub mod inline;
pub mod ival;
pub mod race_sites;
pub mod races;

use tcil::Program;

pub use atomic_opt::AtomicStats;
pub use dce::DceStats;
pub use engine::{DomainKind, EngineStats};
pub use inline::InlineOptions;
pub use race_sites::{HardenStats, RaceFindings, RaceSite, SiteKind};
pub use races::RaceReport;

/// Pipeline options.
#[derive(Debug, Clone)]
pub struct CxpropOptions {
    /// Run the source-to-source inliner first.
    pub inline: bool,
    /// Inliner thresholds.
    pub inline_options: InlineOptions,
    /// Abstract integer domain.
    pub domain: DomainKind,
    /// Fault-hardened check elimination: remove a check only when the
    /// proof also covers the fault-reachable value set (loads of mutable
    /// RAM globals widened to their type's full range — see
    /// [`engine`]'s module docs). Disable (`cxprop(noharden)`) to get
    /// the classical policy, which the fault-injection harness uses to
    /// demonstrate the detection-rate collapse it causes.
    pub fault_harden: bool,
    /// Run copy propagation.
    pub copyprop: bool,
    /// Run dead code/data elimination.
    pub dce: bool,
    /// Run atomic-section optimization.
    pub atomic_opt: bool,
    /// Refine race information first (more precise than the frontend's).
    pub refine_races: bool,
    /// Maximum optimize rounds.
    pub max_rounds: usize,
}

impl Default for CxpropOptions {
    fn default() -> Self {
        CxpropOptions {
            inline: true,
            inline_options: InlineOptions::default(),
            domain: DomainKind::Intervals,
            fault_harden: true,
            copyprop: true,
            dce: true,
            atomic_opt: true,
            refine_races: true,
            max_rounds: 3,
        }
    }
}

/// Aggregate statistics from one [`optimize`] run.
#[derive(Debug, Clone, Default)]
pub struct CxpropStats {
    /// Call sites inlined.
    pub inlined: usize,
    /// Engine transform totals.
    pub engine: EngineStats,
    /// Copy-propagation redirects.
    pub copies_propagated: usize,
    /// DCE totals.
    pub dce: DceStats,
    /// Atomic-section totals.
    pub atomics: AtomicStats,
    /// Race refinement result.
    pub races: RaceReport,
}

/// Runs the full cXprop pipeline over `program` in place.
pub fn optimize(program: &mut Program, options: &CxpropOptions) -> CxpropStats {
    let mut stats = CxpropStats::default();
    if options.refine_races {
        stats.races = races::refine(program);
    }
    if options.inline {
        stats.inlined = inline::run(program, &options.inline_options);
    }
    for _ in 0..options.max_rounds {
        let mut changed = false;
        let mut eng = engine::Engine::analyze_opts(program, options.domain, options.fault_harden);
        let es = eng.transform(program);
        stats.engine.checks_removed += es.checks_removed;
        stats.engine.branches_folded += es.branches_folded;
        stats.engine.consts_folded += es.consts_folded;
        changed |= es != EngineStats::default();
        if options.copyprop {
            let n = copyprop::run(program);
            stats.copies_propagated += n;
            changed |= n > 0;
        }
        if options.atomic_opt {
            let a = atomic_opt::run(program);
            stats.atomics.removed += a.removed;
            stats.atomics.demoted += a.demoted;
            changed |= a != AtomicStats::default();
        }
        if options.dce {
            let d = dce::run(program);
            stats.dce.functions_removed += d.functions_removed;
            stats.dce.globals_removed += d.globals_removed;
            stats.dce.stores_removed += d.stores_removed;
            changed |= d != DceStats::default();
        }
        if !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured::{cure, CureOptions};

    #[test]
    fn removes_checks_on_constant_buffers() {
        let mut p = tcil::parse_and_lower(
            "uint8_t buf[8];
             uint16_t sum;
             uint8_t get(uint8_t * ptr, uint8_t i) { return ptr[i]; }
             void main() {
                 uint8_t i;
                 for (i = 0; i < 8; i++) { sum += get(buf, i); }
             }",
        )
        .unwrap();
        cure(&mut p, &CureOptions::default()).unwrap();
        let before = p.count_checks();
        assert!(before > 0);
        let stats = optimize(&mut p, &CxpropOptions::default());
        let after = p.count_checks();
        assert!(
            after < before,
            "cxprop should remove checks: {before} -> {after} ({stats:?})"
        );
    }

    #[test]
    fn inlining_improves_check_removal() {
        // Without inlining, the check inside `get` sees the join of all
        // call sites; with inlining each site is analyzed separately —
        // this is Figure 2's mechanism.
        let src = "
             uint8_t buf[8];
             uint8_t other[4];
             uint16_t sum;
             uint8_t get(uint8_t * ptr, uint8_t i) { return ptr[i]; }
             void main() {
                 uint8_t i;
                 for (i = 0; i < 8; i++) { sum += get(buf, i); }
                 for (i = 0; i < 4; i++) { sum += get(other, i); }
             }";
        let count = |inline: bool| {
            let mut p = tcil::parse_and_lower(src).unwrap();
            cure(&mut p, &CureOptions::default()).unwrap();
            let opts = CxpropOptions {
                inline,
                ..Default::default()
            };
            optimize(&mut p, &opts);
            p.count_checks()
        };
        let with_inline = count(true);
        let without = count(false);
        assert!(
            with_inline <= without,
            "inlining must not hurt: {with_inline} vs {without}"
        );
    }

    #[test]
    fn interval_domain_beats_constants() {
        let src = "
             uint8_t buf[16];
             uint16_t sum;
             void main() {
                 uint8_t i;
                 for (i = 0; i < 16; i++) { sum += buf[i]; }
             }";
        let count = |domain: DomainKind| {
            let mut p = tcil::parse_and_lower(src).unwrap();
            cure(&mut p, &CureOptions::default()).unwrap();
            let opts = CxpropOptions {
                domain,
                ..Default::default()
            };
            optimize(&mut p, &opts);
            p.count_checks()
        };
        let intervals = count(DomainKind::Intervals);
        let constants = count(DomainKind::Constants);
        assert!(intervals <= constants, "{intervals} vs {constants}");
    }

    #[test]
    fn hardened_elimination_keeps_checks_on_ram_global_indices() {
        // `pos` provably stays in 0..8 under uncorrupted semantics (the
        // only store masks with & 7), so the classical interval policy
        // deletes the index check — and with it the coverage against a
        // bit flip in `pos`. The hardened policy must keep it: the proof
        // rests on an invariant a corrupted RAM cell does not honor.
        let src = "
             uint8_t buf[8];
             uint8_t pos;
             uint16_t sum;
             void main() {
                 uint8_t i;
                 for (i = 0; i < 100; i++) {
                     pos = (uint8_t)((pos + 1) & 7);
                     sum += buf[pos];
                 }
             }";
        let count = |harden: bool| {
            let mut p = tcil::parse_and_lower(src).unwrap();
            cure(&mut p, &CureOptions::default()).unwrap();
            let opts = CxpropOptions {
                inline: false,
                fault_harden: harden,
                ..Default::default()
            };
            optimize(&mut p, &opts);
            p.count_checks()
        };
        assert_eq!(count(false), 0, "classical policy removes the check");
        assert!(count(true) > 0, "hardened policy keeps fault coverage");
    }

    #[test]
    fn hardened_elimination_still_removes_locally_proven_checks() {
        // A loop over a *local* counter: locals sit outside the
        // static-data fault window, so the branch-refined proof covers
        // the fault-reachable set too and the check still goes away —
        // the Figure 2/3 wins survive hardening.
        let src = "
             uint8_t buf[8];
             uint16_t sum;
             void main() {
                 uint8_t i;
                 for (i = 0; i < 8; i++) { sum += buf[i]; }
             }";
        let mut p = tcil::parse_and_lower(src).unwrap();
        cure(&mut p, &CureOptions::default()).unwrap();
        assert!(p.count_checks() > 0);
        optimize(&mut p, &CxpropOptions::default());
        assert_eq!(p.count_checks(), 0, "local-index proof survives hardening");
    }

    #[test]
    fn hardened_elimination_removes_checks_whose_proof_covers_the_type() {
        // An index masked to 0..8 *at the access* is safe for every
        // value the corrupted cell can take — the proof covers the full
        // fault-reachable set, so even the hardened policy removes it.
        let src = "
             uint8_t buf[8];
             uint8_t pos;
             uint16_t sum;
             void main() {
                 uint8_t i;
                 for (i = 0; i < 100; i++) {
                     pos = (uint8_t)(pos + 3);
                     sum += buf[pos & 7];
                 }
             }";
        let mut p = tcil::parse_and_lower(src).unwrap();
        cure(&mut p, &CureOptions::default()).unwrap();
        assert!(p.count_checks() > 0);
        optimize(
            &mut p,
            &CxpropOptions {
                inline: false,
                ..Default::default()
            },
        );
        assert_eq!(p.count_checks(), 0, "mask-at-access proof is fault-proof");
    }

    #[test]
    fn optimized_programs_still_run_correctly() {
        let src = "
             uint8_t buf[8];
             uint16_t sum;
             uint16_t total(uint8_t * p, uint8_t n) {
                 uint16_t s;
                 uint8_t i;
                 s = 0;
                 for (i = 0; i < n; i++) { s += p[i]; }
                 return s;
             }
             void main() {
                 uint8_t i;
                 for (i = 0; i < 8; i++) { buf[i] = (uint8_t)(i * 2); }
                 sum = total(buf, 8);
                 __hw_write8(0xF000, (uint8_t)(sum & 7));
             }";
        let mut p = tcil::parse_and_lower(src).unwrap();
        cure(&mut p, &CureOptions::default()).unwrap();
        optimize(&mut p, &CxpropOptions::default());
        let image = backend::compile(
            &p,
            mcu::Profile::mica2(),
            &backend::BackendOptions::default(),
        )
        .unwrap();
        let mut m = mcu::Machine::new(&image);
        m.run(1_000_000);
        assert_eq!(
            m.state,
            mcu::RunState::Halted,
            "fault: {:?}",
            m.fault_message()
        );
        // sum = 56; LED register observes 56 & 7 = 0.
        assert_eq!(m.devices.leds.value, 0);
        // The observable output survives even though the optimizer may
        // have constant-folded the whole chain.
        assert!(m.instr_count > 0);
    }
}
