//! Per-access-site race classification and auto-hardening.
//!
//! [`races::refine`] answers *which globals* race; this module answers
//! *where* and *how*. [`classify`] walks each racy global's actual
//! access sites in synchronous code — reusing the reachability /
//! atomic-protection lattice of [`races`] — and files every unprotected
//! site under one of three stable hazard codes:
//!
//! * **R001 `unprotected-sync-write`** — a synchronous write outside any
//!   `atomic` section; an interrupt can observe or clobber the variable
//!   mid-protocol,
//! * **R002 `torn-16bit-access`** — an unprotected access wider than the
//!   8-bit bus; the two bus transfers can be split by an interrupt,
//!   leaving a half-updated (or half-read) word,
//! * **R003 `async-rmw`** — an unprotected read-modify-write of a global
//!   that asynchronous context also updates: the classic lost-update
//!   race (`x = x + 1` preempted between load and store).
//!
//! Sites are labeled `func:index` with the deterministic statement-site
//! numbering of [`tcil::visit::walk_stmts_sited`] — the statement-level
//! analogue of check FLIDs, since the IR carries no source positions.
//!
//! [`harden`] is the `races(fix)` transform: it wraps every flagged
//! statement in a minimal [`Stmt::Atomic`] section (`SaveRestore`, so
//! the wrap is correct in any context) and re-runs the analysis until no
//! diagnostics remain. A `return` statement that reads a racy global
//! cannot be wrapped whole — returning out of an atomic section would
//! skip the IRQ restore — so its value is hoisted through an atomic
//! temporary instead. Nested sections introduced by wrapping are left
//! for [`crate::atomic_opt`] to clean up.

use std::collections::{BTreeMap, BTreeSet};

use tcil::ir::*;
use tcil::types::size_of;
use tcil::visit;
use tcil::Program;

use crate::races::{self, Contexts, RaceReport};

/// The hazard class of one access site, in increasing severity order
/// (a site exhibiting several hazards is filed under the worst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// R001: unprotected synchronous write.
    UnprotectedSyncWrite,
    /// R002: unprotected access wider than the 8-bit bus.
    Torn16Access,
    /// R003: unprotected synchronous read-modify-write.
    AsyncRmw,
}

impl SiteKind {
    /// The stable diagnostic code (`R001` / `R002` / `R003`).
    pub fn code(self) -> &'static str {
        match self {
            SiteKind::UnprotectedSyncWrite => "R001",
            SiteKind::Torn16Access => "R002",
            SiteKind::AsyncRmw => "R003",
        }
    }

    /// The code's kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            SiteKind::UnprotectedSyncWrite => "unprotected-sync-write",
            SiteKind::Torn16Access => "torn-16bit-access",
            SiteKind::AsyncRmw => "async-rmw",
        }
    }
}

/// One classified access site of one racy global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSite {
    /// Function containing the site.
    pub func: FuncId,
    /// The function's name (for `func:site` labels).
    pub func_name: String,
    /// Deterministic statement-site index within the function
    /// ([`tcil::visit::walk_stmts_sited`] numbering).
    pub site: u32,
    /// The racy global accessed.
    pub global: String,
    /// Hazard classification.
    pub kind: SiteKind,
    /// Whether the site writes the global.
    pub write: bool,
    /// Width of the access in bytes.
    pub width: u32,
}

impl RaceSite {
    /// The FLID-style site label (`func:index`).
    pub fn label(&self) -> String {
        visit::site_label(&self.func_name, self.site)
    }
}

/// Result of one [`classify`] run.
#[derive(Debug, Clone, Default)]
pub struct RaceFindings {
    /// The per-global verdicts ([`races::refine`] output; `Global::racy`
    /// flags in the program are updated to match).
    pub report: RaceReport,
    /// Every flagged access site, in (function, site, global) order.
    pub sites: Vec<RaceSite>,
}

/// Per-statement access accumulator for one global.
#[derive(Default, Clone, Copy)]
struct StmtAcc {
    read: bool,
    write: bool,
    width: u32,
}

/// Re-runs [`races::refine`] and classifies every unprotected
/// synchronous access site of the racy globals.
///
/// Accesses through pointers cannot be attributed to a specific global
/// and are not classified per-site (the per-global pointer conservatism
/// of the refine step still flags the *globals*); a racy global reached
/// only through pointers therefore contributes no site diagnostics.
pub fn classify(program: &mut Program) -> RaceFindings {
    let report = races::refine(program);
    let Contexts { is_async, is_sync } = races::contexts(program);
    let racy: Vec<bool> = program.globals.iter().map(|g| g.racy).collect();

    let mut sites = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        if !is_sync[fi] {
            // Handler-only code runs with interrupts disabled: implicitly
            // protected, exactly as in the refine lattice. Dead code has
            // no executions to race.
            continue;
        }
        let _ = is_async[fi]; // mixed context classifies by its sync side
        let mut next = 0u32;
        scan(
            &f.body,
            &mut next,
            false,
            &racy,
            program,
            FuncId(fi as u32),
            &f.name,
            &mut sites,
        );
    }
    RaceFindings { report, sites }
}

#[allow(clippy::too_many_arguments)]
fn scan(
    block: &Block,
    next: &mut u32,
    protected: bool,
    racy: &[bool],
    program: &Program,
    func: FuncId,
    func_name: &str,
    out: &mut Vec<RaceSite>,
) {
    for s in block {
        let idx = *next;
        *next += 1;
        if !protected {
            classify_stmt(s, idx, racy, program, func, func_name, out);
        }
        match s {
            Stmt::Atomic { body, .. } => {
                scan(body, next, true, racy, program, func, func_name, out)
            }
            Stmt::If { then_, else_, .. } => {
                scan(then_, next, protected, racy, program, func, func_name, out);
                scan(else_, next, protected, racy, program, func, func_name, out);
            }
            Stmt::While { body, .. } | Stmt::Block(body) => {
                scan(body, next, protected, racy, program, func, func_name, out)
            }
            _ => {}
        }
    }
}

/// Classifies the direct racy-global accesses of one statement's own
/// expressions and destination (nested statements are their own sites).
fn classify_stmt(
    s: &Stmt,
    idx: u32,
    racy: &[bool],
    program: &Program,
    func: FuncId,
    func_name: &str,
    out: &mut Vec<RaceSite>,
) {
    let mut acc: BTreeMap<GlobalId, StmtAcc> = BTreeMap::new();
    visit::stmt_exprs(s, &mut |e| {
        visit::walk_expr(e, &mut |x| {
            if let ExprKind::Load(p) = &x.kind {
                if let PlaceBase::Global(g) = &p.base {
                    if racy[g.0 as usize] {
                        let a = acc.entry(*g).or_default();
                        a.read = true;
                        a.width = a.width.max(size_of(&p.ty, &program.structs));
                    }
                }
            }
        });
    });
    let dst = match s {
        Stmt::Assign(p, _) => Some(p),
        Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => Some(p),
        _ => None,
    };
    if let Some(p) = dst {
        if let PlaceBase::Global(g) = &p.base {
            if racy[g.0 as usize] {
                let a = acc.entry(*g).or_default();
                a.write = true;
                a.width = a.width.max(size_of(&p.ty, &program.structs));
            }
        }
    }
    for (gid, a) in acc {
        let kind = if a.read && a.write {
            SiteKind::AsyncRmw
        } else if a.width > 1 {
            SiteKind::Torn16Access
        } else if a.write {
            SiteKind::UnprotectedSyncWrite
        } else {
            // A one-byte pure read is atomic on the 8-bit bus: no hazard.
            continue;
        };
        out.push(RaceSite {
            func,
            func_name: func_name.to_string(),
            site: idx,
            global: program.globals[gid.0 as usize].name.clone(),
            kind,
            write: a.write,
            width: a.width.max(1),
        });
    }
}

/// What [`harden`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardenStats {
    /// Minimal atomic sections wrapped around flagged statements (plus
    /// atomic value-hoists for flagged `return`s).
    pub sections_added: usize,
    /// Analysis/transform iterations until the fixpoint.
    pub iterations: usize,
    /// Sites still diagnosed when no further transform applied (0 at a
    /// clean fixpoint).
    pub residual_sites: usize,
}

/// The `races(fix)` transform: wraps every flagged synchronous access
/// site in a minimal atomic section and iterates [`classify`] to a
/// zero-diagnostic fixpoint. Returns the transform stats; run
/// [`crate::atomic_opt`] afterwards to unwrap the nesting this
/// introduces.
pub fn harden(program: &mut Program) -> HardenStats {
    let mut stats = HardenStats::default();
    // Each iteration wraps at least one site or stops; the site count is
    // finite and wrapped sites never re-flag, so this terminates. The
    // bound is sheer paranoia.
    for _ in 0..64 {
        let findings = classify(program);
        if findings.sites.is_empty() {
            return stats;
        }
        stats.iterations += 1;
        let mut by_func: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for site in &findings.sites {
            by_func.entry(site.func.0).or_default().insert(site.site);
        }
        let mut wrapped = 0;
        for (fi, targets) in by_func {
            wrapped += wrap_sites(&mut program.functions[fi as usize], &targets);
        }
        stats.sections_added += wrapped;
        if wrapped == 0 {
            stats.residual_sites = findings.sites.len();
            break;
        }
    }
    stats
}

/// Wraps the statements at `targets` (site indices in `f`'s current
/// numbering) in atomic sections, bottom-up so the numbering of the walk
/// is never disturbed. Returns the number of sections added.
fn wrap_sites(f: &mut Function, targets: &BTreeSet<u32>) -> usize {
    fn go(
        block: &mut Block,
        next: &mut u32,
        targets: &BTreeSet<u32>,
        locals: &mut Vec<Local>,
        wrapped: &mut usize,
    ) {
        for s in block.iter_mut() {
            let idx = *next;
            *next += 1;
            // Children first: wrapping `s` afterwards cannot disturb the
            // site numbering of anything the walk has yet to visit.
            match s {
                Stmt::If { then_, else_, .. } => {
                    go(then_, next, targets, locals, wrapped);
                    go(else_, next, targets, locals, wrapped);
                }
                Stmt::While { body, .. } | Stmt::Atomic { body, .. } => {
                    go(body, next, targets, locals, wrapped)
                }
                Stmt::Block(b) => go(b, next, targets, locals, wrapped),
                _ => {}
            }
            if targets.contains(&idx) {
                if let Stmt::Return(Some(e)) = s {
                    // `atomic { return x; }` would skip the IRQ restore;
                    // hoist the value through an atomic temporary.
                    let ty = e.ty.clone();
                    locals.push(Local {
                        name: format!("__t{}", locals.len()),
                        ty: ty.clone(),
                        is_temp: true,
                    });
                    let tmp = LocalId((locals.len() - 1) as u32);
                    let value = std::mem::replace(e, Expr::load(Place::local(tmp, ty.clone())));
                    let ret = std::mem::replace(s, Stmt::Nop);
                    *s = Stmt::Block(vec![
                        Stmt::Atomic {
                            body: vec![Stmt::Assign(Place::local(tmp, ty), value)],
                            style: AtomicStyle::SaveRestore,
                        },
                        ret,
                    ]);
                    *wrapped += 1;
                } else if safe_to_wrap(s) {
                    let inner = std::mem::replace(s, Stmt::Nop);
                    *s = Stmt::Atomic {
                        body: vec![inner],
                        style: AtomicStyle::SaveRestore,
                    };
                    *wrapped += 1;
                }
            }
        }
    }
    let mut wrapped = 0;
    let mut next = 0u32;
    let Function { body, locals, .. } = f;
    go(body, &mut next, targets, locals, &mut wrapped);
    wrapped
}

/// Whether wrapping `s` whole in an atomic section preserves control
/// flow: no `return` may escape the section (it would skip the IRQ
/// restore), and no `break`/`continue` may target a loop outside it.
fn safe_to_wrap(s: &Stmt) -> bool {
    fn ok(block: &Block, in_loop: bool) -> bool {
        block.iter().all(|s| match s {
            Stmt::Return(_) => false,
            Stmt::Break | Stmt::Continue => in_loop,
            Stmt::If { then_, else_, .. } => ok(then_, in_loop) && ok(else_, in_loop),
            Stmt::While { body, .. } => ok(body, true),
            Stmt::Atomic { body, .. } | Stmt::Block(body) => ok(body, in_loop),
            _ => true,
        })
    }
    match s {
        Stmt::Return(_) | Stmt::Break | Stmt::Continue => false,
        Stmt::While { body, .. } => ok(body, true),
        Stmt::If { then_, else_, .. } => ok(then_, false) && ok(else_, false),
        Stmt::Atomic { body, .. } | Stmt::Block(body) => ok(body, false),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> Program {
        tcil::parse_and_lower(src).unwrap()
    }

    #[test]
    fn classifies_all_three_codes() {
        let mut p = lower(
            "uint8_t flag;
             uint16_t count;
             uint8_t accum;
             interrupt(TIMER0) void h() { flag = 1; count = 2; accum = 3; }
             void main() {
                 flag = 0;                      /* R001: 8-bit write */
                 count = 7;                     /* R002: 16-bit write */
                 accum = (uint8_t)(accum + 1);  /* R003: rmw */
             }",
        );
        let f = classify(&mut p);
        let codes: Vec<&str> = f.sites.iter().map(|s| s.kind.code()).collect();
        assert_eq!(codes, ["R001", "R002", "R003"]);
        assert!(f.sites.iter().all(|s| s.func_name == "main"));
        assert!(f.sites[0].label().starts_with("main:"));
        assert_eq!(f.sites[1].width, 2);
    }

    #[test]
    fn rmw_outranks_torn_width() {
        let mut p = lower(
            "uint16_t count;
             interrupt(TIMER0) void h() { count = 1; }
             void main() { count = (uint16_t)(count + 1); }",
        );
        let f = classify(&mut p);
        assert_eq!(f.sites.len(), 1);
        assert_eq!(f.sites[0].kind, SiteKind::AsyncRmw);
        assert_eq!(f.sites[0].width, 2);
    }

    #[test]
    fn protected_and_handler_sites_are_clean() {
        let mut p = lower(
            "uint8_t shared;
             interrupt(TIMER0) void h() { shared = (uint8_t)(shared + 1); }
             void main() { atomic { shared = 2; } }",
        );
        let f = classify(&mut p);
        assert!(f.sites.is_empty(), "{:?}", f.sites);
    }

    #[test]
    fn one_byte_pure_reads_are_not_flagged() {
        let mut p = lower(
            "uint8_t shared;
             uint8_t out;
             interrupt(TIMER0) void h() { shared = 1; }
             void main() { out = shared; }",
        );
        let f = classify(&mut p);
        // `shared` is racy (async write + sync read), but an 8-bit read
        // is atomic on the bus: no site diagnostic.
        assert!(f.report.racy.contains(&"shared".to_string()));
        assert!(f.sites.is_empty(), "{:?}", f.sites);
    }

    #[test]
    fn harden_reaches_zero_diagnostics() {
        let mut p = lower(
            "uint8_t flag;
             uint16_t count;
             interrupt(TIMER0) void h() { flag = 1; count = 2; }
             void main() {
                 flag = 0;
                 count = (uint16_t)(count + 1);
                 if (count < 5) { count = 0; }
             }",
        );
        let stats = harden(&mut p);
        assert!(stats.sections_added >= 3, "{stats:?}");
        assert_eq!(stats.residual_sites, 0);
        assert!(classify(&mut p).sites.is_empty());
    }

    #[test]
    fn harden_hoists_flagged_returns() {
        let mut p = lower(
            "uint16_t count;
             interrupt(TIMER0) void h() { count = 2; }
             uint16_t get() { return count; }
             void main() { count = get(); }",
        );
        let stats = harden(&mut p);
        assert_eq!(stats.residual_sites, 0, "{stats:?}");
        assert!(classify(&mut p).sites.is_empty());
    }

    #[test]
    fn hardened_program_still_runs() {
        let mut p = lower(
            "uint16_t count;
             uint8_t i;
             interrupt(TIMER0) void h() { count = (uint16_t)(count + 1); }
             void main() {
                 for (i = 0; i < 10; i++) { count = (uint16_t)(count + 2); }
                 __hw_write8(0xF000, (uint8_t)(count & 7));
             }",
        );
        let stats = harden(&mut p);
        assert_eq!(stats.residual_sites, 0, "{stats:?}");
        let image = backend::compile(
            &p,
            mcu::Profile::mica2(),
            &backend::BackendOptions::default(),
        )
        .unwrap();
        let mut m = mcu::Machine::new(&image);
        m.run(1_000_000);
        assert_eq!(m.state, mcu::RunState::Halted, "{:?}", m.fault_message());
        // count = 20; LED register observes 20 & 7 = 4.
        assert_eq!(m.devices.leds.value, 4);
    }
}
