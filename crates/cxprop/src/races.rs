//! cXprop's own race-condition detector (§2.1).
//!
//! The paper replaced reliance on nesC's analysis with a detector that is
//! "conservative (nesC's analysis does not follow pointers) and slightly
//! more precise". Both properties are reproduced here relative to the
//! `nesc` crate's report:
//!
//! * **conservative**: address-taken globals are treated as reachable by
//!   any pointer dereference in the other context (pointer following),
//! * **more precise**: a race additionally requires at least one *write*
//!   — two contexts that only ever read a variable do not race.

use tcil::ir::*;
use tcil::visit;
use tcil::Program;

/// Race analysis result.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Globals confirmed racy.
    pub racy: Vec<String>,
    /// Globals the nesC-level report flagged that this analysis cleared
    /// (read-only sharing).
    pub cleared: Vec<String>,
}

#[derive(Default, Clone, Copy)]
struct Acc {
    async_read: bool,
    async_write: bool,
    sync_unprot_read: bool,
    sync_unprot_write: bool,
    addr_taken: bool,
}

/// Per-function context reachability: the two-level concurrency lattice
/// every race analysis in this crate shares. `is_async[f]` — reachable
/// from an interrupt handler; `is_sync[f]` — reachable from `main` or a
/// task. A function can be both (mixed context) or neither (dead).
#[derive(Debug, Clone)]
pub struct Contexts {
    /// Reachable from interrupt handlers.
    pub is_async: Vec<bool>,
    /// Reachable from `main` / tasks.
    pub is_sync: Vec<bool>,
}

/// Computes [`Contexts`] over `program`'s call graph.
pub fn contexts(program: &Program) -> Contexts {
    let nf = program.functions.len();
    let mut callees: Vec<Vec<u32>> = vec![Vec::new(); nf];
    for (fi, f) in program.functions.iter().enumerate() {
        visit::walk_stmts(&f.body, &mut |s| {
            if let Stmt::Call { func, .. } = s {
                callees[fi].push(func.0);
            }
        });
    }
    let reach = |roots: Vec<u32>| {
        let mut seen = vec![false; nf];
        let mut work = roots;
        while let Some(f) = work.pop() {
            if std::mem::replace(&mut seen[f as usize], true) {
                continue;
            }
            work.extend(callees[f as usize].iter().copied());
        }
        seen
    };
    let is_async = reach(
        program
            .functions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.interrupt.map(|_| i as u32))
            .collect(),
    );
    let is_sync = reach(
        program
            .entry
            .iter()
            .map(|e| e.0)
            .chain(program.tasks.iter().map(|t| t.0))
            .collect(),
    );
    Contexts { is_async, is_sync }
}

/// Re-runs race detection and updates [`Global::racy`] flags in place.
pub fn refine(program: &mut Program) -> RaceReport {
    let Contexts { is_async, is_sync } = contexts(program);

    let ng = program.globals.len();
    let mut acc = vec![Acc::default(); ng];
    let mut deref_write_async = false;
    let mut deref_write_sync_unprot = false;

    for (fi, f) in program.functions.iter().enumerate() {
        let (a, s) = (is_async[fi], is_sync[fi]);
        if !a && !s {
            continue;
        }
        scan(
            &f.body,
            a,
            s,
            a && !s, // handler-only context is implicitly protected
            &mut acc,
            &mut deref_write_async,
            &mut deref_write_sync_unprot,
        );
    }

    let mut report = RaceReport::default();
    for (gi, g) in program.globals.iter_mut().enumerate() {
        let mut x = acc[gi];
        if x.addr_taken {
            // Pointer following: a deref-write in a context acts as a
            // write to every address-taken global from that context.
            x.async_write |= deref_write_async;
            x.sync_unprot_write |= deref_write_sync_unprot;
        }
        let async_access = x.async_read || x.async_write;
        let sync_unprot = x.sync_unprot_read || x.sync_unprot_write;
        let any_write = x.async_write || x.sync_unprot_write;
        let racy = async_access && sync_unprot && any_write && !g.is_const;
        if g.racy && !racy {
            report.cleared.push(g.name.clone());
        }
        g.racy = racy;
        if racy {
            report.racy.push(g.name.clone());
        }
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn scan(
    block: &Block,
    is_async: bool,
    is_sync: bool,
    protected: bool,
    acc: &mut [Acc],
    deref_write_async: &mut bool,
    deref_write_sync_unprot: &mut bool,
) {
    for s in block {
        match s {
            Stmt::Atomic { body, .. } => {
                scan(
                    body,
                    is_async,
                    is_sync,
                    true,
                    acc,
                    deref_write_async,
                    deref_write_sync_unprot,
                );
                continue;
            }
            Stmt::If { then_, else_, .. } => {
                scan(
                    then_,
                    is_async,
                    is_sync,
                    protected,
                    acc,
                    deref_write_async,
                    deref_write_sync_unprot,
                );
                scan(
                    else_,
                    is_async,
                    is_sync,
                    protected,
                    acc,
                    deref_write_async,
                    deref_write_sync_unprot,
                );
            }
            Stmt::While { body, .. } | Stmt::Block(body) => {
                scan(
                    body,
                    is_async,
                    is_sync,
                    protected,
                    acc,
                    deref_write_async,
                    deref_write_sync_unprot,
                );
            }
            _ => {}
        }
        // Reads (and address exposure) in expressions.
        visit::stmt_exprs(s, &mut |e| {
            visit::walk_expr(e, &mut |x| match &x.kind {
                ExprKind::Load(p) => {
                    if let PlaceBase::Global(g) = &p.base {
                        let a = &mut acc[g.0 as usize];
                        if is_async {
                            a.async_read = true;
                        }
                        if is_sync && !protected {
                            a.sync_unprot_read = true;
                        }
                    }
                }
                ExprKind::AddrOf(p) => {
                    if let PlaceBase::Global(g) = &p.base {
                        acc[g.0 as usize].addr_taken = true;
                    }
                }
                _ => {}
            });
        });
        // Writes (destinations).
        let mut write = |p: &Place| match &p.base {
            PlaceBase::Global(g) => {
                let a = &mut acc[g.0 as usize];
                if is_async {
                    a.async_write = true;
                }
                if is_sync && !protected {
                    a.sync_unprot_write = true;
                }
            }
            PlaceBase::Deref(_) => {
                if is_async {
                    *deref_write_async = true;
                }
                if is_sync && !protected {
                    *deref_write_sync_unprot = true;
                }
            }
            _ => {}
        };
        match s {
            Stmt::Assign(p, _) => write(p),
            Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => write(p),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_sharing_is_not_a_race() {
        let mut p = tcil::parse_and_lower(
            "uint8_t shared;
             uint8_t a;
             uint8_t b;
             interrupt(TIMER0) void h() { a = shared; }
             void main() { b = shared; }",
        )
        .unwrap();
        // Mark as the nesC-level (less precise) analysis would.
        let gi = p.find_global("shared").unwrap();
        p.globals[gi.0 as usize].racy = true;
        let report = refine(&mut p);
        assert_eq!(report.cleared, vec!["shared"]);
        assert!(report.racy.is_empty());
    }

    #[test]
    fn write_race_confirmed() {
        let mut p = tcil::parse_and_lower(
            "uint8_t shared;
             interrupt(TIMER0) void h() { shared = 1; }
             void main() { shared = 2; }",
        )
        .unwrap();
        let report = refine(&mut p);
        assert_eq!(report.racy, vec!["shared"]);
    }

    #[test]
    fn pointer_following_is_conservative() {
        let mut p = tcil::parse_and_lower(
            "uint8_t g;
             uint8_t * p;
             void main() { p = &g; g = 1; }
             interrupt(TIMER0) void h() { *p = 3; }",
        )
        .unwrap();
        let report = refine(&mut p);
        assert!(report.racy.contains(&"g".to_string()));
    }

    #[test]
    fn atomic_protection_respected() {
        let mut p = tcil::parse_and_lower(
            "uint8_t shared;
             interrupt(TIMER0) void h() { shared = 1; }
             void main() { atomic { shared = 2; } }",
        )
        .unwrap();
        let report = refine(&mut p);
        assert!(report.racy.is_empty());
    }
}
