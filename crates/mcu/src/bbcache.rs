//! Basic-block cache: the decode-once half of the block translation
//! engine (see [`crate::engine`]).
//!
//! A flash image is immutable for the lifetime of a machine (faults
//! corrupt RAM and registers, never code), so each function's
//! instruction list is partitioned **once** into straight-line basic
//! blocks: maximal runs that end at a control-flow edge (branch, call,
//! return, trap, halt, sleep) or at any instruction that can *enable*
//! interrupts (`IrqEnable`, `IrqRestore`, `Ret`/`Reti` — an interrupt
//! window must never open mid-block). Each block is translated into a
//! compact op list:
//!
//! * statically safe instructions (constant pushes, ALU ops, accesses to
//!   addresses proven mapped at decode time) become direct ops with no
//!   per-execution decode, clone, or memory-map re-check;
//! * hot idioms are fused into superinstructions (`PushI;StGlobal`,
//!   `PushI;Bin`, `LdGlobal;StGlobal`, and the read-modify-write
//!   `LdGlobal;PushI;Bin;StGlobal`) — fusion is only permitted over
//!   constituents that can neither fault nor touch MMIO, so no
//!   observable state can materialize mid-superinstruction;
//! * everything else (division, `MemCpy`, statically-MMIO accesses)
//!   stays a `Slow` op that executes the original instruction
//!   through the interpreter's own `exec`, preserving fault and device
//!   semantics exactly.
//!
//! Each block also records its total cycle cost (so the engine can prove
//! *before* entering the block that no device event or `run`-horizon
//! boundary falls inside it) and the evaluation-stack depth it needs on
//! entry (so no op can underflow mid-block; blocks entered shallower
//! fall back to faithful single-stepping, reproducing the interpreter's
//! underflow fault site exactly).
//!
//! The cache is built per [`Image`] and shared via `Arc`: campaigns and
//! difftests that replay one image across thousands of machines decode
//! it once.

use crate::devices::MMIO_BASE;
use crate::image::Image;
use crate::isa::{fat_bytes, AluOp, Instr, UnAluOp, Width};

/// Payload of the read-modify-write half of [`OpKind::RmwGKBr`]
/// (field-for-field the same as [`OpKind::RmwGK`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GRmw {
    /// Load address (SRAM or flash).
    pub(crate) ld_addr: u16,
    /// Load width.
    pub(crate) ld_width: Width,
    /// Load signedness.
    pub(crate) ld_signed: bool,
    /// The constant right operand.
    pub(crate) k: i64,
    /// ALU operation (never `Div`/`Mod`).
    pub(crate) op: AluOp,
    /// ALU width.
    pub(crate) width: Width,
    /// ALU signedness.
    pub(crate) signed: bool,
    /// Store address (SRAM).
    pub(crate) st_addr: u16,
    /// Store width.
    pub(crate) st_width: Width,
}

/// Payload of the compare-and-branch half of [`OpKind::RmwGKBr`]
/// (field-for-field the same as [`OpKind::CmpGKBr`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GCmpBr {
    /// Load address (SRAM or flash).
    pub(crate) addr: u16,
    /// Load width.
    pub(crate) ld_width: Width,
    /// Load signedness.
    pub(crate) ld_signed: bool,
    /// The constant right operand.
    pub(crate) k: i64,
    /// Compare/ALU operation (never `Div`/`Mod`).
    pub(crate) op: AluOp,
    /// ALU width.
    pub(crate) width: Width,
    /// ALU signedness.
    pub(crate) signed: bool,
    /// Branch when the ALU result is zero (`Jz`) vs non-zero (`Jnz`).
    pub(crate) br_if_zero: bool,
    /// Branch target pc.
    pub(crate) target: u32,
}

/// One translated operation. `cost`/`n` are the summed cycle cost and
/// instruction count of the constituent instruction(s); the engine
/// charges them (and advances `pc` by `n`) *before* executing the op,
/// mirroring the interpreter's charge-then-exec order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    /// Total cycle cost of the constituent instructions.
    pub(crate) cost: u32,
    /// Number of constituent instructions (pc advance).
    pub(crate) n: u16,
    /// What to execute.
    pub(crate) kind: OpKind,
}

/// The operation repertoire of the block engine.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    /// Push an immediate.
    PushI(i64),
    /// Load from a statically mapped absolute address (never faults,
    /// never MMIO).
    LdG {
        /// Absolute address (SRAM or flash window).
        addr: u16,
        /// Access width.
        width: Width,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Store to a statically mapped SRAM address (never faults, never
    /// MMIO, never flash).
    StG {
        /// Absolute SRAM address.
        addr: u16,
        /// Access width.
        width: Width,
    },
    /// Frame-slot load; falls back to the faithful path when `fp+off`
    /// leaves SRAM/flash or a torn watchpoint is armed.
    LdL {
        /// Byte offset within the frame.
        off: u16,
        /// Access width.
        width: Width,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Frame-slot store; faithful fallback outside SRAM or under a torn
    /// watchpoint.
    StL {
        /// Byte offset within the frame.
        off: u16,
        /// Access width.
        width: Width,
    },
    /// Push `fp + off`.
    AddrL {
        /// Byte offset within the frame.
        off: u16,
    },
    /// Pop-an-address load; faithful fallback outside SRAM/flash (MMIO
    /// reads, faults) or under a torn watchpoint.
    LdDyn {
        /// Access width.
        width: Width,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Pop-an-address store; faithful fallback outside SRAM (MMIO,
    /// read-only flash, faults) or under a torn watchpoint.
    StDyn {
        /// Access width.
        width: Width,
    },
    /// Non-division ALU op (never faults).
    Bin {
        /// Operation (never `Div`/`Mod`).
        op: AluOp,
        /// Result/operand width.
        width: Width,
        /// Operand signedness.
        signed: bool,
    },
    /// Unary ALU op.
    Un {
        /// Operation.
        op: UnAluOp,
        /// Operand width.
        width: Width,
    },
    /// Width/signedness cast.
    Wrap {
        /// Target width.
        width: Width,
        /// Target signedness.
        signed: bool,
    },
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// No-op.
    Nop,
    /// Push the IRQ flag and disable interrupts (may only *disable*, so
    /// it is block-internal).
    IrqSave,
    /// Disable interrupts.
    IrqDisable,
    /// Build a fat pointer from stack parts.
    MkFat {
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Fat-pointer value extraction.
    FatVal,
    /// Fat-pointer end-bound extraction.
    FatEnd,
    /// Fat-pointer base-bound extraction.
    FatBase,
    /// Fat-pointer arithmetic.
    FatAdd,
    /// Fat load from a statically mapped absolute address.
    LdGF {
        /// Absolute address.
        addr: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Fat store to a statically mapped SRAM address.
    StGF {
        /// Absolute SRAM address.
        addr: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Fat frame-slot load with faithful fallback.
    LdLF {
        /// Byte offset within the frame.
        off: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Fat frame-slot store with faithful fallback.
    StLF {
        /// Byte offset within the frame.
        off: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Pop-an-address fat load with faithful fallback.
    LdFDyn {
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Pop-an-address fat store with faithful fallback.
    StFDyn {
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    // ----- superinstructions -----
    /// `PushI k; StGlobal` — store a constant to a static SRAM address.
    StGK {
        /// Absolute SRAM address.
        addr: u16,
        /// Access width.
        width: Width,
        /// The constant.
        k: i64,
    },
    /// `PushI k; Bin` — ALU op against a constant (never `Div`/`Mod`).
    BinK {
        /// Operation.
        op: AluOp,
        /// Result/operand width.
        width: Width,
        /// Operand signedness.
        signed: bool,
        /// The constant right operand.
        k: i64,
    },
    /// `LdGlobal; PushI k; Bin; StGlobal` — the global read-modify-write
    /// idiom (counters, flags). Both addresses statically mapped; the
    /// value never touches the evaluation stack.
    RmwGK {
        /// Load address (SRAM or flash).
        ld_addr: u16,
        /// Load width.
        ld_width: Width,
        /// Load signedness.
        ld_signed: bool,
        /// The constant right operand.
        k: i64,
        /// ALU operation (never `Div`/`Mod`).
        op: AluOp,
        /// ALU width.
        width: Width,
        /// ALU signedness.
        signed: bool,
        /// Store address (SRAM).
        st_addr: u16,
        /// Store width.
        st_width: Width,
    },
    /// `LdGlobal; StGlobal` — global-to-global copy, both statically
    /// mapped.
    CpGG {
        /// Load address (SRAM or flash).
        ld_addr: u16,
        /// Load width.
        ld_width: Width,
        /// Load signedness.
        ld_signed: bool,
        /// Store address (SRAM).
        st_addr: u16,
        /// Store width.
        st_width: Width,
    },
    // ----- faithful fallback -----
    /// Execute the original instruction through the interpreter's `exec`
    /// (division, `MemCpy`, statically-MMIO globals, ...).
    Slow(Instr),
    // ----- terminators (always the last op of a block) -----
    /// Unconditional jump.
    Jmp(u32),
    /// Jump when the popped condition is zero.
    Jz(u32),
    /// Jump when the popped condition is non-zero.
    Jnz(u32),
    /// `LdGlobal; PushI k; Bin; Jz/Jnz` — compare a statically mapped
    /// global against a constant and branch: the dominant loop-tail
    /// idiom. No constituent can fault or reach MMIO.
    CmpGKBr {
        /// Load address (SRAM or flash).
        addr: u16,
        /// Load width.
        ld_width: Width,
        /// Load signedness.
        ld_signed: bool,
        /// The constant right operand.
        k: i64,
        /// Compare/ALU operation (never `Div`/`Mod`).
        op: AluOp,
        /// ALU width.
        width: Width,
        /// ALU signedness.
        signed: bool,
        /// Branch when the ALU result is zero (`Jz`) vs non-zero (`Jnz`).
        br_if_zero: bool,
        /// Branch target pc.
        target: u32,
    },
    /// `Dup; PushI k; Bin; Jz/Jnz` — compare the (retained) top of stack
    /// against a constant and branch.
    CmpTopKBr {
        /// The constant right operand.
        k: i64,
        /// Compare/ALU operation (never `Div`/`Mod`).
        op: AluOp,
        /// ALU width.
        width: Width,
        /// ALU signedness.
        signed: bool,
        /// Branch when the ALU result is zero (`Jz`) vs non-zero (`Jnz`).
        br_if_zero: bool,
        /// Branch target pc.
        target: u32,
    },
    /// `RmwGK; CmpGKBr` — the canonical counting-loop tail (increment a
    /// global, compare a global against a constant, branch): eight
    /// source instructions in one dispatch. Merged by a second fusion
    /// pass over already-proven constituents, so the same no-fault,
    /// no-MMIO guarantees hold.
    RmwGKBr {
        /// The read-modify-write half.
        rmw: GRmw,
        /// The compare-and-branch half.
        cmp: GCmpBr,
        /// Whether the compare must actually reload `cmp.addr` from RAM.
        /// When the compare reads back exactly the bytes the RMW just
        /// stored (`cmp.addr == st_addr`, same width), the pure path
        /// derives the compared value from the stored value in-register
        /// instead — invisible there because direct RAM reads count
        /// nothing (the torn-aware general path always reloads).
        reload: bool,
    },
    /// Call a function (the pc after the call is always a block leader).
    Call(u32),
    /// Any other control-flow/interrupt-window terminator (`Ret`,
    /// `Reti`, `Trap`, `Halt`, `Sleep`, `IrqEnable`, `IrqRestore`),
    /// executed through the interpreter's `exec`.
    Term(Instr),
}

/// One straight-line basic block.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// Translated ops; a terminator, if present, is the last op.
    pub(crate) ops: Box<[Op]>,
    /// Total cycle cost of every constituent instruction: the engine
    /// enters the block only when `cycles + cost` stays strictly below
    /// the event/`run`-horizon, so no observable boundary can fall
    /// inside it.
    pub(crate) cost: u64,
    /// Evaluation-stack depth required on entry so no constituent can
    /// underflow mid-block.
    pub(crate) stack_in: u32,
    /// Number of source instructions covered (the whole-block pc
    /// advance).
    pub(crate) n_instrs: u32,
    /// Whether every op is statically infallible and device-free (see
    /// [`op_is_pure`]): the engine may then account the whole block's
    /// cycles/instructions in one step and dispatch through a lean loop
    /// with no per-op counter flushes — nothing inside the block can
    /// fault, reach a device, or otherwise observe the counters.
    pub(crate) pure: bool,
    /// One past the highest `fp`-relative byte any frame-slot op in the
    /// block touches (0 when there are none). The pure path proves the
    /// whole `[fp, fp+local_span)` window is writable SRAM once per
    /// block instead of per access.
    pub(crate) local_span: u32,
}

#[derive(Debug)]
struct DecodedFn {
    blocks: Vec<Block>,
    /// `pc -> block index`, `u32::MAX` for non-leader pcs (the engine
    /// falls back to single-stepping until it reaches a leader).
    block_at: Vec<u32>,
}

/// Decode statistics (reported by the `sim_speed` harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Number of translated ops.
    pub ops: usize,
    /// Number of source instructions covered.
    pub instrs: usize,
    /// Number of superinstructions (fused ops).
    pub fused: usize,
    /// Number of ops that fall back to the faithful interpreter `exec`.
    pub slow: usize,
}

/// A per-image cache of predecoded basic blocks (see the module docs).
#[derive(Debug)]
pub struct BlockCache {
    funcs: Vec<DecodedFn>,
    stats: CacheStats,
}

impl BlockCache {
    /// Decodes every function of `img` into basic blocks.
    pub fn build(img: &Image) -> BlockCache {
        let sram = (img.profile.sram_base(), img.profile.sram_end());
        let mut stats = CacheStats::default();
        let funcs = img
            .functions
            .iter()
            .map(|f| decode_fn(img, &f.code, sram, &mut stats))
            .collect();
        BlockCache { funcs, stats }
    }

    /// Decode statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The block starting exactly at `(func, pc)`, if `pc` is a leader.
    #[inline]
    pub(crate) fn lookup(&self, func: u32, pc: u32) -> Option<&Block> {
        let f = self.funcs.get(func as usize)?;
        let idx = *f.block_at.get(pc as usize)?;
        if idx == u32::MAX {
            return None;
        }
        Some(&f.blocks[idx as usize])
    }
}

/// Whether `i` must end a basic block: control flow leaves the block, or
/// the instruction can open an interrupt-delivery window.
fn is_terminator(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Jmp { .. }
            | Instr::Jz { .. }
            | Instr::Jnz { .. }
            | Instr::Call { .. }
            | Instr::Ret
            | Instr::Reti
            | Instr::Trap { .. }
            | Instr::Halt
            | Instr::Sleep
            | Instr::IrqEnable
            | Instr::IrqRestore
    )
}

/// Evaluation-stack cells popped by `i` (callee parameter count for
/// `Call`).
fn pops(img: &Image, i: &Instr) -> u32 {
    match *i {
        Instr::PushI(_)
        | Instr::LdLocal { .. }
        | Instr::AddrLocal { .. }
        | Instr::LdGlobal { .. }
        | Instr::Jmp { .. }
        | Instr::Ret
        | Instr::Reti
        | Instr::Trap { .. }
        | Instr::Halt
        | Instr::Sleep
        | Instr::IrqSave
        | Instr::IrqEnable
        | Instr::IrqDisable
        | Instr::Nop
        | Instr::LdLocalFat { .. }
        | Instr::LdGlobalFat { .. } => 0,
        Instr::StLocal { .. }
        | Instr::StGlobal { .. }
        | Instr::Ld { .. }
        | Instr::Un { .. }
        | Instr::Wrap { .. }
        | Instr::Jz { .. }
        | Instr::Jnz { .. }
        | Instr::IrqRestore
        | Instr::Pop
        | Instr::Dup
        | Instr::LdFat { .. }
        | Instr::StLocalFat { .. }
        | Instr::StGlobalFat { .. }
        | Instr::FatVal
        | Instr::FatEnd
        | Instr::FatBase => 1,
        Instr::St { .. }
        | Instr::Bin { .. }
        | Instr::MemCpy { .. }
        | Instr::StFat { .. }
        | Instr::FatAdd => 2,
        Instr::MkFat { seq } => {
            if seq {
                3
            } else {
                2
            }
        }
        Instr::Call { func } => img
            .functions
            .get(func as usize)
            .map_or(0, |f| f.params.len() as u32),
    }
}

/// Evaluation-stack cells pushed by `i` (ignoring callee effects).
fn pushes(i: &Instr) -> u32 {
    match *i {
        Instr::PushI(_)
        | Instr::LdLocal { .. }
        | Instr::AddrLocal { .. }
        | Instr::LdGlobal { .. }
        | Instr::Ld { .. }
        | Instr::Bin { .. }
        | Instr::Un { .. }
        | Instr::Wrap { .. }
        | Instr::IrqSave
        | Instr::LdFat { .. }
        | Instr::LdLocalFat { .. }
        | Instr::LdGlobalFat { .. }
        | Instr::MkFat { .. }
        | Instr::FatVal
        | Instr::FatEnd
        | Instr::FatBase
        | Instr::FatAdd => 1,
        Instr::Dup => 2,
        _ => 0,
    }
}

/// Whether `[addr, addr+len)` is statically known to be readable RAM-
/// backed memory: SRAM or the flash window, never MMIO, never the null
/// page.
fn static_readable(sram: (u16, u16), addr: u16, len: u32) -> bool {
    let end = addr as u32 + len;
    (addr >= sram.0 && end <= sram.1 as u32) || (addr >= 0x8000 && end <= MMIO_BASE as u32)
}

/// Whether `[addr, addr+len)` is statically known to be writable SRAM.
fn static_writable(sram: (u16, u16), addr: u16, len: u32) -> bool {
    addr >= sram.0 && addr as u32 + len <= sram.1 as u32
}

fn is_divmod(op: AluOp) -> bool {
    matches!(op, AluOp::Div | AluOp::Mod)
}

/// `(branch-when-zero, target)` for a conditional jump, `None` otherwise.
fn branch_sense(i: &Instr) -> Option<(bool, u32)> {
    match *i {
        Instr::Jz { target } => Some((true, target)),
        Instr::Jnz { target } => Some((false, target)),
        _ => None,
    }
}

/// Partitions one function's code into blocks.
fn decode_fn(img: &Image, code: &[Instr], sram: (u16, u16), stats: &mut CacheStats) -> DecodedFn {
    let n = code.len();
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    for (i, ins) in code.iter().enumerate() {
        if is_terminator(ins) && i + 1 < n {
            leader[i + 1] = true;
        }
        match *ins {
            Instr::Jmp { target } | Instr::Jz { target } | Instr::Jnz { target }
                if (target as usize) < n =>
            {
                leader[target as usize] = true;
            }
            _ => {}
        }
    }
    let mut block_at = vec![u32::MAX; n];
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < n {
        debug_assert!(leader[i]);
        let mut end = i + 1;
        while end < n && !leader[end] {
            end += 1;
        }
        block_at[i] = blocks.len() as u32;
        blocks.push(build_block(img, &code[i..end], sram, stats));
        i = end;
    }
    DecodedFn { blocks, block_at }
}

/// Builds one `Op` covering `code[..n_instrs]`.
fn mk_op(code: &[Instr], n_instrs: usize, kind: OpKind) -> Op {
    let cost: u64 = code[..n_instrs].iter().map(Instr::cycles).sum();
    Op {
        cost: u32::try_from(cost).expect("op cost fits u32"),
        n: n_instrs as u16,
        kind,
    }
}

/// Translates one straight-line instruction run into a block.
fn build_block(img: &Image, code: &[Instr], sram: (u16, u16), stats: &mut CacheStats) -> Block {
    // Cost and entry-depth requirement come from the *original*
    // instruction sequence (fusion never changes either).
    let mut cost = 0u64;
    let mut depth: i64 = 0;
    let mut min_depth: i64 = 0;
    for ins in code {
        cost += ins.cycles();
        depth -= pops(img, ins) as i64;
        min_depth = min_depth.min(depth);
        depth += pushes(ins) as i64;
    }
    let stack_in = (-min_depth) as u32;

    let mut ops = Vec::new();
    let mut k = 0;
    while k < code.len() {
        if let Some((op, len)) = try_fuse(&code[k..], sram) {
            ops.push(op);
            k += len;
            continue;
        }
        ops.push(translate_one(&code[k], sram));
        k += 1;
    }
    let ops = merge_rmw_br(ops);
    stats.blocks += 1;
    stats.ops += ops.len();
    stats.instrs += code.len();
    stats.fused += ops.iter().filter(|o| o.n > 1).count();
    stats.slow += ops
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Slow(_)))
        .count();
    let pure = ops.iter().all(|o| op_is_pure(&o.kind));
    let local_span = ops.iter().map(|o| local_end(&o.kind)).max().unwrap_or(0);
    Block {
        ops: ops.into_boxed_slice(),
        cost,
        stack_in,
        n_instrs: code.len() as u32,
        pure,
        local_span,
    }
}

/// Second fusion pass: the canonical counting-loop tail
/// `LdG;PushI;Bin;StG; LdG;PushI;Bin;Jz/Jnz` decodes as the adjacent
/// pair `RmwGK; CmpGKBr` — merge it into one [`OpKind::RmwGKBr`]
/// terminator so the hottest loop shape costs a single dispatch per
/// iteration. Both constituents already carry the no-fault/no-MMIO
/// proof, so the merged charge-then-exec of the summed cost stays
/// unobservable.
fn merge_rmw_br(ops: Vec<Op>) -> Vec<Op> {
    let mut out: Vec<Op> = Vec::with_capacity(ops.len());
    for op in ops {
        if let OpKind::CmpGKBr {
            addr,
            ld_width,
            ld_signed,
            k,
            op: cop,
            width,
            signed,
            br_if_zero,
            target,
        } = op.kind
        {
            if let Some(&Op {
                cost: pcost,
                n: pn,
                kind:
                    OpKind::RmwGK {
                        ld_addr,
                        ld_width: r_ld_width,
                        ld_signed: r_ld_signed,
                        k: rk,
                        op: rop,
                        width: r_width,
                        signed: r_signed,
                        st_addr,
                        st_width,
                    },
            }) = out.last()
            {
                out.pop();
                out.push(Op {
                    cost: pcost + op.cost,
                    n: pn + op.n,
                    kind: OpKind::RmwGKBr {
                        reload: !(addr == st_addr && ld_width == st_width),
                        rmw: GRmw {
                            ld_addr,
                            ld_width: r_ld_width,
                            ld_signed: r_ld_signed,
                            k: rk,
                            op: rop,
                            width: r_width,
                            signed: r_signed,
                            st_addr,
                            st_width,
                        },
                        cmp: GCmpBr {
                            addr,
                            ld_width,
                            ld_signed,
                            k,
                            op: cop,
                            width,
                            signed,
                            br_if_zero,
                            target,
                        },
                    },
                });
                continue;
            }
        }
        out.push(op);
    }
    out
}

/// Whether an op can neither fault, reach a device, leave the block's
/// function, nor need the faithful interpreter — i.e. nothing in it can
/// observe the machine counters. Frame-slot ops (`LdL`/`StL`/
/// `LdLF`/`StLF`) count as pure because the pure path proves their whole
/// `fp` window (`Block::local_span`) is writable SRAM before entry.
fn op_is_pure(kind: &OpKind) -> bool {
    !matches!(
        kind,
        OpKind::LdDyn { .. }
            | OpKind::StDyn { .. }
            | OpKind::LdFDyn { .. }
            | OpKind::StFDyn { .. }
            | OpKind::Slow(_)
            | OpKind::Call(_)
            | OpKind::Term(_)
    )
}

/// One past the last `fp`-relative byte `kind` touches (0 for ops that
/// don't address the frame).
fn local_end(kind: &OpKind) -> u32 {
    match *kind {
        OpKind::LdL { off, width, .. } | OpKind::StL { off, width } => off as u32 + width.bytes(),
        OpKind::LdLF { off, seq } | OpKind::StLF { off, seq } => off as u32 + fat_bytes(seq) as u32,
        _ => 0,
    }
}

/// Tries to fuse a superinstruction at the head of `code`. Fusion is
/// restricted to constituents that can neither fault nor reach MMIO, so
/// charging the whole fused cost upfront is unobservable.
fn try_fuse(code: &[Instr], sram: (u16, u16)) -> Option<(Op, usize)> {
    if code.len() >= 4 {
        // Loop-tail compare-and-branch idioms. A conditional jump is
        // always the last instruction of its block, so these windows can
        // only match at a block tail.
        if let [Instr::LdGlobal {
            addr,
            width: ld_width,
            signed: ld_signed,
        }, Instr::PushI(k), Instr::Bin { op, width, signed }, br, ..] = *code
        {
            if let Some((br_if_zero, target)) = branch_sense(&br) {
                if !is_divmod(op) && static_readable(sram, addr, ld_width.bytes()) {
                    let kind = OpKind::CmpGKBr {
                        addr,
                        ld_width,
                        ld_signed,
                        k,
                        op,
                        width,
                        signed,
                        br_if_zero,
                        target,
                    };
                    return Some((mk_op(code, 4, kind), 4));
                }
            }
        }
        if let [Instr::Dup, Instr::PushI(k), Instr::Bin { op, width, signed }, br, ..] = *code {
            if let Some((br_if_zero, target)) = branch_sense(&br) {
                if !is_divmod(op) {
                    let kind = OpKind::CmpTopKBr {
                        k,
                        op,
                        width,
                        signed,
                        br_if_zero,
                        target,
                    };
                    return Some((mk_op(code, 4, kind), 4));
                }
            }
        }
        if let [Instr::LdGlobal {
            addr: ld_addr,
            width: ld_width,
            signed: ld_signed,
        }, Instr::PushI(k), Instr::Bin { op, width, signed }, Instr::StGlobal {
            addr: st_addr,
            width: st_width,
        }, ..] = *code
        {
            if !is_divmod(op)
                && static_readable(sram, ld_addr, ld_width.bytes())
                && static_writable(sram, st_addr, st_width.bytes())
            {
                let kind = OpKind::RmwGK {
                    ld_addr,
                    ld_width,
                    ld_signed,
                    k,
                    op,
                    width,
                    signed,
                    st_addr,
                    st_width,
                };
                return Some((mk_op(code, 4, kind), 4));
            }
        }
    }
    if code.len() >= 2 {
        match *code {
            [Instr::PushI(k), Instr::StGlobal { addr, width }, ..]
                if static_writable(sram, addr, width.bytes()) =>
            {
                return Some((mk_op(code, 2, OpKind::StGK { addr, width, k }), 2));
            }
            [Instr::PushI(k), Instr::Bin { op, width, signed }, ..] if !is_divmod(op) => {
                return Some((
                    mk_op(
                        code,
                        2,
                        OpKind::BinK {
                            op,
                            width,
                            signed,
                            k,
                        },
                    ),
                    2,
                ));
            }
            [Instr::LdGlobal {
                addr: ld_addr,
                width: ld_width,
                signed: ld_signed,
            }, Instr::StGlobal {
                addr: st_addr,
                width: st_width,
            }, ..]
                if static_readable(sram, ld_addr, ld_width.bytes())
                    && static_writable(sram, st_addr, st_width.bytes()) =>
            {
                let kind = OpKind::CpGG {
                    ld_addr,
                    ld_width,
                    ld_signed,
                    st_addr,
                    st_width,
                };
                return Some((mk_op(code, 2, kind), 2));
            }
            _ => {}
        }
    }
    None
}

/// Translates a single instruction into its fastest safe op.
fn translate_one(ins: &Instr, sram: (u16, u16)) -> Op {
    let kind = match *ins {
        Instr::PushI(v) => OpKind::PushI(v),
        Instr::LdGlobal {
            addr,
            width,
            signed,
        } if static_readable(sram, addr, width.bytes()) => OpKind::LdG {
            addr,
            width,
            signed,
        },
        Instr::StGlobal { addr, width } if static_writable(sram, addr, width.bytes()) => {
            OpKind::StG { addr, width }
        }
        Instr::LdLocal { off, width, signed } => OpKind::LdL { off, width, signed },
        Instr::StLocal { off, width } => OpKind::StL { off, width },
        Instr::AddrLocal { off } => OpKind::AddrL { off },
        Instr::Ld { width, signed } => OpKind::LdDyn { width, signed },
        Instr::St { width } => OpKind::StDyn { width },
        Instr::Bin { op, width, signed } if !is_divmod(op) => OpKind::Bin { op, width, signed },
        Instr::Un { op, width } => OpKind::Un { op, width },
        Instr::Wrap { width, signed } => OpKind::Wrap { width, signed },
        Instr::Pop => OpKind::Pop,
        Instr::Dup => OpKind::Dup,
        Instr::Nop => OpKind::Nop,
        Instr::IrqSave => OpKind::IrqSave,
        Instr::IrqDisable => OpKind::IrqDisable,
        Instr::MkFat { seq } => OpKind::MkFat { seq },
        Instr::FatVal => OpKind::FatVal,
        Instr::FatEnd => OpKind::FatEnd,
        Instr::FatBase => OpKind::FatBase,
        Instr::FatAdd => OpKind::FatAdd,
        Instr::LdGlobalFat { addr, seq } if static_readable(sram, addr, fat_bytes(seq) as u32) => {
            OpKind::LdGF { addr, seq }
        }
        Instr::StGlobalFat { addr, seq } if static_writable(sram, addr, fat_bytes(seq) as u32) => {
            OpKind::StGF { addr, seq }
        }
        Instr::LdLocalFat { off, seq } => OpKind::LdLF { off, seq },
        Instr::StLocalFat { off, seq } => OpKind::StLF { off, seq },
        Instr::LdFat { seq } => OpKind::LdFDyn { seq },
        Instr::StFat { seq } => OpKind::StFDyn { seq },
        Instr::Jmp { target } => OpKind::Jmp(target),
        Instr::Jz { target } => OpKind::Jz(target),
        Instr::Jnz { target } => OpKind::Jnz(target),
        Instr::Call { func } => OpKind::Call(func),
        Instr::Ret
        | Instr::Reti
        | Instr::Trap { .. }
        | Instr::Halt
        | Instr::Sleep
        | Instr::IrqEnable
        | Instr::IrqRestore => OpKind::Term(*ins),
        // Division (fault on zero), MemCpy (dynamic multi-access), and
        // statically-unmapped/MMIO globals keep full interpreter
        // semantics.
        _ => OpKind::Slow(*ins),
    };
    mk_op(std::slice::from_ref(ins), 1, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CodeFunction, Profile};

    fn image_with(code: Vec<Instr>) -> Image {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("main");
        f.code = code;
        f.frame_size = 16;
        let e = img.add_function(f);
        img.entry = Some(e);
        img
    }

    /// Every block must end at a control-flow edge (terminator) or at a
    /// block boundary (fallthrough into a leader / function end), and
    /// block extents must exactly tile every pc of every function.
    #[test]
    fn blocks_end_at_control_flow_edges_and_cover_every_pc() {
        let img = image_with(vec![
            Instr::PushI(1),
            Instr::Jz { target: 4 },
            Instr::PushI(2),
            Instr::Pop,
            Instr::PushI(3),
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W8,
            },
            Instr::Halt,
        ]);
        let cache = BlockCache::build(&img);
        assert_block_invariants(&cache, &img);
    }

    /// Shared invariant checker used by the unit tests here and callable
    /// on arbitrary images.
    pub(crate) fn assert_block_invariants(cache: &BlockCache, img: &Image) {
        for (fi, f) in img.functions.iter().enumerate() {
            let df = &cache.funcs[fi];
            assert_eq!(df.block_at.len(), f.code.len(), "{}: pc map length", f.name);
            // Walk the pc space through block extents: every pc must be
            // covered by exactly one block, blocks start at leaders, and
            // any non-final constituent must be a non-terminator.
            let mut pc = 0usize;
            let mut seen_blocks = 0usize;
            while pc < f.code.len() {
                let bi = df.block_at[pc];
                assert_ne!(bi, u32::MAX, "{}: pc {pc} is not a block start", f.name);
                let block = &df.blocks[bi as usize];
                let n: usize = block.ops.iter().map(|o| o.n as usize).sum();
                assert!(n >= 1, "{}: empty block at pc {pc}", f.name);
                // Interior instructions never branch/open IRQ windows.
                for (j, ins) in f.code[pc..pc + n].iter().enumerate() {
                    if j + 1 < n {
                        assert!(
                            !is_terminator(ins),
                            "{}: terminator {ins:?} mid-block at pc {}",
                            f.name,
                            pc + j
                        );
                    }
                }
                // Interior pcs are not block starts.
                for mid in pc + 1..pc + n {
                    assert_eq!(
                        df.block_at[mid],
                        u32::MAX,
                        "{}: block overlaps leader at pc {mid}",
                        f.name
                    );
                }
                // The block ends at a control-flow edge, at a jump-target
                // leader, or at the end of the function.
                let last = &f.code[pc + n - 1];
                let at_edge = is_terminator(last)
                    || pc + n == f.code.len()
                    || df.block_at[pc + n] != u32::MAX;
                assert!(at_edge, "{}: block at pc {pc} ends mid-flow", f.name);
                // Cost/charge bookkeeping matches the source instructions.
                let cost: u64 = f.code[pc..pc + n].iter().map(Instr::cycles).sum();
                assert_eq!(block.cost, cost, "{}: block cost at pc {pc}", f.name);
                assert_eq!(
                    block.n_instrs as usize, n,
                    "{}: block instruction count at pc {pc}",
                    f.name
                );
                // The static purity and local-span facts the fast path
                // trusts must re-derive from the translated ops.
                assert_eq!(
                    block.pure,
                    block.ops.iter().all(|o| op_is_pure(&o.kind)),
                    "{}: purity flag at pc {pc}",
                    f.name
                );
                assert_eq!(
                    block.local_span,
                    block
                        .ops
                        .iter()
                        .map(|o| local_end(&o.kind))
                        .max()
                        .unwrap_or(0),
                    "{}: local span at pc {pc}",
                    f.name
                );
                pc += n;
                seen_blocks += 1;
            }
            assert_eq!(seen_blocks, df.blocks.len(), "{}: orphan blocks", f.name);
        }
    }

    #[test]
    fn jump_targets_split_blocks() {
        // A backward jump into the middle of what would otherwise be one
        // straight run must split it.
        let img = image_with(vec![
            Instr::PushI(1), // 0: leader (entry)
            Instr::Pop,      // 1
            Instr::PushI(2), // 2: leader (jump target)
            Instr::Pop,      // 3
            Instr::Jmp { target: 2 },
        ]);
        let cache = BlockCache::build(&img);
        assert_block_invariants(&cache, &img);
        let df = &cache.funcs[0];
        assert_ne!(df.block_at[0], u32::MAX);
        assert_ne!(df.block_at[2], u32::MAX);
        assert_eq!(df.block_at[1], u32::MAX);
        assert_eq!(df.block_at[3], u32::MAX);
        assert_eq!(df.blocks.len(), 2);
    }

    #[test]
    fn irq_enabling_instructions_terminate_blocks() {
        let img = image_with(vec![
            Instr::PushI(1),
            Instr::IrqEnable, // must end the block: IRQ window opens here
            Instr::Pop,
            Instr::Halt,
        ]);
        let cache = BlockCache::build(&img);
        assert_block_invariants(&cache, &img);
        let df = &cache.funcs[0];
        assert_eq!(df.blocks.len(), 2);
        assert_ne!(df.block_at[2], u32::MAX, "pc after IrqEnable is a leader");
    }

    #[test]
    fn hot_idioms_fuse_into_superinstructions() {
        // counter += 1 as the backend emits it, plus a constant store.
        let img = image_with(vec![
            Instr::LdGlobal {
                addr: 0x0200,
                width: Width::W16,
                signed: false,
            },
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::PushI(7),
            Instr::StGlobal {
                addr: 0x0202,
                width: Width::W8,
            },
            Instr::Halt,
        ]);
        let cache = BlockCache::build(&img);
        assert_block_invariants(&cache, &img);
        let stats = cache.stats();
        assert_eq!(stats.fused, 2, "RmwGK + StGK expected: {stats:?}");
        let block = cache.lookup(0, 0).unwrap();
        assert!(matches!(block.ops[0].kind, OpKind::RmwGK { .. }));
        assert_eq!(block.ops[0].n, 4);
        assert!(matches!(block.ops[1].kind, OpKind::StGK { .. }));
        // Charges are conserved across fusion.
        let src_cost: u64 = img.functions[0].code.iter().map(Instr::cycles).sum();
        let op_cost: u64 = block.ops.iter().map(|o| o.cost as u64).sum();
        assert_eq!(src_cost, op_cost);
    }

    #[test]
    fn mmio_and_division_stay_slow() {
        let img = image_with(vec![
            Instr::PushI(1),
            Instr::StGlobal {
                addr: crate::devices::LED_REG,
                width: Width::W16,
            }, // MMIO: must not become a fast StG (or fuse)
            Instr::PushI(6),
            Instr::PushI(2),
            Instr::Bin {
                op: AluOp::Div,
                width: Width::W16,
                signed: false,
            }, // can fault: must stay Slow
            Instr::Pop,
            Instr::Halt,
        ]);
        let cache = BlockCache::build(&img);
        assert_block_invariants(&cache, &img);
        assert_eq!(cache.stats().fused, 0);
        let block = cache.lookup(0, 0).unwrap();
        assert!(matches!(
            block.ops[1].kind,
            OpKind::Slow(Instr::StGlobal { .. })
        ));
        assert!(block
            .ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::Slow(Instr::Bin { .. }))));
    }

    #[test]
    fn stack_in_reflects_worst_prefix_deficit() {
        let img = image_with(vec![
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            }, // needs 2
            Instr::PushI(1),
            Instr::Halt,
        ]);
        let cache = BlockCache::build(&img);
        assert_eq!(cache.lookup(0, 0).unwrap().stack_in, 2);
    }
}

#[cfg(test)]
mod fusion_tests {
    use super::*;
    use crate::image::CodeFunction;
    use crate::{Image, Profile};

    /// The canonical counting-loop tail (`g += 1; if g < K goto top`)
    /// must collapse into a single `RmwGKBr` terminator with the
    /// compare reload elided (same address and width as the store).
    #[test]
    fn counting_loop_fuses_to_rmw_branch() {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("main");
        f.code = vec![
            Instr::LdGlobal {
                addr: 0x0200,
                width: Width::W16,
                signed: false,
            },
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::LdGlobal {
                addr: 0x0200,
                width: Width::W16,
                signed: false,
            },
            Instr::PushI(60000),
            Instr::Bin {
                op: AluOp::Lt,
                width: Width::W16,
                signed: false,
            },
            Instr::Jnz { target: 0 },
        ];
        let e = img.add_function(f);
        img.entry = Some(e);
        let cache = BlockCache::build(&img);
        let b = cache.lookup(0, 0).unwrap();
        assert!(b.pure);
        assert_eq!(b.n_instrs, 8);
        assert_eq!(b.local_span, 0);
        assert_eq!(b.ops.len(), 1);
        match &b.ops[0].kind {
            OpKind::RmwGKBr { rmw, cmp, reload } => {
                assert_eq!(rmw.ld_addr, 0x0200);
                assert_eq!(rmw.st_addr, 0x0200);
                assert_eq!(cmp.addr, 0x0200);
                assert!(!reload, "same-address same-width reload must be elided");
            }
            other => panic!("expected fused RmwGKBr, got {other:?}"),
        }
        assert_eq!(b.ops[0].n, 8);
        assert_eq!(
            u64::from(b.ops[0].cost),
            b.cost,
            "single-op block carries full cost"
        );
    }
}
