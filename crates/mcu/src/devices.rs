//! Memory-mapped devices of the M16 node.
//!
//! Register map (all in the `0xF000` MMIO page):
//!
//! | Address  | Register        | Behaviour |
//! |----------|-----------------|-----------|
//! | `0xF000` | `LED`           | write: LED bits 0–2; read: current value |
//! | `0xF010` | `TIMER0_CTRL`   | bit 0: enable (fires [`crate::vectors::TIMER0`]) |
//! | `0xF012` | `TIMER0_COMPARE`| period in ticks (1 tick = 32 cycles) |
//! | `0xF014` | `TIMER0_COUNT`  | free-running tick counter (read-only) |
//! | `0xF018` | `TIMER1_CTRL`   | like timer 0, vector [`crate::vectors::TIMER1`] |
//! | `0xF01A` | `TIMER1_COMPARE`| period in ticks |
//! | `0xF020` | `ADC_CTRL`      | write 1: start a conversion (≈120 cycles) |
//! | `0xF022` | `ADC_DATA`      | last converted 10-bit sample |
//! | `0xF030` | `RADIO_CTRL`    | bit 0: receiver enable |
//! | `0xF032` | `RADIO_TX`      | write: transmit one byte (≈208 cycles) |
//! | `0xF034` | `RADIO_RX`      | read: last received byte |
//! | `0xF036` | `RADIO_STATUS`  | bit 0: transmitter busy |
//! | `0xF040` | `UART_DATA`     | write: send one byte to the host (≈104 cycles) |
//!
//! The timing constants approximate a Mica2-class node at 1 MHz: the CC1000
//! radio moves roughly one byte per 208 µs at 38.4 kbaud, a UART byte at
//! 9600 baud takes about 1 ms (we charge ~104 cycles for a faster debug
//! UART), and an AVR ADC conversion takes on the order of 100 µs.

/// Start of the MMIO page.
pub const MMIO_BASE: u16 = 0xF000;
/// LED register.
pub const LED_REG: u16 = 0xF000;
/// Timer 0 control.
pub const TIMER0_CTRL: u16 = 0xF010;
/// Timer 0 compare (period in ticks).
pub const TIMER0_COMPARE: u16 = 0xF012;
/// Timer 0 free-running counter.
pub const TIMER0_COUNT: u16 = 0xF014;
/// Timer 1 control.
pub const TIMER1_CTRL: u16 = 0xF018;
/// Timer 1 compare.
pub const TIMER1_COMPARE: u16 = 0xF01A;
/// ADC control.
pub const ADC_CTRL: u16 = 0xF020;
/// ADC data.
pub const ADC_DATA: u16 = 0xF022;
/// Radio control.
pub const RADIO_CTRL: u16 = 0xF030;
/// Radio transmit data.
pub const RADIO_TX: u16 = 0xF032;
/// Radio receive data.
pub const RADIO_RX: u16 = 0xF034;
/// Radio status.
pub const RADIO_STATUS: u16 = 0xF036;
/// UART data.
pub const UART_DATA: u16 = 0xF040;

/// Cycles per timer tick.
pub const TIMER_TICK_CYCLES: u64 = 32;
/// Cycles to transmit one radio byte. The Mica2's CC1000 moves a byte in
/// ~1500 cycles at 7.37 MHz; the M16 runs at 1 MHz, so the equivalent
/// compute-per-byte budget is ~832 cycles (the safety-checked RX handler
/// must fit inside one byte time, exactly as on the real hardware).
pub const RADIO_BYTE_CYCLES: u64 = 832;
/// Cycles for one ADC conversion.
pub const ADC_CONVERSION_CYCLES: u64 = 120;
/// Cycles to shift one UART byte (~2400 byte/s debug UART at 1 MHz).
pub const UART_BYTE_CYCLES: u64 = 416;

/// Deterministic sensor waveform driving the ADC (the synthetic substitute
/// for the paper's physical sensors; see `DESIGN.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Waveform {
    /// A constant reading.
    Const(u16),
    /// A triangle wave between `min` and `max` with the given period (in
    /// samples).
    Triangle {
        /// Minimum sample value.
        min: u16,
        /// Maximum sample value.
        max: u16,
        /// Period in samples.
        period: u32,
    },
    /// Pseudo-random readings from a linear congruential generator.
    Noise {
        /// LCG seed.
        seed: u32,
        /// Minimum sample value.
        min: u16,
        /// Maximum sample value.
        max: u16,
    },
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Const(512)
    }
}

impl Waveform {
    /// The `n`-th sample of the waveform (10-bit range clamp).
    pub fn sample(&self, n: u32) -> u16 {
        let v = match self {
            Waveform::Const(v) => *v,
            Waveform::Triangle { min, max, period } => {
                let period = (*period).max(2);
                let span = (*max - *min) as u32;
                let phase = n % period;
                let half = period / 2;
                let pos = if phase < half {
                    phase * span / half.max(1)
                } else {
                    (period - phase) * span / (period - half).max(1)
                };
                min + pos as u16
            }
            Waveform::Noise { seed, min, max } => {
                let mut s = seed.wrapping_add(n.wrapping_mul(0x9E37_79B9));
                s ^= s >> 16;
                s = s.wrapping_mul(0x85EB_CA6B);
                s ^= s >> 13;
                let span = (*max - *min) as u32 + 1;
                min + (s % span) as u16
            }
        };
        v.min(1023)
    }
}

/// A one-shot hardware event scheduled on the machine's event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// Timer 0 compare match.
    Timer0Fire,
    /// Timer 1 compare match.
    Timer1Fire,
    /// ADC conversion complete.
    AdcDone,
    /// Radio finished shifting a byte out.
    RadioTxDone,
    /// A byte arrived over the air.
    RadioRxByte(u8),
    /// UART finished shifting a byte out.
    UartTxDone,
}

/// State of a periodic timer device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timer {
    /// Enable bit.
    pub enabled: bool,
    /// Compare value (ticks per fire).
    pub compare: u16,
}

/// State of the LED register, with a transition log for assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Leds {
    /// Current register value.
    pub value: u8,
    /// Number of writes that changed the value.
    pub transitions: u64,
}

/// State of the ADC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Adc {
    /// Conversion in progress.
    pub busy: bool,
    /// Last converted sample.
    pub data: u16,
    /// Samples taken so far (drives the waveform).
    pub samples: u32,
    /// Sensor input.
    pub waveform: Waveform,
}

/// State of the byte radio.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Radio {
    /// Receiver enable.
    pub rx_enabled: bool,
    /// Transmitter busy shifting a byte.
    pub tx_busy: bool,
    /// Last received byte.
    pub rx_data: u8,
    /// Bytes received (for statistics).
    pub rx_count: u64,
}

/// State of the UART transmitter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Uart {
    /// Transmitter busy.
    pub tx_busy: bool,
}

/// All devices of one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Devices {
    /// LEDs.
    pub leds: Leds,
    /// Timer 0.
    pub timer0: Timer,
    /// Timer 1.
    pub timer1: Timer,
    /// ADC.
    pub adc: Adc,
    /// Radio.
    pub radio: Radio,
    /// UART.
    pub uart: Uart,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_waveform() {
        let w = Waveform::Const(700);
        assert_eq!(w.sample(0), 700);
        assert_eq!(w.sample(99), 700);
    }

    #[test]
    fn triangle_waveform_cycles() {
        let w = Waveform::Triangle {
            min: 100,
            max: 200,
            period: 10,
        };
        assert_eq!(w.sample(0), 100);
        assert!(w.sample(5) >= 190);
        assert_eq!(w.sample(0), w.sample(10));
    }

    #[test]
    fn noise_waveform_is_deterministic_and_bounded() {
        let w = Waveform::Noise {
            seed: 42,
            min: 10,
            max: 20,
        };
        for n in 0..100 {
            let v = w.sample(n);
            assert!((10..=20).contains(&v));
            assert_eq!(v, w.sample(n));
        }
    }

    #[test]
    fn samples_clamp_to_10_bits() {
        let w = Waveform::Const(5000);
        assert_eq!(w.sample(0), 1023);
    }
}
