//! Execution-engine selection and the block translation engine.
//!
//! The machine has two engines producing **byte-identical** observables
//! (`cycles`, `awake_cycles`, `instr_count`, RAM, UART/radio traces,
//! faults, torn-watch counters):
//!
//! * [`Engine::Interp`] — the faithful per-instruction interpreter
//!   (`deliver events → maybe dispatch IRQ → step`, one instruction at a
//!   time);
//! * [`Engine::Bt`] — the block translation engine: executes predecoded
//!   basic blocks (see [`crate::bbcache`]) in a chained fast loop, and
//!   re-enters the faithful path at every observable boundary.
//!
//! # Why the fast loop is safe
//!
//! The interpreter's per-instruction prologue (deliver due events, maybe
//! dispatch an interrupt) is provably a no-op for every instruction of a
//! block the engine enters, because entry requires:
//!
//! * `cycles + block.cost < min(until, next event time)` — so no device
//!   event becomes due anywhere inside the block (events are only
//!   scheduled by MMIO writes, which abort the fast loop via
//!   `mmio_sync`, re-deriving the horizon);
//! * no pending enabled interrupt — and nothing inside a block can open
//!   an interrupt window: every instruction that can *enable* interrupts
//!   (`IrqEnable`, `IrqRestore`, `Ret`/`Reti`) terminates its block;
//! * evaluation-stack depth ≥ `block.stack_in` — so no mid-block
//!   underflow fault can occur.
//!
//! Anything the fast loop cannot prove safe (mid-block entry pcs after a
//! resync, blocks crossing the horizon, shallow stacks, `pc` past the
//! end of a function) falls back to the interpreter's own
//! [`Machine::step`], one instruction at a time, until a block boundary
//! is reached again. Torn-update watchpoints (armed via
//! [`Machine::arm_torn_watch`]) force every 16-bit and fat-pointer
//! access through the interpreter's counting `load_mem`/`store_mem`
//! path, so watch counters advance identically under both engines.

use std::cmp::Reverse;
use std::sync::Arc;
use std::sync::OnceLock;

use crate::bbcache::{BlockCache, OpKind};
use crate::devices::MMIO_BASE;
use crate::isa::{fat_bytes, fat_pack, fat_unpack, AluOp, UnAluOp, Width};
use crate::machine::{Fault, Machine, RunState};

/// Which execution engine [`Machine::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The faithful per-instruction interpreter (the default).
    Interp,
    /// The basic-block translation engine (`STOS_ENGINE=bt`).
    Bt,
}

/// Process-global engine override: `u8::MAX` = unset (use the
/// environment), otherwise an [`Engine`] discriminant. Lets in-process
/// cross-engine tests and harnesses flip the default engine without
/// re-execing, which `STOS_ENGINE`'s once-per-process read cannot.
static OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(u8::MAX);

impl Engine {
    /// The engine selected by [`Engine::set_global_override`] if one is
    /// set, else by the `STOS_ENGINE` environment variable
    /// (`interp` | `bt`), read once per process. Unknown or absent
    /// values select the interpreter.
    pub fn from_env() -> Engine {
        match OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
            0 => return Engine::Interp,
            1 => return Engine::Bt,
            _ => {}
        }
        static ENGINE: OnceLock<Engine> = OnceLock::new();
        *ENGINE.get_or_init(|| match std::env::var("STOS_ENGINE").as_deref() {
            Ok("bt") => Engine::Bt,
            _ => Engine::Interp,
        })
    }

    /// Sets (or, with `None`, clears) the process-global engine
    /// override consulted by [`Engine::from_env`]. Intended for tests
    /// that compare whole campaign runs across engines in one process.
    pub fn set_global_override(engine: Option<Engine>) {
        let v = match engine {
            None => u8::MAX,
            Some(Engine::Interp) => 0,
            Some(Engine::Bt) => 1,
        };
        OVERRIDE.store(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// The knob spelling of this engine (`"interp"` / `"bt"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Bt => "bt",
        }
    }
}

/// ALU for translated/fused ops. Decode routes `Div`/`Mod` (the only
/// faulting ALU ops) to the slow path, so this mirrors [`Machine::alu`]
/// with the fault plumbing compiled out — and, unlike the full-width
/// `alu`, is forced inline into the dispatch loop (LLVM refuses the
/// `#[inline]` hint there, costing a call per fused op).
#[inline(always)]
fn alu_nodiv(op: AluOp, a: i64, b: i64, width: Width, signed: bool) -> i64 {
    let wa = width.wrap(a, signed);
    let wb = width.wrap(b, signed);
    let ua = width.wrap(a, false) as u64;
    let ub = width.wrap(b, false) as u64;
    match op {
        AluOp::Add => width.wrap(wa.wrapping_add(wb), signed),
        AluOp::Sub => width.wrap(wa.wrapping_sub(wb), signed),
        AluOp::Mul => width.wrap(wa.wrapping_mul(wb), signed),
        // Unreachable: decode never translates Div/Mod into fast ops.
        AluOp::Div | AluOp::Mod => 0,
        AluOp::And => width.wrap(wa & wb, signed),
        AluOp::Or => width.wrap(wa | wb, signed),
        AluOp::Xor => width.wrap(wa ^ wb, signed),
        AluOp::Shl => width.wrap(wa.wrapping_shl((ub & 31) as u32), signed),
        AluOp::Shr => {
            if signed {
                width.wrap(wa.wrapping_shr((ub & 31) as u32), true)
            } else {
                width.wrap((ua >> (ub & 31)) as i64, false)
            }
        }
        AluOp::Eq => (wa == wb) as i64,
        AluOp::Ne => (wa != wb) as i64,
        AluOp::Lt => {
            if signed {
                (wa < wb) as i64
            } else {
                (ua < ub) as i64
            }
        }
        AluOp::Le => {
            if signed {
                (wa <= wb) as i64
            } else {
                (ua <= ub) as i64
            }
        }
    }
}

impl Machine {
    /// The block-translation run loop: identical outer structure to the
    /// interpreter loop, with a chained block executor where the
    /// interpreter single-steps.
    pub(crate) fn run_bt(&mut self, until: u64) -> RunState {
        let cache = match &self.bbcache {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(BlockCache::build(&self.img));
                self.bbcache = Some(Arc::clone(&c));
                c
            }
        };
        while self.cycles < until {
            match self.state {
                RunState::Running => {
                    self.deliver_due_events();
                    if self.maybe_dispatch_irq() {
                        continue;
                    }
                    if !self.run_blocks(&cache, until) {
                        // No block was provably safe (mid-block pc,
                        // horizon too close, shallow stack, pc past
                        // end): take one faithful step.
                        self.step();
                    }
                }
                RunState::Sleeping => self.sleep_pump(until),
                RunState::Halted | RunState::Faulted => break,
            }
        }
        self.state
    }

    /// Executes whole basic blocks back-to-back while each next block
    /// provably contains no observable boundary. Returns whether at
    /// least one block ran.
    ///
    /// The counters (`cycles`, `awake_cycles`, `instr_count`, `pc`,
    /// `cur_func`) accumulate in locals that survive *across* chained
    /// blocks — branch terminators never touch the machine — and flush
    /// only around ops that can observe them or exit the fast path
    /// (fault, MMIO, call/return, interpreter fallback). Every flush
    /// happens *before* the op body runs, so fault sites and device
    /// accesses always see exact interpreter-identical counters.
    fn run_blocks(&mut self, cache: &BlockCache, until: u64) -> bool {
        let mut horizon = self.next_horizon(until);
        let mut progressed = false;
        let mut cycles = self.cycles;
        let mut awake = self.awake_cycles;
        let mut instrs = self.instr_count;
        let mut pc = self.pc;
        let mut cur_func = self.cur_func;
        // Locals -> machine (before any op that can fault, reach a
        // device, or leave the fast path).
        macro_rules! sync_out {
            () => {
                self.cycles = cycles;
                self.awake_cycles = awake;
                self.instr_count = instrs;
                self.pc = pc;
            };
        }
        // Machine -> locals (after an op that legitimately moved
        // control: call, return, interpreter-executed terminator).
        macro_rules! sync_in {
            () => {
                cycles = self.cycles;
                awake = self.awake_cycles;
                instrs = self.instr_count;
                pc = self.pc;
                cur_func = self.cur_func;
            };
        }
        'chain: loop {
            // An enabled pending interrupt must be dispatched by the
            // faithful outer loop before the next instruction.
            if self.pending != 0 && self.irq_enabled {
                break;
            }
            let Some(block) = cache.lookup(cur_func, pc) else {
                break;
            };
            if cycles + block.cost >= horizon || (self.eval.len() as u32) < block.stack_in {
                break;
            }
            progressed = true;
            // Pure blocks (statically infallible, device-free, no torn
            // watchpoint armed, frame window proven writable) take the
            // lean path: whole-block counter accounting and a dispatch
            // loop with no per-op flush/exit machinery — nothing inside
            // can fault, reach a device, or observe the counters.
            if block.pure
                && self.torn_watch.is_none()
                && (block.local_span == 0 || self.dyn_writable(self.fp, block.local_span))
            {
                'pure: loop {
                    cycles += block.cost;
                    awake += block.cost;
                    instrs += block.n_instrs as u64;
                    let mut next = pc + block.n_instrs;
                    for op in block.ops.iter() {
                        match op.kind {
                            OpKind::PushI(v) => self.eval.push(v),
                            OpKind::LdG {
                                addr,
                                width,
                                signed,
                            } => {
                                let v = self.ram_read(addr, width, signed);
                                self.eval.push(v);
                            }
                            OpKind::StG { addr, width } => {
                                let v = self.bpop();
                                self.ram_write(addr, v, width);
                            }
                            OpKind::LdL { off, width, signed } => {
                                let v = self.ram_read(self.fp.wrapping_add(off), width, signed);
                                self.eval.push(v);
                            }
                            OpKind::StL { off, width } => {
                                let v = self.bpop();
                                self.ram_write(self.fp.wrapping_add(off), v, width);
                            }
                            OpKind::AddrL { off } => {
                                self.eval.push(self.fp.wrapping_add(off) as i64)
                            }
                            OpKind::Bin { op, width, signed } => {
                                let b = self.bpop();
                                let a = self.bpop();
                                self.eval.push(alu_nodiv(op, a, b, width, signed));
                            }
                            OpKind::Un { op, width } => {
                                let a = self.bpop();
                                let v = match op {
                                    UnAluOp::Neg => width.wrap(a.wrapping_neg(), false),
                                    UnAluOp::BitNot => width.wrap(!a, false),
                                    UnAluOp::Not => (width.wrap(a, false) == 0) as i64,
                                };
                                self.eval.push(v);
                            }
                            OpKind::Wrap { width, signed } => {
                                let a = self.bpop();
                                self.eval.push(width.wrap(a, signed));
                            }
                            OpKind::Pop => {
                                self.bpop();
                            }
                            OpKind::Dup => {
                                let v = self.bpop();
                                self.eval.push(v);
                                self.eval.push(v);
                            }
                            OpKind::Nop => {}
                            OpKind::IrqSave => {
                                self.eval.push(self.irq_enabled as i64);
                                self.irq_enabled = false;
                            }
                            OpKind::IrqDisable => self.irq_enabled = false,
                            OpKind::MkFat { seq } => {
                                let end = self.bpop() as u16;
                                let base = if seq { self.bpop() as u16 } else { 0 };
                                let val = self.bpop() as u16;
                                self.eval.push(fat_pack(val, base, end));
                            }
                            OpKind::FatVal => {
                                let (v, _, _) = fat_unpack(self.bpop());
                                self.eval.push(v as i64);
                            }
                            OpKind::FatEnd => {
                                let (_, _, e) = fat_unpack(self.bpop());
                                self.eval.push(e as i64);
                            }
                            OpKind::FatBase => {
                                let (_, b, _) = fat_unpack(self.bpop());
                                self.eval.push(b as i64);
                            }
                            OpKind::FatAdd => {
                                let delta = self.bpop();
                                let (v, b, e) = fat_unpack(self.bpop());
                                let nv = (v as i64).wrapping_add(delta) as u16;
                                self.eval.push(fat_pack(nv, b, e));
                            }
                            OpKind::LdGF { addr, seq } => self.fat_read_direct(addr, seq),
                            OpKind::StGF { addr, seq } => {
                                let cell = self.bpop();
                                self.fat_write_direct(addr, cell, seq);
                            }
                            OpKind::LdLF { off, seq } => {
                                self.fat_read_direct(self.fp.wrapping_add(off), seq)
                            }
                            OpKind::StLF { off, seq } => {
                                let cell = self.bpop();
                                self.fat_write_direct(self.fp.wrapping_add(off), cell, seq);
                            }
                            OpKind::StGK { addr, width, k } => self.ram_write(addr, k, width),
                            OpKind::BinK {
                                op,
                                width,
                                signed,
                                k,
                            } => {
                                let a = self.bpop();
                                self.eval.push(alu_nodiv(op, a, k, width, signed));
                            }
                            OpKind::RmwGK {
                                ld_addr,
                                ld_width,
                                ld_signed,
                                k,
                                op,
                                width,
                                signed,
                                st_addr,
                                st_width,
                            } => {
                                let a = self.ram_read(ld_addr, ld_width, ld_signed);
                                let v = alu_nodiv(op, a, k, width, signed);
                                self.ram_write(st_addr, v, st_width);
                            }
                            OpKind::CpGG {
                                ld_addr,
                                ld_width,
                                ld_signed,
                                st_addr,
                                st_width,
                            } => {
                                let v = self.ram_read(ld_addr, ld_width, ld_signed);
                                self.ram_write(st_addr, v, st_width);
                            }
                            OpKind::Jmp(target) => next = target,
                            OpKind::Jz(target) => {
                                if self.bpop() == 0 {
                                    next = target;
                                }
                            }
                            OpKind::Jnz(target) => {
                                if self.bpop() != 0 {
                                    next = target;
                                }
                            }
                            OpKind::CmpGKBr {
                                addr,
                                ld_width,
                                ld_signed,
                                k,
                                op,
                                width,
                                signed,
                                br_if_zero,
                                target,
                            } => {
                                let a = self.ram_read(addr, ld_width, ld_signed);
                                let v = alu_nodiv(op, a, k, width, signed);
                                if (v == 0) == br_if_zero {
                                    next = target;
                                }
                            }
                            OpKind::CmpTopKBr {
                                k,
                                op,
                                width,
                                signed,
                                br_if_zero,
                                target,
                            } => {
                                let a = *self.eval.last().expect("stack_in covers CmpTopKBr");
                                let v = alu_nodiv(op, a, k, width, signed);
                                if (v == 0) == br_if_zero {
                                    next = target;
                                }
                            }
                            OpKind::RmwGKBr { rmw, cmp, reload } => {
                                let a = self.ram_read(rmw.ld_addr, rmw.ld_width, rmw.ld_signed);
                                let v = alu_nodiv(rmw.op, a, rmw.k, rmw.width, rmw.signed);
                                self.ram_write(rmw.st_addr, v, rmw.st_width);
                                // When the compare reloads exactly the bytes the
                                // store just wrote, the reload is a pure
                                // re-materialisation of `v` — direct reads are
                                // uncounted, so eliding it is unobservable.
                                let b = if reload {
                                    self.ram_read(cmp.addr, cmp.ld_width, cmp.ld_signed)
                                } else {
                                    cmp.ld_width.wrap(v, cmp.ld_signed)
                                };
                                let f = alu_nodiv(cmp.op, b, cmp.k, cmp.width, cmp.signed);
                                if (f == 0) == cmp.br_if_zero {
                                    next = cmp.target;
                                }
                            }
                            OpKind::LdDyn { .. }
                            | OpKind::StDyn { .. }
                            | OpKind::LdFDyn { .. }
                            | OpKind::StFDyn { .. }
                            | OpKind::Slow(_)
                            | OpKind::Call(_)
                            | OpKind::Term(_) => {
                                unreachable!("impure op in a pure block (decode invariant)")
                            }
                        }
                    }
                    // Self-loop — the dominant tight-loop shape: the
                    // terminator re-enters this very block, so skip the
                    // lookup/pureness pointer chase and re-run the
                    // already-resolved ops, re-checking only what can
                    // have changed (IRQ window, horizon, stack depth;
                    // `fp`, the torn watch, and the block itself
                    // cannot change inside a pure block).
                    if next == pc
                        && !(self.pending != 0 && self.irq_enabled)
                        && cycles + block.cost < horizon
                        && (self.eval.len() as u32) >= block.stack_in
                    {
                        continue 'pure;
                    }
                    pc = next;
                    continue 'chain;
                }
            }
            for op in block.ops.iter() {
                cycles += op.cost as u64;
                awake += op.cost as u64;
                instrs += op.n as u64;
                pc += op.n as u32;
                match op.kind {
                    // -- infallible ops: locals stay hot, no exit test --
                    OpKind::PushI(v) => self.eval.push(v),
                    OpKind::LdG {
                        addr,
                        width,
                        signed,
                    } => {
                        let v = self.g_load(addr, width, signed);
                        self.eval.push(v);
                    }
                    OpKind::StG { addr, width } => {
                        let v = self.bpop();
                        self.g_store(addr, v, width);
                    }
                    OpKind::AddrL { off } => self.eval.push(self.fp.wrapping_add(off) as i64),
                    OpKind::Bin { op, width, signed } => {
                        let b = self.bpop();
                        let a = self.bpop();
                        // Never Div/Mod (decode guarantee): cannot fault.
                        let v = alu_nodiv(op, a, b, width, signed);
                        self.eval.push(v);
                    }
                    OpKind::Un { op, width } => {
                        let a = self.bpop();
                        let v = match op {
                            UnAluOp::Neg => width.wrap(a.wrapping_neg(), false),
                            UnAluOp::BitNot => width.wrap(!a, false),
                            UnAluOp::Not => (width.wrap(a, false) == 0) as i64,
                        };
                        self.eval.push(v);
                    }
                    OpKind::Wrap { width, signed } => {
                        let a = self.bpop();
                        self.eval.push(width.wrap(a, signed));
                    }
                    OpKind::Pop => {
                        self.bpop();
                    }
                    OpKind::Dup => {
                        let v = self.bpop();
                        self.eval.push(v);
                        self.eval.push(v);
                    }
                    OpKind::Nop => {}
                    OpKind::IrqSave => {
                        self.eval.push(self.irq_enabled as i64);
                        self.irq_enabled = false;
                    }
                    OpKind::IrqDisable => self.irq_enabled = false,
                    OpKind::MkFat { seq } => {
                        let end = self.bpop() as u16;
                        let base = if seq { self.bpop() as u16 } else { 0 };
                        let val = self.bpop() as u16;
                        self.eval.push(fat_pack(val, base, end));
                    }
                    OpKind::FatVal => {
                        let (v, _, _) = fat_unpack(self.bpop());
                        self.eval.push(v as i64);
                    }
                    OpKind::FatEnd => {
                        let (_, _, e) = fat_unpack(self.bpop());
                        self.eval.push(e as i64);
                    }
                    OpKind::FatBase => {
                        let (_, b, _) = fat_unpack(self.bpop());
                        self.eval.push(b as i64);
                    }
                    OpKind::FatAdd => {
                        let delta = self.bpop();
                        let (v, b, e) = fat_unpack(self.bpop());
                        let nv = (v as i64).wrapping_add(delta) as u16;
                        self.eval.push(fat_pack(nv, b, e));
                    }
                    OpKind::LdGF { addr, seq } => {
                        if self.torn_watch.is_some() {
                            self.fat_load(addr, seq);
                        } else {
                            self.fat_read_direct(addr, seq);
                        }
                    }
                    OpKind::StGF { addr, seq } => {
                        let cell = self.bpop();
                        if self.torn_watch.is_some() {
                            self.fat_store(addr, cell, seq);
                        } else {
                            self.fat_write_direct(addr, cell, seq);
                        }
                    }
                    OpKind::StGK { addr, width, k } => self.g_store(addr, k, width),
                    OpKind::BinK {
                        op,
                        width,
                        signed,
                        k,
                    } => {
                        let a = self.bpop();
                        let v = alu_nodiv(op, a, k, width, signed);
                        self.eval.push(v);
                    }
                    OpKind::RmwGK {
                        ld_addr,
                        ld_width,
                        ld_signed,
                        k,
                        op,
                        width,
                        signed,
                        st_addr,
                        st_width,
                    } => {
                        let a = self.g_load(ld_addr, ld_width, ld_signed);
                        let v = alu_nodiv(op, a, k, width, signed);
                        self.g_store(st_addr, v, st_width);
                    }
                    OpKind::CpGG {
                        ld_addr,
                        ld_width,
                        ld_signed,
                        st_addr,
                        st_width,
                    } => {
                        let v = self.g_load(ld_addr, ld_width, ld_signed);
                        self.g_store(st_addr, v, st_width);
                    }
                    // -- fallible / observing ops: flush, run, test --
                    OpKind::LdL { off, width, signed } => {
                        let addr = self.fp.wrapping_add(off);
                        if self.dyn_readable(addr, width.bytes()) && !self.torn_guard(width) {
                            let v = self.ram_read(addr, width, signed);
                            self.eval.push(v);
                        } else {
                            sync_out!();
                            if let Some(v) = self.load_mem(addr, width, signed) {
                                self.eval.push(v);
                            }
                            if self.state != RunState::Running {
                                return progressed;
                            }
                        }
                    }
                    OpKind::StL { off, width } => {
                        let v = self.bpop();
                        let addr = self.fp.wrapping_add(off);
                        if self.dyn_writable(addr, width.bytes()) && !self.torn_guard(width) {
                            self.ram_write(addr, v, width);
                        } else {
                            sync_out!();
                            self.store_mem(addr, v, width);
                            if self.state != RunState::Running {
                                return progressed;
                            }
                            if self.mmio_sync {
                                self.mmio_sync = false;
                                horizon = self.next_horizon(until);
                                continue 'chain;
                            }
                        }
                    }
                    OpKind::LdDyn { width, signed } => {
                        let addr = self.bpop() as u16;
                        if self.dyn_readable(addr, width.bytes()) && !self.torn_guard(width) {
                            let v = self.ram_read(addr, width, signed);
                            self.eval.push(v);
                        } else {
                            sync_out!();
                            if let Some(v) = self.load_mem(addr, width, signed) {
                                self.eval.push(v);
                            }
                            if self.state != RunState::Running {
                                return progressed;
                            }
                        }
                    }
                    OpKind::StDyn { width } => {
                        let addr = self.bpop() as u16;
                        let v = self.bpop();
                        if self.dyn_writable(addr, width.bytes()) && !self.torn_guard(width) {
                            self.ram_write(addr, v, width);
                        } else {
                            sync_out!();
                            self.store_mem(addr, v, width);
                            if self.state != RunState::Running {
                                return progressed;
                            }
                            if self.mmio_sync {
                                self.mmio_sync = false;
                                horizon = self.next_horizon(until);
                                continue 'chain;
                            }
                        }
                    }
                    OpKind::LdLF { off, seq } => {
                        let addr = self.fp.wrapping_add(off);
                        if self.torn_watch.is_none()
                            && self.dyn_readable(addr, fat_bytes(seq) as u32)
                        {
                            self.fat_read_direct(addr, seq);
                        } else {
                            sync_out!();
                            self.fat_load(addr, seq);
                            if self.state != RunState::Running {
                                return progressed;
                            }
                        }
                    }
                    OpKind::StLF { off, seq } => {
                        let addr = self.fp.wrapping_add(off);
                        let cell = self.bpop();
                        if self.torn_watch.is_none()
                            && self.dyn_writable(addr, fat_bytes(seq) as u32)
                        {
                            self.fat_write_direct(addr, cell, seq);
                        } else {
                            sync_out!();
                            self.fat_store(addr, cell, seq);
                            if self.state != RunState::Running {
                                return progressed;
                            }
                            if self.mmio_sync {
                                self.mmio_sync = false;
                                horizon = self.next_horizon(until);
                                continue 'chain;
                            }
                        }
                    }
                    OpKind::LdFDyn { seq } => {
                        let addr = self.bpop() as u16;
                        if self.torn_watch.is_none()
                            && self.dyn_readable(addr, fat_bytes(seq) as u32)
                        {
                            self.fat_read_direct(addr, seq);
                        } else {
                            sync_out!();
                            self.fat_load(addr, seq);
                            if self.state != RunState::Running {
                                return progressed;
                            }
                        }
                    }
                    OpKind::StFDyn { seq } => {
                        let addr = self.bpop() as u16;
                        let cell = self.bpop();
                        if self.torn_watch.is_none()
                            && self.dyn_writable(addr, fat_bytes(seq) as u32)
                        {
                            self.fat_write_direct(addr, cell, seq);
                        } else {
                            sync_out!();
                            self.fat_store(addr, cell, seq);
                            if self.state != RunState::Running {
                                return progressed;
                            }
                            if self.mmio_sync {
                                self.mmio_sync = false;
                                horizon = self.next_horizon(until);
                                continue 'chain;
                            }
                        }
                    }
                    OpKind::Slow(ins) => {
                        sync_out!();
                        self.exec(&ins);
                        if self.state != RunState::Running {
                            return progressed;
                        }
                        if self.mmio_sync {
                            self.mmio_sync = false;
                            horizon = self.next_horizon(until);
                            continue 'chain;
                        }
                        // No Slow instruction moves control, but staying
                        // synced with the machine is free here.
                        pc = self.pc;
                    }
                    // -- terminators (always the last op of the block) --
                    OpKind::Jmp(target) => {
                        pc = target;
                        continue 'chain;
                    }
                    OpKind::Jz(target) => {
                        if self.bpop() == 0 {
                            pc = target;
                        }
                        continue 'chain;
                    }
                    OpKind::Jnz(target) => {
                        if self.bpop() != 0 {
                            pc = target;
                        }
                        continue 'chain;
                    }
                    OpKind::CmpGKBr {
                        addr,
                        ld_width,
                        ld_signed,
                        k,
                        op,
                        width,
                        signed,
                        br_if_zero,
                        target,
                    } => {
                        let a = self.g_load(addr, ld_width, ld_signed);
                        let v = alu_nodiv(op, a, k, width, signed);
                        if (v == 0) == br_if_zero {
                            pc = target;
                        }
                        continue 'chain;
                    }
                    OpKind::CmpTopKBr {
                        k,
                        op,
                        width,
                        signed,
                        br_if_zero,
                        target,
                    } => {
                        // `Dup; PushI; Bin; Jz/Jnz` keeps the original
                        // top of stack (the copy got consumed); entry
                        // depth >= stack_in guarantees it exists.
                        let a = *self.eval.last().expect("stack_in covers CmpTopKBr");
                        let v = alu_nodiv(op, a, k, width, signed);
                        if (v == 0) == br_if_zero {
                            pc = target;
                        }
                        continue 'chain;
                    }
                    OpKind::RmwGKBr {
                        rmw,
                        cmp,
                        reload: _,
                    } => {
                        let a = self.g_load(rmw.ld_addr, rmw.ld_width, rmw.ld_signed);
                        let v = alu_nodiv(rmw.op, a, rmw.k, rmw.width, rmw.signed);
                        self.g_store(rmw.st_addr, v, rmw.st_width);
                        let b = self.g_load(cmp.addr, cmp.ld_width, cmp.ld_signed);
                        let f = alu_nodiv(cmp.op, b, cmp.k, cmp.width, cmp.signed);
                        if (f == 0) == cmp.br_if_zero {
                            pc = cmp.target;
                        }
                        continue 'chain;
                    }
                    OpKind::Call(func) => {
                        sync_out!();
                        self.do_call(func, false);
                        if self.state != RunState::Running {
                            return progressed;
                        }
                        sync_in!();
                        continue 'chain;
                    }
                    OpKind::Term(ins) => {
                        sync_out!();
                        self.exec(&ins);
                        if self.state != RunState::Running {
                            return progressed;
                        }
                        if self.mmio_sync {
                            self.mmio_sync = false;
                            horizon = self.next_horizon(until);
                        }
                        sync_in!();
                        continue 'chain;
                    }
                }
            }
            // Fallthrough into the next leader: `pc` already advanced.
        }
        sync_out!();
        progressed
    }

    /// `min(until, next scheduled event time)`: the fast loop must stop
    /// strictly before this so event delivery stays per-instruction
    /// faithful.
    fn next_horizon(&self, until: u64) -> u64 {
        match self.events.peek() {
            Some(Reverse((t, _))) => (*t).min(until),
            None => until,
        }
    }

    /// Pop inside the block dispatch loop. Semantically identical to
    /// [`Machine::pop`], but the underflow arm is split out cold so
    /// LLVM actually inlines the hot path (block admission via
    /// `stack_in` proves it can never underflow mid-block; the fault
    /// arm stays for defense in depth).
    #[inline(always)]
    fn bpop(&mut self) -> i64 {
        match self.eval.pop() {
            Some(v) => v,
            None => self.bpop_underflow(),
        }
    }

    #[cold]
    #[inline(never)]
    fn bpop_underflow(&mut self) -> i64 {
        self.fail(Fault::BadCode("evaluation stack underflow".into()));
        0
    }

    /// Whether a `width` access must detour through the counting
    /// `load_mem`/`store_mem` path because a torn watchpoint is armed
    /// (the watch counts every IRQ-enabled 16-bit access).
    #[inline(always)]
    fn torn_guard(&self, width: Width) -> bool {
        width == Width::W16 && self.torn_watch.is_some()
    }

    /// Whether `[addr, addr+len)` is readable without the memory map
    /// (SRAM or flash window — never MMIO, never the null page).
    #[inline(always)]
    fn dyn_readable(&self, addr: u16, len: u32) -> bool {
        let end = addr as u32 + len;
        (addr >= self.sram_base && end <= self.sram_end as u32)
            || (addr >= 0x8000 && end <= MMIO_BASE as u32)
    }

    /// Whether `[addr, addr+len)` is writable SRAM.
    #[inline(always)]
    fn dyn_writable(&self, addr: u16, len: u32) -> bool {
        addr >= self.sram_base && addr as u32 + len <= self.sram_end as u32
    }

    /// Raw little-endian RAM read (caller proved the range mapped and
    /// torn-free).
    #[inline(always)]
    fn ram_read(&self, addr: u16, width: Width, signed: bool) -> i64 {
        let a = addr as usize;
        let v: u64 = match width {
            Width::W8 => self.ram[a] as u64,
            Width::W16 => self.ram[a] as u64 | (self.ram[a + 1] as u64) << 8,
            Width::W32 => {
                self.ram[a] as u64
                    | (self.ram[a + 1] as u64) << 8
                    | (self.ram[a + 2] as u64) << 16
                    | (self.ram[a + 3] as u64) << 24
            }
        };
        width.wrap(v as i64, signed)
    }

    /// Raw little-endian RAM write (caller proved the range writable
    /// SRAM and torn-free).
    #[inline(always)]
    fn ram_write(&mut self, addr: u16, v: i64, width: Width) {
        let uv = width.wrap(v, false) as u64;
        let a = addr as usize;
        match width {
            Width::W8 => self.ram[a] = uv as u8,
            Width::W16 => {
                self.ram[a] = uv as u8;
                self.ram[a + 1] = (uv >> 8) as u8;
            }
            Width::W32 => {
                self.ram[a] = uv as u8;
                self.ram[a + 1] = (uv >> 8) as u8;
                self.ram[a + 2] = (uv >> 16) as u8;
                self.ram[a + 3] = (uv >> 24) as u8;
            }
        }
    }

    /// Statically mapped global load: direct unless a torn watchpoint
    /// forces the counting path for 16-bit accesses.
    #[inline(always)]
    fn g_load(&mut self, addr: u16, width: Width, signed: bool) -> i64 {
        if self.torn_guard(width) {
            // Statically mapped: never None.
            self.load_mem(addr, width, signed).unwrap_or(0)
        } else {
            self.ram_read(addr, width, signed)
        }
    }

    /// Statically mapped SRAM store, torn-aware (see [`Machine::g_load`]).
    #[inline(always)]
    fn g_store(&mut self, addr: u16, v: i64, width: Width) {
        if self.torn_guard(width) {
            self.store_mem(addr, v, width);
        } else {
            self.ram_write(addr, v, width);
        }
    }

    /// Direct fat-pointer read (range proved mapped, no torn watch):
    /// mirrors `fat_load` without per-word map checks.
    #[inline(always)]
    fn fat_read_direct(&mut self, addr: u16, seq: bool) {
        let val = self.ram_read(addr, Width::W16, false) as u16;
        let end = self.ram_read(addr.wrapping_add(2), Width::W16, false) as u16;
        let base = if seq {
            self.ram_read(addr.wrapping_add(4), Width::W16, false) as u16
        } else {
            0
        };
        self.eval.push(fat_pack(val, base, end));
    }

    /// Direct fat-pointer write (see [`Machine::fat_read_direct`]).
    #[inline(always)]
    fn fat_write_direct(&mut self, addr: u16, cell: i64, seq: bool) {
        let (v, b, e) = fat_unpack(cell);
        self.ram_write(addr, v as i64, Width::W16);
        self.ram_write(addr.wrapping_add(2), e as i64, Width::W16);
        if seq {
            self.ram_write(addr.wrapping_add(4), b as i64, Width::W16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{TIMER0_COMPARE, TIMER0_CTRL, UART_DATA};
    use crate::image::{CodeFunction, Image, Profile};
    use crate::isa::{AluOp, Instr};

    fn image_with(code: Vec<Instr>) -> Image {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("main");
        f.code = code;
        f.frame_size = 16;
        let e = img.add_function(f);
        img.entry = Some(e);
        img
    }

    /// Every observable the repo's harnesses read.
    #[allow(clippy::type_complexity)]
    fn observe(
        m: &Machine,
    ) -> (
        u64,
        u64,
        u64,
        RunState,
        Option<String>,
        Vec<u8>,
        Vec<(u64, u8)>,
        u64,
        Vec<u8>,
    ) {
        (
            m.cycles,
            m.awake_cycles,
            m.instr_count,
            m.state,
            m.fault_message(),
            m.uart_out.clone(),
            m.radio_out.clone(),
            m.devices.leds.transitions,
            m.ram_bytes().to_vec(),
        )
    }

    fn assert_identical(img: &Image, until: u64) {
        let mut a = Machine::new(img);
        a.set_engine(Engine::Interp);
        a.run(until);
        let mut b = Machine::new(img);
        b.set_engine(Engine::Bt);
        b.run(until);
        assert_eq!(observe(&a), observe(&b));
    }

    #[test]
    fn engines_agree_on_timer_interrupt_program() {
        // The machine.rs timer test program: ISR increments a counter,
        // main sleeps in a loop — exercises IRQ dispatch, sleep
        // fast-forward, MMIO stores, fused RMW in the handler.
        let mut img = Image::new(Profile::mica2());
        let mut h = CodeFunction::new("tick");
        h.interrupt = Some(crate::vectors::TIMER0);
        h.code = vec![
            Instr::LdGlobal {
                addr: 0x0200,
                width: Width::W16,
                signed: false,
            },
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::Reti,
        ];
        img.add_function(h);
        let mut main = CodeFunction::new("main");
        main.code = vec![
            Instr::PushI(3),
            Instr::PushI(TIMER0_COMPARE as i64),
            Instr::St { width: Width::W16 },
            Instr::PushI(1),
            Instr::PushI(TIMER0_CTRL as i64),
            Instr::St { width: Width::W16 },
            Instr::IrqEnable,
            Instr::Sleep,
            Instr::Jmp { target: 7 },
        ];
        let e = img.add_function(main);
        img.entry = Some(e);
        assert_identical(&img, 50_000);
    }

    #[test]
    fn engines_agree_on_uart_busy_loop() {
        // Tight compute loop interleaved with MMIO stores (mid-block
        // resync path) and a division (Slow op).
        let img = image_with(vec![
            Instr::PushI(0), // i = 0 on stack
            // loop:
            Instr::Dup,
            Instr::PushI(48),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W8,
                signed: false,
            },
            Instr::PushI(UART_DATA as i64),
            Instr::St { width: Width::W8 },
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::Dup,
            Instr::PushI(7),
            Instr::Bin {
                op: AluOp::Div,
                width: Width::W16,
                signed: false,
            },
            Instr::Pop,
            Instr::Dup,
            Instr::PushI(200),
            Instr::Bin {
                op: AluOp::Lt,
                width: Width::W16,
                signed: false,
            },
            Instr::Jnz { target: 1 },
            Instr::Halt,
        ]);
        assert_identical(&img, 1_000_000);
    }

    #[test]
    fn engines_agree_on_faulting_program() {
        // Wild store -> MemFault; cycles at the fault must match.
        let img = image_with(vec![
            Instr::PushI(5),
            Instr::PushI(0x0040), // null page
            Instr::St { width: Width::W8 },
            Instr::Halt,
        ]);
        assert_identical(&img, 1_000);
    }

    #[test]
    fn engines_agree_on_torn_watch_counts() {
        let code = vec![
            Instr::IrqEnable,
            Instr::PushI(0),
            // loop: StGlobal W16 to 0x0200, increment, compare, loop
            Instr::PushI(0x1234),
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::Dup,
            Instr::PushI(10),
            Instr::Bin {
                op: AluOp::Lt,
                width: Width::W16,
                signed: false,
            },
            Instr::Jnz { target: 2 },
            Instr::Halt,
        ];
        let img = image_with(code);
        let mut a = Machine::new(&img);
        a.set_engine(Engine::Interp);
        a.arm_torn_watch(0x0200, 4, 0x80, true);
        a.run(10_000);
        let mut b = Machine::new(&img);
        b.set_engine(Engine::Bt);
        b.arm_torn_watch(0x0200, 4, 0x80, true);
        b.run(10_000);
        assert_eq!(observe(&a), observe(&b));
        assert_eq!(a.torn_watch(), b.torn_watch());
        assert!(a.torn_watch().unwrap().fired);
    }

    #[test]
    fn engines_agree_under_run_until_boundaries() {
        // Chopping the run into tiny slices must not change anything:
        // the block engine falls back to single-stepping at every
        // horizon crossing.
        let img = image_with(vec![
            Instr::PushI(0),
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::Dup,
            Instr::PushI(500),
            Instr::Bin {
                op: AluOp::Lt,
                width: Width::W16,
                signed: false,
            },
            Instr::Jnz { target: 1 },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::Halt,
        ]);
        let mut a = Machine::new(&img);
        a.set_engine(Engine::Interp);
        let mut b = Machine::new(&img);
        b.set_engine(Engine::Bt);
        let mut t = 0;
        while t < 20_000 {
            t += 37;
            a.run(t);
            b.run(t);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.instr_count, b.instr_count);
        }
        assert_eq!(observe(&a), observe(&b));
    }

    #[test]
    fn bad_code_fault_names_function() {
        // Falling off the end of a function reports the function
        // index/name under both engines.
        let img = image_with(vec![Instr::Nop]);
        for engine in [Engine::Interp, Engine::Bt] {
            let mut m = Machine::new(&img);
            m.set_engine(engine);
            m.run(100);
            let msg = m.fault_message().unwrap();
            assert!(
                msg.contains("#0") && msg.contains("main"),
                "{engine:?}: {msg}"
            );
        }
    }
}
