//! Fault injection: deterministic corruption of a running node.
//!
//! The paper's central claim is that cured programs convert silent
//! memory corruption into trapped, FLID-diagnosable failures. This
//! module supplies the *corruption*: a [`FaultPlan`] names one physical
//! fault — a bit flip in data RAM, a pointer-sized word overwritten with
//! a wild value, or a clobbered frame-pointer register — and the cycle
//! point at which to apply it, and [`apply`] injects it into a live
//! [`Machine`] between instructions, exactly as a cosmic-ray upset or a
//! stray DMA write would land.
//!
//! Campaign drivers get their plans from [`enumerate_sites`]: a seeded,
//! deterministic enumerator over the image's static-data region. The
//! same seed always yields the same plan list for the same image, so
//! campaigns are reproducible and byte-identical across worker-thread
//! counts.
//!
//! # Example
//!
//! ```
//! use mcu::faults::{apply, FaultKind, FaultPlan};
//! use mcu::image::CodeFunction;
//! use mcu::isa::{Instr, Width};
//! use mcu::{Image, Machine, Profile};
//!
//! // A program that spins forever reading a global.
//! let mut f = CodeFunction::new("main");
//! f.code = vec![
//!     Instr::LdGlobal { addr: 0x0200, width: Width::W8, signed: false },
//!     Instr::Pop,
//!     Instr::Jmp { target: 0 },
//! ];
//! let mut image = Image::new(Profile::mica2());
//! let main = image.add_function(f);
//! image.entry = Some(main);
//! let mut m = Machine::new(&image);
//! m.run(100);
//! apply(&mut m, &FaultPlan { at_cycle: 100, kind: FaultKind::BitFlip { addr: 0x0200, mask: 0x04 } });
//! assert_eq!(m.ram_peek(0x0200), 0x04);
//! ```

use crate::image::Image;
use crate::machine::{Machine, RunState};

/// One physical corruption to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR `mask` into the RAM byte at `addr` — the classic single/multi
    /// bit upset in a data cell.
    BitFlip {
        /// The corrupted address (data SRAM).
        addr: u16,
        /// Bits to flip.
        mask: u8,
    },
    /// Overwrite the aligned 16-bit word at `addr` with `value` — a
    /// pointer-sized cell rewritten to point somewhere wild. In a cured
    /// image this lands in a fat pointer's value word (caught by the
    /// next bounds check); in an uncured image it redirects the next
    /// dereference silently.
    PointerWord {
        /// The corrupted word address.
        addr: u16,
        /// The wild value written over it.
        value: u16,
    },
    /// XOR `mask` into the frame-pointer register — corrupted register
    /// state, misdirecting every subsequent local access.
    FramePointer {
        /// Bits to flip in FP.
        mask: u16,
    },
    /// Arm a torn-16-bit-update watchpoint on the word at `addr`: the
    /// `nth` 16-bit access (load or store, one shared event stream)
    /// executed there **with interrupts enabled** has `mask` XORed into
    /// one of its bytes — into RAM for a store, into the value being
    /// read for a load — modelling an interrupt handler touching the
    /// variable between the two 8-bit bus transfers of the access (see
    /// [`crate::machine::TornWatch`]). Unlike the other kinds this is an
    /// *atomicity* fault: an access wrapped in an `atomic` section runs
    /// with interrupts disabled and never opens the hazard window, so
    /// race-hardened builds are immune by construction. Plans of this
    /// kind are applied at boot (`at_cycle: 0`) and keyed on the
    /// access-event count, which makes them comparable across
    /// differently optimized builds of the same program.
    TornUpdate16 {
        /// Watched word address (a 16-bit global's placement).
        addr: u16,
        /// Which IRQ-enabled access to tear (1-based).
        nth: u32,
        /// Bits to flip in the chosen byte.
        mask: u8,
        /// Tear the high byte (`addr + 1`) instead of the low byte.
        hi: bool,
    },
}

/// One planned injection: what to corrupt and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Total-cycle point at which the corruption lands (the driver runs
    /// the machine to this cycle, applies, and resumes).
    pub at_cycle: u64,
    /// The corruption.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A short, stable site label for reports
    /// (e.g. `bitflip@0x0214^04`, `ptr@0x0220=0x0000`, `fp^0x0010`).
    pub fn label(&self) -> String {
        match self.kind {
            FaultKind::BitFlip { addr, mask } => format!("bitflip@0x{addr:04x}^{mask:02x}"),
            FaultKind::PointerWord { addr, value } => format!("ptr@0x{addr:04x}=0x{value:04x}"),
            FaultKind::FramePointer { mask } => format!("fp^0x{mask:04x}"),
            FaultKind::TornUpdate16 {
                addr,
                nth,
                mask,
                hi,
            } => {
                let byte = if hi { "hi" } else { "lo" };
                format!("torn@0x{addr:04x}#{nth}^{mask:02x}{byte}")
            }
        }
    }
}

/// Applies `plan`'s corruption to a live machine (the cycle point is the
/// caller's business: run to `plan.at_cycle` first). Halted or faulted
/// machines are left untouched — there is no state left to corrupt.
pub fn apply(m: &mut Machine, plan: &FaultPlan) {
    if !matches!(m.state, RunState::Running | RunState::Sleeping) {
        return;
    }
    match plan.kind {
        FaultKind::BitFlip { addr, mask } => {
            let v = m.ram_peek(addr) ^ mask;
            m.ram_poke(addr, v);
        }
        FaultKind::PointerWord { addr, value } => m.ram_poke16(addr, value),
        FaultKind::FramePointer { mask } => m.corrupt_fp(mask),
        FaultKind::TornUpdate16 {
            addr,
            nth,
            mask,
            hi,
        } => m.arm_torn_watch(addr, nth, mask, hi),
    }
}

/// A tiny deterministic PRNG (SplitMix64): enough statistical quality to
/// scatter fault sites, zero dependencies, and stable output forever —
/// campaign JSON must be byte-identical across platforms and thread
/// counts.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Wild values a corrupted pointer word cycles through: null (cured
/// traps the null check; uncured faults on the null page), two mapped
/// in-SRAM addresses (silent redirection for uncured, a bounds trap for
/// cured), and one just past the static-data extent.
fn wild_pointer_value(rng: &mut SplitMix64, image: &Image) -> u16 {
    let base = image.profile.sram_base();
    let top = image.static_top.max(base + 2);
    match rng.below(4) {
        0 => 0x0000,
        1 => base + (rng.below((top - base) as u64) as u16 & !1),
        2 => top.saturating_sub(2) & !1,
        _ => top.wrapping_add(64),
    }
}

/// A wild pointer-word overwrite at an even address inside
/// `[base, top)`. The caller guarantees `top >= base + 2`.
fn wild_pointer_word(rng: &mut SplitMix64, image: &Image, base: u16, top: u16) -> FaultKind {
    let addr = (base + rng.below((top - base) as u64) as u16).min(top - 2) & !1;
    FaultKind::PointerWord {
        addr,
        value: wild_pointer_value(rng, image),
    }
}

/// Enumerates `count` deterministic fault plans for `image`: sites drawn
/// from the static-data region `[sram_base, static_top)`, cycle points
/// spread across the middle of `[0, window)` (skipping the first and
/// last eighth, so boot code has run and the fault has time to bite).
///
/// `targets` names the RAM cells the campaign most wants probed —
/// typically addresses the driver knows feed checked accesses (array
/// index variables, pointer cells). Half of the plans flip high bits in
/// a target cell (pushing an index far out of range, or a pointer far
/// off its object); the rest are background upsets: random bit flips,
/// wild pointer-word overwrites, and frame-pointer corruption. The mix
/// is fixed per plan index, not drawn from the RNG, so changing `seed`
/// moves the sites without changing the fault-model balance.
///
/// The same `(image layout, targets, seed, count, window)` always yields
/// the same plans. With no targets and no static data, every plan
/// degrades to a frame-pointer upset.
pub fn enumerate_sites(
    image: &Image,
    targets: &[u16],
    seed: u64,
    count: usize,
    window: u64,
) -> Vec<FaultPlan> {
    let base = image.profile.sram_base();
    let top = image.static_top;
    let has_data = top > base;
    // A pointer-word overwrite needs a full even-aligned word inside
    // the region; a one-byte region degrades to bit flips / FP upsets.
    let has_word = top >= base + 2;
    let mut rng = SplitMix64::new(seed);
    let mut plans = Vec::with_capacity(count);
    let window = window.max(16);
    // High-bit masks for targeted flips: any of these pushes a small
    // array index far beyond its bound (or a pointer's low byte far off
    // its object) while staying a plausible single/double upset.
    const HIGH_MASKS: [u8; 4] = [0x80, 0xC0, 0xA0, 0xE0];
    for i in 0..count {
        let at_cycle = window / 8 + rng.below(window * 3 / 4);
        let kind = match i % 4 {
            0 | 1 if !targets.is_empty() => FaultKind::BitFlip {
                addr: targets[rng.below(targets.len() as u64) as usize],
                mask: HIGH_MASKS[rng.below(HIGH_MASKS.len() as u64) as usize],
            },
            0 | 1 if has_word => wild_pointer_word(&mut rng, image, base, top),
            2 if has_word && i % 8 == 2 => wild_pointer_word(&mut rng, image, base, top),
            2 if has_data => {
                let addr = base + rng.below((top - base) as u64) as u16;
                FaultKind::BitFlip {
                    addr,
                    mask: 1 << rng.below(8),
                }
            }
            _ => FaultKind::FramePointer {
                mask: 1 << (1 + rng.below(12)),
            },
        };
        plans.push(FaultPlan { at_cycle, kind });
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CodeFunction, Profile};
    use crate::isa::{Instr, Width};

    fn looping_image() -> Image {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("main");
        f.code = vec![
            Instr::LdGlobal {
                addr: 0x0200,
                width: Width::W8,
                signed: false,
            },
            Instr::Pop,
            Instr::Jmp { target: 0 },
        ];
        let e = img.add_function(f);
        img.entry = Some(e);
        img.static_top = 0x0300;
        img.static_bytes = 0x0200;
        img
    }

    #[test]
    fn same_seed_same_plans() {
        let img = looping_image();
        let a = enumerate_sites(&img, &[0x0204], 42, 32, 1_000_000);
        let b = enumerate_sites(&img, &[0x0204], 42, 32, 1_000_000);
        assert_eq!(a, b);
        let c = enumerate_sites(&img, &[0x0204], 43, 32, 1_000_000);
        assert_ne!(a, c, "a different seed should move the sites");
    }

    #[test]
    fn plans_stay_in_bounds() {
        let img = looping_image();
        let base = img.profile.sram_base();
        let targets = [0x0210, 0x0214];
        for plan in enumerate_sites(&img, &targets, 7, 64, 800_000) {
            assert!(plan.at_cycle < 800_000, "{plan:?}");
            match plan.kind {
                FaultKind::BitFlip { addr, mask } => {
                    assert!(
                        (addr >= base && addr < img.static_top) || targets.contains(&addr),
                        "{plan:?}"
                    );
                    assert_ne!(mask, 0);
                }
                FaultKind::PointerWord { addr, .. } => {
                    assert!(addr >= base && addr + 1 < img.static_top, "{plan:?}");
                }
                FaultKind::FramePointer { mask } => assert_ne!(mask, 0),
                FaultKind::TornUpdate16 { .. } => {
                    panic!("enumerate_sites never plans torn updates: {plan:?}")
                }
            }
        }
    }

    #[test]
    fn half_the_plans_probe_target_cells() {
        let img = looping_image();
        let targets = [0x0220];
        let plans = enumerate_sites(&img, &targets, 5, 32, 1_000_000);
        let targeted = plans
            .iter()
            .filter(
                |p| matches!(p.kind, FaultKind::BitFlip { addr, mask } if addr == 0x0220 && mask & 0x80 != 0),
            )
            .count();
        assert_eq!(targeted, 16, "plan indices 0,1 mod 4 hit the targets");
    }

    #[test]
    fn one_byte_region_never_plants_pointer_words() {
        // A single byte of static data cannot hold an aligned word: the
        // pointer-word arms must degrade instead of clamping below
        // sram_base (addr would underflow to the null page).
        let mut img = looping_image();
        img.static_top = img.profile.sram_base() + 1;
        let base = img.profile.sram_base();
        for plan in enumerate_sites(&img, &[], 3, 64, 500_000) {
            match plan.kind {
                FaultKind::PointerWord { .. } => panic!("no word fits: {plan:?}"),
                FaultKind::BitFlip { addr, .. } => assert_eq!(addr, base, "{plan:?}"),
                FaultKind::FramePointer { .. } => {}
                FaultKind::TornUpdate16 { .. } => {
                    panic!("enumerate_sites never plans torn updates: {plan:?}")
                }
            }
        }
    }

    #[test]
    fn dataless_image_degrades_to_register_faults() {
        let mut img = looping_image();
        img.static_top = img.profile.sram_base();
        for plan in enumerate_sites(&img, &[], 1, 16, 100_000) {
            assert!(
                matches!(plan.kind, FaultKind::FramePointer { .. }),
                "{plan:?}"
            );
        }
    }

    #[test]
    fn bitflip_flips_and_pointer_word_overwrites() {
        let img = looping_image();
        let mut m = Machine::new(&img);
        m.run(50);
        apply(
            &mut m,
            &FaultPlan {
                at_cycle: 50,
                kind: FaultKind::BitFlip {
                    addr: 0x0200,
                    mask: 0x81,
                },
            },
        );
        assert_eq!(m.ram_peek(0x0200), 0x81);
        apply(
            &mut m,
            &FaultPlan {
                at_cycle: 50,
                kind: FaultKind::PointerWord {
                    addr: 0x0210,
                    value: 0xBEEF,
                },
            },
        );
        assert_eq!(m.ram_peek16(0x0210), 0xBEEF);
    }

    #[test]
    fn halted_machines_are_not_corrupted() {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("main");
        f.code = vec![Instr::Halt];
        let e = img.add_function(f);
        img.entry = Some(e);
        let mut m = Machine::new(&img);
        m.run(100);
        assert_eq!(m.state, RunState::Halted);
        apply(
            &mut m,
            &FaultPlan {
                at_cycle: 100,
                kind: FaultKind::BitFlip {
                    addr: 0x0200,
                    mask: 0xFF,
                },
            },
        );
        assert_eq!(m.ram_peek(0x0200), 0, "halted machine left untouched");
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin the stream: campaign reproducibility depends on it.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
