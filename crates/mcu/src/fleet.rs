//! Fleet-scale event-driven network simulation.
//!
//! [`crate::net::Network`] advances every node in lock-step half-byte
//! quanta and broadcasts every byte to every other node, which caps it at
//! a handful of motes. This module replaces the quanta with a *global
//! event queue*: a binary heap of per-mote next-wake times (the contract
//! is [`Machine::next_wake`] — next radio edge, timer event, or sleep
//! horizon). Idle motes cost nothing, so fleets of hundreds to thousands
//! of motes are feasible.
//!
//! # Conservative scheduling
//!
//! The scheduler is a conservative discrete-event loop whose lookahead is
//! the radio byte time: a byte put on the air at `t` reaches a receiver
//! at `t + RADIO_BYTE_CYCLES`, never earlier. Each iteration pops the
//! globally least-awake mote and grants it a window bounded by
//!
//! * `second + RADIO_BYTE_CYCLES` — no *other* mote can execute (and
//!   hence transmit) before `second`, the least wake time left in the
//!   heap, so nothing can arrive here earlier than one byte-time later;
//! * `wake + 2 * RADIO_BYTE_CYCLES` — anything this mote's *own*
//!   transmissions provoke needs one byte-time to reach a neighbour and
//!   one more for the earliest reply to come back.
//!
//! An arrival landing exactly on a window boundary is still processed
//! before the receiver's next instruction (machine event delivery uses
//! `t <= cycles`), which is the same instruction boundary the lockstep
//! reference delivers at — the two engines are byte-identical on lossless
//! full-mesh topologies, and `tests` below holds the reference to that.
//!
//! # Topology, loss, and churn
//!
//! Links are directed edges with per-link loss/duplication/reordering
//! probabilities. Every per-byte decision is drawn from a fresh
//! [`SplitMix64`] keyed on `(fleet seed, src, dst, byte index on the
//! link)` — never on timestamps — so two builds of the same app with
//! different instruction timing see identical drop patterns (the seeds
//! are *skew-free*), and runs shard across threads with serial≡parallel
//! byte-identity. A churn schedule powers motes off and on at fixed
//! cycles; a reboot constructs a fresh [`Machine`] and replays the
//! mote's [`MoteSetup`] for the new boot epoch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::bbcache::BlockCache;
use crate::devices::{Waveform, RADIO_BYTE_CYCLES};
use crate::faults::{self, FaultPlan, SplitMix64};
use crate::image::Image;
use crate::machine::{Machine, RunState};

/// Per-link delivery quality, in parts per million per byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkQuality {
    /// Probability (ppm) that a byte is dropped.
    pub loss_ppm: u32,
    /// Probability (ppm) that a byte is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) that a byte is delayed by 1–3 extra byte-times
    /// (which reorders it behind bytes sent after it).
    pub reorder_ppm: u32,
}

impl LinkQuality {
    /// A perfect link: every byte arrives exactly once, in order.
    pub const LOSSLESS: LinkQuality = LinkQuality {
        loss_ppm: 0,
        dup_ppm: 0,
        reorder_ppm: 0,
    };

    /// A link that only loses bytes (no duplication or reordering).
    pub fn lossy(loss_ppm: u32) -> LinkQuality {
        LinkQuality {
            loss_ppm,
            ..LinkQuality::LOSSLESS
        }
    }
}

/// The per-byte outcome drawn for one (link, byte index) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDecision {
    /// The byte is dropped entirely.
    pub drop: bool,
    /// Extra delay in cycles past the nominal one byte-time (a multiple
    /// of [`RADIO_BYTE_CYCLES`], so delays preserve the one-byte-time
    /// lower bound the conservative scheduler relies on).
    pub extra_delay: u64,
    /// The byte is delivered a second time one byte-time later.
    pub duplicate: bool,
}

/// Draws the delivery decision for byte number `index` on the directed
/// link `src → dst`. Pure: the outcome depends only on the arguments —
/// in particular *not* on transmission timestamps or any draw history —
/// which is what makes loss patterns identical across differently
/// optimized builds of the same application (skew-free seeds).
pub fn link_decision(
    seed: u64,
    src: u32,
    dst: u32,
    index: u64,
    quality: &LinkQuality,
) -> LinkDecision {
    let mut h = seed;
    for v in [
        src as u64 ^ 0xD6E8_FEB8_6659_FD93,
        dst as u64 ^ 0xA076_1D64_78BD_642F,
        index,
    ] {
        h = SplitMix64::new(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
    }
    let mut rng = SplitMix64::new(h);
    // Fixed draw order, every draw unconditional: the loss decision is
    // always the first draw, so it cannot skew when other knobs change.
    let drop = rng.below(1_000_000) < quality.loss_ppm as u64;
    let reorder = rng.below(1_000_000) < quality.reorder_ppm as u64;
    let delay_slots = 1 + rng.below(3);
    let duplicate = rng.below(1_000_000) < quality.dup_ppm as u64;
    LinkDecision {
        drop,
        extra_delay: if reorder {
            delay_slots * RADIO_BYTE_CYCLES
        } else {
            0
        },
        duplicate,
    }
}

/// One directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Receiving mote.
    pub dst: u32,
    /// Delivery quality of this link.
    pub quality: LinkQuality,
}

/// A directed radio topology over `n` motes.
#[derive(Debug, Clone)]
pub struct Topology {
    out: Vec<Vec<Link>>,
}

impl Topology {
    /// Every mote hears every other mote (the lockstep
    /// [`crate::net::Network`] model).
    pub fn full_mesh(n: usize, quality: LinkQuality) -> Topology {
        let out = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| Link {
                        dst: j as u32,
                        quality,
                    })
                    .collect()
            })
            .collect();
        Topology { out }
    }

    /// Unit-disk connectivity on a square grid: mote `i` sits at
    /// `(i % side, i / side)` with `side = ceil(sqrt(n))`, and hears
    /// every mote within squared distance `range2` (`range2 = 2` gives
    /// the 8-neighbour Moore radius, `range2 = 1` the 4-neighbour one).
    pub fn unit_disk_grid(n: usize, range2: u64, quality: LinkQuality) -> Topology {
        let side = (n as f64).sqrt().ceil() as u64;
        let pos = |i: usize| ((i as u64 % side) as i64, (i as u64 / side) as i64);
        let out = (0..n)
            .map(|i| {
                let (xi, yi) = pos(i);
                (0..n)
                    .filter(|&j| {
                        if j == i {
                            return false;
                        }
                        let (xj, yj) = pos(j);
                        let d2 = (xi - xj).pow(2) + (yi - yj).pow(2);
                        d2 as u64 <= range2
                    })
                    .map(|j| Link {
                        dst: j as u32,
                        quality,
                    })
                    .collect()
            })
            .collect();
        Topology { out }
    }

    /// An explicit directed edge list. Edges are sorted per source by
    /// destination; listing the same edge twice delivers every byte
    /// twice.
    pub fn from_edges(n: usize, edges: &[(u32, u32, LinkQuality)]) -> Topology {
        let mut out = vec![Vec::new(); n];
        for &(src, dst, quality) in edges {
            assert!(
                (src as usize) < n && (dst as usize) < n,
                "edge out of range"
            );
            out[src as usize].push(Link { dst, quality });
        }
        for links in &mut out {
            links.sort_by_key(|l| l.dst);
        }
        Topology { out }
    }

    /// Number of motes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Outgoing links of `src`.
    pub fn neighbors(&self, src: usize) -> &[Link] {
        &self.out[src]
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }
}

/// Per-mote boot configuration, replayed on every (re)boot: the churn
/// schedule may power a mote off and on, and each boot starts from a
/// fresh [`Machine`] configured from this.
#[derive(Debug, Clone, Default)]
pub struct MoteSetup {
    /// Sensor waveform driving the ADC.
    pub waveform: Option<Waveform>,
    /// Radio byte streams arriving from outside the fleet (e.g. base
    /// station beacons), as `(global cycle, bytes)`; bytes arrive one per
    /// [`RADIO_BYTE_CYCLES`] starting at the given cycle. Streams that
    /// start while the mote is powered off are lost.
    pub injections: Vec<(u64, Vec<u8>)>,
}

/// Aggregate fleet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Scheduler heap pops that granted a mote an execution window.
    pub pops: u64,
    /// Churn reboots (initial boots are not counted).
    pub reboots: u64,
    /// Bytes offered to the air by all motes.
    pub tx_bytes: u64,
    /// Byte deliveries scheduled into receivers (counting duplicates).
    pub delivered: u64,
    /// Bytes dropped by lossy links.
    pub dropped: u64,
    /// Extra deliveries from link duplication.
    pub duplicated: u64,
    /// Bytes delayed past their nominal arrival by link reordering.
    pub reordered: u64,
    /// Bytes that arrived while the receiver was powered off.
    pub dropped_offline: u64,
}

/// What one mote did, for equivalence checks and fleet campaigns. For a
/// churned mote this reflects the *most recent* boot (plus the full
/// cross-boot transmission log).
#[derive(Debug, Clone, PartialEq)]
pub struct MoteObservation {
    /// Final run state.
    pub state: RunState,
    /// Final fault, if any.
    pub fault: Option<crate::machine::Fault>,
    /// UART output of the current boot.
    pub uart: Vec<u8>,
    /// All transmitted bytes across boots, globally timestamped.
    pub radio: Vec<(u64, u8)>,
    /// LED transitions of the current boot.
    pub led_transitions: u64,
    /// Machine-local cycles of the current boot.
    pub cycles: u64,
    /// Awake cycles of the current boot.
    pub awake_cycles: u64,
    /// Instructions executed in the current boot.
    pub instr_count: u64,
}

struct Mote {
    machine: Machine,
    setup: MoteSetup,
    /// Image override for heterogeneous fleets (`None`: the fleet
    /// image). Reboots of this mote use it.
    image: Option<Image>,
    /// Global cycle at which the current boot started.
    epoch: u64,
    powered: bool,
    /// Next unconsumed entry of the mote's churn toggle list.
    toggle_idx: usize,
    /// `machine.radio_out` entries already collected by the scheduler.
    drained: usize,
    /// Cumulative bytes this mote has offered to the air (the per-link
    /// decision index).
    tx_index: u64,
    /// Deliveries addressed to a *future* boot, as `(global cycle, byte)`.
    inbox: BinaryHeap<Reverse<(u64, u8)>>,
    /// Cross-boot transmission log, globally timestamped.
    tx_log: Vec<(u64, u8)>,
    /// Awake/powered cycles accumulated over completed boots.
    awake_acc: u64,
    powered_acc: u64,
}

/// An event-driven network of M16 motes (see the module docs).
pub struct Fleet {
    topology: Topology,
    seed: u64,
    motes: Vec<Mote>,
    /// Per-mote sorted power toggle cycles: off, on, off, on, …
    /// (every mote starts powered).
    churn: Vec<Vec<u64>>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    image: Image,
    cache: Option<Arc<BlockCache>>,
    fault: Option<(usize, FaultPlan)>,
    fault_applied: bool,
    stats: FleetStats,
}

impl Fleet {
    /// Creates a fleet of identical motes running `image` over
    /// `topology`. `seed` drives every per-link delivery decision.
    pub fn new(image: &Image, topology: Topology, seed: u64) -> Fleet {
        let n = topology.node_count();
        let motes = (0..n)
            .map(|_| Mote {
                machine: Machine::new(image),
                setup: MoteSetup::default(),
                image: None,
                epoch: 0,
                powered: true,
                toggle_idx: 0,
                drained: 0,
                tx_index: 0,
                inbox: BinaryHeap::new(),
                tx_log: Vec::new(),
                awake_acc: 0,
                powered_acc: 0,
            })
            .collect();
        Fleet {
            topology,
            seed,
            motes,
            churn: vec![Vec::new(); n],
            heap: BinaryHeap::new(),
            image: image.clone(),
            cache: None,
            fault: None,
            fault_applied: false,
            stats: FleetStats::default(),
        }
    }

    /// Number of motes.
    pub fn node_count(&self) -> usize {
        self.motes.len()
    }

    /// Gives one mote a different image (heterogeneous fleets). Replaces
    /// the mote's machine with a fresh one, so call it before
    /// [`Fleet::set_setup`] and before the first `run`. The fleet-wide
    /// block cache does not apply to overridden motes (it is built for
    /// the fleet image).
    pub fn set_image(&mut self, mote: usize, image: &Image) {
        assert_eq!(
            self.motes[mote].machine.cycles, 0,
            "set_image must precede run"
        );
        self.motes[mote].machine = Machine::new(image);
        self.motes[mote].image = Some(image.clone());
    }

    /// Installs a mote's boot configuration and applies it to the
    /// current (fresh) machine. Must be called before the first `run`.
    pub fn set_setup(&mut self, mote: usize, setup: MoteSetup) {
        assert_eq!(
            self.motes[mote].machine.cycles, 0,
            "set_setup must precede run"
        );
        if let Some(w) = &setup.waveform {
            self.motes[mote].machine.set_waveform(w.clone());
        }
        for (at, bytes) in &setup.injections {
            self.motes[mote].machine.inject_rx_bytes(*at, bytes);
        }
        self.motes[mote].setup = setup;
    }

    /// Shares a basic-block cache (built for the fleet image) with every
    /// non-overridden machine, current and future boots (the translating
    /// engine's decode-once store).
    pub fn set_block_cache(&mut self, cache: Arc<BlockCache>) {
        for mote in &mut self.motes {
            if mote.image.is_none() {
                mote.machine.set_block_cache(cache.clone());
            }
        }
        self.cache = Some(cache);
    }

    /// Schedules a power cycle: the mote dies at `off_at` and, if
    /// `on_at` is given, reboots from scratch at that cycle. Cycles must
    /// be scheduled in increasing order, before the first `run`, and a
    /// mote powered off forever accepts no further cycles.
    pub fn schedule_power_cycle(&mut self, mote: usize, off_at: u64, on_at: Option<u64>) {
        let toggles = &mut self.churn[mote];
        assert_eq!(toggles.len() % 2, 0, "mote is already powered off forever");
        assert!(
            toggles.last().is_none_or(|&last| off_at > last),
            "power cycles must be scheduled in increasing order"
        );
        toggles.push(off_at);
        if let Some(on_at) = on_at {
            assert!(on_at > off_at, "power-on must follow power-off");
            toggles.push(on_at);
        }
    }

    /// Arms a network-level fault campaign: `plan` corrupts the victim
    /// mote's state when it reaches `plan.at_cycle` (global time), while
    /// every other mote runs untouched.
    pub fn set_fault(&mut self, victim: usize, plan: FaultPlan) {
        assert!(victim < self.motes.len());
        self.fault = Some((victim, plan));
        self.fault_applied = false;
    }

    /// The victim's fault plan, if armed.
    pub fn fault(&self) -> Option<(usize, FaultPlan)> {
        self.fault
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// The machine behind mote `m` (its most recent boot).
    pub fn machine(&self, m: usize) -> &Machine {
        &self.motes[m].machine
    }

    /// Everything mote `m` ever transmitted, globally timestamped.
    pub fn tx_log(&self, m: usize) -> &[(u64, u8)] {
        &self.motes[m].tx_log
    }

    /// Mote `m`'s observable behavior (see [`MoteObservation`]).
    pub fn observation(&self, m: usize) -> MoteObservation {
        let mote = &self.motes[m];
        MoteObservation {
            state: mote.machine.state,
            fault: mote.machine.fault.clone(),
            uart: mote.machine.uart_out.clone(),
            radio: mote.tx_log.clone(),
            led_transitions: mote.machine.devices.leds.transitions,
            cycles: mote.machine.cycles,
            awake_cycles: mote.machine.awake_cycles,
            instr_count: mote.machine.instr_count,
        }
    }

    /// Duty cycle of mote `m` across all boots, in percent.
    pub fn duty_cycle_percent(&self, m: usize) -> f64 {
        let mote = &self.motes[m];
        let (awake, total) = if mote.powered {
            (
                mote.awake_acc + mote.machine.awake_cycles,
                mote.powered_acc + mote.machine.cycles,
            )
        } else {
            (mote.awake_acc, mote.powered_acc)
        };
        if total == 0 {
            0.0
        } else {
            awake as f64 * 100.0 / total as f64
        }
    }

    /// Mean duty cycle across motes, in percent.
    pub fn mean_duty_cycle_percent(&self) -> f64 {
        if self.motes.is_empty() {
            return 0.0;
        }
        (0..self.motes.len())
            .map(|m| self.duty_cycle_percent(m))
            .sum::<f64>()
            / self.motes.len() as f64
    }

    /// Runs the fleet to `until` cycles of global time.
    pub fn run(&mut self, until: u64) {
        self.heap.clear();
        for id in 0..self.motes.len() {
            if let Some(w) = self.wake_of(id) {
                if w < until {
                    self.heap.push(Reverse((w, id as u32)));
                }
            }
        }
        while let Some(Reverse((wake, id))) = self.heap.pop() {
            if wake >= until {
                break;
            }
            let id = id as usize;
            // Lazy deletion: every mutation of a mote's state (an
            // advance, a delivery, a boot) is immediately followed by a
            // push of its new true wake, so the heap always holds an
            // entry exactly at each live mote's current wake. A popped
            // entry that no longer matches is therefore a dead
            // duplicate and is dropped — re-pushing it instead would
            // let duplicates survive forever and cost O(duplicates) on
            // every pop (quadratic in traffic).
            let cur = match self.wake_of(id) {
                Some(c) if c < until => c,
                _ => continue,
            };
            if cur != wake {
                continue;
            }
            self.stats.pops += 1;
            let second = match self.heap.peek() {
                Some(&Reverse((w, _))) => w,
                None => u64::MAX,
            };
            // The conservative window (see the module docs).
            let grant = until
                .min(second.saturating_add(RADIO_BYTE_CYCLES))
                .min(wake.saturating_add(2 * RADIO_BYTE_CYCLES));
            self.advance(id, grant);
            if let Some(w) = self.wake_of(id) {
                if w < until {
                    self.heap.push(Reverse((w, id as u32)));
                }
            }
        }
        self.heap.clear();
        // Final drain: every remaining wake is >= until, so no mote
        // executes an instruction (or transmits) before the horizon. In
        // mote order, fast-forward sleepers to `until` and settle any
        // churn toggle or pending fault cycle the mote slept past, so
        // final machine states match the lockstep reference exactly.
        for id in 0..self.motes.len() {
            for _ in 0..self.churn[id].len() + 3 {
                self.advance(id, until);
            }
        }
    }

    /// The mote's next wake in global time: the machine's own wake
    /// ([`Machine::next_wake`]) or its next power toggle, whichever is
    /// first; a powered-off mote wakes at its next power-on. `None`
    /// means nothing short of a radio delivery will ever wake it.
    fn wake_of(&self, id: usize) -> Option<u64> {
        let mote = &self.motes[id];
        let next_toggle = self.churn[id].get(mote.toggle_idx).copied();
        if !mote.powered {
            return next_toggle;
        }
        let machine = mote.machine.next_wake().map(|w| mote.epoch + w);
        match (machine, next_toggle) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advances mote `id` through one segment toward `grant`: a power-on
    /// boot, or an execution window capped at the next power-off /
    /// pending-fault cycle (the caps make the remaining segments new
    /// calls). Collects and schedules any bytes transmitted.
    fn advance(&mut self, id: usize, grant: u64) {
        if !self.motes[id].powered {
            let Some(&on_at) = self.churn[id].get(self.motes[id].toggle_idx) else {
                return;
            };
            if on_at >= grant {
                return;
            }
            self.motes[id].toggle_idx += 1;
            self.boot(id, on_at);
            return; // freshly booted: the scheduler re-derives its wake
        }
        let epoch = self.motes[id].epoch;
        let next_off = self.churn[id]
            .get(self.motes[id].toggle_idx)
            .copied()
            .unwrap_or(u64::MAX);
        let fault_at = match &self.fault {
            Some((victim, plan)) if *victim == id && !self.fault_applied => plan.at_cycle,
            _ => u64::MAX,
        };
        let cap = grant.min(next_off).min(fault_at);
        let local = cap.saturating_sub(epoch);
        let mote = &mut self.motes[id];
        if matches!(mote.machine.state, RunState::Running | RunState::Sleeping)
            && mote.machine.cycles < local
        {
            mote.machine.run(local);
        }
        let fresh: Vec<(u64, u8)> = mote.machine.radio_out[mote.drained..]
            .iter()
            .map(|&(t, b)| (epoch + t, b))
            .collect();
        mote.drained = mote.machine.radio_out.len();
        for (t, b) in fresh {
            self.schedule_tx(id, t, b);
        }
        let mote = &self.motes[id];
        // A halted or faulted machine idles to the cap; a live one may
        // overshoot it by the tail of its last instruction.
        let pos = if matches!(mote.machine.state, RunState::Halted | RunState::Faulted) {
            cap
        } else {
            epoch + mote.machine.cycles
        };
        if fault_at != u64::MAX && pos >= fault_at {
            let plan = self.fault.as_ref().expect("fault is armed").1;
            faults::apply(&mut self.motes[id].machine, &plan);
            self.fault_applied = true;
        }
        if next_off != u64::MAX && cap == next_off && pos >= next_off {
            self.power_off(id);
        }
    }

    /// Reboots mote `id` from scratch at global cycle `epoch`, replaying
    /// its setup and delivering any mail that arrived for this boot.
    fn boot(&mut self, id: usize, epoch: u64) {
        let image = self.motes[id].image.as_ref().unwrap_or(&self.image);
        let mut machine = Machine::new(image);
        if self.motes[id].image.is_none() {
            if let Some(cache) = &self.cache {
                machine.set_block_cache(cache.clone());
            }
        }
        let next_off = self.churn[id]
            .get(self.motes[id].toggle_idx)
            .copied()
            .unwrap_or(u64::MAX);
        let setup = &self.motes[id].setup;
        if let Some(w) = &setup.waveform {
            machine.set_waveform(w.clone());
        }
        for (at, bytes) in &setup.injections {
            if *at >= epoch && *at < next_off {
                machine.inject_rx_bytes(*at - epoch, bytes);
            }
        }
        let mote = &mut self.motes[id];
        mote.machine = machine;
        mote.epoch = epoch;
        mote.powered = true;
        mote.drained = 0;
        self.stats.reboots += 1;
        while let Some(&Reverse((at, byte))) = mote.inbox.peek() {
            if at < epoch {
                mote.inbox.pop(); // lost while powered off
                continue;
            }
            if at >= next_off {
                break; // a later boot's mail
            }
            mote.inbox.pop();
            mote.machine.inject_rx_bytes(at - epoch, &[byte]);
        }
    }

    /// Retires the current boot: accumulates its awake/powered cycles
    /// and marks the mote off. The stale machine stays readable until
    /// the next boot replaces it.
    fn power_off(&mut self, id: usize) {
        let mote = &mut self.motes[id];
        mote.awake_acc += mote.machine.awake_cycles;
        mote.powered_acc += mote.machine.cycles;
        mote.powered = false;
        mote.toggle_idx += 1;
    }

    /// Offers one transmitted byte to every outgoing link of `src`.
    fn schedule_tx(&mut self, src: usize, t: u64, byte: u8) {
        self.motes[src].tx_log.push((t, byte));
        self.stats.tx_bytes += 1;
        let index = self.motes[src].tx_index;
        self.motes[src].tx_index += 1;
        for k in 0..self.topology.neighbors(src).len() {
            let link = self.topology.neighbors(src)[k];
            let d = link_decision(self.seed, src as u32, link.dst, index, &link.quality);
            if d.drop {
                self.stats.dropped += 1;
                continue;
            }
            if d.extra_delay > 0 {
                self.stats.reordered += 1;
            }
            let at = t + RADIO_BYTE_CYCLES + d.extra_delay;
            self.deliver_byte(link.dst as usize, at, byte);
            if d.duplicate {
                self.stats.duplicated += 1;
                self.deliver_byte(link.dst as usize, at + RADIO_BYTE_CYCLES, byte);
            }
        }
    }

    /// Schedules one byte into a receiver at global cycle `at`: straight
    /// into the current machine when the arrival falls inside its boot,
    /// into the mote's inbox when it falls inside a future boot, and on
    /// the floor when the mote is powered off at that moment.
    fn deliver_byte(&mut self, dst: usize, at: u64, byte: u8) {
        let Some(boot_epoch) = self.boot_epoch_at(dst, at) else {
            self.stats.dropped_offline += 1;
            return;
        };
        let mote = &mut self.motes[dst];
        if mote.powered && mote.epoch == boot_epoch {
            mote.machine.inject_rx_bytes(at - mote.epoch, &[byte]);
            self.stats.delivered += 1;
            // The delivery may have pulled the receiver's wake earlier.
            if let Some(w) = self.wake_of(dst) {
                self.heap.push(Reverse((w, dst as u32)));
            }
        } else {
            mote.inbox.push(Reverse((at, byte)));
            self.stats.delivered += 1;
        }
    }

    /// The boot epoch covering global cycle `at` under the mote's static
    /// churn schedule, or `None` if the mote is powered off then. Boot
    /// intervals are half-open: `[power-on, power-off)`.
    fn boot_epoch_at(&self, id: usize, at: u64) -> Option<u64> {
        let mut on = true;
        let mut epoch = 0u64;
        for &t in &self.churn[id] {
            if at < t {
                break;
            }
            on = !on;
            if on {
                epoch = t;
            }
        }
        if on {
            Some(epoch)
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("motes", &self.motes.len())
            .field("edges", &self.topology.edge_count())
            .field("seed", &self.seed)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{RADIO_CTRL, RADIO_RX, RADIO_TX};
    use crate::image::{CodeFunction, Image, Profile};
    use crate::isa::{Instr, Width};
    use crate::net::Network;

    /// An image that transmits `count` bytes back-to-back (the radio
    /// ignores stores while busy, so a tight poll of RADIO_STATUS paces
    /// one byte per byte-time), then halts.
    fn tx_burst_image(count: usize, padding_nops: usize) -> Image {
        use crate::devices::RADIO_STATUS;
        use crate::isa::AluOp;
        let mut img = Image::new(Profile::mica2());
        let mut main = CodeFunction::new("main");
        let mut code = Vec::new();
        for i in 0..count {
            // while (RADIO_STATUS & 1) {}
            let poll = code.len();
            code.push(Instr::PushI(RADIO_STATUS as i64));
            code.push(Instr::Ld {
                width: Width::W8,
                signed: false,
            });
            code.push(Instr::PushI(1));
            code.push(Instr::Bin {
                op: AluOp::And,
                width: Width::W8,
                signed: false,
            });
            code.push(Instr::Jnz {
                target: poll as u32,
            });
            // Differently "compiled" builds pad between poll and store.
            for _ in 0..padding_nops {
                code.push(Instr::Nop);
            }
            code.push(Instr::PushI(0x40 + i as i64));
            code.push(Instr::PushI(RADIO_TX as i64));
            code.push(Instr::St { width: Width::W8 });
        }
        code.push(Instr::Halt);
        main.code = code;
        let e = img.add_function(main);
        img.entry = Some(e);
        img
    }

    /// An image whose RADIO_RX interrupt stores each received byte into
    /// a ring at 0x0200 and bumps a counter at 0x0300.
    fn rx_recorder_image() -> Image {
        use crate::isa::AluOp;
        let mut img = Image::new(Profile::mica2());
        let mut rx = CodeFunction::new("rx");
        rx.interrupt = Some(crate::vectors::RADIO_RX);
        rx.code = vec![
            // ram[0x200 + (count & 0x7f)] = RADIO_RX
            Instr::PushI(RADIO_RX as i64),
            Instr::Ld {
                width: Width::W8,
                signed: false,
            },
            Instr::PushI(0x0300),
            Instr::Ld {
                width: Width::W8,
                signed: false,
            },
            Instr::PushI(0x7F),
            Instr::Bin {
                op: AluOp::And,
                width: Width::W16,
                signed: false,
            },
            Instr::PushI(0x0200),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::St { width: Width::W8 },
            // count += 1
            Instr::PushI(0x0300),
            Instr::Ld {
                width: Width::W8,
                signed: false,
            },
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W8,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0300,
                width: Width::W8,
            },
            Instr::Reti,
        ];
        img.add_function(rx);
        let mut main = CodeFunction::new("main");
        main.code = vec![
            Instr::PushI(1),
            Instr::PushI(RADIO_CTRL as i64),
            Instr::St { width: Width::W16 },
            Instr::IrqEnable,
            Instr::Sleep,
            Instr::Jmp { target: 4 },
        ];
        let e = img.add_function(main);
        img.entry = Some(e);
        img
    }

    fn heterogeneous_fleet(images: &[&Image], topology: Topology, seed: u64) -> Fleet {
        let mut fleet = Fleet::new(images[0], topology, seed);
        for (i, img) in images.iter().enumerate().skip(1) {
            fleet.set_image(i, img);
        }
        fleet
    }

    /// Satellite: the existing 2-node lockstep scenario and the
    /// event-driven engine produce byte-identical machines on a lossless
    /// full mesh.
    #[test]
    fn matches_lockstep_on_byte_channel_scenario() {
        let (img_a, img_b) = crate::net::byte_channel_images();

        let mut net = Network::new(vec![Machine::new(&img_a), Machine::new(&img_b)]);
        net.run(10_000);

        let mut fleet = heterogeneous_fleet(
            &[&img_a, &img_b],
            Topology::full_mesh(2, LinkQuality::LOSSLESS),
            7,
        );
        fleet.run(10_000);

        assert_eq!(fleet.machine(1).ram_peek(0x0200), 0x5A);
        for i in 0..2 {
            let m_net = &net.nodes[i];
            let m_fleet = fleet.machine(i);
            assert_eq!(m_net.state, m_fleet.state, "mote {i} state");
            assert_eq!(m_net.cycles, m_fleet.cycles, "mote {i} cycles");
            assert_eq!(
                m_net.awake_cycles, m_fleet.awake_cycles,
                "mote {i} awake cycles"
            );
            assert_eq!(
                m_net.instr_count, m_fleet.instr_count,
                "mote {i} instructions"
            );
            assert_eq!(m_net.radio_out, m_fleet.radio_out, "mote {i} tx");
            assert_eq!(
                m_net.ram_bytes(),
                m_fleet.ram_bytes(),
                "mote {i} RAM diverged"
            );
        }
    }

    /// A lossless 3-mote burst fleet delivers every byte to every
    /// neighbour, twice under duplication, and not at all at 100% loss.
    #[test]
    fn link_quality_shapes_delivery() {
        let img_tx = tx_burst_image(8, 0);
        let img_rx = rx_recorder_image();
        let horizon = 60_000;

        let run = |quality: LinkQuality| {
            let mut fleet = heterogeneous_fleet(
                &[&img_tx, &img_rx, &img_rx],
                Topology::full_mesh(3, quality),
                0xFEED,
            );
            fleet.run(horizon);
            let stats = fleet.stats();
            let rx_counts = [
                fleet.machine(1).ram_peek(0x0300),
                fleet.machine(2).ram_peek(0x0300),
            ];
            (stats, rx_counts)
        };

        let (s, rx) = run(LinkQuality::LOSSLESS);
        assert_eq!(s.tx_bytes, 8);
        assert_eq!(rx, [8, 8]);
        assert_eq!((s.dropped, s.duplicated, s.reordered), (0, 0, 0));

        let (s, rx) = run(LinkQuality::lossy(1_000_000));
        assert_eq!(s.dropped, 16, "every byte dropped on both links");
        assert_eq!(rx, [0, 0]);

        let (s, rx) = run(LinkQuality {
            dup_ppm: 1_000_000,
            ..LinkQuality::LOSSLESS
        });
        assert_eq!(s.duplicated, 16);
        assert_eq!(rx, [16, 16]);
    }

    /// Skew-freedom: two "builds" of the same transmitter with different
    /// instruction timing see the identical per-link drop pattern, so
    /// the surviving byte sequence is the same.
    #[test]
    fn loss_pattern_is_independent_of_build_timing() {
        let received = |padding: usize| {
            let img_tx = tx_burst_image(24, padding);
            let img_rx = rx_recorder_image();
            let mut fleet = heterogeneous_fleet(
                &[&img_tx, &img_rx],
                Topology::full_mesh(2, LinkQuality::lossy(400_000)),
                0xA5A5,
            );
            fleet.run(120_000);
            let n = fleet.machine(1).ram_peek(0x0300) as usize;
            (0..n)
                .map(|i| fleet.machine(1).ram_peek(0x0200 + i as u16))
                .collect::<Vec<u8>>()
        };
        let fast = received(0);
        let slow = received(9);
        assert!(!fast.is_empty() && fast.len() < 24, "loss should bite");
        assert_eq!(fast, slow, "drop decisions skewed with build timing");
    }

    /// Churn: a receiver that powers off mid-transfer neither wedges the
    /// event queue nor hears bytes sent while it was dark; after its
    /// reboot it hears traffic again from a fresh machine.
    #[test]
    fn power_cycle_mid_transfer_does_not_wedge() {
        let img_tx = tx_burst_image(40, 0);
        let img_rx = rx_recorder_image();
        let mut fleet = heterogeneous_fleet(
            &[&img_tx, &img_rx],
            Topology::full_mesh(2, LinkQuality::LOSSLESS),
            1,
        );
        // The burst spans ~40 byte-times; kill the receiver inside it.
        fleet.schedule_power_cycle(1, 5_000, Some(20_000));
        fleet.run(120_000);

        let stats = fleet.stats();
        assert_eq!(stats.tx_bytes, 40, "transmitter unaffected by churn");
        assert_eq!(stats.reboots, 1);
        assert!(
            stats.dropped_offline > 0,
            "bytes sent into the dark window must be dropped"
        );
        let heard = fleet.machine(1).ram_peek(0x0300);
        assert!(
            heard > 0 && (heard as u64) < 40,
            "the rebooted receiver hears the tail of the burst, got {heard}"
        );
        // The reboot really was from scratch: the fresh machine's cycle
        // counter restarted at its boot epoch.
        assert_eq!(fleet.machine(1).cycles, 100_000);
        assert!(fleet.duty_cycle_percent(1) > 0.0);
    }

    /// A mote powered off forever goes quiet without stalling the rest.
    #[test]
    fn permanent_power_off_goes_quiet() {
        let img_tx = tx_burst_image(10, 0);
        let img_rx = rx_recorder_image();
        let mut fleet = heterogeneous_fleet(
            &[&img_tx, &img_rx],
            Topology::full_mesh(2, LinkQuality::LOSSLESS),
            1,
        );
        fleet.schedule_power_cycle(1, 2_000, None);
        fleet.run(50_000);
        assert_eq!(fleet.stats().tx_bytes, 10);
        assert_eq!(fleet.stats().reboots, 0);
        assert!(fleet.stats().dropped_offline > 0);
    }

    /// The same fleet run twice is byte-identical (determinism), and a
    /// different seed changes the loss pattern.
    #[test]
    fn runs_are_deterministic_and_seeded() {
        let img_tx = tx_burst_image(24, 0);
        let img_rx = rx_recorder_image();
        let run = |seed: u64| {
            let mut fleet = heterogeneous_fleet(
                &[&img_tx, &img_rx, &img_rx],
                Topology::unit_disk_grid(3, 2, LinkQuality::lossy(300_000)),
                seed,
            );
            fleet.run(120_000);
            let heard = |m: usize| {
                let n = fleet.machine(m).ram_peek(0x0300) as usize;
                (0..n)
                    .map(|i| fleet.machine(m).ram_peek(0x0200 + i as u16))
                    .collect::<Vec<u8>>()
            };
            (
                fleet.stats(),
                fleet.observation(0),
                fleet.observation(1),
                fleet.observation(2),
                heard(1),
                heard(2),
            )
        };
        assert_eq!(run(42), run(42));
        let (a, b) = (run(42), run(43));
        assert!(
            (a.4, a.5) != (b.4, b.5),
            "seed must steer which bytes survive the lossy links"
        );
    }

    /// Topology constructors produce the expected edge sets.
    #[test]
    fn topology_shapes() {
        let mesh = Topology::full_mesh(4, LinkQuality::LOSSLESS);
        assert_eq!(mesh.edge_count(), 12);

        // 3×3 grid, 4-neighbour: corner motes have 2 out-links, the
        // centre has 4.
        let grid = Topology::unit_disk_grid(9, 1, LinkQuality::LOSSLESS);
        assert_eq!(grid.neighbors(0).len(), 2);
        assert_eq!(grid.neighbors(4).len(), 4);
        // 8-neighbour radius.
        let moore = Topology::unit_disk_grid(9, 2, LinkQuality::LOSSLESS);
        assert_eq!(moore.neighbors(4).len(), 8);

        let ring = Topology::from_edges(
            3,
            &[
                (0, 1, LinkQuality::LOSSLESS),
                (1, 2, LinkQuality::LOSSLESS),
                (2, 0, LinkQuality::LOSSLESS),
            ],
        );
        assert_eq!(ring.edge_count(), 3);
        assert_eq!(
            ring.neighbors(0),
            &[Link {
                dst: 1,
                quality: LinkQuality::LOSSLESS
            }]
        );
    }

    /// `link_decision` is pure in its key and its loss bit ignores the
    /// other quality knobs (no draw-order skew).
    #[test]
    fn link_decision_is_pure_and_unskewed() {
        let q1 = LinkQuality {
            loss_ppm: 250_000,
            dup_ppm: 0,
            reorder_ppm: 0,
        };
        let q2 = LinkQuality {
            loss_ppm: 250_000,
            dup_ppm: 900_000,
            reorder_ppm: 900_000,
        };
        for index in 0..500 {
            let a = link_decision(99, 3, 7, index, &q1);
            let b = link_decision(99, 3, 7, index, &q1);
            assert_eq!(a, b);
            let c = link_decision(99, 3, 7, index, &q2);
            assert_eq!(a.drop, c.drop, "loss decision skewed by dup/reorder knobs");
        }
    }
}
