//! Linked program images: what the backend produces and the machine runs.

use std::collections::BTreeMap;

use crate::isa::{Instr, Width};
use crate::NUM_VECTORS;

/// Hardware profile of a node (the paper's Mica2 and TelosB platforms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Human-readable platform name.
    pub name: String,
    /// SRAM size in bytes (data + stack).
    pub sram_size: u32,
    /// Flash size in bytes (code + read-only data + data initializers).
    pub flash_size: u32,
    /// CPU clock in Hz (cycles per second).
    pub clock_hz: u64,
}

impl Profile {
    /// The Mica2-class profile: 4 KB SRAM, 128 KB flash.
    pub fn mica2() -> Profile {
        Profile {
            name: "mica2".into(),
            sram_size: 4 * 1024,
            flash_size: 128 * 1024,
            clock_hz: 4_000_000,
        }
    }

    /// The TelosB-class profile: 10 KB SRAM, 48 KB flash.
    pub fn telosb() -> Profile {
        Profile {
            name: "telosb".into(),
            sram_size: 10 * 1024,
            flash_size: 48 * 1024,
            clock_hz: 4_000_000,
        }
    }

    /// First SRAM address (the null page below it always faults).
    pub fn sram_base(&self) -> u16 {
        0x0100
    }

    /// One past the last SRAM address.
    pub fn sram_end(&self) -> u16 {
        (0x0100 + self.sram_size).min(0x8000) as u16
    }
}

/// How a parameter value is stored into its frame slot by `Call`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// An integer or thin pointer of the given width.
    Scalar(Width),
    /// A CCured fat pointer (2 or 3 words).
    Fat {
        /// SEQ (3 words) vs FSEQ (2 words).
        seq: bool,
    },
}

/// A function parameter's frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSlot {
    /// Byte offset of the slot within the frame.
    pub off: u16,
    /// Slot layout.
    pub kind: SlotKind,
}

impl ParamSlot {
    /// A scalar slot (convenience constructor).
    pub fn scalar(off: u16, width: Width) -> ParamSlot {
        ParamSlot {
            off,
            kind: SlotKind::Scalar(width),
        }
    }
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeFunction {
    /// Name (for diagnostics and the check census).
    pub name: String,
    /// Instructions.
    pub code: Vec<Instr>,
    /// Frame size in bytes (parameters + locals + temps).
    pub frame_size: u16,
    /// Parameter slots in declaration order (`Call` pops arguments into
    /// these, last argument popped first).
    pub params: Vec<ParamSlot>,
    /// Interrupt vector this function serves, if any.
    pub interrupt: Option<u8>,
}

impl CodeFunction {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>) -> CodeFunction {
        CodeFunction {
            name: name.into(),
            code: Vec::new(),
            frame_size: 0,
            params: Vec::new(),
            interrupt: None,
        }
    }

    /// Total encoded size of the function body in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.code.iter().map(Instr::size_bytes).sum()
    }
}

/// A linked, runnable program image.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Target hardware profile.
    pub profile: Profile,
    /// Function table.
    pub functions: Vec<CodeFunction>,
    /// Index of `main`.
    pub entry: Option<u32>,
    /// Interrupt vector table: function index per vector.
    pub vectors: [Option<u32>; NUM_VECTORS],
    /// SRAM initialization records (`.data`): the startup code copies
    /// these from flash, so their bytes count against *both* flash and
    /// SRAM budgets.
    pub data_init: Vec<(u16, Vec<u8>)>,
    /// Read-only data placed in the flash window (`.rodata`).
    pub rodata: Vec<(u16, Vec<u8>)>,
    /// One past the highest SRAM address used by globals (static data
    /// extent; the call stack grows down from the top of SRAM).
    pub static_top: u16,
    /// Total static data (SRAM) bytes occupied by globals.
    pub static_bytes: u32,
    /// Host-side FLID table: failure id → human-readable message. This is
    /// the error-message *decompression* table of §2 — it costs nothing on
    /// the node.
    pub flid_table: BTreeMap<u16, String>,
    /// Symbol table: global variable name → placed address (debugging and
    /// test assertions; costs nothing on the node).
    pub symbols: BTreeMap<String, u16>,
}

impl Image {
    /// Creates an empty image for `profile`.
    pub fn new(profile: Profile) -> Image {
        let static_top = profile.sram_base();
        Image {
            profile,
            functions: Vec::new(),
            entry: None,
            vectors: [None; NUM_VECTORS],
            data_init: Vec::new(),
            rodata: Vec::new(),
            static_top,
            static_bytes: 0,
            flid_table: BTreeMap::new(),
            symbols: BTreeMap::new(),
        }
    }

    /// The placed address of a global variable, if known.
    pub fn find_global_addr(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// Adds a function, wiring its interrupt vector if declared, and
    /// returns its index.
    pub fn add_function(&mut self, f: CodeFunction) -> u32 {
        let idx = self.functions.len() as u32;
        if let Some(v) = f.interrupt {
            self.vectors[v as usize] = Some(idx);
        }
        self.functions.push(f);
        idx
    }

    /// Code bytes (text segment only).
    pub fn code_bytes(&self) -> u32 {
        self.functions.iter().map(CodeFunction::size_bytes).sum()
    }

    /// Total flash usage: code + vector table + read-only data + the
    /// flash copies of SRAM initializers.
    pub fn flash_bytes(&self) -> u32 {
        let rodata: usize = self.rodata.iter().map(|(_, b)| b.len()).sum();
        let datainit: usize = self.data_init.iter().map(|(_, b)| b.len()).sum();
        self.code_bytes() + (NUM_VECTORS as u32) * 2 + rodata as u32 + datainit as u32
    }

    /// Static SRAM usage of globals (the paper's "static data size").
    pub fn sram_bytes(&self) -> u32 {
        self.static_bytes
    }

    /// Counts the distinct FLIDs that survive in the *code* — the paper's
    /// Figure 2 metric (checks whose failure handler is still reachable).
    pub fn surviving_checks(&self) -> usize {
        let mut flids = std::collections::BTreeSet::new();
        for f in &self.functions {
            for i in &f.code {
                if let Instr::Trap { flid } = i {
                    flids.insert(*flid);
                }
            }
        }
        flids.len()
    }

    /// Looks up a function index by name.
    pub fn find_function(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::AluOp;

    #[test]
    fn profiles_differ() {
        let m = Profile::mica2();
        let t = Profile::telosb();
        assert!(t.sram_size > m.sram_size);
        assert!(m.flash_size > t.flash_size);
        assert_eq!(m.sram_base(), 0x0100);
        assert_eq!(m.sram_end(), 0x1100);
    }

    #[test]
    fn image_size_accounting() {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("f");
        f.code = vec![
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::Ret,
        ];
        img.add_function(f);
        img.rodata.push((0x8000, vec![0; 10]));
        img.data_init.push((0x0100, vec![1, 2]));
        assert_eq!(img.code_bytes(), 2 + 1 + 1);
        assert_eq!(img.flash_bytes(), 4 + 16 + 10 + 2);
    }

    #[test]
    fn surviving_checks_counts_distinct_flids() {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("f");
        f.code = vec![
            Instr::Trap { flid: 1 },
            Instr::Trap { flid: 1 },
            Instr::Trap { flid: 2 },
        ];
        img.add_function(f);
        assert_eq!(img.surviving_checks(), 2);
    }

    #[test]
    fn vectors_wired_on_add() {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("tick");
        f.interrupt = Some(crate::vectors::TIMER0);
        let idx = img.add_function(f);
        assert_eq!(img.vectors[0], Some(idx));
    }
}
