//! The M16 instruction set.
//!
//! M16 is a stack machine: instructions pop operands from an evaluation
//! stack and push results. Each instruction has a defined **encoded size in
//! bytes** (the code-size metric counts these, exactly as `avr-size` counts
//! AVR flash bytes) and a **cycle cost** (the duty-cycle metric counts
//! these, like Avrora counts AVR cycles). The costs are loosely calibrated
//! to an 8/16-bit MCU: memory touches cost more than register ALU work,
//! 32-bit operations cost roughly twice 16-bit ones, multiplication and
//! division are expensive.

/// Operand width of a memory access or ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8 bits.
    W8,
    /// 16 bits.
    W16,
    /// 32 bits.
    W32,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
        }
    }

    /// Wraps `v` to this width with the given signedness.
    #[inline]
    pub fn wrap(self, v: i64, signed: bool) -> i64 {
        match (self, signed) {
            (Width::W8, false) => v as u8 as i64,
            (Width::W8, true) => v as i8 as i64,
            (Width::W16, false) => v as u16 as i64,
            (Width::W16, true) => v as i16 as i64,
            (Width::W32, false) => v as u32 as i64,
            (Width::W32, true) => v as i32 as i64,
        }
    }

    /// Number of 16-bit machine words (cycle-cost scale factor).
    fn words(self) -> u64 {
        match self {
            Width::W8 | Width::W16 => 1,
            Width::W32 => 2,
        }
    }
}

/// ALU operations for [`Instr::Bin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (faults on zero divisor).
    Div,
    /// Remainder (faults on zero divisor).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic when signed).
    Shr,
    /// Equality (pushes 0/1).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (signedness from the instruction).
    Lt,
    /// Less-or-equal.
    Le,
}

/// Number of 16-bit words in a fat pointer representation.
fn fat_words(seq: bool) -> u64 {
    if seq {
        3
    } else {
        2
    }
}

/// Byte size of a fat pointer in memory (public for the backend).
pub fn fat_bytes(seq: bool) -> u16 {
    if seq {
        6
    } else {
        4
    }
}

/// Packs fat-pointer parts into one evaluation-stack cell.
pub fn fat_pack(val: u16, base: u16, end: u16) -> i64 {
    (val as i64) | ((end as i64) << 16) | ((base as i64) << 32)
}

/// Extracts `(val, base, end)` from a packed fat-pointer cell.
pub fn fat_unpack(cell: i64) -> (u16, u16, u16) {
    (cell as u16, (cell >> 32) as u16, (cell >> 16) as u16)
}

/// Unary ALU operations for [`Instr::Un`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnAluOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not (pushes 0/1).
    Not,
}

/// One M16 instruction.
///
/// Branch targets are indices into the owning function's instruction list
/// (resolved by the code generator; the encoding model charges 2 bytes for
/// a target, like an AVR relative branch pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push an immediate constant.
    PushI(i64),
    /// Push the value of a frame slot at byte offset `off`.
    LdLocal {
        /// Byte offset within the frame.
        off: u16,
        /// Access width.
        width: Width,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Pop a value into a frame slot.
    StLocal {
        /// Byte offset within the frame.
        off: u16,
        /// Access width.
        width: Width,
    },
    /// Push the RAM address of a frame slot (`FP + off`).
    AddrLocal {
        /// Byte offset within the frame.
        off: u16,
    },
    /// Push the value at an absolute address (globals).
    LdGlobal {
        /// Absolute address.
        addr: u16,
        /// Access width.
        width: Width,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Pop a value into an absolute address.
    StGlobal {
        /// Absolute address.
        addr: u16,
        /// Access width.
        width: Width,
    },
    /// Pop an address, push the value at it.
    Ld {
        /// Access width.
        width: Width,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Pop an address, pop a value, store it.
    St {
        /// Access width.
        width: Width,
    },
    /// Pop two operands, push the result (wrapped to `width`).
    Bin {
        /// Operation.
        op: AluOp,
        /// Result/operand width.
        width: Width,
        /// Operand signedness (affects `Div`, `Mod`, `Shr`, `Lt`, `Le`).
        signed: bool,
    },
    /// Pop one operand, push the result.
    Un {
        /// Operation.
        op: UnAluOp,
        /// Operand width.
        width: Width,
    },
    /// Convert the top of stack to `width`/`signed` (an explicit cast).
    Wrap {
        /// Target width.
        width: Width,
        /// Target signedness.
        signed: bool,
    },
    /// Unconditional jump to instruction index `target`.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// Pop a condition; jump when it is zero.
    Jz {
        /// Target instruction index.
        target: u32,
    },
    /// Pop a condition; jump when it is non-zero.
    Jnz {
        /// Target instruction index.
        target: u32,
    },
    /// Call function `func` (index into the image's function table). The
    /// callee's declared parameters are popped from the evaluation stack
    /// into its frame, last argument on top.
    Call {
        /// Callee function index.
        func: u32,
    },
    /// Return from the current function (return value, if any, stays on
    /// the evaluation stack).
    Ret,
    /// Return from an interrupt handler and re-enable interrupts.
    Reti,
    /// Safety-check failure: record the FLID and halt (the Safe TinyOS
    /// failure handler).
    Trap {
        /// Failure location identifier.
        flid: u16,
    },
    /// Stop the machine (end of `main`).
    Halt,
    /// Enter sleep mode until an enabled interrupt pends.
    Sleep,
    /// Push the IRQ-enable flag and disable interrupts (`in` + `cli`).
    IrqSave,
    /// Pop a saved IRQ-enable flag and restore it.
    IrqRestore,
    /// Enable interrupts (`sei`).
    IrqEnable,
    /// Disable interrupts (`cli`).
    IrqDisable,
    /// Pop source and destination addresses (dst on top) and copy `bytes`
    /// bytes (struct assignment).
    MemCpy {
        /// Number of bytes to copy.
        bytes: u16,
    },
    /// Discard the top of the evaluation stack.
    Pop,
    /// Duplicate the top of the evaluation stack.
    Dup,
    /// No operation (alignment/debugging).
    Nop,
    // ----- CCured fat-pointer support -----
    //
    // A fat pointer occupies one evaluation-stack cell, packed as
    // `val | end << 16 | base << 32`; in memory it occupies 2 (FSEQ:
    // val, end) or 3 (SEQ: val, end, base) little-endian words. On a real
    // AVR these operations are short multi-instruction sequences; the size
    // and cycle charges below reflect that.
    /// Pop an address; push the fat pointer stored there.
    LdFat {
        /// `true` for SEQ (3 words), `false` for FSEQ (2 words).
        seq: bool,
    },
    /// Pop an address, pop a fat pointer, store it there.
    StFat {
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Push a fat pointer from a frame slot.
    LdLocalFat {
        /// Byte offset within the frame.
        off: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Pop a fat pointer into a frame slot.
    StLocalFat {
        /// Byte offset within the frame.
        off: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Push a fat pointer from an absolute address.
    LdGlobalFat {
        /// Absolute address.
        addr: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Pop a fat pointer into an absolute address.
    StGlobalFat {
        /// Absolute address.
        addr: u16,
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Build a fat pointer: pops `end`, then (SEQ only) `base`, then `val`.
    MkFat {
        /// SEQ vs FSEQ layout.
        seq: bool,
    },
    /// Pop a fat pointer; push its 16-bit value part.
    FatVal,
    /// Pop a fat pointer; push its upper bound.
    FatEnd,
    /// Pop a fat pointer; push its lower bound.
    FatBase,
    /// Pop a byte delta, pop a fat pointer; push the fat pointer with
    /// `val` advanced by the delta (bounds unchanged).
    FatAdd,
}

impl Instr {
    /// Encoded size in bytes under the M16 encoding model.
    ///
    /// Immediates are charged at the smallest of 1/2/4 bytes that holds
    /// them; addresses and branch targets are 2 bytes; everything has a
    /// 1-byte opcode.
    pub fn size_bytes(&self) -> u32 {
        match self {
            Instr::PushI(v) => {
                1 + if (-128..=127).contains(v) {
                    1
                } else if (-32768..=65535).contains(v) {
                    2
                } else {
                    4
                }
            }
            Instr::LdLocal { off, .. } | Instr::StLocal { off, .. } | Instr::AddrLocal { off } => {
                1 + if *off <= 255 { 1 } else { 2 }
            }
            Instr::LdGlobal { .. } | Instr::StGlobal { .. } => 3,
            Instr::Ld { .. } | Instr::St { .. } => 1,
            Instr::Bin { .. } | Instr::Un { .. } | Instr::Wrap { .. } => 1,
            Instr::Jmp { .. } | Instr::Jz { .. } | Instr::Jnz { .. } => 3,
            Instr::Call { .. } => 3,
            Instr::Ret | Instr::Reti => 1,
            Instr::Trap { .. } => 3,
            Instr::Halt | Instr::Sleep => 1,
            Instr::IrqSave | Instr::IrqRestore | Instr::IrqEnable | Instr::IrqDisable => 1,
            Instr::MemCpy { .. } => 3,
            Instr::Pop | Instr::Dup | Instr::Nop => 1,
            Instr::LdFat { .. } | Instr::StFat { .. } => 2,
            Instr::LdLocalFat { off, .. } | Instr::StLocalFat { off, .. } => {
                2 + if *off <= 255 { 1 } else { 2 }
            }
            Instr::LdGlobalFat { .. } | Instr::StGlobalFat { .. } => 4,
            Instr::MkFat { .. } => 2,
            Instr::FatVal | Instr::FatEnd | Instr::FatBase => 1,
            Instr::FatAdd => 2,
        }
    }

    /// Cycle cost under the M16 timing model. Branches are charged their
    /// taken cost; `Call`/`Ret` include frame setup; `MemCpy` is charged
    /// per word copied; `Sleep` itself is cheap (the sleeping time is
    /// accounted separately by the machine).
    pub fn cycles(&self) -> u64 {
        match self {
            Instr::PushI(_) => 1,
            Instr::LdLocal { width, .. } | Instr::StLocal { width, .. } => 1 + width.words(),
            Instr::AddrLocal { .. } => 1,
            Instr::LdGlobal { width, .. } | Instr::StGlobal { width, .. } => 1 + width.words(),
            Instr::Ld { width, .. } | Instr::St { width } => 1 + width.words(),
            Instr::Bin { op, width, .. } => match op {
                AluOp::Mul => 2 * width.words() + 2,
                AluOp::Div | AluOp::Mod => 10 * width.words() + 10,
                _ => width.words(),
            },
            Instr::Un { width, .. } => width.words(),
            Instr::Wrap { .. } => 1,
            Instr::Jmp { .. } | Instr::Jz { .. } | Instr::Jnz { .. } => 2,
            Instr::Call { .. } => 4,
            Instr::Ret | Instr::Reti => 4,
            Instr::Trap { .. } => 1,
            Instr::Halt => 1,
            Instr::Sleep => 1,
            Instr::IrqSave | Instr::IrqRestore => 1,
            Instr::IrqEnable | Instr::IrqDisable => 1,
            Instr::MemCpy { bytes } => 2 + (*bytes as u64).div_ceil(2) * 2,
            Instr::Pop | Instr::Dup | Instr::Nop => 1,
            Instr::LdFat { seq } | Instr::StFat { seq } => 1 + fat_words(*seq),
            Instr::LdLocalFat { seq, .. } | Instr::StLocalFat { seq, .. } => 1 + fat_words(*seq),
            Instr::LdGlobalFat { seq, .. } | Instr::StGlobalFat { seq, .. } => 1 + fat_words(*seq),
            Instr::MkFat { seq } => fat_words(*seq),
            Instr::FatVal | Instr::FatEnd | Instr::FatBase => 1,
            Instr::FatAdd => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_wrap() {
        assert_eq!(Width::W8.wrap(256, false), 0);
        assert_eq!(Width::W8.wrap(255, true), -1);
        assert_eq!(Width::W16.wrap(0x1_0005, false), 5);
        assert_eq!(Width::W32.wrap(-1, false), 0xFFFF_FFFF);
    }

    #[test]
    fn immediate_size_scales() {
        assert_eq!(Instr::PushI(7).size_bytes(), 2);
        assert_eq!(Instr::PushI(300).size_bytes(), 3);
        assert_eq!(Instr::PushI(70_000).size_bytes(), 5);
        assert_eq!(Instr::PushI(-5).size_bytes(), 2);
    }

    #[test]
    fn costs_reflect_width() {
        let add16 = Instr::Bin {
            op: AluOp::Add,
            width: Width::W16,
            signed: false,
        };
        let add32 = Instr::Bin {
            op: AluOp::Add,
            width: Width::W32,
            signed: false,
        };
        assert!(add32.cycles() > add16.cycles());
        let div = Instr::Bin {
            op: AluOp::Div,
            width: Width::W16,
            signed: false,
        };
        assert!(div.cycles() >= 20);
    }

    #[test]
    fn memcpy_cost_scales_with_size() {
        assert!(Instr::MemCpy { bytes: 32 }.cycles() > Instr::MemCpy { bytes: 4 }.cycles());
    }
}
