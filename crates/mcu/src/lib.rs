//! M16: a cycle-counting 16-bit microcontroller simulator.
//!
//! This crate is the reproduction's substitute for the Atmel AVR (Mica2) /
//! TI MSP430 (TelosB) hardware and the Avrora simulator the paper measures
//! on. It provides:
//!
//! * [`isa`] — a compact stack-machine instruction set with a documented
//!   byte-size and cycle cost per instruction (code-size and duty-cycle
//!   metrics come straight from these tables),
//! * [`image`] — linked program images: code, initialized data, read-only
//!   data in the flash window, interrupt vectors, and the host-side FLID
//!   error-message table,
//! * [`machine`] — the machine model: evaluation stack, RAM call frames,
//!   interrupts, sleep/wake accounting, and safety-trap handling,
//! * [`engine`] + [`bbcache`] — the two execution engines behind
//!   [`Machine::run`]: the faithful per-instruction interpreter and a
//!   basic-block translation engine (decode once, superinstruction
//!   fusion, faithful fallback at every observable boundary) selected
//!   via `STOS_ENGINE=interp|bt` — byte-identical observables, ≥10×
//!   the cycles/sec,
//! * [`devices`] — memory-mapped timer, ADC, byte radio, UART, and LEDs,
//! * [`net`] — a shared broadcast radio channel for multi-node simulations
//!   (the Avrora "network of motes" role),
//! * [`fleet`] — the fleet-scale event-driven network simulator: a global
//!   event queue over per-mote wake times, directed lossy topologies,
//!   node churn, and network-level fault injection (hundreds to
//!   thousands of motes; the lockstep [`net`] stays as the byte-exact
//!   reference model),
//! * [`faults`] — deterministic fault injection: seeded corruption plans
//!   (RAM bit flips, wild pointer words, register upsets) applied to a
//!   live machine, the substrate of the detection-rate campaigns.
//!
//! # Memory map
//!
//! | Range             | Meaning                                      |
//! |-------------------|----------------------------------------------|
//! | `0x0000..0x0100`  | reserved (null page — access faults)         |
//! | `0x0100..SRAM_END`| SRAM: globals grow up, call stack grows down |
//! | `0x8000..0xF000`  | flash window (read-only data)                |
//! | `0xF000..0xF100`  | memory-mapped device registers               |
//!
//! # Example
//!
//! ```
//! use mcu::{Image, Machine, Profile};
//! use mcu::isa::{AluOp, Instr, Width};
//! use mcu::image::CodeFunction;
//!
//! // A program that computes 2 + 3 into the LED register and halts.
//! let mut f = CodeFunction::new("main");
//! f.code = vec![
//!     Instr::PushI(2),
//!     Instr::PushI(3),
//!     Instr::Bin { op: AluOp::Add, width: Width::W8, signed: false },
//!     Instr::PushI(mcu::devices::LED_REG as i64),
//!     Instr::St { width: Width::W8 },
//!     Instr::Halt,
//! ];
//! let mut image = Image::new(Profile::mica2());
//! let main = image.add_function(f);
//! image.entry = Some(main);
//! let mut m = Machine::new(&image);
//! m.run(1_000);
//! assert_eq!(m.devices.leds.value, 5);
//! ```

pub mod bbcache;
pub mod devices;
pub mod engine;
pub mod faults;
pub mod fleet;
pub mod image;
pub mod isa;
pub mod machine;
pub mod net;

pub use bbcache::{BlockCache, CacheStats};
pub use engine::Engine;
pub use faults::{FaultKind, FaultPlan};
pub use fleet::{Fleet, FleetStats, LinkQuality, MoteObservation, MoteSetup, Topology};
pub use image::{CodeFunction, Image, Profile};
pub use machine::{Fault, Machine, RunState, TornWatch};

/// Number of interrupt vectors on the M16.
pub const NUM_VECTORS: usize = 8;

/// Vector numbers (must stay in sync with `tcil::VECTORS`).
pub mod vectors {
    /// Timer 0 compare match.
    pub const TIMER0: u8 = 0;
    /// ADC conversion complete.
    pub const ADC: u8 = 1;
    /// Radio byte received.
    pub const RADIO_RX: u8 = 2;
    /// Radio byte transmitted.
    pub const RADIO_TX: u8 = 3;
    /// UART byte transmitted.
    pub const UART: u8 = 4;
    /// Timer 1 compare match.
    pub const TIMER1: u8 = 5;
}
