//! The M16 interpreter: instruction execution, interrupts, sleep/wake
//! accounting, and device event scheduling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::devices::*;
use crate::image::Image;
use crate::isa::{AluOp, Instr, UnAluOp, Width};

/// Why a machine stopped (or misbehaved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A Safe TinyOS dynamic check failed; carries the FLID.
    SafetyTrap(u16),
    /// Access to an unmapped or reserved address (includes null-page
    /// dereferences).
    MemFault(u16),
    /// Write to the read-only flash window.
    IllegalWrite(u16),
    /// Integer division by zero.
    DivZero,
    /// The call stack collided with static data.
    StackOverflow,
    /// `__sleep()` executed with interrupts disabled and none pending —
    /// the node can never wake.
    DeadSleep,
    /// Malformed code (backend bug): evaluation stack underflow, bad
    /// function index, or fall off the end of a function. Carries a
    /// message naming the offending site.
    BadCode(String),
}

/// Execution state of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Executing instructions.
    Running,
    /// In sleep mode, waiting for an interrupt.
    Sleeping,
    /// `main` returned or `Halt` executed.
    Halted,
    /// Stopped by a [`Fault`].
    Faulted,
}

#[derive(Debug, Clone)]
pub(crate) struct Frame {
    caller_func: u32,
    caller_pc: u32,
    caller_fp: u16,
    callee_frame_size: u16,
    is_irq: bool,
}

/// Size of the machine's address space in bytes.
pub(crate) const RAM_BYTES: usize = 0x1_0000;

/// Maximum number of `Call` arguments popped without a heap allocation.
const INLINE_ARGS: usize = 8;

/// Cycles charged for interrupt entry (vectoring + register save).
const IRQ_ENTRY_CYCLES: u64 = 8;

/// An armed torn-16-bit-update watchpoint (see
/// [`crate::faults::FaultKind::TornUpdate16`]).
///
/// The M16 ISA moves a 16-bit word in one instruction, but the hardware
/// it models (the Mica2's AVR) crosses an 8-bit bus twice per access —
/// an interrupt arriving between the two transfers leaves a store
/// half-written, or hands a load a half-updated value. The watchpoint
/// reproduces exactly that hazard window: it counts 16-bit accesses
/// (loads and stores in one event stream) to `addr` executed **while
/// interrupts are enabled** — accesses inside an `atomic` section run
/// with the IRQ flag clear and are mechanically immune — and on the
/// `nth` such access XORs `mask` into one byte of the word: into RAM for
/// a store (persistent, as if a handler clobbered the variable
/// mid-update), into the in-flight value for a load (transient, as if
/// the variable changed between the two read transfers). Keyed on the
/// logical access-event count, not a cycle number, so the same plan is
/// comparable across differently optimized builds of one program (the
/// skew-free technique the differential oracle uses for boot-state
/// flips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWatch {
    /// Watched word address (a 16-bit global's placement).
    pub addr: u16,
    /// Which IRQ-enabled 16-bit store to tear (1-based).
    pub nth: u32,
    /// XOR mask applied to the chosen byte.
    pub mask: u8,
    /// Corrupt the high byte (`addr + 1`) instead of the low byte.
    pub hi: bool,
    /// IRQ-enabled 16-bit stores to `addr` seen so far.
    pub seen: u32,
    /// Whether the tear has been applied.
    pub fired: bool,
}

/// A simulated M16 node.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) img: Image,
    /// Fixed-size address space: indexing with a `u16`-derived offset
    /// needs no bounds re-check in either engine.
    pub(crate) ram: Box<[u8; RAM_BYTES]>,
    pub(crate) cur_func: u32,
    pub(crate) pc: u32,
    pub(crate) fp: u16,
    pub(crate) sp: u16,
    pub(crate) eval: Vec<i64>,
    pub(crate) frames: Vec<Frame>,
    pub(crate) irq_enabled: bool,
    pub(crate) pending: u8,
    pub(crate) events: BinaryHeap<Reverse<(u64, Event)>>,
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Cycles spent awake (executing, not sleeping) — the duty-cycle
    /// numerator.
    pub awake_cycles: u64,
    /// Current run state.
    pub state: RunState,
    /// The fault that stopped the machine, if any.
    pub fault: Option<Fault>,
    /// Devices.
    pub devices: Devices,
    /// Bytes written to the UART.
    pub uart_out: Vec<u8>,
    /// Timestamped bytes transmitted by the radio (drained by the network
    /// layer or inspected by tests).
    pub radio_out: Vec<(u64, u8)>,
    /// Number of instructions executed (profiling aid).
    pub instr_count: u64,
    /// Deepest call-stack extent observed so far, in bytes below the top
    /// of SRAM (`sram_end - sp` at its maximum). Updated in `do_call`,
    /// which both engines share, so the watermark is engine-invariant by
    /// construction. Ground truth for the `stackbound` static analyzer.
    pub(crate) stack_peak: u16,
    pub(crate) torn_watch: Option<TornWatch>,
    /// Cached `img.profile.sram_base()` (memory-map hot path).
    pub(crate) sram_base: u16,
    /// Cached `img.profile.sram_end()` (memory-map hot path).
    pub(crate) sram_end: u16,
    /// Set by `store_mem` whenever a store lands in MMIO space: the
    /// block engine bails out of its fast loop so device events and
    /// interrupt windows are handled with per-instruction fidelity.
    pub(crate) mmio_sync: bool,
    /// Which execution engine `run` uses.
    engine: crate::engine::Engine,
    /// Predecoded basic blocks for `img` (built lazily, shareable across
    /// machines running the same image).
    pub(crate) bbcache: Option<std::sync::Arc<crate::bbcache::BlockCache>>,
}

impl Machine {
    /// Creates a machine loaded with `image`, with reset state applied
    /// (`.data` copied, `.rodata` mapped, PC at `main`).
    ///
    /// # Panics
    ///
    /// Panics if the image has no entry point.
    pub fn new(image: &Image) -> Machine {
        let img = image.clone();
        let entry = img.entry.expect("image has no entry function");
        let mut ram: Box<[u8; RAM_BYTES]> = vec![0u8; RAM_BYTES]
            .into_boxed_slice()
            .try_into()
            .expect("RAM_BYTES-long vec");
        for (addr, bytes) in &img.rodata {
            ram[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        for (addr, bytes) in &img.data_init {
            ram[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        let sram_base = img.profile.sram_base();
        let sram_end = img.profile.sram_end();
        let frame = img.functions[entry as usize].frame_size;
        let mut m = Machine {
            img,
            ram,
            cur_func: entry,
            pc: 0,
            fp: sram_end - frame,
            sp: sram_end - frame,
            eval: Vec::with_capacity(32),
            frames: Vec::with_capacity(16),
            irq_enabled: false,
            pending: 0,
            events: BinaryHeap::new(),
            cycles: 0,
            awake_cycles: 0,
            state: RunState::Running,
            fault: None,
            devices: Devices::default(),
            uart_out: Vec::new(),
            radio_out: Vec::new(),
            instr_count: 0,
            stack_peak: frame,
            torn_watch: None,
            sram_base,
            sram_end,
            mmio_sync: false,
            engine: crate::engine::Engine::from_env(),
            bbcache: None,
        };
        m.devices.adc.waveform = Waveform::default();
        m
    }

    /// The execution engine this machine runs under (defaults to the
    /// `STOS_ENGINE` environment knob, read once per process).
    pub fn engine(&self) -> crate::engine::Engine {
        self.engine
    }

    /// Selects the execution engine explicitly, overriding the
    /// `STOS_ENGINE` default (the `sim_speed` harness measures both
    /// engines in one process this way).
    pub fn set_engine(&mut self, engine: crate::engine::Engine) {
        self.engine = engine;
    }

    /// Attaches a predecoded block cache built from this machine's image
    /// (see [`crate::bbcache::BlockCache`]). Campaigns and difftests that
    /// replay one image across many machines share a single decode this
    /// way; without an attached cache the block engine decodes lazily on
    /// first use.
    pub fn set_block_cache(&mut self, cache: std::sync::Arc<crate::bbcache::BlockCache>) {
        self.bbcache = Some(cache);
    }

    /// The full 64 KiB address space (test/inspection helper: RAM
    /// snapshot comparisons between engines).
    pub fn ram_bytes(&self) -> &[u8] {
        &self.ram[..]
    }

    /// Sets the ADC sensor waveform (workload context).
    pub fn set_waveform(&mut self, w: Waveform) {
        self.devices.adc.waveform = w;
    }

    /// Schedules radio bytes to arrive starting at cycle `at`, one byte
    /// every [`RADIO_BYTE_CYCLES`] (workload context / network layer).
    pub fn inject_rx_bytes(&mut self, at: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.events.push(Reverse((
                at + i as u64 * RADIO_BYTE_CYCLES,
                Event::RadioRxByte(*b),
            )));
        }
    }

    /// The duty cycle so far: awake cycles / total cycles, in percent.
    pub fn duty_cycle_percent(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.awake_cycles as f64 * 100.0 / self.cycles as f64
    }

    /// Human-readable message for the current fault, decoding safety traps
    /// through the image's FLID table.
    pub fn fault_message(&self) -> Option<String> {
        let fault = self.fault.as_ref()?;
        Some(match fault {
            Fault::SafetyTrap(flid) => match self.img.flid_table.get(flid) {
                Some(msg) => format!("safety check failed: {msg} (FLID {flid})"),
                None => format!("safety check failed (FLID {flid})"),
            },
            other => format!("{other:?}"),
        })
    }

    /// Reads one byte of RAM without side effects (test/inspection helper).
    pub fn ram_peek(&self, addr: u16) -> u8 {
        self.ram[addr as usize]
    }

    /// Reads a little-endian 16-bit word of RAM without side effects.
    pub fn ram_peek16(&self, addr: u16) -> u16 {
        u16::from_le_bytes([self.ram[addr as usize], self.ram[addr as usize + 1]])
    }

    /// Physically overwrites one byte of RAM, bypassing the memory map
    /// and write protection — this is corruption (see [`crate::faults`]),
    /// not a store the program performed.
    pub fn ram_poke(&mut self, addr: u16, value: u8) {
        self.ram[addr as usize] = value;
    }

    /// Physically overwrites a little-endian 16-bit word of RAM
    /// (see [`Machine::ram_poke`]).
    pub fn ram_poke16(&mut self, addr: u16, value: u16) {
        let [lo, hi] = value.to_le_bytes();
        self.ram[addr as usize] = lo;
        self.ram[addr as usize + 1] = hi;
    }

    /// Flips bits in the frame-pointer register — corrupted register
    /// state for fault-injection campaigns (see [`crate::faults`]).
    pub fn corrupt_fp(&mut self, mask: u16) {
        self.fp ^= mask;
    }

    /// The deepest call-stack extent observed so far, in bytes measured
    /// down from the top of SRAM (the entry frame counts). The dynamic
    /// ground truth that the `stackbound` static analyzer's certified
    /// bound must dominate; identical under both execution engines
    /// because the one `do_call` they share maintains it.
    pub fn stack_watermark(&self) -> u16 {
        self.stack_peak
    }

    /// Whether the global interrupt-enable flag is set.
    pub fn interrupts_enabled(&self) -> bool {
        self.irq_enabled
    }

    /// The earliest cycle at which the machine's device-event queue has
    /// work, clamped to the current cycle count so wake times never move
    /// backwards. `None` when the queue is empty.
    pub fn next_event_at(&self) -> Option<u64> {
        self.events
            .peek()
            .map(|Reverse((t, _))| (*t).max(self.cycles))
    }

    /// The wake-time contract with event-driven schedulers (see
    /// [`crate::fleet`]): the earliest cycle at which this machine can
    /// execute another instruction (or fault), or `None` if it never
    /// will absent outside input such as a radio delivery.
    ///
    /// - `Running` → now (`cycles`): the machine is mid-execution.
    /// - `Sleeping` with a pending enabled interrupt → now (the next
    ///   `run` wakes immediately), and likewise with interrupts globally
    ///   disabled (the next `run` faults with a dead sleep).
    /// - `Sleeping` otherwise → the next queued device event (timer
    ///   compare, ADC completion, radio edge), or `None` when the queue
    ///   is empty.
    /// - `Halted` / `Faulted` → `None`.
    pub fn next_wake(&self) -> Option<u64> {
        match self.state {
            RunState::Running => Some(self.cycles),
            RunState::Sleeping => {
                // Deliverable pending interrupt, or interrupts globally
                // disabled (a dead sleep the next `run` must fault).
                if self.pending != 0 || !self.irq_enabled {
                    Some(self.cycles)
                } else {
                    self.next_event_at()
                }
            }
            RunState::Halted | RunState::Faulted => None,
        }
    }

    /// Arms a torn-16-bit-update watchpoint (see [`TornWatch`]). At most
    /// one watch is armed at a time; arming replaces any previous one.
    pub fn arm_torn_watch(&mut self, addr: u16, nth: u32, mask: u8, hi: bool) {
        self.torn_watch = Some(TornWatch {
            addr,
            nth,
            mask,
            hi,
            seen: 0,
            fired: false,
        });
    }

    /// The armed torn-update watchpoint, if any (inspection helper: a
    /// campaign uses `fired` to tell "hazard window never opened" from
    /// "tear applied but absorbed").
    pub fn torn_watch(&self) -> Option<&TornWatch> {
        self.torn_watch.as_ref()
    }

    /// Runs until `until` total cycles have elapsed (or the machine halts
    /// or faults). Returns the final state.
    ///
    /// Dispatches to the engine selected by [`Machine::set_engine`] /
    /// `STOS_ENGINE`; both engines produce byte-identical observables
    /// (cycles, instruction counts, RAM, device traces, faults).
    pub fn run(&mut self, until: u64) -> RunState {
        match self.engine {
            crate::engine::Engine::Interp => self.run_interp(until),
            crate::engine::Engine::Bt => self.run_bt(until),
        }
    }

    /// The faithful per-instruction interpreter loop.
    pub(crate) fn run_interp(&mut self, until: u64) -> RunState {
        while self.cycles < until {
            match self.state {
                RunState::Running => {
                    self.deliver_due_events();
                    if self.maybe_dispatch_irq() {
                        continue;
                    }
                    self.step();
                }
                RunState::Sleeping => self.sleep_pump(until),
                RunState::Halted | RunState::Faulted => break,
            }
        }
        self.state
    }

    /// One iteration of the sleep state: wake on a pending enabled
    /// interrupt, fault on a dead sleep, otherwise fast-forward `cycles`
    /// (not counted awake) to the next event strictly before `until` —
    /// or to `until` itself when none is due. Shared verbatim by both
    /// engines so sleep accounting cannot diverge.
    pub(crate) fn sleep_pump(&mut self, until: u64) {
        debug_assert_eq!(self.state, RunState::Sleeping);
        if self.pending != 0 && self.irq_enabled {
            self.state = RunState::Running;
            return;
        }
        if !self.irq_enabled {
            self.fail(Fault::DeadSleep);
            return;
        }
        match self.events.peek() {
            Some(Reverse((t, _))) if *t < until => {
                let t = *t;
                if t > self.cycles {
                    self.cycles = t; // asleep: not counted awake
                }
                self.deliver_due_events();
            }
            _ => {
                self.cycles = until;
            }
        }
    }

    /// Executes exactly one instruction if running (test helper, and the
    /// faithful single-step both engines bottom out in).
    pub fn step(&mut self) {
        debug_assert_eq!(self.state, RunState::Running);
        let func = &self.img.functions[self.cur_func as usize];
        let Some(&instr) = func.code.get(self.pc as usize) else {
            let msg = format!(
                "pc {} past end of function #{} ({})",
                self.pc, self.cur_func, func.name
            );
            self.fail(Fault::BadCode(msg));
            return;
        };
        let cost = instr.cycles();
        self.cycles += cost;
        self.awake_cycles += cost;
        self.instr_count += 1;
        self.pc += 1;
        self.exec(&instr);
    }

    pub(crate) fn fail(&mut self, fault: Fault) {
        self.fault = Some(fault);
        self.state = RunState::Faulted;
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> i64 {
        match self.eval.pop() {
            Some(v) => v,
            None => {
                self.fail(Fault::BadCode("evaluation stack underflow".into()));
                0
            }
        }
    }

    pub(crate) fn exec(&mut self, instr: &Instr) {
        match *instr {
            Instr::PushI(v) => self.eval.push(v),
            Instr::LdLocal { off, width, signed } => {
                let addr = self.fp.wrapping_add(off);
                if let Some(v) = self.load_mem(addr, width, signed) {
                    self.eval.push(v);
                }
            }
            Instr::StLocal { off, width } => {
                let v = self.pop();
                let addr = self.fp.wrapping_add(off);
                self.store_mem(addr, v, width);
            }
            Instr::AddrLocal { off } => self.eval.push(self.fp.wrapping_add(off) as i64),
            Instr::LdGlobal {
                addr,
                width,
                signed,
            } => {
                if let Some(v) = self.load_mem(addr, width, signed) {
                    self.eval.push(v);
                }
            }
            Instr::StGlobal { addr, width } => {
                let v = self.pop();
                self.store_mem(addr, v, width);
            }
            Instr::Ld { width, signed } => {
                let addr = self.pop() as u16;
                if let Some(v) = self.load_mem(addr, width, signed) {
                    self.eval.push(v);
                }
            }
            Instr::St { width } => {
                let addr = self.pop() as u16;
                let v = self.pop();
                self.store_mem(addr, v, width);
            }
            Instr::Bin { op, width, signed } => {
                let b = self.pop();
                let a = self.pop();
                match self.alu(op, a, b, width, signed) {
                    Some(v) => self.eval.push(v),
                    None => self.fail(Fault::DivZero),
                }
            }
            Instr::Un { op, width } => {
                let a = self.pop();
                let v = match op {
                    UnAluOp::Neg => width.wrap(a.wrapping_neg(), false),
                    UnAluOp::BitNot => width.wrap(!a, false),
                    UnAluOp::Not => (width.wrap(a, false) == 0) as i64,
                };
                self.eval.push(v);
            }
            Instr::Wrap { width, signed } => {
                let a = self.pop();
                self.eval.push(width.wrap(a, signed));
            }
            Instr::Jmp { target } => self.pc = target,
            Instr::Jz { target } => {
                if self.pop() == 0 {
                    self.pc = target;
                }
            }
            Instr::Jnz { target } => {
                if self.pop() != 0 {
                    self.pc = target;
                }
            }
            Instr::Call { func } => self.do_call(func, false),
            Instr::Ret | Instr::Reti => {
                let was_irq = matches!(instr, Instr::Reti);
                self.do_ret(was_irq);
            }
            Instr::Trap { flid } => self.fail(Fault::SafetyTrap(flid)),
            Instr::Halt => self.state = RunState::Halted,
            Instr::Sleep => self.state = RunState::Sleeping,
            Instr::IrqSave => {
                self.eval.push(self.irq_enabled as i64);
                self.irq_enabled = false;
            }
            Instr::IrqRestore => {
                let v = self.pop();
                self.irq_enabled = v != 0;
            }
            Instr::IrqEnable => self.irq_enabled = true,
            Instr::IrqDisable => self.irq_enabled = false,
            Instr::MemCpy { bytes } => {
                let dst = self.pop() as u16;
                let src = self.pop() as u16;
                for i in 0..bytes {
                    match self.load_mem(src.wrapping_add(i), Width::W8, false) {
                        Some(v) => self.store_mem(dst.wrapping_add(i), v, Width::W8),
                        None => return,
                    }
                    if self.state == RunState::Faulted {
                        return;
                    }
                }
            }
            Instr::Pop => {
                self.pop();
            }
            Instr::Dup => {
                let v = self.pop();
                self.eval.push(v);
                self.eval.push(v);
            }
            Instr::Nop => {}
            Instr::LdFat { seq } => {
                let addr = self.pop() as u16;
                self.fat_load(addr, seq);
            }
            Instr::StFat { seq } => {
                let addr = self.pop() as u16;
                let cell = self.pop();
                self.fat_store(addr, cell, seq);
            }
            Instr::LdLocalFat { off, seq } => {
                let addr = self.fp.wrapping_add(off);
                self.fat_load(addr, seq);
            }
            Instr::StLocalFat { off, seq } => {
                let addr = self.fp.wrapping_add(off);
                let cell = self.pop();
                self.fat_store(addr, cell, seq);
            }
            Instr::LdGlobalFat { addr, seq } => self.fat_load(addr, seq),
            Instr::StGlobalFat { addr, seq } => {
                let cell = self.pop();
                self.fat_store(addr, cell, seq);
            }
            Instr::MkFat { seq } => {
                let end = self.pop() as u16;
                let base = if seq { self.pop() as u16 } else { 0 };
                let val = self.pop() as u16;
                self.eval.push(crate::isa::fat_pack(val, base, end));
            }
            Instr::FatVal => {
                let (v, _, _) = crate::isa::fat_unpack(self.pop());
                self.eval.push(v as i64);
            }
            Instr::FatEnd => {
                let (_, _, e) = crate::isa::fat_unpack(self.pop());
                self.eval.push(e as i64);
            }
            Instr::FatBase => {
                let (_, b, _) = crate::isa::fat_unpack(self.pop());
                self.eval.push(b as i64);
            }
            Instr::FatAdd => {
                let delta = self.pop();
                let (v, b, e) = crate::isa::fat_unpack(self.pop());
                let nv = (v as i64).wrapping_add(delta) as u16;
                self.eval.push(crate::isa::fat_pack(nv, b, e));
            }
        }
    }

    /// Pops the current frame: `Ret`/`Reti` semantics, shared by both
    /// engines. Returning from an interrupt frame re-enables interrupts.
    pub(crate) fn do_ret(&mut self, was_irq: bool) {
        match self.frames.pop() {
            Some(fr) => {
                self.sp = self.sp.wrapping_add(fr.callee_frame_size);
                self.cur_func = fr.caller_func;
                self.pc = fr.caller_pc;
                self.fp = fr.caller_fp;
                if was_irq || fr.is_irq {
                    self.irq_enabled = true;
                }
            }
            None => self.state = RunState::Halted,
        }
    }

    /// Loads a fat pointer from memory onto the eval stack: layout is
    /// `val, end[, base]` as little-endian words.
    pub(crate) fn fat_load(&mut self, addr: u16, seq: bool) {
        let Some(val) = self.load_mem(addr, Width::W16, false) else {
            return;
        };
        let Some(end) = self.load_mem(addr.wrapping_add(2), Width::W16, false) else {
            return;
        };
        let base = if seq {
            match self.load_mem(addr.wrapping_add(4), Width::W16, false) {
                Some(b) => b,
                None => return,
            }
        } else {
            0
        };
        self.eval
            .push(crate::isa::fat_pack(val as u16, base as u16, end as u16));
    }

    pub(crate) fn fat_store(&mut self, addr: u16, cell: i64, seq: bool) {
        let (v, b, e) = crate::isa::fat_unpack(cell);
        self.store_mem(addr, v as i64, Width::W16);
        self.store_mem(addr.wrapping_add(2), e as i64, Width::W16);
        if seq {
            self.store_mem(addr.wrapping_add(4), b as i64, Width::W16);
        }
    }

    #[inline]
    pub(crate) fn alu(&self, op: AluOp, a: i64, b: i64, width: Width, signed: bool) -> Option<i64> {
        let wa = width.wrap(a, signed);
        let wb = width.wrap(b, signed);
        let ua = width.wrap(a, false) as u64;
        let ub = width.wrap(b, false) as u64;
        Some(match op {
            AluOp::Add => width.wrap(wa.wrapping_add(wb), signed),
            AluOp::Sub => width.wrap(wa.wrapping_sub(wb), signed),
            AluOp::Mul => width.wrap(wa.wrapping_mul(wb), signed),
            AluOp::Div => {
                if wb == 0 {
                    return None;
                }
                if signed {
                    width.wrap(wa.wrapping_div(wb), true)
                } else {
                    width.wrap((ua / ub) as i64, false)
                }
            }
            AluOp::Mod => {
                if wb == 0 {
                    return None;
                }
                if signed {
                    width.wrap(wa.wrapping_rem(wb), true)
                } else {
                    width.wrap((ua % ub) as i64, false)
                }
            }
            AluOp::And => width.wrap(wa & wb, signed),
            AluOp::Or => width.wrap(wa | wb, signed),
            AluOp::Xor => width.wrap(wa ^ wb, signed),
            AluOp::Shl => width.wrap(wa.wrapping_shl((ub & 31) as u32), signed),
            AluOp::Shr => {
                if signed {
                    width.wrap(wa.wrapping_shr((ub & 31) as u32), true)
                } else {
                    width.wrap((ua >> (ub & 31)) as i64, false)
                }
            }
            AluOp::Eq => (wa == wb) as i64,
            AluOp::Ne => (wa != wb) as i64,
            AluOp::Lt => {
                if signed {
                    (wa < wb) as i64
                } else {
                    (ua < ub) as i64
                }
            }
            AluOp::Le => {
                if signed {
                    (wa <= wb) as i64
                } else {
                    (ua <= ub) as i64
                }
            }
        })
    }

    pub(crate) fn do_call(&mut self, func: u32, is_irq: bool) {
        let Some(callee) = self.img.functions.get(func as usize) else {
            self.fail(Fault::BadCode(format!("bad function index {func}")));
            return;
        };
        let frame_size = callee.frame_size;
        let nparams = callee.params.len();
        let new_sp = self.sp.wrapping_sub(frame_size);
        if new_sp < self.img.static_top || new_sp > self.sp {
            self.fail(Fault::StackOverflow);
            return;
        }
        let depth = self.sram_end.wrapping_sub(new_sp);
        if depth > self.stack_peak {
            self.stack_peak = depth;
        }
        // Pop arguments (last argument on top) into the callee frame.
        // A fixed buffer keeps the common case allocation-free.
        let mut inline_args = [0i64; INLINE_ARGS];
        let mut heap_args;
        let args: &mut [i64] = if nparams <= INLINE_ARGS {
            &mut inline_args[..nparams]
        } else {
            heap_args = vec![0i64; nparams];
            &mut heap_args[..]
        };
        for a in args.iter_mut().rev() {
            *a = self.pop();
        }
        self.frames.push(Frame {
            caller_func: self.cur_func,
            caller_pc: self.pc,
            caller_fp: self.fp,
            callee_frame_size: frame_size,
            is_irq,
        });
        self.sp = new_sp;
        self.fp = new_sp;
        self.cur_func = func;
        self.pc = 0;
        for (i, &v) in args.iter().enumerate().take(nparams) {
            let slot = self.img.functions[func as usize].params[i];
            let addr = self.fp.wrapping_add(slot.off);
            match slot.kind {
                crate::image::SlotKind::Scalar(w) => self.store_mem(addr, v, w),
                crate::image::SlotKind::Fat { seq } => self.fat_store(addr, v, seq),
            }
        }
    }

    pub(crate) fn maybe_dispatch_irq(&mut self) -> bool {
        if !self.irq_enabled || self.pending == 0 || self.state != RunState::Running {
            return false;
        }
        for v in 0..crate::NUM_VECTORS {
            if self.pending & (1 << v) != 0 {
                self.pending &= !(1 << v);
                let Some(handler) = self.img.vectors[v] else {
                    // Unwired vector: drop the interrupt (documented).
                    continue;
                };
                self.irq_enabled = false;
                self.cycles += IRQ_ENTRY_CYCLES;
                self.awake_cycles += IRQ_ENTRY_CYCLES;
                self.do_call(handler, true);
                return true;
            }
        }
        false
    }

    // ----- memory -----

    pub(crate) fn load_mem(&mut self, addr: u16, width: Width, signed: bool) -> Option<i64> {
        if addr >= MMIO_BASE {
            let v = self.mmio_read(addr);
            return Some(width.wrap(v as i64, signed));
        }
        if !self.mapped(addr, width.bytes() as u16) {
            self.fail(Fault::MemFault(addr));
            return None;
        }
        let mut v: u64 = 0;
        for i in 0..width.bytes() as usize {
            v |= (self.ram[addr as usize + i] as u64) << (8 * i);
        }
        // Torn-read watchpoint: the symmetric hazard — an interrupt
        // between the two bus reads of a 16-bit load hands the reader a
        // half-updated value. Firing corrupts the in-flight value only;
        // memory is untouched (the corruption a racing writer would have
        // made visible is transient to this one read).
        if width == Width::W16 && self.irq_enabled {
            if let Some(w) = &mut self.torn_watch {
                if w.addr == addr && !w.fired {
                    w.seen += 1;
                    if w.seen == w.nth {
                        w.fired = true;
                        v ^= (w.mask as u64) << (8 * w.hi as usize);
                    }
                }
            }
        }
        Some(width.wrap(v as i64, signed))
    }

    pub(crate) fn store_mem(&mut self, addr: u16, v: i64, width: Width) {
        if addr >= MMIO_BASE {
            self.mmio_write(addr, width.wrap(v, false) as u16);
            // Device registers may schedule events or change interrupt
            // sources: tell the block engine to resynchronize.
            self.mmio_sync = true;
            return;
        }
        if addr >= 0x8000 {
            self.fail(Fault::IllegalWrite(addr));
            return;
        }
        if !self.mapped(addr, width.bytes() as u16) {
            self.fail(Fault::MemFault(addr));
            return;
        }
        let uv = width.wrap(v, false) as u64;
        for i in 0..width.bytes() as usize {
            self.ram[addr as usize + i] = (uv >> (8 * i)) as u8;
        }
        // Torn-update watchpoint: a 16-bit store with interrupts enabled
        // is exactly the two-bus-write hazard window the watch models.
        if width == Width::W16 && self.irq_enabled {
            if let Some(w) = &mut self.torn_watch {
                if w.addr == addr && !w.fired {
                    w.seen += 1;
                    if w.seen == w.nth {
                        w.fired = true;
                        let byte = addr.wrapping_add(w.hi as u16);
                        let mask = w.mask;
                        self.ram[byte as usize] ^= mask;
                    }
                }
            }
        }
    }

    /// Whether `[addr, addr+len)` is mapped readable memory: SRAM or the
    /// flash window. The null page and the gap above SRAM fault.
    fn mapped(&self, addr: u16, len: u16) -> bool {
        let base = self.sram_base;
        let end = self.sram_end;
        let last = addr.checked_add(len - 1);
        let Some(last) = last else { return false };
        (addr >= base && last < end) || (0x8000..MMIO_BASE).contains(&addr) && last < MMIO_BASE
    }

    // ----- devices -----

    fn mmio_read(&mut self, addr: u16) -> u16 {
        match addr {
            LED_REG => self.devices.leds.value as u16,
            TIMER0_CTRL => self.devices.timer0.enabled as u16,
            TIMER0_COMPARE => self.devices.timer0.compare,
            TIMER0_COUNT => ((self.cycles / TIMER_TICK_CYCLES) & 0xFFFF) as u16,
            TIMER1_CTRL => self.devices.timer1.enabled as u16,
            TIMER1_COMPARE => self.devices.timer1.compare,
            ADC_CTRL => self.devices.adc.busy as u16,
            ADC_DATA => self.devices.adc.data,
            RADIO_CTRL => self.devices.radio.rx_enabled as u16,
            RADIO_RX => self.devices.radio.rx_data as u16,
            RADIO_STATUS => self.devices.radio.tx_busy as u16,
            UART_DATA => 0,
            _ => 0,
        }
    }

    fn mmio_write(&mut self, addr: u16, v: u16) {
        match addr {
            LED_REG => {
                let nv = (v & 0x07) as u8;
                if nv != self.devices.leds.value {
                    self.devices.leds.transitions += 1;
                }
                self.devices.leds.value = nv;
            }
            TIMER0_CTRL => {
                let enable = v & 1 != 0;
                if enable && !self.devices.timer0.enabled {
                    let period = (self.devices.timer0.compare.max(1) as u64) * TIMER_TICK_CYCLES;
                    self.events
                        .push(Reverse((self.cycles + period, Event::Timer0Fire)));
                }
                self.devices.timer0.enabled = enable;
            }
            TIMER0_COMPARE => self.devices.timer0.compare = v,
            TIMER1_CTRL => {
                let enable = v & 1 != 0;
                if enable && !self.devices.timer1.enabled {
                    let period = (self.devices.timer1.compare.max(1) as u64) * TIMER_TICK_CYCLES;
                    self.events
                        .push(Reverse((self.cycles + period, Event::Timer1Fire)));
                }
                self.devices.timer1.enabled = enable;
            }
            TIMER1_COMPARE => self.devices.timer1.compare = v,
            ADC_CTRL if v & 1 != 0 && !self.devices.adc.busy => {
                self.devices.adc.busy = true;
                self.events.push(Reverse((
                    self.cycles + ADC_CONVERSION_CYCLES,
                    Event::AdcDone,
                )));
            }
            RADIO_CTRL => self.devices.radio.rx_enabled = v & 1 != 0,
            RADIO_TX if !self.devices.radio.tx_busy => {
                self.devices.radio.tx_busy = true;
                self.radio_out.push((self.cycles, (v & 0xFF) as u8));
                self.events.push(Reverse((
                    self.cycles + RADIO_BYTE_CYCLES,
                    Event::RadioTxDone,
                )));
            }
            UART_DATA if !self.devices.uart.tx_busy => {
                self.devices.uart.tx_busy = true;
                self.uart_out.push((v & 0xFF) as u8);
                self.events
                    .push(Reverse((self.cycles + UART_BYTE_CYCLES, Event::UartTxDone)));
            }
            _ => {}
        }
    }

    pub(crate) fn deliver_due_events(&mut self) {
        while let Some(Reverse((t, _))) = self.events.peek() {
            if *t > self.cycles {
                break;
            }
            let Reverse((_, ev)) = self.events.pop().expect("peeked");
            match ev {
                Event::Timer0Fire => {
                    if self.devices.timer0.enabled {
                        self.pending |= 1 << crate::vectors::TIMER0;
                        let period =
                            (self.devices.timer0.compare.max(1) as u64) * TIMER_TICK_CYCLES;
                        self.events
                            .push(Reverse((self.cycles + period, Event::Timer0Fire)));
                    }
                }
                Event::Timer1Fire => {
                    if self.devices.timer1.enabled {
                        self.pending |= 1 << crate::vectors::TIMER1;
                        let period =
                            (self.devices.timer1.compare.max(1) as u64) * TIMER_TICK_CYCLES;
                        self.events
                            .push(Reverse((self.cycles + period, Event::Timer1Fire)));
                    }
                }
                Event::AdcDone => {
                    let n = self.devices.adc.samples;
                    self.devices.adc.data = self.devices.adc.waveform.sample(n);
                    self.devices.adc.samples = n + 1;
                    self.devices.adc.busy = false;
                    self.pending |= 1 << crate::vectors::ADC;
                }
                Event::RadioTxDone => {
                    self.devices.radio.tx_busy = false;
                    self.pending |= 1 << crate::vectors::RADIO_TX;
                }
                Event::RadioRxByte(b) => {
                    if self.devices.radio.rx_enabled {
                        self.devices.radio.rx_data = b;
                        self.devices.radio.rx_count += 1;
                        self.pending |= 1 << crate::vectors::RADIO_RX;
                    }
                }
                Event::UartTxDone => {
                    self.devices.uart.tx_busy = false;
                    self.pending |= 1 << crate::vectors::UART;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CodeFunction, Profile};

    fn image_with(code: Vec<Instr>) -> Image {
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("main");
        f.code = code;
        f.frame_size = 16;
        let e = img.add_function(f);
        img.entry = Some(e);
        img
    }

    #[test]
    fn arithmetic_and_halt() {
        let img = image_with(vec![
            Instr::PushI(7),
            Instr::PushI(5),
            Instr::Bin {
                op: AluOp::Mul,
                width: Width::W16,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::Halt,
        ]);
        let mut m = Machine::new(&img);
        m.run(1000);
        assert_eq!(m.state, RunState::Halted);
        assert_eq!(m.load_mem(0x0200, Width::W16, false), Some(35));
    }

    #[test]
    fn null_page_faults() {
        let img = image_with(vec![
            Instr::PushI(0),
            Instr::Ld {
                width: Width::W8,
                signed: false,
            },
        ]);
        let mut m = Machine::new(&img);
        m.run(100);
        assert_eq!(m.state, RunState::Faulted);
        assert_eq!(m.fault, Some(Fault::MemFault(0)));
    }

    #[test]
    fn flash_window_is_read_only() {
        let mut img = image_with(vec![
            Instr::PushI(1),
            Instr::PushI(0x8000),
            Instr::St { width: Width::W8 },
        ]);
        img.rodata.push((0x8000, vec![42]));
        let mut m = Machine::new(&img);
        m.run(100);
        assert_eq!(m.fault, Some(Fault::IllegalWrite(0x8000)));
    }

    #[test]
    fn rodata_readable() {
        let mut img = image_with(vec![
            Instr::PushI(0x8000),
            Instr::Ld {
                width: Width::W8,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W8,
            },
            Instr::Halt,
        ]);
        img.rodata.push((0x8000, vec![42]));
        let mut m = Machine::new(&img);
        m.run(100);
        assert_eq!(m.load_mem(0x0200, Width::W8, false), Some(42));
    }

    #[test]
    fn trap_records_flid() {
        let mut img = image_with(vec![Instr::Trap { flid: 77 }]);
        img.flid_table.insert(77, "BlinkM.nc:12 null deref".into());
        let mut m = Machine::new(&img);
        m.run(100);
        assert_eq!(m.fault, Some(Fault::SafetyTrap(77)));
        assert!(m.fault_message().unwrap().contains("BlinkM.nc:12"));
    }

    #[test]
    fn call_passes_args_and_returns_value() {
        // add(a, b) { return a + b; } ; main stores add(3, 4) to 0x0200.
        let mut img = Image::new(Profile::mica2());
        let mut add = CodeFunction::new("add");
        add.frame_size = 4;
        add.params = vec![
            crate::image::ParamSlot::scalar(0, Width::W16),
            crate::image::ParamSlot::scalar(2, Width::W16),
        ];
        add.code = vec![
            Instr::LdLocal {
                off: 0,
                width: Width::W16,
                signed: false,
            },
            Instr::LdLocal {
                off: 2,
                width: Width::W16,
                signed: false,
            },
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W16,
                signed: false,
            },
            Instr::Ret,
        ];
        let add_idx = img.add_function(add);
        let mut main = CodeFunction::new("main");
        main.frame_size = 0;
        main.code = vec![
            Instr::PushI(3),
            Instr::PushI(4),
            Instr::Call { func: add_idx },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::Halt,
        ];
        let e = img.add_function(main);
        img.entry = Some(e);
        let mut m = Machine::new(&img);
        m.run(1000);
        assert_eq!(m.state, RunState::Halted);
        assert_eq!(m.load_mem(0x0200, Width::W16, false), Some(7));
    }

    #[test]
    fn timer_interrupt_fires_handler() {
        // Handler increments 0x0200; main enables timer + irq then sleeps forever.
        let mut img = Image::new(Profile::mica2());
        let mut h = CodeFunction::new("tick");
        h.interrupt = Some(crate::vectors::TIMER0);
        h.code = vec![
            Instr::LdGlobal {
                addr: 0x0200,
                width: Width::W8,
                signed: false,
            },
            Instr::PushI(1),
            Instr::Bin {
                op: AluOp::Add,
                width: Width::W8,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W8,
            },
            Instr::Reti,
        ];
        img.add_function(h);
        let mut main = CodeFunction::new("main");
        main.code = vec![
            Instr::PushI(10), // compare = 10 ticks = 320 cycles
            Instr::PushI(TIMER0_COMPARE as i64),
            Instr::St { width: Width::W16 },
            Instr::PushI(1),
            Instr::PushI(TIMER0_CTRL as i64),
            Instr::St { width: Width::W16 },
            Instr::IrqEnable,
            Instr::Sleep,
            Instr::Jmp { target: 7 },
        ];
        let e = img.add_function(main);
        img.entry = Some(e);
        let mut m = Machine::new(&img);
        m.run(10_000);
        let count = m.load_mem(0x0200, Width::W8, false).unwrap();
        assert!(count >= 25, "expected ~31 timer fires, got {count}");
        // Mostly asleep: duty cycle well under 50%.
        assert!(m.duty_cycle_percent() < 50.0);
    }

    #[test]
    fn dead_sleep_faults() {
        let img = image_with(vec![Instr::Sleep]);
        let mut m = Machine::new(&img);
        m.run(100);
        assert_eq!(m.fault, Some(Fault::DeadSleep));
    }

    #[test]
    fn uart_collects_output() {
        let img = image_with(vec![
            Instr::PushI('h' as i64),
            Instr::PushI(UART_DATA as i64),
            Instr::St { width: Width::W8 },
            Instr::Halt,
        ]);
        let mut m = Machine::new(&img);
        m.run(1000);
        assert_eq!(m.uart_out, b"h");
    }

    #[test]
    fn adc_conversion_uses_waveform() {
        let img = image_with(vec![
            Instr::PushI(1),
            Instr::PushI(ADC_CTRL as i64),
            Instr::St { width: Width::W16 },
            Instr::IrqEnable,
            Instr::Sleep,
            Instr::PushI(ADC_DATA as i64),
            Instr::Ld {
                width: Width::W16,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::Halt,
        ]);
        let mut m = Machine::new(&img);
        m.set_waveform(Waveform::Const(321));
        m.run(10_000);
        assert_eq!(m.state, RunState::Halted);
        assert_eq!(m.load_mem(0x0200, Width::W16, false), Some(321));
    }

    #[test]
    fn stack_overflow_detected() {
        // Recursive function with a big frame.
        let mut img = Image::new(Profile::mica2());
        let mut f = CodeFunction::new("rec");
        f.frame_size = 512;
        f.code = vec![Instr::Call { func: 0 }, Instr::Ret];
        img.add_function(f);
        let mut main = CodeFunction::new("main");
        main.code = vec![Instr::Call { func: 0 }, Instr::Halt];
        let e = img.add_function(main);
        img.entry = Some(e);
        let mut m = Machine::new(&img);
        m.run(100_000);
        assert_eq!(m.fault, Some(Fault::StackOverflow));
    }

    #[test]
    fn stack_watermark_tracks_deepest_chain() {
        // main (16) calls leaf (40) twice: the watermark records the
        // deepest extent, not the current one, and survives the returns.
        let mut img = Image::new(Profile::mica2());
        let mut leaf = CodeFunction::new("leaf");
        leaf.frame_size = 40;
        leaf.code = vec![Instr::Ret];
        let leaf_idx = img.add_function(leaf);
        let mut main = CodeFunction::new("main");
        main.frame_size = 16;
        main.code = vec![
            Instr::Call { func: leaf_idx },
            Instr::Call { func: leaf_idx },
            Instr::Halt,
        ];
        let e = img.add_function(main);
        img.entry = Some(e);
        let mut m = Machine::new(&img);
        assert_eq!(m.stack_watermark(), 16, "entry frame counts");
        m.run(1000);
        assert_eq!(m.state, RunState::Halted);
        assert_eq!(m.stack_watermark(), 16 + 40);
    }

    #[test]
    fn radio_rx_injection_pends_interrupt() {
        let mut img = Image::new(Profile::mica2());
        let mut h = CodeFunction::new("rx");
        h.interrupt = Some(crate::vectors::RADIO_RX);
        h.code = vec![
            Instr::PushI(RADIO_RX as i64),
            Instr::Ld {
                width: Width::W8,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W8,
            },
            Instr::Reti,
        ];
        img.add_function(h);
        let mut main = CodeFunction::new("main");
        main.code = vec![
            Instr::PushI(1),
            Instr::PushI(RADIO_CTRL as i64),
            Instr::St { width: Width::W16 },
            Instr::IrqEnable,
            Instr::Sleep,
            Instr::Jmp { target: 4 },
        ];
        let e = img.add_function(main);
        img.entry = Some(e);
        let mut m = Machine::new(&img);
        m.inject_rx_bytes(500, &[0xAB]);
        m.run(5_000);
        assert_eq!(m.load_mem(0x0200, Width::W8, false), Some(0xAB));
    }

    #[test]
    fn irq_save_restore_round_trip() {
        let img = image_with(vec![
            Instr::IrqEnable,
            Instr::IrqSave,
            Instr::IrqRestore,
            Instr::Halt,
        ]);
        let mut m = Machine::new(&img);
        m.run(100);
        assert!(m.irq_enabled);
    }

    #[test]
    fn torn_watch_tears_nth_store_but_not_irq_disabled_ones() {
        // Store 0x1234 to 0x0200 three times: once with IRQs disabled
        // (boot-style init — invisible to the watch), twice enabled.
        // A watch on the 2nd IRQ-enabled access tears the final store.
        let img = image_with(vec![
            Instr::PushI(0x1234),
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::IrqEnable,
            Instr::PushI(0x1234),
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::PushI(0x1234),
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::Halt,
        ]);
        let mut m = Machine::new(&img);
        m.arm_torn_watch(0x0200, 2, 0x80, true);
        m.run(1000);
        assert_eq!(m.state, RunState::Halted);
        assert!(m.torn_watch().unwrap().fired);
        // High byte 0x12 ^ 0x80 = 0x92 → word 0x9234.
        assert_eq!(m.load_mem(0x0200, Width::W16, false), Some(0x9234));
    }

    #[test]
    fn torn_watch_tears_loads_transiently() {
        // Load a 16-bit word with IRQs enabled and store the result
        // elsewhere: the watch corrupts the in-flight value (what the
        // reader saw) while the watched word itself stays intact.
        let img = image_with(vec![
            Instr::PushI(0x1234),
            Instr::StGlobal {
                addr: 0x0200,
                width: Width::W16,
            },
            Instr::IrqEnable,
            Instr::LdGlobal {
                addr: 0x0200,
                width: Width::W16,
                signed: false,
            },
            Instr::StGlobal {
                addr: 0x0210,
                width: Width::W16,
            },
            Instr::Halt,
        ]);
        let mut m = Machine::new(&img);
        m.arm_torn_watch(0x0200, 1, 0x01, false);
        m.run(1000);
        assert_eq!(m.state, RunState::Halted);
        assert!(m.torn_watch().unwrap().fired);
        // The reader observed 0x1234 ^ 0x0001 = 0x1235...
        assert_eq!(m.load_mem(0x0210, Width::W16, false), Some(0x1235));
        // ...but memory was never touched (this load runs after Halt, so
        // the already-fired watch stays quiet).
        assert_eq!(m.load_mem(0x0200, Width::W16, false), Some(0x1234));
    }
}
