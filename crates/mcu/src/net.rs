//! Multi-node simulation over a shared broadcast radio channel.
//!
//! This plays the Avrora role of simulating a *network* of motes: every
//! byte a node transmits is delivered to every other node's receiver one
//! byte-time later. Nodes are advanced in lock-step time quanta small
//! enough (half a radio byte) that cross-node delivery order is preserved.

use crate::devices::RADIO_BYTE_CYCLES;
use crate::machine::{Machine, RunState};

/// A network of M16 nodes sharing one radio channel.
#[derive(Debug)]
pub struct Network {
    /// The member nodes.
    pub nodes: Vec<Machine>,
    /// Global simulation time in cycles.
    pub now: u64,
    drained: Vec<usize>,
}

impl Network {
    /// Creates a network from pre-loaded machines.
    pub fn new(nodes: Vec<Machine>) -> Network {
        let drained = nodes.iter().map(|n| n.radio_out.len()).collect();
        Network {
            nodes,
            now: 0,
            drained,
        }
    }

    /// Runs all nodes until `until` cycles of global time.
    pub fn run(&mut self, until: u64) {
        let quantum = RADIO_BYTE_CYCLES / 2;
        while self.now < until {
            let t = (self.now + quantum).min(until);
            for node in &mut self.nodes {
                node.run(t);
            }
            self.deliver(t);
            self.now = t;
            if self
                .nodes
                .iter()
                .all(|n| matches!(n.state, RunState::Halted | RunState::Faulted))
            {
                break;
            }
        }
    }

    /// Delivers bytes transmitted since the last quantum to all *other*
    /// nodes, one byte-time after transmission. Ties are broken by
    /// (time, source id) so delivery order never depends on collection
    /// order, and arrivals are clamped to the quantum boundary `t`: a
    /// byte transmitted inside the quantum arrives at
    /// `tx_time + RADIO_BYTE_CYCLES > t` as long as the quantum is at
    /// most one byte-time, so the clamp only matters if a receiver
    /// overshot the boundary by more than half a byte-time (a single
    /// very long instruction), where an arrival behind the receiver's
    /// instruction stream would otherwise be possible.
    fn deliver(&mut self, t: u64) {
        let mut deliveries: Vec<(usize, u64, u8)> = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let start = self.drained[i];
            for &(tx_time, byte) in &node.radio_out[start..] {
                deliveries.push((i, tx_time, byte));
            }
            self.drained[i] = node.radio_out.len();
        }
        deliveries.sort_by_key(|&(src, time, _)| (time, src));
        for (src, tx_time, byte) in deliveries {
            let at = tx_time + RADIO_BYTE_CYCLES;
            debug_assert!(
                at >= t,
                "late radio delivery: byte from node {src} sent at {tx_time} \
                 would arrive at {at}, behind the quantum boundary {t}"
            );
            let at = at.max(t);
            for (j, node) in self.nodes.iter_mut().enumerate() {
                if j != src {
                    node.inject_rx_bytes(at, &[byte]);
                }
            }
        }
    }

    /// Average duty cycle across nodes, in percent.
    pub fn mean_duty_cycle_percent(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(Machine::duty_cycle_percent)
            .sum::<f64>()
            / self.nodes.len() as f64
    }
}

/// The 2-node scenario shared by the lockstep test below and the
/// event-driven equivalence test in [`crate::fleet`]: node A transmits
/// `0x5A` once and halts; node B's RADIO_RX interrupt records the
/// received byte at `0x0200`.
#[cfg(test)]
pub(crate) fn byte_channel_images() -> (crate::image::Image, crate::image::Image) {
    use crate::devices::{RADIO_CTRL, RADIO_RX, RADIO_TX};
    use crate::image::{CodeFunction, Image, Profile};
    use crate::isa::{Instr, Width};

    let mut img_a = Image::new(Profile::mica2());
    let mut main_a = CodeFunction::new("main");
    main_a.code = vec![
        Instr::PushI(0x5A),
        Instr::PushI(RADIO_TX as i64),
        Instr::St { width: Width::W8 },
        Instr::Halt,
    ];
    let e = img_a.add_function(main_a);
    img_a.entry = Some(e);

    let mut img_b = Image::new(Profile::mica2());
    let mut rx = CodeFunction::new("rx");
    rx.interrupt = Some(crate::vectors::RADIO_RX);
    rx.code = vec![
        Instr::PushI(RADIO_RX as i64),
        Instr::Ld {
            width: Width::W8,
            signed: false,
        },
        Instr::StGlobal {
            addr: 0x0200,
            width: Width::W8,
        },
        Instr::Reti,
    ];
    img_b.add_function(rx);
    let mut main_b = CodeFunction::new("main");
    main_b.code = vec![
        Instr::PushI(1),
        Instr::PushI(RADIO_CTRL as i64),
        Instr::St { width: Width::W16 },
        Instr::IrqEnable,
        Instr::Sleep,
        Instr::Jmp { target: 4 },
    ];
    let e = img_b.add_function(main_b);
    img_b.entry = Some(e);

    (img_a, img_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node A transmits 0x5A once; node B records the received byte.
    #[test]
    fn byte_crosses_the_channel() {
        let (img_a, img_b) = byte_channel_images();
        let a = Machine::new(&img_a);
        let b = Machine::new(&img_b);
        let mut net = Network::new(vec![a, b]);
        net.run(10_000);
        let got = net.nodes[1].ram_peek(0x0200);
        assert_eq!(got, 0x5A);
    }
}
